//! Defect-injection suite for the baseline regression gate.
//!
//! The contract under test, end to end over real mpisim corpora:
//!
//! * clean-vs-clean always passes (re-running the identical workload
//!   and re-checking changes nothing);
//! * each injected fault fails **exactly** the clauses its defect
//!   class predicts — the gate neither under- nor over-reports;
//! * verdicts are byte-identical at any thread count and with a cold,
//!   warm, or absent cache (the same observational-equivalence
//!   contract `tests/cache_equivalence.rs` pins for the diff pipeline);
//! * the bundle encoding is stable: re-recording is byte-identical,
//!   and schema drift is caught by a pinned golden digest, so format
//!   changes require a deliberate `BUNDLE_FORMAT_VERSION` bump.

use difftrace::{AttrConfig, AttrKind, FilterConfig, FreqMode, Params, PipelineOptions};
use dt_baseline::{
    evaluate, sealed_hash, snapshot, snapshot_rec, Baseline, CodeCount, DiffClass, Policy,
    TraceRecord,
};
use dt_cache::Cache;
use dt_trace::hb::HbLog;
use dt_trace::{FunctionRegistry, TraceId, TraceSet};
use std::sync::Arc;
use workloads::{
    run_lulesh, run_oddeven, run_omp_counter, run_reqlife, run_stencil, LuleshConfig, LuleshFault,
    OddEvenConfig, OmpCounterConfig, OmpCounterFault, ReqLifeConfig, ReqLifeFault, RunOutcome,
    StencilConfig, StencilFault,
};

fn params() -> Params {
    Params::new(
        FilterConfig::everything(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    )
}

fn stencil(fault: Option<StencilFault>) -> RunOutcome {
    let reg = Arc::new(FunctionRegistry::new());
    let mut cfg = StencilConfig::default_8();
    cfg.fault = fault;
    run_stencil(&cfg, reg).0
}

fn lulesh(fault: Option<LuleshFault>) -> RunOutcome {
    let reg = Arc::new(FunctionRegistry::new());
    run_lulesh(&LuleshConfig::paper(fault), reg)
}

fn oddeven() -> RunOutcome {
    let reg = Arc::new(FunctionRegistry::new());
    run_oddeven(&OddEvenConfig::paper(None), reg)
}

fn omp_counter(fault: Option<OmpCounterFault>) -> RunOutcome {
    let reg = Arc::new(FunctionRegistry::new());
    let mut cfg = OmpCounterConfig::default_2x4();
    cfg.fault = fault;
    run_omp_counter(&cfg, reg)
}

fn reqlife(fault: Option<ReqLifeFault>) -> RunOutcome {
    let reg = Arc::new(FunctionRegistry::new());
    let mut cfg = ReqLifeConfig::default_4();
    cfg.fault = fault;
    run_reqlife(&cfg, reg)
}

fn check(base: &RunOutcome, cand: &RunOutcome) -> Vec<DiffClass> {
    let p = params();
    let baseline = snapshot(&base.traces, &base.hb, &p);
    let candidate = snapshot(&cand.traces, &cand.hb, &p);
    evaluate(&baseline, &candidate, &Policy::default(), "candidate")
        .expect("matching params")
        .failures()
}

/// Re-running the identical workload and checking it against its own
/// baseline passes every clause, for every corpus family.
#[test]
fn clean_vs_clean_passes() {
    assert_eq!(check(&stencil(None), &stencil(None)), vec![]);
    assert_eq!(check(&oddeven(), &oddeven()), vec![]);
    assert_eq!(check(&lulesh(None), &lulesh(None)), vec![]);
    assert_eq!(check(&reqlife(None), &reqlife(None)), vec![]);
}

/// The stencil tag-mismatch deadlock (recv↔recv) changes the NLR
/// content of every rank (truncation), collapses the ranking, and
/// fires hbcheck — and nothing else.
#[test]
fn stencil_tag_fault_fires_expected_clauses() {
    let failures = check(
        &stencil(None),
        &stencil(Some(StencilFault::TagMismatch { rank: 1 })),
    );
    assert_eq!(
        failures,
        vec![
            DiffClass::NlrChanged,
            DiffClass::RankingShift,
            DiffClass::HbRegression,
        ]
    );
}

/// The LULESH skipped-collective fault (wait-for cycle at rank 2)
/// adds one clause to the stencil signature: the aborted job also
/// *loses* worker threads that never ran, so the trace population
/// shrinks — exactly the defect `trace-removed` exists to catch.
#[test]
fn lulesh_skip_fault_fires_expected_clauses() {
    let faulty = lulesh(Some(LuleshFault::SkipCollective { rank: 2 }));
    assert!(faulty.deadlocked, "the skip fault must stall the job");
    let failures = check(&lulesh(None), &faulty);
    assert_eq!(
        failures,
        vec![
            DiffClass::TraceRemoved,
            DiffClass::NlrChanged,
            DiffClass::RankingShift,
            DiffClass::HbRegression,
        ]
    );
}

/// The OpenMP counter corpus is race-clean when protected, and the
/// unprotected fault fires the race-regression clause — alongside the
/// content/ranking clauses the dropped lock markers inevitably trip.
/// Narrowing the policy to tolerate those shows the race clause is the
/// one doing the shared-memory work.
#[test]
fn omp_race_fault_fires_the_race_clause() {
    assert_eq!(check(&omp_counter(None), &omp_counter(None)), vec![]);
    let failures = check(
        &omp_counter(None),
        &omp_counter(Some(OmpCounterFault::Unprotected { rank: 1 })),
    );
    assert!(
        failures.contains(&DiffClass::RaceRegression),
        "{failures:?}"
    );
    assert_eq!(
        failures,
        vec![
            DiffClass::NlrChanged,
            DiffClass::RankingShift,
            DiffClass::RaceRegression,
        ]
    );

    // With the content/ranking divergence tolerated, the verdict hangs
    // on require_clean_race alone — and emptying that set passes.
    let base = omp_counter(None);
    let cand = omp_counter(Some(OmpCounterFault::Unprotected { rank: 1 }));
    let p = params();
    let baseline = snapshot(&base.traces, &base.hb, &p);
    let candidate = snapshot(&cand.traces, &cand.hb, &p);
    let mut policy = Policy::default();
    policy.tolerate.insert(DiffClass::NlrChanged);
    policy.tolerate.insert(DiffClass::RankingShift);
    let report = evaluate(&baseline, &candidate, &policy, "candidate").unwrap();
    assert_eq!(report.failures(), vec![DiffClass::RaceRegression]);
    policy.require_clean_race.clear();
    let report = evaluate(&baseline, &candidate, &policy, "candidate").unwrap();
    assert!(report.passed(), "{}", report.render_text());
}

/// The divergent-reduce-op fault changes the faulty rank's collective
/// signature markers (content + ranking) and fires the req-regression
/// clause via RQ003 — and nothing else: the run still completes (the
/// reduce op is not part of the match), so no traces vanish and
/// hbcheck stays clean.
#[test]
fn coll_args_fault_fires_the_req_clause() {
    let faulty = reqlife(Some(ReqLifeFault::MismatchedCollArgs { rank: 1 }));
    assert!(!faulty.deadlocked, "the op mismatch must not stall the run");
    let failures = check(&reqlife(None), &faulty);
    assert_eq!(
        failures,
        vec![
            DiffClass::NlrChanged,
            DiffClass::RankingShift,
            DiffClass::ReqRegression,
        ]
    );

    // With content/ranking divergence tolerated, the verdict hangs on
    // require_clean_req alone — and emptying that set passes.
    let base = reqlife(None);
    let cand = reqlife(Some(ReqLifeFault::MismatchedCollArgs { rank: 1 }));
    let p = params();
    let baseline = snapshot(&base.traces, &base.hb, &p);
    let candidate = snapshot(&cand.traces, &cand.hb, &p);
    let mut policy = Policy::default();
    policy.tolerate.insert(DiffClass::NlrChanged);
    policy.tolerate.insert(DiffClass::RankingShift);
    let report = evaluate(&baseline, &candidate, &policy, "candidate").unwrap();
    assert_eq!(report.failures(), vec![DiffClass::ReqRegression]);
    policy.require_clean_req.clear();
    let report = evaluate(&baseline, &candidate, &policy, "candidate").unwrap();
    assert!(report.passed(), "{}", report.render_text());
}

/// Policy knobs downgrade exactly the clause they target: tolerating
/// the stencil fault's three classes turns the same check green.
#[test]
fn tolerances_turn_the_gate_green() {
    let base = stencil(None);
    let cand = stencil(Some(StencilFault::TagMismatch { rank: 1 }));
    let p = params();
    let baseline = snapshot(&base.traces, &base.hb, &p);
    let candidate = snapshot(&cand.traces, &cand.hb, &p);
    let mut policy = Policy::default();
    for c in [
        DiffClass::NlrChanged,
        DiffClass::RankingShift,
        DiffClass::HbRegression,
    ] {
        policy.tolerate.insert(c);
    }
    let report = evaluate(&baseline, &candidate, &policy, "candidate").unwrap();
    assert!(report.passed(), "{}", report.render_text());
    // The divergences are still reported, just not gating.
    assert!(report.render_text().contains("tolerated"));
}

fn snap(set: &TraceSet, hb: &HbLog, threads: usize, cache: Option<Arc<Cache>>) -> Baseline {
    let opts = PipelineOptions {
        threads,
        cache,
        ..PipelineOptions::default()
    };
    snapshot_rec(set, hb, &params(), &opts, &dt_obs::NOOP)
}

/// The whole gate is observationally deterministic: bundles and
/// rendered verdicts are byte-identical at thread counts {1, 4}, with
/// no cache, a cold cache, and a warm cache.
#[test]
fn verdicts_are_byte_identical_across_threads_and_cache() {
    let base = stencil(None);
    let cand = stencil(Some(StencilFault::TagMismatch { rank: 1 }));

    let reference_bundle = snap(&base.traces, &base.hb, 1, None).encode();
    let reference_report = {
        let b = snap(&base.traces, &base.hb, 1, None);
        let c = snap(&cand.traces, &cand.hb, 1, None);
        evaluate(&b, &c, &Policy::default(), "cand")
            .unwrap()
            .render_json()
    };

    let shared = Arc::new(Cache::new());
    for threads in [1usize, 4] {
        for cache in [None, Some(shared.clone())] {
            // Two passes over the same cache: the first is cold (or
            // warmed by a previous iteration), the second warm. Both
            // must reproduce the reference bytes exactly.
            for _pass in 0..2 {
                let b = snap(&base.traces, &base.hb, threads, cache.clone());
                assert_eq!(
                    b.encode(),
                    reference_bundle,
                    "bundle differs at threads={threads} cache={}",
                    cache.is_some()
                );
                let c = snap(&cand.traces, &cand.hb, threads, cache.clone());
                let report = evaluate(&b, &c, &Policy::default(), "cand").unwrap();
                assert_eq!(
                    report.render_json(),
                    reference_report,
                    "verdict differs at threads={threads} cache={}",
                    cache.is_some()
                );
            }
        }
    }
}

/// A fixed synthetic baseline whose encoding exercises every field of
/// the format: empty and non-empty sections, extreme floats, the
/// truncation flag, multi-thread trace ids.
fn golden_fixture() -> Baseline {
    Baseline {
        filter: "11.mpiall.K10".to_string(),
        attrs: "sing.actual".to_string(),
        traces: vec![
            TraceRecord {
                id: TraceId::new(0, 0),
                fingerprint: 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
                score: 2.5,
                truncated: false,
            },
            TraceRecord {
                id: TraceId::new(3, 1),
                fingerprint: u128::MAX,
                score: 0.1,
                truncated: true,
            },
        ],
        clusters: 2,
        outliers: vec![TraceId::new(3, 1)],
        lint: vec![CodeCount {
            code: "TL003".to_string(),
            errors: 0,
            warnings: 1,
        }],
        has_hb: true,
        hb: vec![CodeCount {
            code: "HB001".to_string(),
            errors: 1,
            warnings: 0,
        }],
        race: vec![
            CodeCount {
                code: "RC001".to_string(),
                errors: 2,
                warnings: 0,
            },
            CodeCount {
                code: "RC004".to_string(),
                errors: 0,
                warnings: 1,
            },
        ],
        req: vec![
            CodeCount {
                code: "RQ001".to_string(),
                errors: 1,
                warnings: 0,
            },
            CodeCount {
                code: "RQ005".to_string(),
                errors: 0,
                warnings: 2,
            },
        ],
    }
}

/// Golden stability: the byte encoding of a fixed baseline is pinned.
/// Any change to the wire format fails here first; the fix is a
/// deliberate `BUNDLE_FORMAT_VERSION` bump, never a silent drift
/// (mirrors the cache-format pin in `tests/cache_equivalence.rs`).
#[test]
fn bundle_encoding_is_pinned() {
    assert_eq!(dt_baseline::BUNDLE_FORMAT_VERSION, 3);
    let bytes = golden_fixture().encode();
    assert_eq!(bytes, golden_fixture().encode(), "encoding must be pure");
    let digest = sealed_hash(&bytes).expect("well-sealed");
    assert_eq!(
        format!("{digest:032x}"),
        "093a6cebe64f9f8a9a5429517e970cfe",
        "bundle wire format changed — bump BUNDLE_FORMAT_VERSION and re-pin"
    );
}

/// Recording the same corpus twice through the full pipeline produces
/// byte-identical bundles — the property CI's `cmp` step relies on.
#[test]
fn re_recording_is_byte_identical() {
    let run = stencil(None);
    let a = snapshot(&run.traces, &run.hb, &params()).encode();
    // A fresh workload execution, fresh registry, fresh everything.
    let rerun = stencil(None);
    let b = snapshot(&rerun.traces, &rerun.hb, &params()).encode();
    assert_eq!(a, b);
}
