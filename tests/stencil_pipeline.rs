//! Integration: the full DiffTrace pipeline on the stencil workload's
//! fault spectrum — from loud (deadlock) to silent-but-visible
//! (convergence change) to the documented blind spot.

use difftrace::{diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::{FunctionRegistry, TraceId};
use std::sync::Arc;
use workloads::{run_stencil, StencilConfig, StencilFault};

fn pair(fault: StencilFault) -> (dt_trace::TraceSet, dt_trace::TraceSet, bool) {
    let reg = Arc::new(FunctionRegistry::new());
    let mut cfg = StencilConfig::default_8();
    let (normal, _) = run_stencil(&cfg, reg.clone());
    cfg.fault = Some(fault);
    let (faulty, _) = run_stencil(&cfg, reg);
    let dl = faulty.deadlocked;
    (normal.traces, faulty.traces, dl)
}

fn params() -> Params {
    Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    )
}

#[test]
fn wrong_neighbor_truncates_and_is_flagged() {
    let (normal, faulty, deadlocked) = pair(StencilFault::WrongNeighbor {
        rank: 3,
        wrong_peer: 6,
    });
    assert!(deadlocked);
    let d = diff_runs(&normal, &faulty, &params());
    assert!(d.bscore > 0.1);
    // Every surviving trace shows the truncation signature in diffNLR.
    let dn = d.diff_nlr(TraceId::master(3)).unwrap();
    assert!(dn.faulty_truncated);
    assert!(dn.normal_only().iter().any(|s| s.contains("MPI_Finalize")));
}

#[test]
fn stale_halo_shows_as_loop_count_change() {
    let (normal, faulty, deadlocked) = pair(StencilFault::StaleHalo {
        rank: 1,
        after_iter: 2,
    });
    assert!(!deadlocked);
    let d = diff_runs(&normal, &faulty, &params());
    // Convergence length changed: the iteration loop's trip count
    // moved in every rank's diffNLR (uniform effect, like the paper's
    // wrong-op bug).
    let dn = d.diff_nlr(TraceId::master(0)).unwrap();
    assert!(!dn.is_identical(), "loop counts must differ");
    assert!(!dn.faulty_truncated);
    // Both runs reach MPI_Finalize (it stays in the common stem).
    assert!(!dn.normal_only().iter().any(|s| s.contains("MPI_Finalize")));
}

#[test]
fn flipped_sign_only_moves_trip_counts() {
    let (normal, faulty, deadlocked) = pair(StencilFault::FlippedSign { rank: 1 });
    assert!(!deadlocked);
    let d = diff_runs(&normal, &faulty, &params());
    let dn = d.diff_nlr(TraceId::master(0)).unwrap();
    // The change is exactly one loop element swapped for another with
    // a different trip count — nothing else.
    assert_eq!(dn.normal_only().len(), 1, "{:?}", dn.normal_only());
    assert_eq!(dn.faulty_only().len(), 1, "{:?}", dn.faulty_only());
    assert!(dn.normal_only()[0].contains('^'));
    assert!(dn.faulty_only()[0].contains('^'));
    // Under noFreq attributes the fault is fully invisible — the
    // documented boundary of call-trace diffing.
    let d2 = diff_runs(
        &normal,
        &faulty,
        &Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
        ),
    );
    assert!(d2.suspicious_threads.is_empty());
    assert_eq!(d2.bscore, 0.0);
}

#[test]
fn single_run_mode_isolates_the_faulty_lulesh_rank() {
    use difftrace::analyze_single;
    use workloads::{run_lulesh, LuleshConfig};
    let out = run_lulesh(
        &LuleshConfig::paper(Some(LuleshConfig::skip_bug())),
        Arc::new(FunctionRegistry::new()),
    );
    // The fault prevents rank 2 from opening its parallel region:
    // a single trace where every healthy rank has four.
    assert_eq!(out.traces.process_traces(2).len(), 1);
    assert_eq!(out.traces.process_traces(1).len(), 4);
    // And JSM_faulty-only clustering pins 2.0 as a singleton outlier.
    let p = Params::new(
        FilterConfig::everything(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let report = analyze_single(&out.traces, &p, 4);
    assert_eq!(report.outliers, vec![TraceId::master(2)]);
}
