//! Equivalence harness for the fleet's persistent incremental lattice.
//!
//! The contracts under test:
//!
//! * **Incremental == batch.** Folding runs one at a time through
//!   [`FleetRun::add_run_rec`] (the production path — the lattice grows
//!   by one Godin step per object, it is never rebuilt) produces the
//!   same canonical lattice and a byte-identical rendered report as
//!   [`FleetRun::batch_rec`]'s from-scratch construction, at threads
//!   {1, 4} and through no/cold/warm caches.
//! * **Order independence.** Any ingestion order of the same runs
//!   yields byte-identical rankings (property-tested over random
//!   permutations).
//! * **Incrementality is real.** Folding run N+1 adds exactly
//!   `universe.len()` to `fleet_lattice_folds`, and re-ingesting a
//!   fleet through a warm cache performs zero NLR folds.
//! * **Ragged fleets are diagnosed,** never a panic: the error names
//!   the offending run and its missing/extra trace ids, and the fleet
//!   is left unchanged.

use difftrace::{
    AttrConfig, AttrKind, FilterConfig, FleetError, FleetOptions, FleetRun, FreqMode, Params,
};
use dt_cache::Cache;
use dt_obs::MetricsRecorder;
use dt_trace::{TraceId, TraceSet};
use proptest::prelude::*;
use std::sync::Arc;

fn params() -> Params {
    Params::new(
        FilterConfig::everything(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    )
}

/// A small odd/even fleet: 3 healthy runs + 1 fault, 8 traces each.
fn small_fleet() -> Vec<(String, TraceSet)> {
    workloads::oddeven_fleet_sized(4, 2, 3)
        .into_iter()
        .map(|(name, run)| (name, run.traces))
        .collect()
}

fn opts(threads: usize, cache: Option<Arc<Cache>>) -> FleetOptions {
    FleetOptions { threads, cache }
}

/// Both rendered formats concatenated — everything a fold-order or
/// cache effect could leak into the user-visible output.
fn render(fleet: &FleetRun) -> String {
    let report = fleet.report();
    let text = dt_serve::render::fleet_summary(&report, fleet.params(), Some("fault"), "text")
        .expect("text render");
    let json = dt_serve::render::fleet_summary(&report, fleet.params(), Some("fault"), "json")
        .expect("json render");
    format!("{text}{json}")
}

fn incremental(
    fleet: &[(String, TraceSet)],
    threads: usize,
    cache: Option<Arc<Cache>>,
) -> FleetRun {
    let mut f = FleetRun::new(params());
    let o = opts(threads, cache);
    for (name, set) in fleet {
        f.add_run(name, set, &o).expect("aligned fleet");
    }
    f
}

fn counter(m: &dt_obs::Metrics, name: &str) -> u64 {
    m.counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("missing counter `{name}` in {:?}", m.counters))
}

/// The tentpole contract: the incremental fold equals the from-scratch
/// batch build — same canonical lattice, byte-identical report — at
/// both thread counts and through no/cold/warm caches.
#[test]
fn incremental_fold_matches_batch_rebuild() {
    let fleet = small_fleet();
    let named: Vec<(&str, &TraceSet)> = fleet.iter().map(|(n, s)| (n.as_str(), s)).collect();
    let batch = FleetRun::batch_rec(&params(), &named, &opts(1, None), &dt_obs::NOOP)
        .expect("aligned fleet");
    let want_lattice = batch.lattice_canonical();
    let want_report = render(&batch);

    let cache = Arc::new(Cache::new());
    for &threads in &[1usize, 4] {
        for pass in ["none", "cold", "warm"] {
            let c = (pass != "none").then(|| cache.clone());
            let inc = incremental(&fleet, threads, c);
            assert_eq!(
                inc.lattice_canonical(),
                want_lattice,
                "lattice diverged ({pass}, t={threads})"
            );
            assert_eq!(
                render(&inc),
                want_report,
                "report diverged ({pass}, t={threads})"
            );
        }
    }
}

/// Folding run N+1 grows `fleet_lattice_folds` by exactly the
/// universe size — the counter proves each fold touches only the new
/// run's objects, never a rebuild of the N runs already in.
#[test]
fn each_fold_counts_only_the_new_runs_objects() {
    let fleet = small_fleet();
    let universe = fleet[0].1.ids().len() as u64;
    let mut f = FleetRun::new(params());
    let o = opts(1, None);
    let mut folds_so_far = 0u64;
    for (i, (name, set)) in fleet.iter().enumerate() {
        let rec = MetricsRecorder::new();
        f.add_run_rec(name, set, &o, &rec).expect("aligned fleet");
        let m = rec.finish("fleet", 1);
        assert_eq!(counter(&m, "fleet_runs"), 1);
        assert_eq!(
            counter(&m, "fleet_lattice_folds"),
            universe,
            "fold {i} must add exactly the universe"
        );
        folds_so_far += universe;
    }
    assert_eq!(folds_so_far, universe * fleet.len() as u64);
    assert_eq!(f.run_names().len(), fleet.len());
}

/// Re-ingesting the same fleet through a warm cache performs zero NLR
/// folds — the fleet path actually reuses the per-trace fold cache.
#[test]
fn warm_reingest_folds_nothing() {
    let fleet = small_fleet();
    let cache = Arc::new(Cache::new());
    let run = || {
        let rec = MetricsRecorder::new();
        let inc_opts = opts(1, Some(cache.clone()));
        let mut f = FleetRun::new(params());
        for (name, set) in &fleet {
            f.add_run_rec(name, set, &inc_opts, &rec).expect("aligned");
        }
        (render(&f), counter(&rec.finish("fleet", 1), "nlr_folds"))
    };
    let (cold_report, cold_folds) = run();
    let (warm_report, warm_folds) = run();
    assert!(cold_folds > 0, "cold ingest must fold something");
    assert_eq!(warm_folds, 0, "warm re-ingest must re-fold nothing");
    assert_eq!(cold_report, warm_report, "cache must stay observational");
}

/// A ragged run is refused with a diagnosis naming the run and its
/// missing/extra trace ids — and the fleet is left usable.
#[test]
fn ragged_run_is_diagnosed_and_fleet_survives() {
    let fleet = small_fleet();
    let mut f = FleetRun::new(params());
    let o = opts(1, None);
    f.add_run(&fleet[0].0, &fleet[0].1, &o).unwrap();

    // A run over a different world size covers a different trace set.
    let bigger = workloads::oddeven_fleet_sized(8, 2, 1)
        .into_iter()
        .next()
        .unwrap()
        .1
        .traces;
    let err = f.add_run("ragged", &bigger, &o).unwrap_err();
    match &err {
        FleetError::Misaligned {
            run,
            missing,
            extra,
        } => {
            assert_eq!(run, "ragged");
            assert!(missing.is_empty(), "bigger run misses nothing");
            assert!(extra.contains(&TraceId::master(4)), "extra: {extra:?}");
        }
        other => panic!("expected Misaligned, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("ragged fleet"), "{msg}");
    assert!(msg.contains("`ragged`"), "{msg}");
    assert!(msg.contains("4.0"), "{msg}");

    // The refused fold left no partial state behind.
    assert_eq!(f.run_names(), ["run-0"]);
    for (name, set) in &fleet[1..] {
        f.add_run(name, set, &o).expect("fleet still folds");
    }
    assert!(f.report().rank_of("fault").is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Order independence: any ingestion order of the same runs yields
    /// a byte-identical rendered report, at threads 1 and 4.
    #[test]
    fn any_fold_order_renders_identically(seed in 0u64..10_000) {
        let mut fleet = small_fleet();
        let baseline = render(&incremental(&fleet, 1, None));
        // Fisher–Yates off a splitmix-style stream — proptest's shims
        // drive `seed`, the shuffle itself is deterministic in it.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for i in (1..fleet.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            fleet.swap(i, (s as usize) % (i + 1));
        }
        for &threads in &[1usize, 4] {
            prop_assert_eq!(
                &render(&incremental(&fleet, threads, None)),
                &baseline,
                "permuted fold order diverged (t={})", threads
            );
        }
    }
}
