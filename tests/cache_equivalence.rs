//! Cache-equivalence harness for the content-addressed analysis cache.
//!
//! The contract under test: the cache is **observational**. For every
//! entry point and every thread count, an analysis through a cache —
//! cold (empty), warm (fully populated), memory-only or disk-backed,
//! even over a corrupted cache directory — produces byte-identical
//! output to the uncached sequential run. Floats are compared
//! bit-for-bit, renders as exact strings. On top of identity, the
//! harness pins the *point* of the cache: a warm sweep performs
//! strictly fewer NLR folds than a cold one (via the `nlr_folds`
//! counter), and a fresh process over the same cache directory hits
//! from disk.

use difftrace::filter::symbol_name;
use difftrace::{
    sweep, sweep_cached, sweep_parallel_cached_rec, try_diff_runs_hb_rec, AttrConfig, AttrKind,
    DiffRun, FilterConfig, FreqMode, LintGate, Params, PipelineOptions, RankingRow,
};
use dt_cache::Cache;
use dt_trace::{FunctionRegistry, TraceCollector, TraceId, TraceSet};
use nlr::LoopId;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

const THREADS: &[usize] = &[1, 2, 8, 0];

fn oddeven_pair() -> (TraceSet, TraceSet) {
    let reg = Arc::new(FunctionRegistry::new());
    let n = run_oddeven(&OddEvenConfig::paper(None), reg.clone()).traces;
    let f = run_oddeven(&OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())), reg).traces;
    (n, f)
}

fn params() -> Params {
    Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    )
}

fn opts(threads: usize, cache: Option<Arc<Cache>>) -> PipelineOptions {
    PipelineOptions {
        threads,
        lint: LintGate::Off,
        hb: LintGate::Off,
        race: LintGate::Off,
        req: LintGate::Off,
        cache,
    }
}

fn run_diff(
    normal: &TraceSet,
    faulty: &TraceSet,
    threads: usize,
    cache: Option<Arc<Cache>>,
) -> DiffRun {
    try_diff_runs_hb_rec(
        normal,
        faulty,
        None,
        &params(),
        &opts(threads, cache),
        &dt_obs::NOOP,
    )
    .expect("gates are off")
}

/// A byte-exact fingerprint of everything loop-ID numbering and float
/// computation can leak into: the full report, both mined contexts,
/// every NLR render, the shared loop table, and the raw B-score bits.
fn fingerprint(d: &DiffRun) -> String {
    let mut s = difftrace::generate_report(d, &difftrace::ReportOptions::default());
    s.push_str(&format!("\nbscore={:016x}\n", d.bscore.to_bits()));
    for (tag, run) in [("normal", &d.normal), ("faulty", &d.faulty)] {
        s.push_str(&format!("{tag}.context:\n{}", run.context.to_csv()));
        let name = |sym: u32| symbol_name(&run.registry, sym);
        for id in &run.ids {
            s.push_str(&format!(
                "{tag}.nlr[{id}]: {:?}\n",
                run.nlrs.get(*id).unwrap().render(&name)
            ));
        }
    }
    for i in 0..d.table.len() {
        s.push_str(&format!("L{i}={:?}\n", d.table.body(LoopId(i as u32))));
    }
    s
}

fn assert_rows_equal(tag: &str, a: &[RankingRow], b: &[RankingRow]) {
    assert_eq!(a.len(), b.len(), "{tag}: row count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.filter, y.filter, "{tag}");
        assert_eq!(x.attrs, y.attrs, "{tag}");
        assert_eq!(x.bscore.to_bits(), y.bscore.to_bits(), "{tag}: B-score");
        assert_eq!(x.top_processes, y.top_processes, "{tag}");
        assert_eq!(x.top_threads, y.top_threads, "{tag}");
    }
}

fn counter(m: &dt_obs::Metrics, name: &str) -> u64 {
    m.counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("missing counter `{name}` in {:?}", m.counters))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dt_cache_equiv_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole contract: cold-through-cache and warm-through-cache
/// diffs are byte-identical to the uncached sequential run, at every
/// thread count — and the warm passes actually hit.
#[test]
fn cached_diff_is_byte_identical_cold_and_warm() {
    let (normal, faulty) = oddeven_pair();
    let baseline = fingerprint(&run_diff(&normal, &faulty, 1, None));
    let cache = Arc::new(Cache::new());
    // First loop iteration runs cold, every later one warm — and warm
    // entries were populated by *different* thread counts, which is
    // exactly the aliasing the portable-fold design must absorb.
    for pass in ["cold", "warm"] {
        for &threads in THREADS {
            let d = run_diff(&normal, &faulty, threads, Some(cache.clone()));
            assert_eq!(
                fingerprint(&d),
                baseline,
                "{pass} t={threads} diverged from uncached sequential"
            );
        }
    }
    let stats = cache.stats();
    assert!(stats.nlr_hits > 0, "warm passes never hit: {stats:?}");
    assert!(stats.attr_hits > 0, "attr cache never hit: {stats:?}");
}

/// The acceptance criterion: a warm sweep folds strictly fewer traces
/// than a cold one (counted by `nlr_folds`), with byte-identical rows.
#[test]
fn warm_sweep_folds_strictly_fewer_with_identical_rows() {
    let (normal, faulty) = oddeven_pair();
    let filters = vec![FilterConfig::mpi_all(10), FilterConfig::everything(10)];
    let uncached = sweep(
        &normal,
        &faulty,
        &filters,
        &AttrConfig::ALL,
        cluster::Method::Ward,
    );

    let cache = Arc::new(Cache::new());
    let run = |tag: &str| {
        let rec = dt_obs::MetricsRecorder::new();
        let rows = sweep_parallel_cached_rec(
            &normal,
            &faulty,
            &filters,
            &AttrConfig::ALL,
            cluster::Method::Ward,
            4,
            Some(cache.clone()),
            &rec,
        );
        assert_rows_equal(tag, &rows, &uncached);
        counter(&rec.finish("sweep", 4), "nlr_folds")
    };
    let cold = run("cold");
    let warm = run("warm");
    assert!(cold > 0, "cold sweep must fold something");
    assert_eq!(warm, 0, "a fully warm sweep re-folds nothing");
    assert!(warm < cold, "warm sweep must do strictly fewer folds");
}

/// Disk persistence: a brand-new `Cache` over a directory another
/// instance populated answers from disk — byte-identically — and a
/// corrupted directory degrades to recomputation, never to an error or
/// a wrong row.
#[test]
fn disk_cache_persists_and_corruption_degrades_to_miss() {
    let (normal, faulty) = oddeven_pair();
    let filters = vec![FilterConfig::mpi_all(10)];
    let attrs = [
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::NoFreq,
        },
    ];
    let uncached = sweep(&normal, &faulty, &filters, &attrs, cluster::Method::Ward);
    let dir = tmp("persist");

    // Populate.
    let writer = Arc::new(Cache::with_dir(&dir).unwrap());
    let rows = sweep_cached(
        &normal,
        &faulty,
        &filters,
        &attrs,
        cluster::Method::Ward,
        Some(writer.clone()),
    );
    assert_rows_equal("populate", &rows, &uncached);
    assert!(writer.stats().disk_write_bytes > 0);
    drop(writer);

    // A fresh instance (empty memory) hits from disk, re-folds nothing.
    let reader = Arc::new(Cache::with_dir(&dir).unwrap());
    let rows = sweep_cached(
        &normal,
        &faulty,
        &filters,
        &attrs,
        cluster::Method::Ward,
        Some(reader.clone()),
    );
    assert_rows_equal("disk-warm", &rows, &uncached);
    let s = reader.stats();
    assert!(s.disk_read_bytes > 0, "{s:?}");
    assert_eq!(s.nlr_misses, 0, "disk-warm run must not re-fold: {s:?}");

    // Vandalize every entry: truncate half of them, scribble over the
    // rest. The analysis must neither fail nor change.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty());
    for (i, path) in entries.iter().enumerate() {
        if i % 2 == 0 {
            let bytes = std::fs::read(path).unwrap();
            std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
        } else {
            std::fs::write(path, b"not a cache entry").unwrap();
        }
    }
    let survivor = Arc::new(Cache::with_dir(&dir).unwrap());
    let rows = sweep_cached(
        &normal,
        &faulty,
        &filters,
        &attrs,
        cluster::Method::Ward,
        Some(survivor.clone()),
    );
    assert_rows_equal("corrupted-dir", &rows, &uncached);
    assert!(
        survivor.stats().nlr_misses > 0,
        "corrupted entries must read as misses: {:?}",
        survivor.stats()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Random "call trace": loopy with a small alphabet plus noise (the
/// same shape the cross-crate property tests use).
fn trace_strategy() -> impl Strategy<Value = Vec<u32>> {
    let loopy = (
        1usize..4,
        1usize..12,
        proptest::collection::vec(0u32..6, 1..5),
    )
        .prop_map(|(reps_outer, reps_inner, body)| {
            let mut v = Vec::new();
            for _ in 0..reps_outer {
                for _ in 0..reps_inner {
                    v.extend(&body);
                }
                v.push(7); // separator
            }
            v
        });
    let noisy = proptest::collection::vec(0u32..10, 0..60);
    prop_oneof![loopy, noisy]
}

fn set_from_streams(reg: &Arc<FunctionRegistry>, streams: &[Vec<u32>]) -> TraceSet {
    let collector = TraceCollector::shared(reg.clone());
    for (p, stream) in streams.iter().enumerate() {
        let tr = collector.tracer(TraceId::master(p as u32));
        for &s in stream {
            tr.leaf(&format!("fn_{s}"));
        }
        tr.finish();
    }
    collector.into_trace_set()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: for arbitrary corpora, a warm parallel sweep through
    /// a cache equals the cold sequential uncached sweep, row for row
    /// and bit for bit.
    #[test]
    fn warm_parallel_sweep_matches_cold_sequential(
        streams in proptest::collection::vec(trace_strategy(), 2..5),
        bad in 0usize..4,
    ) {
        let reg = Arc::new(FunctionRegistry::new());
        let normal = set_from_streams(&reg, &streams);
        // Perturb one stream for the "faulty" run.
        let mut perturbed = streams.clone();
        let victim = bad % perturbed.len();
        let keep = perturbed[victim].len() / 2;
        perturbed[victim].truncate(keep);
        let faulty = set_from_streams(&reg, &perturbed);

        let filters = vec![
            FilterConfig::everything(10),
            FilterConfig { drop_returns: false, ..FilterConfig::everything(10) },
        ];
        let attrs = [
            AttrConfig { kind: AttrKind::Single, freq: FreqMode::Actual },
            AttrConfig { kind: AttrKind::Double, freq: FreqMode::NoFreq },
        ];
        let cold = sweep(&normal, &faulty, &filters, &attrs, cluster::Method::Ward);

        let cache = Arc::new(Cache::new());
        // Prime, then sweep warm in parallel.
        let primed = sweep_cached(
            &normal, &faulty, &filters, &attrs, cluster::Method::Ward, Some(cache.clone()),
        );
        let warm = sweep_parallel_cached_rec(
            &normal, &faulty, &filters, &attrs, cluster::Method::Ward, 4,
            Some(cache), &dt_obs::NOOP,
        );
        for (label, rows) in [("primed", &primed), ("warm", &warm)] {
            prop_assert_eq!(rows.len(), cold.len(), "{}", label);
            for (a, b) in rows.iter().zip(&cold) {
                prop_assert_eq!(&a.filter, &b.filter, "{}", label);
                prop_assert_eq!(&a.attrs, &b.attrs, "{}", label);
                prop_assert_eq!(a.bscore.to_bits(), b.bscore.to_bits(), "{}", label);
                prop_assert_eq!(&a.top_processes, &b.top_processes, "{}", label);
                prop_assert_eq!(&a.top_threads, &b.top_threads, "{}", label);
            }
        }
    }

    /// Satellite: arbitrary corruption of a disk entry — truncation at
    /// any point or a byte flip anywhere — reads as a miss: the next
    /// analysis recomputes and stays byte-identical, never errors.
    #[test]
    fn corrupted_disk_entry_is_always_a_miss(
        stream in trace_strategy(),
        cut in 0.0f64..1.0,
        flip in 0usize..512,
        truncate in any::<bool>(),
    ) {
        let reg = Arc::new(FunctionRegistry::new());
        let set = set_from_streams(&reg, std::slice::from_ref(&stream));
        let p = Params::new(FilterConfig::everything(10), AttrConfig {
            kind: AttrKind::Single, freq: FreqMode::Actual,
        });
        let baseline = difftrace::analyze_single(&set, &p, 0);

        let dir = tmp(&format!("prop_{:x}", dt_cache::nlr_key(10, &stream, |s| s.to_string())));
        let writer = Arc::new(Cache::with_dir(&dir).unwrap());
        let popts = PipelineOptions { cache: Some(writer.clone()), ..PipelineOptions::default() };
        let through = difftrace::analyze_single_opts_rec(&set, &p, 0, &popts, &dt_obs::NOOP);
        prop_assert_eq!(&baseline.outliers, &through.outliers);
        drop(writer);

        // Corrupt every entry at a stream-derived offset.
        let mut touched = false;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            if bytes.is_empty() { continue; }
            if truncate {
                let keep = ((bytes.len() as f64) * cut) as usize;
                bytes.truncate(keep.min(bytes.len().saturating_sub(1)));
            } else {
                let i = flip % bytes.len();
                bytes[i] ^= 0x5a;
            }
            std::fs::write(&path, &bytes).unwrap();
            touched = true;
        }
        prop_assert!(touched, "cached single run wrote no entries");

        let reader = Arc::new(Cache::with_dir(&dir).unwrap());
        let popts = PipelineOptions { cache: Some(reader.clone()), ..PipelineOptions::default() };
        let recovered = difftrace::analyze_single_opts_rec(&set, &p, 0, &popts, &dt_obs::NOOP);
        prop_assert_eq!(&baseline.clusters, &recovered.clusters);
        prop_assert_eq!(&baseline.outliers, &recovered.outliers);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
