//! Golden-output test: the §II walk-through experiments are fully
//! deterministic, so their reports must match these snapshots exactly.
//! A diff here means the reproduction of Tables II-IV / Figures 3-4
//! changed — review deliberately.

use difftrace_bench::experiments as ex;

#[test]
fn e1_table_iii_is_bit_stable() {
    let r = ex::e1_traces_and_nlr();
    let expected_nlr = "\
== Table III: NLR of MPI-filtered traces (K=10) ==
T0: MPI_Init · MPI_Comm_rank · MPI_Comm_size · L0 ^ 2 · MPI_Finalize
T1: MPI_Init · MPI_Comm_rank · MPI_Comm_size · L1 ^ 4 · MPI_Finalize
T2: MPI_Init · MPI_Comm_rank · MPI_Comm_size · L0 ^ 4 · MPI_Finalize
T3: MPI_Init · MPI_Comm_rank · MPI_Comm_size · L1 ^ 2 · MPI_Finalize

Loop bodies:
L0 = [MPI_Send - MPI_Recv]
L1 = [MPI_Recv - MPI_Send]
";
    assert!(r.contains(expected_nlr), "Table III snapshot changed:\n{r}");
}

#[test]
fn e3_jsm_csv_is_bit_stable() {
    let r = ex::e3_jsm_heatmap();
    let expected_csv = "\
trace,0.0,1.0,2.0,3.0
0.0,1.0000,0.6667,1.0000,0.6667
1.0,0.6667,1.0000,0.6667,1.0000
2.0,1.0000,0.6667,1.0000,0.6667
3.0,0.6667,1.0000,0.6667,1.0000
";
    assert!(r.contains(expected_csv), "Figure 4 snapshot changed:\n{r}");
}

#[test]
fn e2_lattice_is_bit_stable() {
    let r = ex::e2_context_and_lattice();
    for line in [
        "({0.0, 1.0, 2.0, 3.0}, {MPI_Comm_rank, MPI_Comm_size, MPI_Finalize, MPI_Init})",
        "({0.0, 2.0}, {L0, MPI_Comm_rank, MPI_Comm_size, MPI_Finalize, MPI_Init})",
        "({1.0, 3.0}, {MPI_Comm_rank, MPI_Comm_size, MPI_Finalize, MPI_Init, L1})",
        "({}, {L0, MPI_Comm_rank, MPI_Comm_size, MPI_Finalize, MPI_Init, L1})",
    ] {
        assert!(
            r.contains(line),
            "lattice snapshot changed: missing {line}\n{r}"
        );
    }
}

#[test]
fn e4_figure_5_is_bit_stable() {
    let r = ex::e4_diffnlr_oddeven();
    let expected = "\
diffNLR(5.0)  [= common | - normal only | + faulty only]
  = MPI_Init
  = MPI_Comm_rank
  = MPI_Comm_size
  - L1 ^ 16
  + L1 ^ 7
  + L0 ^ 9
  = MPI_Finalize
";
    assert!(r.contains(expected), "Figure 5 snapshot changed:\n{r}");
}
