//! Cross-crate property tests: invariants that must hold across the
//! whole pipeline, driven by proptest.

use diffalg::diff;
use difftrace::{diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::{compress, FunctionRegistry, Trace, TraceCollector, TraceEvent, TraceId, TraceSet};
use nlr::{LoopTable, NlrBuilder};
use proptest::prelude::*;
use std::sync::Arc;

/// Random "call trace": loopy with a small alphabet plus noise.
fn trace_strategy() -> impl Strategy<Value = Vec<u32>> {
    let loopy = (
        1usize..5,
        1usize..20,
        proptest::collection::vec(0u32..6, 1..6),
    )
        .prop_map(|(reps_outer, reps_inner, body)| {
            let mut v = Vec::new();
            for _ in 0..reps_outer {
                for _ in 0..reps_inner {
                    v.extend(&body);
                }
                v.push(7); // separator
            }
            v
        });
    let noisy = proptest::collection::vec(0u32..10, 0..100);
    prop_oneof![loopy, noisy]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NLR → expand is the identity for any symbol stream and any K.
    #[test]
    fn nlr_is_lossless(input in trace_strategy(), k in 1usize..20) {
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(k).build(&input, &mut table);
        prop_assert_eq!(nlr.expand(&table), input);
    }

    /// Compression round-trips any stream, including NLR-hostile ones.
    #[test]
    fn compression_round_trips(input in proptest::collection::vec(any::<u32>(), 0..500)) {
        let blob = compress::compress(&input);
        prop_assert_eq!(compress::decompress(&blob).unwrap(), input);
    }

    /// Myers diff reconstructs and its distance is zero iff equal.
    #[test]
    fn diff_reconstructs(a in trace_strategy(), b in trace_strategy()) {
        let s = diff(&a, &b);
        prop_assert_eq!(s.apply_with(&a, &b), b.clone());
        prop_assert_eq!(s.distance() == 0, a == b);
        let (la, lb) = s.side_lens();
        prop_assert_eq!(la, a.len());
        prop_assert_eq!(lb, b.len());
    }

    /// The full pipeline on identical executions is a fixed point:
    /// JSM_D = 0, B-score = 0, no suspects — for every attribute mode.
    #[test]
    fn identical_runs_produce_no_suspects(
        streams in proptest::collection::vec(trace_strategy(), 2..6),
        kind in prop_oneof![Just(AttrKind::Single), Just(AttrKind::Double)],
        freq in prop_oneof![Just(FreqMode::Actual), Just(FreqMode::Log10), Just(FreqMode::NoFreq)],
    ) {
        let registry = Arc::new(FunctionRegistry::new());
        let build = |reg: &Arc<FunctionRegistry>| {
            let collector = TraceCollector::shared(reg.clone());
            for (p, stream) in streams.iter().enumerate() {
                let tr = collector.tracer(TraceId::master(p as u32));
                for &s in stream {
                    tr.leaf(&format!("fn_{s}"));
                }
                tr.finish();
            }
            collector.into_trace_set()
        };
        let a = build(&registry);
        let b = build(&registry);
        let d = diff_runs(&a, &b, &Params::new(
            FilterConfig::everything(10),
            AttrConfig { kind, freq },
        ));
        prop_assert_eq!(d.bscore, 0.0);
        prop_assert!(d.suspicious_threads.is_empty());
        for row in &d.jsm_d.m {
            for &v in row {
                prop_assert!(v.abs() < 1e-12);
            }
        }
    }

    /// Store round-trip preserves arbitrary trace sets exactly.
    #[test]
    fn store_round_trips(
        streams in proptest::collection::vec(
            (trace_strategy(), any::<bool>()), 1..5),
    ) {
        let registry = Arc::new(FunctionRegistry::new());
        for s in 0..10u32 {
            registry.intern(&format!("fn_{s}"));
        }
        let mut set = TraceSet::new(registry.clone());
        for (p, (stream, truncated)) in streams.iter().enumerate() {
            let mut t = Trace::new(TraceId::master(p as u32));
            for &s in stream {
                let f = registry.intern(&format!("fn_{s}"));
                t.events.push(TraceEvent::Call(f));
                t.events.push(TraceEvent::Return(f));
            }
            t.truncated = *truncated;
            set.insert(t);
        }
        let back = dt_trace::store::from_bytes(&dt_trace::store::to_bytes(&set)).unwrap();
        prop_assert_eq!(back.len(), set.len());
        for t in set.iter() {
            let bt = back.get(t.id).unwrap();
            prop_assert_eq!(&bt.events, &t.events);
            prop_assert_eq!(bt.truncated, t.truncated);
        }
    }

    /// JSM matrices are symmetric with unit diagonals and values in
    /// [0, 1], for random weighted contexts.
    #[test]
    fn jsm_bounds(
        objs in proptest::collection::vec(
            proptest::collection::vec((0u32..12, 1u32..50), 1..10), 2..6),
    ) {
        let mut ctx = fca::FormalContext::new();
        for (i, attrs) in objs.iter().enumerate() {
            let named: Vec<(String, f64)> = attrs
                .iter()
                .map(|&(a, w)| (format!("a{a}"), f64::from(w)))
                .collect();
            ctx.add_object(&format!("o{i}"), named.iter().map(|(n, w)| (n.as_str(), *w)));
        }
        let m = fca::jaccard_matrix(&ctx);
        #[allow(clippy::needless_range_loop)]
        for i in 0..m.len() {
            prop_assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..m.len() {
                prop_assert!(m[i][j] >= 0.0 && m[i][j] <= 1.0 + 1e-12);
                prop_assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
    }
}
