//! Integration: the §IV ILCS case study and the §V LULESH example,
//! asserting the result *shapes* of Tables VI–IX and Figure 7.

use difftrace::{
    diff_runs, sweep, AttrConfig, AttrKind, FilterConfig, FreqMode, KeepClass, Params,
};
use dt_trace::{FunctionRegistry, TraceId};
use std::sync::Arc;
use workloads::{run_ilcs, run_lulesh, IlcsConfig, LuleshConfig};

fn ilcs_pair(fault: workloads::IlcsFault) -> (dt_trace::TraceSet, dt_trace::TraceSet) {
    let reg = Arc::new(FunctionRegistry::new());
    let normal = run_ilcs(&IlcsConfig::paper(None), reg.clone()).traces;
    let faulty = run_ilcs(&IlcsConfig::paper(Some(fault)), reg).traces;
    (normal, faulty)
}

fn cust() -> KeepClass {
    KeepClass::Custom("^CPU_".to_string())
}

#[test]
fn table_vi_flags_thread_6_4() {
    let (normal, faulty) = ilcs_pair(IlcsConfig::omp_crit_bug());
    let filters = vec![FilterConfig {
        keep: vec![KeepClass::Memory, KeepClass::OmpCritical, cust()],
        nlr_k: 10,
        ..FilterConfig::default()
    }];
    let rows = sweep(
        &normal,
        &faulty,
        &filters,
        &AttrConfig::ALL,
        cluster::Method::Ward,
    );
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert_eq!(
            r.top_threads.first(),
            Some(&TraceId::new(6, 4)),
            "row {r} must put the planted bug site first"
        );
        assert_eq!(r.top_processes.first(), Some(&6));
        assert!(r.bscore >= 0.0);
    }
}

#[test]
fn figure_7a_critical_section_disappears() {
    let (normal, faulty) = ilcs_pair(IlcsConfig::omp_crit_bug());
    let params = Params::new(
        FilterConfig {
            keep: vec![KeepClass::Memory, KeepClass::OmpCritical, cust()],
            nlr_k: 10,
            ..FilterConfig::default()
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
    );
    let d = diff_runs(&normal, &faulty, &params);
    let dn = d.diff_nlr(TraceId::new(6, 4)).unwrap();
    let gone = dn.normal_only().join(" ");
    assert!(gone.contains("GOMP_critical_start"), "{gone}");
    assert!(gone.contains("GOMP_critical_end"), "{gone}");
    // A healthy sibling thread shows no such difference.
    let sibling = d.diff_nlr(TraceId::new(5, 4)).unwrap();
    assert!(
        !sibling.normal_only().join(" ").contains("GOMP_critical"),
        "unaffected threads keep their critical sections"
    );
}

#[test]
fn table_vii_collective_deadlock_truncates_all_masters() {
    let (normal, faulty) = ilcs_pair(IlcsConfig::coll_size_bug());
    // Every master dies inside MPI_Allreduce.
    for p in 0..8u32 {
        let t = faulty.get(TraceId::master(p)).unwrap();
        assert!(t.truncated, "master {p}");
        let last = *t.events.last().unwrap();
        assert!(last.is_call());
        assert_eq!(faulty.registry.name(last.fn_id()), "MPI_Allreduce");
    }
    let params = Params::new(
        FilterConfig {
            keep: vec![KeepClass::MpiAll, cust()],
            nlr_k: 10,
            ..FilterConfig::default()
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let d = diff_runs(&normal, &faulty, &params);
    assert!(d.bscore > 0.05, "an early deadlock reshapes the clustering");
    // Figure 7b: any master's diffNLR shows the common prefix up to the
    // first Allreduce and the missing MPI_Finalize.
    let dn = d.diff_nlr(TraceId::master(4)).unwrap();
    assert!(dn.faulty_truncated);
    assert!(dn.normal_only().iter().any(|s| s.contains("MPI_Finalize")));
}

#[test]
fn table_viii_wrong_op_runs_longer_not_deadlocked() {
    let reg = Arc::new(FunctionRegistry::new());
    let normal = run_ilcs(&IlcsConfig::paper(None), reg.clone());
    let faulty = run_ilcs(&IlcsConfig::paper(Some(IlcsConfig::wrong_op_bug())), reg);
    assert!(!normal.deadlocked && !faulty.deadlocked);
    let bcasts = |set: &dt_trace::TraceSet, p: u32| {
        set.get(TraceId::master(p))
            .unwrap()
            .calls()
            .filter(|e| set.registry.name(e.fn_id()) == "MPI_Bcast")
            .count()
    };
    // Figure 7c: the buggy run executes more MPI_Bcast calls (more
    // champion rounds) — in every master.
    for p in 0..8u32 {
        assert!(
            bcasts(&faulty.traces, p) > bcasts(&normal.traces, p),
            "rank {p}: faulty {} vs normal {}",
            bcasts(&faulty.traces, p),
            bcasts(&normal.traces, p)
        );
    }
    // The round loop's trip count is what diffNLR exposes.
    let params = Params::new(
        FilterConfig {
            keep: vec![KeepClass::MpiAll, cust()],
            nlr_k: 10,
            ..FilterConfig::default()
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let d = diff_runs(&normal.traces, &faulty.traces, &params);
    let dn = d.diff_nlr(TraceId::master(3)).unwrap();
    assert!(!dn.is_identical(), "loop counts changed");
    assert!(!dn.faulty_truncated, "silent bug: no truncation");
}

#[test]
fn table_ix_lulesh_flags_rank_2() {
    let reg = Arc::new(FunctionRegistry::new());
    let normal = run_lulesh(&LuleshConfig::paper(None), reg.clone()).traces;
    let faulty_run = run_lulesh(&LuleshConfig::paper(Some(LuleshConfig::skip_bug())), reg);
    assert!(faulty_run.deadlocked, "the skip fault stalls the job");
    let faulty = faulty_run.traces;
    let rows = sweep(
        &normal,
        &faulty,
        &[FilterConfig::everything(10)],
        &[
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::NoFreq,
            },
            AttrConfig {
                kind: AttrKind::Double,
                freq: FreqMode::NoFreq,
            },
        ],
        cluster::Method::Ward,
    );
    for r in &rows {
        assert_eq!(r.top_processes.first(), Some(&2), "{r}");
        assert!(r.top_threads.iter().any(|t| t.process == 2));
    }
}

#[test]
fn lulesh_diffnlr_shows_where_progress_stopped() {
    let reg = Arc::new(FunctionRegistry::new());
    let normal = run_lulesh(&LuleshConfig::paper(None), reg.clone()).traces;
    let faulty = run_lulesh(&LuleshConfig::paper(Some(LuleshConfig::skip_bug())), reg).traces;
    let d = diff_runs(
        &normal,
        &faulty,
        &Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
        ),
    );
    // Rank 2 lost its whole communication phase.
    let dn2 = d.diff_nlr(TraceId::master(2)).unwrap();
    assert!(dn2
        .normal_only()
        .iter()
        .any(|s| s.contains("MPI_Send") || s.contains('L')));
    // A neighbour died waiting: truncated, missing finalize.
    let dn1 = d.diff_nlr(TraceId::master(1)).unwrap();
    assert!(dn1.faulty_truncated);
    assert!(dn1.normal_only().iter().any(|s| s.contains("MPI_Finalize")));
}
