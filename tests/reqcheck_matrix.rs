//! Defect-injection matrix for the reqcheck pre-pass.
//!
//! The contract under test, end to end over real mpisim corpora:
//!
//! * clean corpora from every workload family (odd–even sort, stencil
//!   halo exchange, LULESH proxy, request-lifecycle) are RQ-clean in
//!   **both** summary domains;
//! * each injected request-lifecycle fault fires **exactly** its
//!   predicted RQ codes, for every fault site the workload can express
//!   (a proptest over rank × iteration) — reqcheck neither under- nor
//!   over-reports;
//! * rendered reports are byte-identical at thread counts {1, 4}, in
//!   both domains, and with no cache, a cold cache, or a warm cache —
//!   the same observational-equivalence contract `tests/baseline_gate.rs`
//!   pins for the regression gate.

use std::collections::BTreeSet;
use std::sync::Arc;

use difftrace::{
    reqcheck_set, try_diff_runs_opts, AttrConfig, AttrKind, FilterConfig, FreqMode, LintDomain,
    LintGate, Params, PipelineOptions, ReqOptions,
};
use dt_cache::Cache;
use dt_reqcheck::ReqCode;
use dt_trace::{FunctionRegistry, TraceSet};
use proptest::prelude::*;
use workloads::{
    run_lulesh, run_oddeven, run_reqlife, run_stencil, LuleshConfig, OddEvenConfig, ReqLifeConfig,
    ReqLifeFault, RunOutcome, StencilConfig,
};

fn reqlife(fault: Option<ReqLifeFault>) -> RunOutcome {
    let reg = Arc::new(FunctionRegistry::new());
    let mut cfg = ReqLifeConfig::default_4();
    cfg.fault = fault;
    run_reqlife(&cfg, reg)
}

fn opts(domain: LintDomain, threads: usize) -> ReqOptions {
    ReqOptions {
        threads,
        domain,
        ..ReqOptions::default()
    }
}

fn codes(set: &TraceSet, domain: LintDomain) -> BTreeSet<ReqCode> {
    reqcheck_set(set, &opts(domain, 1)).codes()
}

const DOMAINS: [LintDomain; 2] = [LintDomain::Expanded, LintDomain::Compressed];

/// Every clean corpus family is RQ-clean in both domains: the rules
/// fire on defects, not on healthy MPI usage (or on workloads that use
/// no requests at all).
#[test]
fn clean_corpora_stay_req_clean() {
    let corpora = [
        run_oddeven(
            &OddEvenConfig::paper(None),
            Arc::new(FunctionRegistry::new()),
        ),
        run_stencil(
            &StencilConfig::default_8(),
            Arc::new(FunctionRegistry::new()),
        )
        .0,
        run_lulesh(
            &LuleshConfig::paper(None),
            Arc::new(FunctionRegistry::new()),
        ),
        reqlife(None),
    ];
    for (i, out) in corpora.iter().enumerate() {
        assert!(
            !out.deadlocked,
            "corpus {i} must complete: {:?}",
            out.errors
        );
        for domain in DOMAINS {
            let report = reqcheck_set(&out.traces, &opts(domain, 1));
            assert!(
                report.is_clean(),
                "corpus {i} not RQ-clean in {domain:?}:\n{}",
                report.render_text()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Leaking the request at any (rank, iteration) site fires exactly
    /// RQ001 — never RQ002/RQ005 collateral — in both domains.
    #[test]
    fn leak_fault_fires_exactly_rq001(rank in 0u32..4, iter in 0u32..3) {
        let out = reqlife(Some(ReqLifeFault::LeakRequest { rank, iter }));
        prop_assert!(!out.deadlocked, "{:?}", out.errors);
        for domain in DOMAINS {
            prop_assert_eq!(
                codes(&out.traces, domain),
                BTreeSet::from([ReqCode::Leaked]),
                "{:?}",
                domain
            );
        }
    }

    /// Diverging the reduce op on any rank fires exactly RQ003: the
    /// kind sequence still agrees (so no RQ004), and the run completes
    /// (so no RQ001).
    #[test]
    fn coll_args_fault_fires_exactly_rq003(rank in 0u32..4) {
        let out = reqlife(Some(ReqLifeFault::MismatchedCollArgs { rank }));
        prop_assert!(!out.deadlocked, "{:?}", out.errors);
        for domain in DOMAINS {
            prop_assert_eq!(
                codes(&out.traces, domain),
                BTreeSet::from([ReqCode::SignatureMismatch]),
                "{:?}",
                domain
            );
        }
    }
}

/// Rendered reports — text and JSON — are byte-identical at thread
/// counts {1, 4} in both domains, for a clean corpus and for each
/// fault class.
#[test]
fn reports_are_byte_identical_across_threads_and_domains() {
    let corpora = [
        reqlife(None),
        reqlife(Some(ReqLifeFault::LeakRequest { rank: 2, iter: 1 })),
        reqlife(Some(ReqLifeFault::MismatchedCollArgs { rank: 1 })),
    ];
    for (i, out) in corpora.iter().enumerate() {
        let reference = reqcheck_set(&out.traces, &opts(LintDomain::Expanded, 1));
        for domain in DOMAINS {
            for threads in [1usize, 4] {
                let got = reqcheck_set(&out.traces, &opts(domain, threads));
                assert_eq!(
                    got.render_text(),
                    reference.render_text(),
                    "corpus {i} text differs at {domain:?}/threads={threads}"
                );
                assert_eq!(
                    got.render_json(),
                    reference.render_json(),
                    "corpus {i} json differs at {domain:?}/threads={threads}"
                );
            }
        }
    }
}

fn params() -> Params {
    Params::new(
        FilterConfig::everything(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    )
}

/// The reqcheck pre-pass attached to a warn-gated diff is untouched by
/// the analysis cache: reports are byte-identical with no cache, a
/// cold cache, and a warm cache, at thread counts {1, 4}.
#[test]
fn reports_are_byte_identical_across_cache_states() {
    let normal = reqlife(None);
    let faulty = reqlife(Some(ReqLifeFault::LeakRequest { rank: 2, iter: 1 }));

    let reference = {
        let o = PipelineOptions {
            req: LintGate::Warn,
            ..PipelineOptions::default()
        };
        let d = try_diff_runs_opts(&normal.traces, &faulty.traces, &params(), &o).unwrap();
        let pre = d.req.expect("warn attaches the reports");
        assert!(pre.normal.is_clean(), "{}", pre.normal.render_text());
        assert!(!pre.faulty.is_clean());
        (pre.normal.render_json(), pre.faulty.render_json())
    };

    let shared = Arc::new(Cache::new());
    for threads in [1usize, 4] {
        for cache in [None, Some(shared.clone())] {
            // Two passes over the same cache: the first is cold (or
            // warmed by a previous iteration), the second warm. Both
            // must reproduce the reference bytes exactly.
            for _pass in 0..2 {
                let o = PipelineOptions {
                    threads,
                    req: LintGate::Warn,
                    cache: cache.clone(),
                    ..PipelineOptions::default()
                };
                let d = try_diff_runs_opts(&normal.traces, &faulty.traces, &params(), &o).unwrap();
                let pre = d.req.expect("warn attaches the reports");
                assert_eq!(
                    (pre.normal.render_json(), pre.faulty.render_json()),
                    reference,
                    "reports differ at threads={threads} cache={}",
                    cache.is_some()
                );
            }
        }
    }
}
