//! Integration: every `expers` experiment report regenerates and
//! contains its paper artifact's signature content.

use difftrace_bench::experiments as ex;

#[test]
fn e1_reproduces_tables_ii_and_iii() {
    let r = ex::e1_traces_and_nlr();
    assert!(r.contains("oddEvenSort"));
    assert!(r.contains("L0 ^ 2"));
    assert!(r.contains("L1 ^ 4"));
    assert!(r.contains("L0 ^ 4"));
    assert!(r.contains("L1 ^ 2"));
    assert!(r.contains("[MPI_Send - MPI_Recv]"));
    assert!(r.contains("[MPI_Recv - MPI_Send]"));
}

#[test]
fn e2_reproduces_table_iv_and_figure_3() {
    let r = ex::e2_context_and_lattice();
    assert!(r.contains("MPI_Finalize"));
    assert!(r.contains('×'));
    assert!(r.contains("concepts: 4"));
    assert!(r.contains("top extent: 4"));
}

#[test]
fn e3_reproduces_figure_4() {
    let r = ex::e3_jsm_heatmap();
    assert!(r.contains("0.6667"));
    assert!(r.contains("1.0000"));
}

#[test]
fn e4_reproduces_figures_5_and_6() {
    let r = ex::e4_diffnlr_oddeven();
    assert!(r.contains("- L1 ^ 16"));
    assert!(r.contains("+ L1 ^ 7"));
    assert!(r.contains("+ L0 ^ 9"));
    assert!(r.contains("truncated"));
    assert!(r.contains("- MPI_Finalize"));
}

#[test]
fn e5_reproduces_table_vi_shape() {
    let r = ex::e5_ilcs_ompcrit();
    assert!(r.contains("6.4"), "trace 6.4 must appear as top suspect");
    assert!(r.contains("ompcrit"));
    assert!(r.contains("- GOMP_critical_start"));
}

#[test]
fn e6_reproduces_table_vii_shape() {
    let r = ex::e6_ilcs_collsize();
    assert!(r.contains("+ MPI_Allreduce"));
    assert!(r.contains("truncated"));
}

#[test]
fn e7_reproduces_table_viii_shape() {
    let r = ex::e7_ilcs_wrongop();
    assert!(r.contains("Figure 7c"));
    // The champion-round loop count grows in the faulty run.
    assert!(r.contains("- L"));
    assert!(r.contains("+ L"));
}

#[test]
fn e9_reproduces_table_ix_shape() {
    let r = ex::e9_lulesh_ranking();
    assert!(r.contains("Table IX"));
    assert!(r.contains("truncated"));
}

#[test]
fn e10_classifies_bug_families() {
    let r = ex::e10_bug_classification();
    for class in ["hang", "reorder", "missing-sync", "semantic-drift"] {
        assert!(r.contains(class), "class {class} missing from report");
    }
    // Extract "correct/total" from the accuracy line and require a
    // strong majority (the features must be genuinely separating).
    let line = r
        .lines()
        .find(|l| l.contains("leave-one-out"))
        .expect("accuracy line");
    let frac = line
        .split_whitespace()
        .find(|w| w.contains('/'))
        .expect("x/y token");
    let (c, t) = frac.split_once('/').unwrap();
    let c: f64 = c.parse().unwrap();
    let t: f64 = t.parse().unwrap();
    assert!(
        c / t >= 0.8,
        "classification accuracy regressed: {c}/{t}\n{r}"
    );
}

#[test]
fn e11_caller_callee_attributes_also_pin_the_bug() {
    let r = ex::e11_attribute_ablation();
    assert!(r.contains("ctxt.actual"));
    assert!(r.contains("ctxt.noFreq"));
    assert!(
        r.contains("9/9 attribute configurations"),
        "every attribute kind must flag 6.4:\n{r}"
    );
}
