//! End-to-end determinism: the experiment harness must produce
//! identical artifacts on repeated runs — the property that makes the
//! normal/faulty diffing sound (any difference comes from the fault,
//! not the harness).

use difftrace::{render_ranking, sweep, AttrConfig, FilterConfig};
use dt_trace::FunctionRegistry;
use std::sync::Arc;
use workloads::{run_ilcs, run_lulesh, IlcsConfig, LuleshConfig};

#[test]
fn ilcs_ranking_tables_are_identical_across_harness_runs() {
    let table = || {
        let reg = Arc::new(FunctionRegistry::new());
        let normal = run_ilcs(&IlcsConfig::paper(None), reg.clone()).traces;
        let faulty = run_ilcs(&IlcsConfig::paper(Some(IlcsConfig::omp_crit_bug())), reg).traces;
        let rows = sweep(
            &normal,
            &faulty,
            &[FilterConfig::mpi_all(10), FilterConfig::everything(10)],
            &AttrConfig::ALL,
            cluster::Method::Ward,
        );
        render_ranking(&rows)
    };
    assert_eq!(table(), table());
}

#[test]
fn lulesh_master_traces_are_bit_identical_across_runs() {
    let shape = || {
        let out = run_lulesh(
            &LuleshConfig::paper(None),
            Arc::new(FunctionRegistry::new()),
        );
        let mut v = Vec::new();
        for p in 0..8u32 {
            let t = out.traces.get(dt_trace::TraceId::master(p)).unwrap();
            let names: Vec<String> = t
                .events
                .iter()
                .map(|e| out.traces.registry.name(e.fn_id()))
                .collect();
            v.push(names);
        }
        v
    };
    assert_eq!(shape(), shape());
}

#[test]
fn hb_master_event_sequences_are_deterministic() {
    // The *per-rank* stamped event sequence is deterministic even
    // though the global interleaving may vary.
    let per_rank = || {
        let out = run_ilcs(&IlcsConfig::paper(None), Arc::new(FunctionRegistry::new()));
        let mut v: Vec<Vec<(String, u64)>> = vec![Vec::new(); 8];
        for e in out.hb.events() {
            v[e.trace.process as usize].push((e.name.clone(), e.vc.lamport()));
        }
        v
    };
    assert_eq!(per_rank(), per_rank());
}
