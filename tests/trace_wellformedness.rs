//! Substrate sanity: every healthy workload run must produce perfectly
//! nested call/return traces (Pin would); faulty runs may only leave
//! open frames in truncated traces.
//!
//! The second half turns this around: adversarial corpora with known
//! defects, checked through the full `difftrace lint` engine, asserting
//! the exact `TL0xx` code and span of each finding.

use difftrace::{lint_set, FilterConfig, LintDomain, LintOptions};
use dt_trace::{FunctionRegistry, Trace, TraceId, TraceSet};
use proptest::prelude::*;
use std::sync::Arc;
use tracelint::{RuleCode, Severity, Span};
use workloads::*;

fn assert_well_formed(set: &dt_trace::TraceSet, what: &str) {
    for t in set.iter() {
        let problems = t.validate_nesting();
        assert!(
            problems.is_empty(),
            "{what}: trace {} has nesting violations: {problems:?}",
            t.id
        );
    }
}

#[test]
fn all_healthy_workloads_are_well_nested() {
    let reg = || Arc::new(FunctionRegistry::new());
    assert_well_formed(
        &run_oddeven(&OddEvenConfig::paper(None), reg()).traces,
        "oddeven",
    );
    assert_well_formed(&run_ilcs(&IlcsConfig::paper(None), reg()).traces, "ilcs");
    assert_well_formed(
        &run_lulesh(&LuleshConfig::paper(None), reg()).traces,
        "lulesh",
    );
    assert_well_formed(
        &run_stencil(&StencilConfig::default_8(), reg()).0.traces,
        "stencil",
    );
}

#[test]
fn deadlocked_runs_are_well_nested_modulo_truncation() {
    let out = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::dl_bug())),
        Arc::new(FunctionRegistry::new()),
    );
    assert!(out.deadlocked);
    // validate_nesting already exempts truncated traces from the
    // open-frame check; crossed returns must still never happen.
    assert_well_formed(&out.traces, "oddeven-dl");
}

#[test]
fn internals_mode_traces_are_well_nested_too() {
    use mpisim::{run, ReduceOp, SimConfig};
    let out = run(
        SimConfig::new(3).with_internals(),
        Arc::new(FunctionRegistry::new()),
        |rank| {
            rank.init()?;
            let r = rank.rank();
            if r == 0 {
                rank.send(1, 0, &[1; 64])?; // rendezvous
            } else if r == 1 {
                let _ = rank.recv(0, 0)?;
            }
            let _ = rank.allreduce(&[1], ReduceOp::Sum)?;
            rank.finalize()
        },
    );
    assert!(!out.deadlocked, "{:?}", out.errors);
    assert_well_formed(&out.traces, "internals");
}

// =====================================================================
// Adversarial corpora: hand-built defective traces, checked through the
// full lint engine with exact code/severity/span assertions.
// =====================================================================

fn call(f: u32) -> u32 {
    f << 1
}
fn ret(f: u32) -> u32 {
    (f << 1) | 1
}

/// Lint options that suppress TL004 corpus-vs-preset noise so the
/// assertions below see only the defect under test.
fn quiet_opts(domain: LintDomain) -> LintOptions {
    LintOptions {
        domain,
        filter: Some(FilterConfig::everything(10)),
        ..LintOptions::default()
    }
}

/// A trace set over `names`, with one master trace per entry of
/// `streams` (symbols, truncated-flag).
fn adversarial_set(names: &[&str], streams: &[(&[u32], bool)]) -> TraceSet {
    let registry = Arc::new(FunctionRegistry::new());
    for n in names {
        registry.intern(n);
    }
    let mut set = TraceSet::new(registry);
    for (p, (syms, truncated)) in streams.iter().enumerate() {
        set.insert(Trace::from_symbols(
            TraceId::master(p as u32),
            syms,
            *truncated,
        ));
    }
    set
}

#[test]
fn crossed_return_is_tl001_at_the_exact_event() {
    // call a, call b, ret a  — the ret crosses `b`'s open frame.
    let set = adversarial_set(&["a", "b"], &[(&[call(0), call(1), ret(0)], false)]);
    let report = lint_set(&set, &quiet_opts(LintDomain::Expanded));
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == RuleCode::StackDiscipline)
        .expect("crossed return must produce a TL001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span, Some(Span::at(2)));
    assert_eq!(
        d.message,
        "return from `a` while `b` (entered at event 1) is innermost"
    );
    assert!(d.hint.is_some());
}

#[test]
fn return_with_no_open_call_is_tl001() {
    let set = adversarial_set(&["a"], &[(&[ret(0)], false)]);
    let report = lint_set(&set, &quiet_opts(LintDomain::Expanded));
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == RuleCode::StackDiscipline)
        .expect("orphan return must produce a TL001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span, Some(Span::at(0)));
    assert_eq!(d.message, "return from `a` with no open call");
}

#[test]
fn open_frames_split_on_the_truncated_flag() {
    // Same poisoned shape twice: flagged truncated it is a hang
    // signature (warning), unflagged it is a broken trace (error).
    let set = adversarial_set(
        &["a", "b"],
        &[
            (&[call(0), call(1)], true),  // trace 0.1: truncated
            (&[call(0), call(1)], false), // trace 1.1: not flagged
        ],
    );
    let report = lint_set(&set, &quiet_opts(LintDomain::Expanded));

    let t0 = report.verdicts_for(TraceId::master(0));
    assert_eq!(
        t0,
        [(RuleCode::Truncation, Severity::Warning)]
            .into_iter()
            .collect(),
        "truncated trace must warn, not error"
    );
    let warn = report
        .diagnostics()
        .iter()
        .find(|d| d.trace == Some(TraceId::master(0)))
        .unwrap();
    // Span covers the innermost open frame to end-of-trace.
    assert_eq!(warn.span, Some(Span::new(1, 2)));
    assert!(warn.message.contains("hang signature"), "{}", warn.message);

    let err = report
        .diagnostics()
        .iter()
        .find(|d| d.trace == Some(TraceId::master(1)))
        .unwrap();
    assert_eq!(err.code, RuleCode::Truncation);
    assert_eq!(err.severity, Severity::Error);
    // Span covers from the first never-returned call to end-of-trace.
    assert_eq!(err.span, Some(Span::new(0, 2)));
    assert!(
        err.message
            .contains("2 call(s) never returned in a trace not flagged truncated"),
        "{}",
        err.message
    );
}

#[test]
fn empty_trace_is_a_tl003_warning() {
    let set = adversarial_set(&[], &[(&[], false)]);
    let report = lint_set(&set, &quiet_opts(LintDomain::Expanded));
    assert_eq!(
        report.verdicts_for(TraceId::master(0)),
        [(RuleCode::Truncation, Severity::Warning)]
            .into_iter()
            .collect()
    );
    let d = &report.diagnostics()[0];
    assert_eq!(d.message, "empty trace: no events were recorded");
    assert_eq!(d.span, None);
}

#[test]
fn rank_divergent_collectives_are_tl002_at_the_divergent_site() {
    // Ranks 0 and 1 do compute + Allreduce; rank 2 calls Reduce instead.
    let agree: &[u32] = &[call(0), ret(0), call(1), ret(1)];
    let rogue: &[u32] = &[call(0), ret(0), call(2), ret(2)];
    let set = adversarial_set(
        &["compute", "MPI_Allreduce", "MPI_Reduce"],
        &[(agree, false), (agree, false), (rogue, false)],
    );
    let report = lint_set(&set, &quiet_opts(LintDomain::Expanded));
    assert!(report.has_errors());

    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == RuleCode::CollectiveOrder)
        .expect("divergent rank must produce a TL002");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.trace, Some(TraceId::master(2)));
    // The span points at the event where rank 2 entered the wrong
    // collective (event 2 = call MPI_Reduce).
    assert_eq!(d.span, Some(Span::at(2)));
    assert!(
        d.message
            .contains("expected `MPI_Allreduce`, found `MPI_Reduce`"),
        "{}",
        d.message
    );
    // The conforming ranks are not blamed.
    assert!(report.verdicts_for(TraceId::master(0)).is_empty());
    assert!(report.verdicts_for(TraceId::master(1)).is_empty());

    // The compressed-domain TL002 reaches the same verdict per trace.
    let compressed = lint_set(&set, &quiet_opts(LintDomain::Compressed));
    for id in set.ids() {
        assert_eq!(report.verdicts_for(id), compressed.verdicts_for(id));
    }
}

#[test]
fn compressed_domain_agrees_on_every_adversarial_corpus() {
    let corpora: Vec<Vec<(Vec<u32>, bool)>> = vec![
        vec![(vec![call(0), call(1), ret(0)], false)],
        vec![(vec![ret(0)], false)],
        vec![(vec![call(0), call(1)], true), (vec![call(0)], false)],
        vec![(vec![], false)],
        vec![(vec![call(0), ret(0)], true)], // balanced-but-truncated
    ];
    for (i, streams) in corpora.iter().enumerate() {
        let borrowed: Vec<(&[u32], bool)> =
            streams.iter().map(|(s, t)| (s.as_slice(), *t)).collect();
        let set = adversarial_set(&["a", "b"], &borrowed);
        let exp = lint_set(&set, &quiet_opts(LintDomain::Expanded));
        let com = lint_set(&set, &quiet_opts(LintDomain::Compressed));
        for id in set.ids() {
            assert_eq!(
                exp.verdicts_for(id),
                com.verdicts_for(id),
                "corpus {i}: domains disagree on {id}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Defect injection: mutate a random well-formed stream and assert lint
// localizes the damage.
// ---------------------------------------------------------------------

/// Build a balanced call/return stream from a push/pop script. `Push`
/// opens a frame on one of three functions, `Pop` closes the innermost
/// (no-op when the stack is empty); all leftovers close at the end.
fn balanced_stream(script: &[(bool, u32)]) -> Vec<u32> {
    let mut stream = Vec::new();
    let mut stack = Vec::new();
    for &(push, f) in script {
        let f = f % 3;
        if push {
            stream.push(call(f));
            stack.push(f);
        } else if let Some(f) = stack.pop() {
            stream.push(ret(f));
        }
    }
    while let Some(f) = stack.pop() {
        stream.push(ret(f));
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-event mutation of a well-formed stream (flipping a
    /// call into a return or deleting an event) unbalances it, and
    /// lint must report a TL001/TL003 *error* with an in-bounds span —
    /// identically in both domains.
    #[test]
    fn injected_defects_are_caught_and_localized(
        script in proptest::collection::vec((any::<bool>(), 0u32..3), 1..40),
        idx in 0usize..10_000,
        flip in any::<bool>(),
    ) {
        let mut stream = balanced_stream(&script);
        prop_assume!(!stream.is_empty());
        let i = idx % stream.len();
        if flip {
            stream[i] ^= 1; // call <-> return
        } else {
            stream.remove(i);
        }
        let set = adversarial_set(&["f0", "f1", "f2"], &[(&stream, false)]);
        let id = TraceId::master(0);

        let exp = lint_set(&set, &quiet_opts(LintDomain::Expanded));
        let com = lint_set(&set, &quiet_opts(LintDomain::Compressed));
        prop_assert_eq!(exp.verdicts_for(id), com.verdicts_for(id));

        // A one-event mutation shifts the call/return balance, so the
        // stream cannot lint clean: expect an error-severity nesting
        // or truncation finding.
        prop_assert!(
            exp.verdicts_for(id).iter().any(|&(code, sev)| {
                sev == Severity::Error
                    && (code == RuleCode::StackDiscipline || code == RuleCode::Truncation)
            }),
            "mutated stream linted clean: {:?}", stream
        );
        for d in exp.diagnostics() {
            if let Some(s) = d.span {
                prop_assert!(s.start < s.end && s.end <= stream.len(),
                    "span {s:?} out of bounds for len {}", stream.len());
            }
        }
    }
}
