//! Substrate sanity: every healthy workload run must produce perfectly
//! nested call/return traces (Pin would); faulty runs may only leave
//! open frames in truncated traces.

use dt_trace::FunctionRegistry;
use std::sync::Arc;
use workloads::*;

fn assert_well_formed(set: &dt_trace::TraceSet, what: &str) {
    for t in set.iter() {
        let problems = t.validate_nesting();
        assert!(
            problems.is_empty(),
            "{what}: trace {} has nesting violations: {problems:?}",
            t.id
        );
    }
}

#[test]
fn all_healthy_workloads_are_well_nested() {
    let reg = || Arc::new(FunctionRegistry::new());
    assert_well_formed(
        &run_oddeven(&OddEvenConfig::paper(None), reg()).traces,
        "oddeven",
    );
    assert_well_formed(&run_ilcs(&IlcsConfig::paper(None), reg()).traces, "ilcs");
    assert_well_formed(
        &run_lulesh(&LuleshConfig::paper(None), reg()).traces,
        "lulesh",
    );
    assert_well_formed(
        &run_stencil(&StencilConfig::default_8(), reg()).0.traces,
        "stencil",
    );
}

#[test]
fn deadlocked_runs_are_well_nested_modulo_truncation() {
    let out = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::dl_bug())),
        Arc::new(FunctionRegistry::new()),
    );
    assert!(out.deadlocked);
    // validate_nesting already exempts truncated traces from the
    // open-frame check; crossed returns must still never happen.
    assert_well_formed(&out.traces, "oddeven-dl");
}

#[test]
fn internals_mode_traces_are_well_nested_too() {
    use mpisim::{run, ReduceOp, SimConfig};
    let out = run(
        SimConfig::new(3).with_internals(),
        Arc::new(FunctionRegistry::new()),
        |rank| {
            rank.init()?;
            let r = rank.rank();
            if r == 0 {
                rank.send(1, 0, &[1; 64])?; // rendezvous
            } else if r == 1 {
                let _ = rank.recv(0, 0)?;
            }
            let _ = rank.allreduce(&[1], ReduceOp::Sum)?;
            rank.finalize()
        },
    );
    assert!(!out.deadlocked, "{:?}", out.errors);
    assert_well_formed(&out.traces, "internals");
}
