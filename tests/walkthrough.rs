//! Integration: the §II odd/even walk-through end-to-end — Tables
//! II/III/IV, Figures 3/4/5/6 — asserting the *exact* shapes the paper
//! prints (these small experiments are deterministic).

use difftrace::{analyze, diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::{FunctionRegistry, TraceId};
use nlr::LoopTable;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn oddeven(
    ranks: u32,
    fault: Option<workloads::OddEvenFault>,
    reg: Arc<FunctionRegistry>,
) -> dt_trace::TraceSet {
    let cfg = OddEvenConfig {
        ranks,
        values_per_rank: 4,
        seed: 7,
        fault,
    };
    run_oddeven(&cfg, reg).traces
}

fn params(freq: FreqMode) -> Params {
    Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq,
        },
    )
}

#[test]
fn table_iii_nlr_shapes() {
    let set = oddeven(4, None, Arc::new(FunctionRegistry::new()));
    let mut table = LoopTable::new();
    let run = analyze(&set, &params(FreqMode::NoFreq), &mut table);
    let render = |p: u32| {
        run.nlrs
            .get(TraceId::master(p))
            .unwrap()
            .render(&|s| difftrace::filter::symbol_name(&set.registry, s))
            .join(" ")
    };
    // Table III: T0 = L0^2, T1 = L1^4, T2 = L0^4, T3 = L1^2.
    assert!(render(0).contains("L0 ^ 2"), "{}", render(0));
    assert!(render(1).contains("L1 ^ 4"), "{}", render(1));
    assert!(render(2).contains("L0 ^ 4"), "{}", render(2));
    assert!(render(3).contains("L1 ^ 2"), "{}", render(3));
    // Shared loop table: exactly the two bodies of the paper.
    assert_eq!(table.len(), 2);
}

#[test]
fn figure_3_lattice_and_figure_4_jsm() {
    let set = oddeven(4, None, Arc::new(FunctionRegistry::new()));
    let mut table = LoopTable::new();
    let run = analyze(&set, &params(FreqMode::NoFreq), &mut table);
    // Figure 3: 4-concept diamond.
    assert_eq!(run.lattice.concepts().len(), 4);
    assert_eq!(run.lattice.top().extent_len(), 4);
    assert_eq!(run.lattice.top().intent_len(), 4); // the 4 shared MPI calls
    assert_eq!(run.lattice.bottom().extent_len(), 0);
    // Figure 4: even/even and odd/odd pairs at 1.0, cross pairs at 2/3.
    assert!((run.jsm.m[0][2] - 1.0).abs() < 1e-12);
    assert!((run.jsm.m[1][3] - 1.0).abs() < 1e-12);
    assert!((run.jsm.m[0][1] - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn figure_5_swap_bug_diffnlr() {
    let reg = Arc::new(FunctionRegistry::new());
    let normal = oddeven(16, None, reg.clone());
    let faulty = oddeven(16, Some(OddEvenConfig::swap_bug()), reg);
    let d = diff_runs(&normal, &faulty, &params(FreqMode::Actual));
    assert_eq!(d.suspicious_processes, vec![5], "rank 5 is the culprit");
    let dn = d.diff_nlr(TraceId::master(5)).unwrap();
    assert!(!dn.faulty_truncated);
    // Normal: one 16-iteration loop; faulty: 7 + 9 split.
    let normal_only = dn.normal_only().join(" ");
    let faulty_only = dn.faulty_only().join(" ");
    assert!(normal_only.contains("^ 16"), "{normal_only}");
    assert!(faulty_only.contains("^ 7"), "{faulty_only}");
    assert!(faulty_only.contains("^ 9"), "{faulty_only}");
    // Both versions reach MPI_Finalize (it stays in the common stem).
    assert!(!normal_only.contains("MPI_Finalize"));
    assert!(!faulty_only.contains("MPI_Finalize"));
}

#[test]
fn figure_6_dl_bug_truncation() {
    let reg = Arc::new(FunctionRegistry::new());
    let normal = oddeven(16, None, reg.clone());
    let faulty = oddeven(16, Some(OddEvenConfig::dl_bug()), reg);
    let d = diff_runs(&normal, &faulty, &params(FreqMode::Actual));
    let dn = d.diff_nlr(TraceId::master(5)).unwrap();
    assert!(dn.faulty_truncated);
    // The faulty run never reaches MPI_Finalize; the dangling MPI_Recv
    // call is faulty-only.
    assert!(dn.normal_only().iter().any(|s| s.contains("MPI_Finalize")));
    assert!(dn.faulty_only().iter().any(|s| s.contains("MPI_Recv")));
    // Rank 5 is among the suspects even though the stall is global.
    assert!(d.suspicious_processes.contains(&5));
    assert!(d.bscore > 0.1, "a deadlock changes the clustering a lot");
}

#[test]
fn relative_debugging_on_jsm_faulty_alone() {
    // §II-A: "processes whose execution got truncated will look highly
    // dissimilar to those that terminated normally" — check the faulty
    // JSM separates dead from finished ranks without the diff.
    let reg = Arc::new(FunctionRegistry::new());
    let normal = oddeven(16, None, reg.clone());
    let faulty = oddeven(16, Some(OddEvenConfig::dl_bug()), reg);
    let d = diff_runs(&normal, &faulty, &params(FreqMode::Actual));
    let jsm_f = &d.faulty.jsm;
    // Every trace is truncated in a global deadlock, but at different
    // points: similarity to rank 5 is lower than the self-similarity.
    let idx5 = jsm_f.ids.iter().position(|t| t.process == 5).unwrap();
    let other = jsm_f.ids.iter().position(|t| t.process == 8).unwrap();
    assert!(jsm_f.m[idx5][other] < 1.0);
}
