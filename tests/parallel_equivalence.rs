//! Sequential-equivalence harness for the parallel intra-run engine.
//!
//! The contract under test: for every pipeline entry point and every
//! thread count, the parallel execution produces **byte-identical**
//! results to `threads = 1` (the plain sequential path) — including the
//! parts where loop-ID numbering leaks into output (attribute names,
//! rendered NLR summaries, the loop table itself). Floats are compared
//! bit-for-bit, renders as exact strings.
//!
//! Workloads come from the `workloads` generators (the paper's case
//! studies), so the traces exercised here have realistic loop nests,
//! truncation, and cross-run asymmetries.

use cluster::render_dendrogram;
use difftrace::filter::symbol_name;
use difftrace::{
    analyze_opts, analyze_single_rec, diff_runs_opts, sweep, sweep_parallel, sweep_parallel_rec,
    try_diff_runs_hb_rec, AnalysisRun, AttrConfig, AttrKind, DiffRun, FilterConfig, FreqMode,
    Params, PipelineOptions,
};
use dt_trace::{FunctionRegistry, TraceSet};
use nlr::{LoopId, LoopTable};
use std::sync::Arc;
use workloads::{
    run_ilcs, run_oddeven, run_stencil, IlcsConfig, OddEvenConfig, StencilConfig, StencilFault,
};

/// Thread counts that force the parallel code path (this container may
/// have a single core, so `0` could degenerate to sequential — use
/// explicit over-subscription instead, plus `0` for coverage).
const THREADS: &[usize] = &[2, 3, 8, 0];

fn workload_pairs() -> Vec<(&'static str, TraceSet, TraceSet)> {
    let mut out = Vec::new();

    let reg = Arc::new(FunctionRegistry::new());
    let n = run_oddeven(&OddEvenConfig::paper(None), reg.clone()).traces;
    let f = run_oddeven(&OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())), reg).traces;
    out.push(("oddeven/swap", n, f));

    let reg = Arc::new(FunctionRegistry::new());
    let n = run_ilcs(&IlcsConfig::paper(None), reg.clone()).traces;
    let f = run_ilcs(&IlcsConfig::paper(Some(IlcsConfig::omp_crit_bug())), reg).traces;
    out.push(("ilcs/omp-crit", n, f));

    let reg = Arc::new(FunctionRegistry::new());
    let mut cfg = StencilConfig::default_8();
    let (n, _) = run_stencil(&cfg, reg.clone());
    cfg.fault = Some(StencilFault::FlippedSign { rank: 1 });
    let (f, _) = run_stencil(&cfg, reg);
    out.push(("stencil/flipped-sign", n.traces, f.traces));

    out
}

fn params() -> Params {
    Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    )
}

fn assert_tables_equal(tag: &str, a: &LoopTable, b: &LoopTable) {
    assert_eq!(a.len(), b.len(), "{tag}: loop table size");
    for i in 0..a.len() {
        let id = LoopId(i as u32);
        assert_eq!(a.body(id), b.body(id), "{tag}: body of L{i}");
    }
}

fn assert_matrices_equal(tag: &str, a: &difftrace::JsmMatrix, b: &difftrace::JsmMatrix) {
    assert_eq!(a.ids, b.ids, "{tag}: matrix labels");
    for (i, (ra, rb)) in a.m.iter().zip(&b.m).enumerate() {
        for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: cell ({i},{j})");
        }
    }
}

fn assert_runs_equal(tag: &str, a: &AnalysisRun, b: &AnalysisRun) {
    assert_eq!(a.ids, b.ids, "{tag}: trace ids");
    // Rendered NLR summaries — loop numbering included.
    let name = |s: u32| symbol_name(&a.registry, s);
    for id in &a.ids {
        let (na, nb) = (a.nlrs.get(*id).unwrap(), b.nlrs.get(*id).unwrap());
        assert_eq!(na.render(&name), nb.render(&name), "{tag}: NLR of {id}");
        assert_eq!(na.elements(), nb.elements(), "{tag}: elements of {id}");
    }
    assert_eq!(
        a.nlrs.truncated, b.nlrs.truncated,
        "{tag}: truncation flags"
    );
    // Mined context — attribute names carry loop IDs; CSV pins
    // object order, attribute order, and weights.
    assert_eq!(a.context.to_csv(), b.context.to_csv(), "{tag}: context");
    assert_eq!(
        a.lattice.to_dot(&a.context),
        b.lattice.to_dot(&b.context),
        "{tag}: lattice"
    );
    assert_matrices_equal(&format!("{tag}: JSM"), &a.jsm, &b.jsm);
    // Dendrogram — rendered form, which pins merge order and heights.
    let label_a = |i: usize| a.ids[i].to_string();
    let label_b = |i: usize| b.ids[i].to_string();
    assert_eq!(
        render_dendrogram(&a.dendrogram, &label_a),
        render_dendrogram(&b.dendrogram, &label_b),
        "{tag}: dendrogram"
    );
}

fn assert_diffs_equal(tag: &str, a: &DiffRun, b: &DiffRun) {
    assert_runs_equal(&format!("{tag}/normal"), &a.normal, &b.normal);
    assert_runs_equal(&format!("{tag}/faulty"), &a.faulty, &b.faulty);
    assert_tables_equal(tag, &a.table, &b.table);
    assert_matrices_equal(&format!("{tag}: JSM_D"), &a.jsm_d, &b.jsm_d);
    assert_eq!(a.bscore.to_bits(), b.bscore.to_bits(), "{tag}: B-score");
    assert_eq!(
        a.suspicious_processes, b.suspicious_processes,
        "{tag}: processes"
    );
    assert_eq!(a.suspicious_threads, b.suspicious_threads, "{tag}: threads");
    // diffNLR views (rendered, loop IDs and drill-downs included).
    for &id in &a.suspicious_threads {
        let va = a.diff_nlr(id).map(|v| v.render());
        let vb = b.diff_nlr(id).map(|v| v.render());
        assert_eq!(va, vb, "{tag}: diffNLR of {id}");
    }
}

#[test]
fn analyze_matches_sequential_on_all_workloads() {
    for (tag, normal, faulty) in workload_pairs() {
        for set in [&normal, &faulty] {
            let mut seq_table = LoopTable::new();
            let seq = analyze_opts(set, &params(), &mut seq_table, &PipelineOptions::default());
            for &threads in THREADS {
                let mut par_table = LoopTable::new();
                let par = analyze_opts(
                    set,
                    &params(),
                    &mut par_table,
                    &PipelineOptions::with_threads(threads),
                );
                assert_runs_equal(&format!("{tag} t={threads}"), &seq, &par);
                assert_tables_equal(&format!("{tag} t={threads}"), &seq_table, &par_table);
            }
        }
    }
}

#[test]
fn diff_runs_matches_sequential_on_all_workloads() {
    for (tag, normal, faulty) in workload_pairs() {
        let seq = diff_runs_opts(&normal, &faulty, &params(), &PipelineOptions::default());
        for &threads in THREADS {
            let par = diff_runs_opts(
                &normal,
                &faulty,
                &params(),
                &PipelineOptions::with_threads(threads),
            );
            assert_diffs_equal(&format!("{tag} t={threads}"), &seq, &par);
        }
    }
}

#[test]
fn diff_runs_equivalence_across_attribute_configs() {
    // The loop-ID canonicalization must hold under every attribute
    // scheme (doubletons and context attributes mine different names
    // from the same summaries).
    let (tag, normal, faulty) = workload_pairs().swap_remove(0);
    for attrs in AttrConfig::ALL {
        let p = Params::new(FilterConfig::mpi_all(10), attrs);
        let seq = diff_runs_opts(&normal, &faulty, &p, &PipelineOptions::default());
        let par = diff_runs_opts(&normal, &faulty, &p, &PipelineOptions::with_threads(8));
        assert_diffs_equal(&format!("{tag} attrs={attrs}"), &seq, &par);
    }
}

#[test]
fn sweep_matches_sequential_on_workload_traces() {
    let (_, normal, faulty) = workload_pairs().swap_remove(0);
    let filters = vec![FilterConfig::mpi_all(10), FilterConfig::everything(10)];
    let attrs = [
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
    ];
    let serial = sweep(&normal, &faulty, &filters, &attrs, cluster::Method::Ward);
    for &threads in THREADS {
        let par = sweep_parallel(
            &normal,
            &faulty,
            &filters,
            &attrs,
            cluster::Method::Ward,
            threads,
        );
        assert_eq!(par.len(), serial.len());
        for (a, b) in par.iter().zip(&serial) {
            assert_eq!(a.filter, b.filter, "t={threads}");
            assert_eq!(a.attrs, b.attrs, "t={threads}");
            assert_eq!(a.bscore.to_bits(), b.bscore.to_bits(), "t={threads}");
            assert_eq!(a.top_processes, b.top_processes, "t={threads}");
            assert_eq!(a.top_threads, b.top_threads, "t={threads}");
        }
    }
}

#[test]
fn instrumentation_is_observational() {
    // The dt-obs recorder must never influence analysis results: the
    // diff computed with a live MetricsRecorder is bit-identical to the
    // uninstrumented one, at the sequential and parallel thread counts
    // — and the recorder actually saw the pipeline run.
    let (tag, normal, faulty) = workload_pairs().swap_remove(0);
    for threads in [1usize, 4] {
        let opts = PipelineOptions::with_threads(threads);
        let plain = try_diff_runs_hb_rec(&normal, &faulty, None, &params(), &opts, &dt_obs::NOOP)
            .expect("gates are off");
        let rec = dt_obs::MetricsRecorder::new();
        let instrumented = try_diff_runs_hb_rec(&normal, &faulty, None, &params(), &opts, &rec)
            .expect("gates are off");
        assert_diffs_equal(
            &format!("{tag} t={threads} instrumented"),
            &plain,
            &instrumented,
        );

        let m = rec.finish("diff", threads);
        let stage = |p: &str| {
            m.stages
                .iter()
                .find(|s| s.path == p)
                .unwrap_or_else(|| panic!("t={threads}: missing stage `{p}` in {:?}", m.stages))
        };
        for p in ["filter", "nlr", "mine", "lattice", "jsm", "linkage"] {
            assert!(stage(p).calls > 0, "t={threads}: stage `{p}` never ran");
        }
        for c in ["traces", "events_kept", "nlr_terms", "loops_interned"] {
            let &(_, v) = m
                .counters
                .iter()
                .find(|(k, _)| k == c)
                .unwrap_or_else(|| panic!("t={threads}: missing counter `{c}`"));
            assert!(v > 0, "t={threads}: counter `{c}` is zero");
        }
    }

    // Same contract for the single-run and sweep entry points.
    let plain = analyze_single_rec(&faulty, &params(), 0, &dt_obs::NOOP);
    let rec = dt_obs::MetricsRecorder::new();
    let instrumented = analyze_single_rec(&faulty, &params(), 0, &rec);
    assert_runs_equal("single instrumented", &plain.run, &instrumented.run);
    assert_eq!(plain.clusters, instrumented.clusters, "single clusters");
    assert_eq!(plain.outliers, instrumented.outliers, "single outliers");

    let filters = vec![FilterConfig::mpi_all(10)];
    let attrs = [AttrConfig {
        kind: AttrKind::Single,
        freq: FreqMode::Actual,
    }];
    let plain = sweep(&normal, &faulty, &filters, &attrs, cluster::Method::Ward);
    let rec = dt_obs::MetricsRecorder::new();
    let instrumented = sweep_parallel_rec(
        &normal,
        &faulty,
        &filters,
        &attrs,
        cluster::Method::Ward,
        4,
        &rec,
    );
    assert_eq!(plain.len(), instrumented.len());
    for (a, b) in plain.iter().zip(&instrumented) {
        assert_eq!(a.bscore.to_bits(), b.bscore.to_bits(), "sweep instrumented");
        assert_eq!(a.top_threads, b.top_threads, "sweep instrumented");
    }
    let m = rec.finish("sweep", 4);
    assert!(
        m.workers.iter().any(|(p, _)| p == "cells"),
        "sweep recorded no per-worker busy times: {:?}",
        m.workers
    );
}

#[test]
fn repeated_parallel_runs_are_self_consistent() {
    // Schedules differ run to run; outputs must not. Ten parallel
    // repetitions of the same diff, all bit-identical.
    let (tag, normal, faulty) = workload_pairs().swap_remove(0);
    let first = diff_runs_opts(
        &normal,
        &faulty,
        &params(),
        &PipelineOptions::with_threads(8),
    );
    for rep in 0..9 {
        let again = diff_runs_opts(
            &normal,
            &faulty,
            &params(),
            &PipelineOptions::with_threads(8),
        );
        assert_diffs_equal(&format!("{tag} rep={rep}"), &first, &again);
    }
}
