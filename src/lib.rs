//! Umbrella crate re-exporting the DiffTrace reproduction workspace.
pub use difftrace;
pub use mpisim;
pub use workloads;
