//! Expanded-domain request-fact extraction: the reference semantics.
//!
//! Walks the raw symbol stream (`fn_id << 1 | is_return`) event by
//! event, maintaining the running request balance, the finalize epoch,
//! and the run-length-encoded collective sequences.
//! [`crate::compressed`] must produce identical [`TraceReqFacts`]
//! without expanding anything — the crate's property tests assert that
//! equality.

use crate::{CollRun, ReqSym, ReqVocab, TraceReqFacts};
use dt_trace::TraceId;
use std::collections::BTreeMap;

/// Push one collective occurrence onto an RLE sequence, merging with
/// the previous run when the value repeats.
pub(crate) fn rle_push(runs: &mut Vec<CollRun>, sig: &str, offset: u64) {
    if let Some(last) = runs.last_mut() {
        if last.sig == sig {
            last.count = last.count.saturating_add(1);
            return;
        }
    }
    runs.push(CollRun {
        sig: sig.to_string(),
        count: 1,
        first_offset: offset,
    });
}

/// Summarize one expanded symbol stream.
pub fn summarize(id: TraceId, symbols: &[u32], truncated: bool, vocab: &ReqVocab) -> TraceReqFacts {
    let mut posted: u64 = 0;
    let mut completed: u64 = 0;
    let mut balance: i64 = 0;
    let mut min_balance: i64 = 0;
    let mut min_balance_offset: Option<u64> = None;
    let mut first_post_offset: Option<u64> = None;
    let mut finalized = false;
    let mut after_finalize: u64 = 0;
    let mut after_finalize_offset: Option<u64> = None;
    let mut kinds: Vec<CollRun> = Vec::new();
    let mut sigs: Vec<CollRun> = Vec::new();
    let mut pending: BTreeMap<String, u64> = BTreeMap::new();
    for (offset, &sym) in symbols.iter().enumerate() {
        if sym & 1 == 1 {
            continue; // only marker *calls* act
        }
        let offset = offset as u64;
        match vocab.classify(sym >> 1) {
            ReqSym::Post => {
                posted += 1;
                balance += 1;
                if first_post_offset.is_none() {
                    first_post_offset = Some(offset);
                }
            }
            ReqSym::Wait => {
                completed += 1;
                balance -= 1;
                if balance < min_balance {
                    min_balance = balance;
                    min_balance_offset = Some(offset);
                }
                if finalized {
                    after_finalize += 1;
                    if after_finalize_offset.is_none() {
                        after_finalize_offset = Some(offset);
                    }
                }
            }
            ReqSym::Finalize => finalized = true,
            ReqSym::Coll(kind) => rle_push(&mut kinds, kind, offset),
            ReqSym::Sig(sig) => rle_push(&mut sigs, sig, offset),
            ReqSym::Pending(origin) => {
                *pending.entry(origin.clone()).or_insert(0) += 1;
            }
            ReqSym::Other => {}
        }
    }
    TraceReqFacts {
        id,
        posted,
        completed,
        min_balance,
        min_balance_offset,
        first_post_offset,
        finalized,
        after_finalize,
        after_finalize_offset,
        kinds,
        sigs,
        pending: pending.into_iter().collect(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::FunctionRegistry;

    fn call(f: dt_trace::FnId) -> u32 {
        f.0 << 1
    }
    fn ret(f: dt_trace::FnId) -> u32 {
        (f.0 << 1) | 1
    }

    #[test]
    fn balance_epoch_and_offsets() {
        let reg = FunctionRegistry::new();
        let isend = reg.intern("MPI_Isend");
        let wait = reg.intern("MPI_Wait");
        let fin = reg.intern("MPI_Finalize");
        let other = reg.intern("compute");
        let vocab = ReqVocab::build(&reg);
        // isend; wait; wait; finalize; wait; compute
        let syms = vec![
            call(isend),
            ret(isend),
            call(wait),
            ret(wait),
            call(wait),
            ret(wait),
            call(fin),
            ret(fin),
            call(wait),
            ret(wait),
            call(other),
            ret(other),
        ];
        let facts = summarize(TraceId::new(0, 0), &syms, false, &vocab);
        assert_eq!((facts.posted, facts.completed), (1, 3));
        assert_eq!(facts.first_post_offset, Some(0));
        // Balance dips to −1 at the second wait, −2 at the third.
        assert_eq!(facts.min_balance, -2);
        assert_eq!(facts.min_balance_offset, Some(8));
        assert!(facts.finalized);
        assert_eq!(facts.after_finalize, 1);
        assert_eq!(facts.after_finalize_offset, Some(8));
    }

    #[test]
    fn collective_runs_merge_adjacently() {
        let reg = FunctionRegistry::new();
        let bar = reg.intern("MPI_Barrier");
        let red = reg.intern("MPI_Allreduce");
        let sig = reg.intern("mpi_coll@MPI_Allreduce:4:-:sum");
        let vocab = ReqVocab::build(&reg);
        let mut syms = Vec::new();
        for _ in 0..3 {
            syms.extend_from_slice(&[call(bar), ret(bar)]);
        }
        for _ in 0..2 {
            syms.extend_from_slice(&[call(red), call(sig), ret(sig), ret(red)]);
        }
        syms.extend_from_slice(&[call(bar), ret(bar)]);
        let facts = summarize(TraceId::new(0, 0), &syms, false, &vocab);
        assert_eq!(
            facts.kinds,
            vec![
                CollRun {
                    sig: "MPI_Barrier".into(),
                    count: 3,
                    first_offset: 0
                },
                CollRun {
                    sig: "MPI_Allreduce".into(),
                    count: 2,
                    first_offset: 6
                },
                CollRun {
                    sig: "MPI_Barrier".into(),
                    count: 1,
                    first_offset: 14
                },
            ]
        );
        assert_eq!(
            facts.sigs,
            vec![CollRun {
                sig: "MPI_Allreduce:4:-:sum".into(),
                count: 2,
                first_offset: 7
            }]
        );
    }

    #[test]
    fn pending_witnesses_aggregate_sorted() {
        let reg = FunctionRegistry::new();
        let p1 = reg.intern("mpi_req_pending@MPI_Isend:dst=1,tag=7");
        let p2 = reg.intern("mpi_req_pending@MPI_Irecv:src=0,tag=3");
        let vocab = ReqVocab::build(&reg);
        let syms = vec![call(p1), ret(p1), call(p1), ret(p1), call(p2), ret(p2)];
        let facts = summarize(TraceId::new(0, 0), &syms, true, &vocab);
        assert_eq!(
            facts.pending,
            vec![
                ("MPI_Irecv:src=0,tag=3".to_string(), 1),
                ("MPI_Isend:dst=1,tag=7".to_string(), 2),
            ]
        );
        assert!(facts.truncated);
    }

    #[test]
    fn inert_streams_are_empty() {
        let reg = FunctionRegistry::new();
        let f = reg.intern("MPI_Send");
        let vocab = ReqVocab::build(&reg);
        let facts = summarize(TraceId::new(0, 0), &[call(f), ret(f)], false, &vocab);
        assert_eq!((facts.posted, facts.completed), (0, 0));
        assert_eq!(facts.min_balance, 0);
        assert_eq!(facts.min_balance_offset, None);
        assert!(!facts.finalized);
        assert!(facts.kinds.is_empty() && facts.sigs.is_empty() && facts.pending.is_empty());
    }
}
