//! `reqcheck` — MPI request-lifecycle and collective-consistency
//! analysis over recorded runs.
//!
//! The fourth dual-implementation analysis product (after `tracelint`,
//! `hbcheck`, and `racecheck`): it counts the ordinary MPI call names
//! every trace already contains (`MPI_Isend`/`MPI_Irecv` post a
//! nonblocking request, `MPI_Wait` completes one, `MPI_Finalize`
//! closes the epoch, the collective calls form the per-rank collective
//! order) plus the two marker families of [`dt_trace::req`]
//! (`mpi_coll@…` argument signatures, `mpi_req_pending@…` teardown
//! witnesses) and reports the classic MPI misuse classes.
//!
//! # Rule catalog
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | RQ001 | error    | leaked request: a request posted by `MPI_Isend`/`MPI_Irecv` is never completed by `MPI_Wait` before trace end |
//! | RQ002 | error    | wait without post: at some point more `MPI_Wait` calls have run than requests were outstanding |
//! | RQ003 | error    | collective signature mismatch: ranks disagree on count/root/reduce-op of the k-th collective |
//! | RQ004 | error    | collective order divergence: ranks disagree on the kind (or count) of the k-th collective |
//! | RQ005 | warning  | completion after finalize: `MPI_Wait` runs after `MPI_Finalize` was entered |
//!
//! # Detection model
//!
//! Everything the rules consume is in the per-trace [`TraceReqFacts`]:
//! request counters with a prefix-minimum balance, the finalize epoch,
//! and two run-length-encoded collective sequences (plain kinds and
//! canonical argument signatures). RQ001/RQ002/RQ005 are per-trace;
//! RQ003/RQ004 align the *master* (thread 0) traces of all processes
//! and report the first sequence position where they diverge.
//!
//! # Domains
//!
//! [`expanded::summarize`] walks the raw symbol stream; the
//! [`compressed`] summarizer folds per-term summaries bottom-up over
//! NLR loop structure with closed-form repeat rules (prefix minima
//! shift linearly per iteration, uniform collective runs multiply), so
//! a million-iteration loop costs O(|body|). Property tests assert the
//! two produce *equal* facts, and [`analyze`] is a pure function of
//! the facts, so the rendered reports are byte-identical.

pub mod compressed;
pub mod expanded;

use dt_trace::{FnId, FunctionRegistry, TraceId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use dt_diag::{Severity, Span};

/// A diagnostic carrying a [`ReqCode`].
pub type ReqDiagnostic = dt_diag::Diagnostic<ReqCode>;

/// A canonical, sorted report of request diagnostics.
pub type ReqReport = dt_diag::Report<ReqCode>;

/// Stable rule codes (RQ001–RQ005).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReqCode {
    /// RQ001: leaked request (posted, never completed).
    Leaked,
    /// RQ002: wait without post.
    UnmatchedWait,
    /// RQ003: collective signature mismatch across ranks.
    SignatureMismatch,
    /// RQ004: collective order divergence across ranks.
    OrderDivergence,
    /// RQ005: request completed after `MPI_Finalize`.
    CompleteAfterFinalize,
}

impl ReqCode {
    /// The stable `RQnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            ReqCode::Leaked => "RQ001",
            ReqCode::UnmatchedWait => "RQ002",
            ReqCode::SignatureMismatch => "RQ003",
            ReqCode::OrderDivergence => "RQ004",
            ReqCode::CompleteAfterFinalize => "RQ005",
        }
    }

    /// Short human title of the rule family.
    pub fn title(self) -> &'static str {
        match self {
            ReqCode::Leaked => "leaked request",
            ReqCode::UnmatchedWait => "wait without post",
            ReqCode::SignatureMismatch => "collective signature mismatch",
            ReqCode::OrderDivergence => "collective order divergence",
            ReqCode::CompleteAfterFinalize => "completion after finalize",
        }
    }
}

impl fmt::Display for ReqCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl dt_diag::Code for ReqCode {
    fn as_str(self) -> &'static str {
        ReqCode::as_str(self)
    }
    fn title(self) -> &'static str {
        ReqCode::title(self)
    }
}

/// One run of identical consecutive collectives: the collective
/// sequences are kept run-length-encoded so the compressed domain can
/// fold uniform loops in O(1) while staying *equal* to the expanded
/// walk (which builds the same runs by adjacent merge).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CollRun {
    /// The run's value: a plain kind (`MPI_Allreduce`) in
    /// [`TraceReqFacts::kinds`], a canonical signature payload
    /// (`MPI_Allreduce:4:-:sum`) in [`TraceReqFacts::sigs`].
    pub sig: String,
    /// Consecutive occurrences.
    pub count: u64,
    /// Symbol offset of the run's first collective call.
    pub first_offset: u64,
}

/// Per-trace facts, derivable in either domain.
///
/// [`expanded::summarize`] and [`compressed::Summarizer::summarize`]
/// must produce *equal* values for the same trace — that equality is
/// what "verdict agreement" means for `reqcheck`, since [`analyze`]
/// is a pure function of these facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReqFacts {
    /// Which trace.
    pub id: TraceId,
    /// `MPI_Isend` + `MPI_Irecv` calls.
    pub posted: u64,
    /// `MPI_Wait` calls.
    pub completed: u64,
    /// Minimum over all stream prefixes of the running
    /// `posted − completed` balance (≤ 0; the empty prefix counts).
    pub min_balance: i64,
    /// Offset of the `MPI_Wait` call first attaining [`min_balance`];
    /// `Some` exactly when `min_balance < 0`.
    ///
    /// [`min_balance`]: TraceReqFacts::min_balance
    pub min_balance_offset: Option<u64>,
    /// Offset of the first request-posting call, if any.
    pub first_post_offset: Option<u64>,
    /// Whether `MPI_Finalize` was called.
    pub finalized: bool,
    /// `MPI_Wait` calls after `MPI_Finalize` was entered.
    pub after_finalize: u64,
    /// Offset of the first such call; `Some` exactly when
    /// [`after_finalize`] > 0.
    ///
    /// [`after_finalize`]: TraceReqFacts::after_finalize
    pub after_finalize_offset: Option<u64>,
    /// Run-length-encoded sequence of plain collective kinds, in call
    /// order.
    pub kinds: Vec<CollRun>,
    /// Run-length-encoded sequence of `mpi_coll@` signature payloads,
    /// in call order (empty when the run recorded no signatures).
    pub sigs: Vec<CollRun>,
    /// Teardown `mpi_req_pending@` witnesses: (origin, count), sorted
    /// by origin.
    pub pending: Vec<(String, u64)>,
    /// Whether the trace was flagged truncated by the tracer.
    pub truncated: bool,
}

/// Classification of one interned function for the request analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqSym {
    /// Posts a nonblocking request (`MPI_Isend` / `MPI_Irecv`).
    Post,
    /// Completes a request (`MPI_Wait`).
    Wait,
    /// Closes the epoch (`MPI_Finalize`).
    Finalize,
    /// A plain collective call; the payload is its kind name.
    Coll(&'static str),
    /// An `mpi_coll@` signature marker; the payload is the canonical
    /// signature.
    Sig(String),
    /// An `mpi_req_pending@` teardown witness; the payload is the
    /// leaking origin.
    Pending(String),
    /// Anything else: inert.
    Other,
}

/// Function-ID → request-operation lookup, built once per registry so
/// the per-symbol walks never parse strings.
pub struct ReqVocab {
    ops: HashMap<u32, ReqSym>,
}

impl ReqVocab {
    /// Classify every interned name of `registry`.
    pub fn build(registry: &FunctionRegistry) -> ReqVocab {
        use dt_trace::req::{self, ReqMarker};
        let mut ops = HashMap::new();
        for (i, name) in registry.names().into_iter().enumerate() {
            let sym = if req::posts_request(&name) {
                ReqSym::Post
            } else if name == req::WAIT_MARKER {
                ReqSym::Wait
            } else if name == req::FINALIZE_MARKER {
                ReqSym::Finalize
            } else if let Some(kind) = req::collective_kind(&name) {
                ReqSym::Coll(kind)
            } else if let Some(marker) = ReqMarker::parse(&name) {
                match marker {
                    ReqMarker::CollSig(sig) => ReqSym::Sig(sig),
                    ReqMarker::Pending(origin) => ReqSym::Pending(origin),
                }
            } else {
                continue;
            };
            ops.insert(i as u32, sym);
        }
        ReqVocab { ops }
    }

    /// Classification of `fn_id` ([`ReqSym::Other`] when inert).
    pub fn classify(&self, fn_id: u32) -> &ReqSym {
        self.ops.get(&fn_id).unwrap_or(&ReqSym::Other)
    }

    /// True when the registry contains no request-relevant name at all
    /// (used to skip whole traces cheaply).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Convenience for callers holding [`FnId`]s.
    pub fn classify_fn(&self, id: FnId) -> &ReqSym {
        self.classify(id.0)
    }
}

fn us(offset: u64) -> usize {
    usize::try_from(offset).unwrap_or(usize::MAX)
}

/// `0, 2` renderer for process lists.
fn render_procs(procs: &[u32]) -> String {
    procs
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Run every RQ rule over one execution's per-trace facts.
///
/// RQ001/RQ002/RQ005 apply to every trace independently; RQ003/RQ004
/// align the master (thread 0) traces of all processes — MPI calls run
/// on the master thread, worker threads never carry collectives. The
/// report is canonically sorted and independent of `facts` order.
pub fn analyze(facts: &[TraceReqFacts]) -> ReqReport {
    let mut sorted: Vec<&TraceReqFacts> = facts.iter().collect();
    sorted.sort_by_key(|f| f.id);

    let mut diags: Vec<ReqDiagnostic> = Vec::new();
    for f in &sorted {
        diags.extend(per_trace(f));
    }
    let masters: Vec<&TraceReqFacts> = sorted
        .iter()
        .copied()
        .filter(|f| f.id.thread == 0)
        .collect();
    if masters.len() >= 2 {
        diags.extend(order_divergence(&masters));
        diags.extend(signature_mismatch(&masters));
    }
    ReqReport::new(diags)
}

/// RQ001/RQ002/RQ005 for one trace.
fn per_trace(f: &TraceReqFacts) -> Vec<ReqDiagnostic> {
    let mut out = Vec::new();
    if !f.truncated && f.posted > f.completed {
        let leaked = f.posted - f.completed;
        let mut d = ReqDiagnostic::error(
            ReqCode::Leaked,
            format!(
                "{leaked} request(s) posted in trace {} but never completed by MPI_Wait",
                f.id
            ),
        )
        .with_trace(f.id);
        if let Some(o) = f.first_post_offset {
            d = d.with_span(Span::at(us(o)));
        }
        let hint = if f.pending.is_empty() {
            "every MPI_Isend/MPI_Irecv must be completed by a matching MPI_Wait".to_string()
        } else {
            let origins: Vec<String> = f
                .pending
                .iter()
                .map(|(origin, n)| {
                    if *n > 1 {
                        format!("{origin} (×{n})")
                    } else {
                        origin.clone()
                    }
                })
                .collect();
            format!("never waited on: {}", origins.join(", "))
        };
        out.push(d.with_hint(hint));
    }
    if f.min_balance < 0 {
        let excess = f.min_balance.unsigned_abs();
        let mut d = ReqDiagnostic::error(
            ReqCode::UnmatchedWait,
            format!(
                "{excess} more MPI_Wait call(s) in trace {} than requests were outstanding",
                f.id
            ),
        )
        .with_trace(f.id);
        if let Some(o) = f.min_balance_offset {
            d = d.with_span(Span::at(us(o)));
        }
        out.push(d.with_hint("this MPI_Wait has no posted request to complete"));
    }
    if f.after_finalize > 0 {
        let mut d = ReqDiagnostic::warning(
            ReqCode::CompleteAfterFinalize,
            format!(
                "{} MPI_Wait call(s) in trace {} after MPI_Finalize was entered",
                f.after_finalize, f.id
            ),
        )
        .with_trace(f.id);
        if let Some(o) = f.after_finalize_offset {
            d = d.with_span(Span::at(us(o)));
        }
        out.push(d.with_hint("complete every outstanding request before MPI_Finalize"));
    }
    out
}

/// A read cursor over one run-length-encoded collective sequence.
struct Cursor<'a> {
    runs: &'a [CollRun],
    idx: usize,
    used: u64,
}

impl<'a> Cursor<'a> {
    fn new(runs: &'a [CollRun]) -> Cursor<'a> {
        Cursor {
            runs,
            idx: 0,
            used: 0,
        }
    }
    fn current(&self) -> Option<&'a CollRun> {
        self.runs.get(self.idx)
    }
    fn remaining(&self) -> u64 {
        self.current().map_or(0, |r| r.count - self.used)
    }
    fn advance(&mut self, n: u64) {
        self.used += n;
        if let Some(r) = self.current() {
            if self.used >= r.count {
                self.idx += 1;
                self.used = 0;
            }
        }
    }
}

/// First sequence position where the per-process sequences disagree
/// (or where some end while others continue), with each process's run
/// at that position (`None` = exhausted). `None` = full agreement.
fn scan_divergence<'a>(seqs: &[&'a [CollRun]]) -> Option<(u64, Vec<Option<&'a CollRun>>)> {
    let mut cursors: Vec<Cursor<'a>> = seqs.iter().map(|s| Cursor::new(s)).collect();
    let mut index = 0u64;
    loop {
        let current: Vec<Option<&CollRun>> = cursors.iter().map(Cursor::current).collect();
        if current.iter().all(Option::is_none) {
            return None;
        }
        let values: BTreeSet<Option<&str>> =
            current.iter().map(|r| r.map(|r| r.sig.as_str())).collect();
        if values.len() > 1 {
            return Some((index, current));
        }
        let step = cursors
            .iter()
            .map(Cursor::remaining)
            .min()
            .expect("at least two sequences");
        for c in &mut cursors {
            c.advance(step);
        }
        index += step;
    }
}

/// Group the diverging processes by their value at the divergence
/// point.
fn partition<'a>(
    masters: &[&TraceReqFacts],
    current: &[Option<&'a CollRun>],
) -> BTreeMap<&'a str, Vec<u32>> {
    let mut groups: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
    for (f, run) in masters.iter().zip(current) {
        if let Some(run) = run {
            groups.entry(&run.sig).or_default().push(f.id.process);
        }
    }
    groups
}

/// The consensus is the largest group; ties resolve to the group
/// containing the lowest rank, so the anchor is the rank that diverged
/// from rank 0's view.
fn consensus_value<'a>(groups: &BTreeMap<&'a str, Vec<u32>>) -> &'a str {
    groups
        .iter()
        .max_by_key(|(_, procs)| (procs.len(), std::cmp::Reverse(procs[0])))
        .map(|(sig, _)| *sig)
        .expect("non-empty partition")
}

/// The lowest-process trace not in the consensus group, with its run
/// at the divergence point — the diagnostic anchor.
fn minority_anchor<'a>(
    masters: &[&'a TraceReqFacts],
    current: &[Option<&CollRun>],
    consensus: &str,
) -> (&'a TraceReqFacts, u64) {
    masters
        .iter()
        .zip(current)
        .find_map(|(f, run)| {
            run.filter(|r| r.sig != consensus)
                .map(|r| (*f, r.first_offset))
        })
        .expect("a divergent process exists")
}

/// RQ004: first position where the ranks' plain collective-kind
/// sequences disagree, or where some ranks end while others continue
/// (only reported when an ended trace is *not* truncated — a killed
/// rank's missing tail is a hang symptom, not an order bug).
fn order_divergence(masters: &[&TraceReqFacts]) -> Option<ReqDiagnostic> {
    let seqs: Vec<&[CollRun]> = masters.iter().map(|f| f.kinds.as_slice()).collect();
    let (index, current) = scan_divergence(&seqs)?;
    let ended: Vec<usize> = (0..masters.len())
        .filter(|&i| current[i].is_none())
        .collect();
    if ended.is_empty() {
        let groups = partition(masters, &current);
        let consensus = consensus_value(&groups);
        let parts: Vec<String> = groups
            .iter()
            .map(|(kind, procs)| format!("rank(s) {} call `{kind}`", render_procs(procs)))
            .collect();
        let (anchor, offset) = minority_anchor(masters, &current, consensus);
        return Some(
            ReqDiagnostic::error(
                ReqCode::OrderDivergence,
                format!(
                    "collective order divergence at collective #{index}: {}",
                    parts.join(", ")
                ),
            )
            .with_trace(anchor.id)
            .with_span(Span::at(us(offset)))
            .with_hint("every rank must invoke the same collectives in the same order"),
        );
    }
    // Length divergence: suppress when every ended trace is truncated.
    if ended.iter().all(|&i| masters[i].truncated) {
        return None;
    }
    let ended_procs: Vec<u32> = ended.iter().map(|&i| masters[i].id.process).collect();
    let (witness, run) = masters
        .iter()
        .zip(&current)
        .find_map(|(f, run)| run.map(|r| (*f, r)))
        .expect("some process continues");
    let cont_procs: Vec<u32> = (0..masters.len())
        .filter(|&i| current[i].is_some())
        .map(|i| masters[i].id.process)
        .collect();
    Some(
        ReqDiagnostic::error(
            ReqCode::OrderDivergence,
            format!(
                "collective count divergence: rank(s) {} end after {index} collective(s) \
                 while rank(s) {} continue with `{}`",
                render_procs(&ended_procs),
                render_procs(&cont_procs),
                run.sig
            ),
        )
        .with_trace(witness.id)
        .with_span(Span::at(us(run.first_offset)))
        .with_hint("every rank must invoke the same collectives in the same order"),
    )
}

/// RQ003: first position where the ranks' recorded collective argument
/// signatures disagree *while agreeing on the kind* (kind divergence
/// is RQ004's). Count divergence of the signature streams is never
/// reported here — the plain-kind scan owns sequence length.
fn signature_mismatch(masters: &[&TraceReqFacts]) -> Option<ReqDiagnostic> {
    let seqs: Vec<&[CollRun]> = masters.iter().map(|f| f.sigs.as_slice()).collect();
    let (index, current) = scan_divergence(&seqs)?;
    if current.iter().any(Option::is_none) {
        return None;
    }
    let kinds: BTreeSet<&str> = current
        .iter()
        .filter_map(|r| r.map(|r| r.sig.split(':').next().unwrap_or(&r.sig)))
        .collect();
    if kinds.len() > 1 {
        return None; // the kinds themselves diverge: RQ004 territory
    }
    let kind = kinds.into_iter().next().expect("non-empty divergence");
    let groups = partition(masters, &current);
    let consensus = consensus_value(&groups);
    let parts: Vec<String> = groups
        .iter()
        .map(|(sig, procs)| format!("rank(s) {} use `{sig}`", render_procs(procs)))
        .collect();
    let (anchor, offset) = minority_anchor(masters, &current, consensus);
    Some(
        ReqDiagnostic::error(
            ReqCode::SignatureMismatch,
            format!(
                "collective signature mismatch at collective #{index} (`{kind}`): {}",
                parts.join(", ")
            ),
        )
        .with_trace(anchor.id)
        .with_span(Span::at(us(offset)))
        .with_hint("every rank must pass the same count, root, and reduce op to a collective"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(process: u32, thread: u32) -> TraceReqFacts {
        TraceReqFacts {
            id: TraceId::new(process, thread),
            posted: 0,
            completed: 0,
            min_balance: 0,
            min_balance_offset: None,
            first_post_offset: None,
            finalized: true,
            after_finalize: 0,
            after_finalize_offset: None,
            kinds: Vec::new(),
            sigs: Vec::new(),
            pending: Vec::new(),
            truncated: false,
        }
    }

    fn runs(items: &[(&str, u64, u64)]) -> Vec<CollRun> {
        items
            .iter()
            .map(|(sig, count, off)| CollRun {
                sig: sig.to_string(),
                count: *count,
                first_offset: *off,
            })
            .collect()
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(ReqCode::Leaked.as_str(), "RQ001");
        assert_eq!(ReqCode::UnmatchedWait.as_str(), "RQ002");
        assert_eq!(ReqCode::SignatureMismatch.as_str(), "RQ003");
        assert_eq!(ReqCode::OrderDivergence.as_str(), "RQ004");
        assert_eq!(ReqCode::CompleteAfterFinalize.as_str(), "RQ005");
        assert_eq!(ReqCode::CompleteAfterFinalize.to_string(), "RQ005");
    }

    #[test]
    fn leaked_request_fires_rq001_with_pending_hint() {
        let mut f = base(0, 0);
        f.posted = 3;
        f.completed = 1;
        f.first_post_offset = Some(4);
        f.pending = vec![("MPI_Isend:dst=1,tag=7".to_string(), 2)];
        let r = analyze(&[f]);
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec![ReqCode::Leaked]
        );
        let d = &r.diagnostics()[0];
        assert!(d.message.contains("2 request(s)"), "{}", d.message);
        assert_eq!(d.span, Some(Span::at(4)));
        assert!(
            d.hint
                .as_deref()
                .unwrap()
                .contains("MPI_Isend:dst=1,tag=7 (×2)"),
            "{:?}",
            d.hint
        );
    }

    #[test]
    fn truncated_traces_do_not_fire_rq001() {
        let mut f = base(0, 0);
        f.posted = 3;
        f.completed = 1;
        f.truncated = true;
        let r = analyze(&[f]);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn negative_balance_fires_rq002() {
        let mut f = base(0, 0);
        f.posted = 2;
        f.completed = 3;
        f.min_balance = -1;
        f.min_balance_offset = Some(17);
        f.first_post_offset = Some(1);
        let r = analyze(&[f]);
        // posted < completed, so no RQ001; the dip is the bug.
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec![ReqCode::UnmatchedWait]
        );
        assert_eq!(r.diagnostics()[0].span, Some(Span::at(17)));
    }

    #[test]
    fn wait_after_finalize_is_a_warning() {
        let mut f = base(0, 0);
        f.posted = 1;
        f.completed = 1;
        f.after_finalize = 1;
        f.after_finalize_offset = Some(9);
        let r = analyze(&[f]);
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec![ReqCode::CompleteAfterFinalize]
        );
        assert!(!r.has_errors());
        assert_eq!(r.diagnostics()[0].severity, Severity::Warning);
    }

    #[test]
    fn kind_divergence_fires_rq004_anchored_on_the_minority() {
        let mut a = base(0, 0);
        a.kinds = runs(&[("MPI_Bcast", 3, 2), ("MPI_Reduce", 1, 20)]);
        let mut b = base(1, 0);
        b.kinds = runs(&[("MPI_Bcast", 3, 2), ("MPI_Allreduce", 1, 22)]);
        let mut c = base(2, 0);
        c.kinds = runs(&[("MPI_Bcast", 3, 2), ("MPI_Reduce", 1, 20)]);
        let r = analyze(&[a, b, c]);
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec![ReqCode::OrderDivergence]
        );
        let d = &r.diagnostics()[0];
        assert!(d.message.contains("collective #3"), "{}", d.message);
        assert!(
            d.message
                .contains("rank(s) 1 call `MPI_Allreduce`, rank(s) 0, 2 call `MPI_Reduce`"),
            "{}",
            d.message
        );
        assert_eq!(d.trace, Some(TraceId::new(1, 0)));
        assert_eq!(d.span, Some(Span::at(22)));
    }

    #[test]
    fn count_divergence_fires_rq004_unless_the_short_rank_is_truncated() {
        let mut a = base(0, 0);
        a.kinds = runs(&[("MPI_Barrier", 4, 2)]);
        let mut b = base(1, 0);
        b.kinds = runs(&[("MPI_Barrier", 3, 2)]);
        let r = analyze(&[a.clone(), b.clone()]);
        let d = &r.diagnostics()[0];
        assert_eq!(d.code, ReqCode::OrderDivergence);
        assert!(
            d.message
                .contains("rank(s) 1 end after 3 collective(s) while rank(s) 0 continue"),
            "{}",
            d.message
        );
        assert_eq!(d.trace, Some(TraceId::new(0, 0)));
        // A truncated short rank is a hang symptom, not an order bug.
        b.truncated = true;
        assert!(analyze(&[a, b]).is_clean());
    }

    #[test]
    fn signature_divergence_fires_rq003_when_kinds_agree() {
        let mut a = base(0, 0);
        a.kinds = runs(&[("MPI_Allreduce", 2, 4)]);
        a.sigs = runs(&[("MPI_Allreduce:4:-:sum", 2, 5)]);
        let mut b = base(1, 0);
        b.kinds = runs(&[("MPI_Allreduce", 2, 4)]);
        b.sigs = runs(&[
            ("MPI_Allreduce:4:-:sum", 1, 5),
            ("MPI_Allreduce:4:-:max", 1, 15),
        ]);
        let r = analyze(&[a, b]);
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec![ReqCode::SignatureMismatch]
        );
        let d = &r.diagnostics()[0];
        assert!(d.message.contains("collective #1"), "{}", d.message);
        assert!(d.message.contains("`MPI_Allreduce`"), "{}", d.message);
        assert!(
            d.message.contains("rank(s) 1 use `MPI_Allreduce:4:-:max`"),
            "{}",
            d.message
        );
        assert_eq!(d.trace, Some(TraceId::new(1, 0)));
        assert_eq!(d.span, Some(Span::at(15)));
    }

    #[test]
    fn kind_level_signature_divergence_defers_to_rq004() {
        let mut a = base(0, 0);
        a.kinds = runs(&[("MPI_Reduce", 1, 4)]);
        a.sigs = runs(&[("MPI_Reduce:2:0:sum", 1, 5)]);
        let mut b = base(1, 0);
        b.kinds = runs(&[("MPI_Bcast", 1, 4)]);
        b.sigs = runs(&[("MPI_Bcast:2:0:-", 1, 5)]);
        let r = analyze(&[a, b]);
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec![ReqCode::OrderDivergence]
        );
    }

    #[test]
    fn missing_signature_streams_never_fire_rq003() {
        // One rank recorded signatures, the other did not: not a bug.
        let mut a = base(0, 0);
        a.kinds = runs(&[("MPI_Barrier", 2, 2)]);
        a.sigs = runs(&[("MPI_Barrier:0:-:-", 2, 3)]);
        let mut b = base(1, 0);
        b.kinds = runs(&[("MPI_Barrier", 2, 2)]);
        let r = analyze(&[a, b]);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn worker_threads_do_not_join_the_collective_alignment() {
        let mut a = base(0, 0);
        a.kinds = runs(&[("MPI_Barrier", 2, 2)]);
        let mut b = base(1, 0);
        b.kinds = runs(&[("MPI_Barrier", 2, 2)]);
        // A worker thread with no collectives at all must not count as
        // a diverging rank.
        let w = base(0, 1);
        let r = analyze(&[a, b, w]);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn single_process_runs_skip_cross_rank_rules() {
        let mut a = base(0, 0);
        a.kinds = runs(&[("MPI_Barrier", 2, 2)]);
        let r = analyze(&[a]);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn vocab_classifies_the_request_vocabulary() {
        let reg = FunctionRegistry::new();
        let isend = reg.intern("MPI_Isend");
        let irecv = reg.intern("MPI_Irecv");
        let wait = reg.intern("MPI_Wait");
        let fin = reg.intern("MPI_Finalize");
        let coll = reg.intern("MPI_Allreduce");
        let sig = reg.intern("mpi_coll@MPI_Allreduce:4:-:sum");
        let pend = reg.intern("mpi_req_pending@MPI_Isend:dst=1,tag=7");
        let other = reg.intern("MPI_Send");
        let vocab = ReqVocab::build(&reg);
        assert_eq!(vocab.classify_fn(isend), &ReqSym::Post);
        assert_eq!(vocab.classify_fn(irecv), &ReqSym::Post);
        assert_eq!(vocab.classify_fn(wait), &ReqSym::Wait);
        assert_eq!(vocab.classify_fn(fin), &ReqSym::Finalize);
        assert_eq!(vocab.classify_fn(coll), &ReqSym::Coll("MPI_Allreduce"));
        assert_eq!(
            vocab.classify_fn(sig),
            &ReqSym::Sig("MPI_Allreduce:4:-:sum".to_string())
        );
        assert_eq!(
            vocab.classify_fn(pend),
            &ReqSym::Pending("MPI_Isend:dst=1,tag=7".to_string())
        );
        assert_eq!(vocab.classify_fn(other), &ReqSym::Other);
        assert!(!vocab.is_empty());
        assert!(ReqVocab::build(&FunctionRegistry::new()).is_empty());
    }
}
