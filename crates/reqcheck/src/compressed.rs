//! Compressed-domain request-fact extraction: [`crate::TraceReqFacts`]
//! computed **directly on the NLR term**, without expanding loops.
//!
//! The ZipTrack observation (Kini et al., PLDI 2018) adapted to
//! request accounting: everything the RQ rules need from a subterm is
//! a small **summary** — its symbol length, its post/complete
//! counters, the minimum of its prefix balances, its finalize epoch,
//! and its run-length-encoded collective sequences — and summaries
//! compose associatively, so each loop body is summarized once and
//! `body^n` is applied in closed form.
//!
//! # The repeat rules
//!
//! With `d = posted − completed` per iteration, the balance before
//! copy `k` is `(k−1)·d`, so the prefix minimum of `body^n` is
//!
//! ```text
//! min(bodyⁿ) = min(body)            if d ≥ 0   (copy 1 is lowest)
//! min(bodyⁿ) = (n−1)·d + min(body)  if d < 0   (copy n is lowest)
//! ```
//!
//! with the witness offset shifting by `(n−1)·len` in the second case
//! (the per-copy minimum strictly decreases, so the first attainment
//! is in the last copy; `d < 0` also forces `min(body) < 0`, so a
//! witness exists). After-finalize completions are `after + (n−1)·c`
//! when the body finalizes (every completion of copies 2…n is late),
//! and the collective RLE of a uniform body multiplies its single run
//! by `n` in O(1) — a mixed body concatenates honestly, which is the
//! same output size the expanded walk would produce. A uniform
//! million-iteration loop therefore costs O(|body|), which is the
//! asymptotic win `reqcheck_bench` measures.

use crate::expanded::rle_push;
use crate::{CollRun, ReqSym, ReqVocab, TraceReqFacts};
use dt_trace::TraceId;
use nlr::{Element, LoopId, LoopTable, Nlr};
use std::collections::{BTreeMap, HashMap};

/// Append `src` (shifted by `shift` symbols) onto `dst`, merging the
/// boundary runs when their values match.
fn rle_append(dst: &mut Vec<CollRun>, src: &[CollRun], shift: u64) {
    for run in src {
        if let Some(last) = dst.last_mut() {
            if last.sig == run.sig {
                last.count = last.count.saturating_add(run.count);
                continue;
            }
        }
        dst.push(CollRun {
            sig: run.sig.clone(),
            count: run.count,
            first_offset: run.first_offset.saturating_add(shift),
        });
    }
}

/// `runs` repeated `count` times (each copy `len` symbols long). A
/// single-run body folds in O(1); a mixed body concatenates honestly —
/// its canonical RLE genuinely grows with `count`.
fn rle_repeat(runs: &[CollRun], count: u64, len: u64) -> Vec<CollRun> {
    match (runs.len(), count) {
        (0, _) | (_, 0) => return Vec::new(),
        (_, 1) => return runs.to_vec(),
        (1, _) => {
            return vec![CollRun {
                sig: runs[0].sig.clone(),
                count: runs[0].count.saturating_mul(count),
                first_offset: runs[0].first_offset,
            }]
        }
        _ => {}
    }
    let mut out = runs.to_vec();
    for k in 1..count {
        rle_append(&mut out, runs, len.saturating_mul(k));
    }
    out
}

/// The summary of one element sequence (a loop body, or a prefix of
/// the walk): everything needed to place its request activity in any
/// context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermSummary {
    len: u64,
    posted: u64,
    completed: u64,
    /// Minimum over all prefixes of the running `posted − completed`
    /// balance (≤ 0; the empty prefix counts).
    min_bal: i64,
    /// Offset first attaining `min_bal`; `Some` iff `min_bal < 0`.
    min_off: Option<u64>,
    first_post: Option<u64>,
    first_complete: Option<u64>,
    finalized: bool,
    /// Completions after a finalize *within this term*.
    after_fin: u64,
    /// Offset of the first such completion; `Some` iff `after_fin > 0`.
    after_off: Option<u64>,
    kinds: Vec<CollRun>,
    sigs: Vec<CollRun>,
    pending: BTreeMap<String, u64>,
}

impl TermSummary {
    fn identity() -> TermSummary {
        TermSummary {
            len: 0,
            posted: 0,
            completed: 0,
            min_bal: 0,
            min_off: None,
            first_post: None,
            first_complete: None,
            finalized: false,
            after_fin: 0,
            after_off: None,
            kinds: Vec::new(),
            sigs: Vec::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Net request balance of the whole term.
    fn delta(&self) -> i64 {
        i64::try_from(self.posted)
            .unwrap_or(i64::MAX)
            .saturating_sub(i64::try_from(self.completed).unwrap_or(i64::MAX))
    }

    /// Append one raw symbol.
    fn push_symbol(&mut self, sym: u32, vocab: &ReqVocab) {
        if sym & 1 == 0 {
            match vocab.classify(sym >> 1) {
                ReqSym::Post => {
                    self.posted += 1;
                    if self.first_post.is_none() {
                        self.first_post = Some(self.len);
                    }
                }
                ReqSym::Wait => {
                    self.completed += 1;
                    if self.first_complete.is_none() {
                        self.first_complete = Some(self.len);
                    }
                    let bal = self.delta();
                    if bal < self.min_bal {
                        self.min_bal = bal;
                        self.min_off = Some(self.len);
                    }
                    if self.finalized {
                        self.after_fin += 1;
                        if self.after_off.is_none() {
                            self.after_off = Some(self.len);
                        }
                    }
                }
                ReqSym::Finalize => self.finalized = true,
                ReqSym::Coll(kind) => rle_push(&mut self.kinds, kind, self.len),
                ReqSym::Sig(sig) => rle_push(&mut self.sigs, sig, self.len),
                ReqSym::Pending(origin) => {
                    *self.pending.entry(origin.clone()).or_insert(0) += 1;
                }
                ReqSym::Other => {}
            }
        }
        self.len += 1;
    }

    /// Append a whole summary (sequential composition `self · next`).
    fn append(&mut self, next: &TermSummary) {
        // Prefix minima: `next`'s dips ride on `self`'s net balance.
        let shifted = self.delta().saturating_add(next.min_bal);
        if shifted < self.min_bal {
            self.min_bal = shifted;
            self.min_off = next.min_off.map(|o| o.saturating_add(self.len));
        }
        // After-finalize completions, using `self`'s epoch state: once
        // `self` finalized, *every* completion of `next` is late.
        if self.after_fin == 0 {
            self.after_off = if self.finalized {
                next.first_complete.map(|o| o.saturating_add(self.len))
            } else {
                next.after_off.map(|o| o.saturating_add(self.len))
            };
        }
        self.after_fin = self.after_fin.saturating_add(if self.finalized {
            next.completed
        } else {
            next.after_fin
        });
        self.finalized = self.finalized || next.finalized;
        if self.first_post.is_none() {
            self.first_post = next.first_post.map(|o| o.saturating_add(self.len));
        }
        if self.first_complete.is_none() {
            self.first_complete = next.first_complete.map(|o| o.saturating_add(self.len));
        }
        self.posted = self.posted.saturating_add(next.posted);
        self.completed = self.completed.saturating_add(next.completed);
        rle_append(&mut self.kinds, &next.kinds, self.len);
        rle_append(&mut self.sigs, &next.sigs, self.len);
        for (origin, n) in &next.pending {
            *self.pending.entry(origin.clone()).or_insert(0) += n;
        }
        self.len = self.len.saturating_add(next.len);
    }

    /// `self` repeated `count` times, in closed form (module docs).
    fn repeat(&self, count: u64) -> TermSummary {
        match count {
            0 => return TermSummary::identity(),
            1 => return self.clone(),
            _ => {}
        }
        let tail = count - 1;
        let d = self.delta();
        let mut out = self.clone();
        out.len = self.len.saturating_mul(count);
        out.posted = self.posted.saturating_mul(count);
        out.completed = self.completed.saturating_mul(count);
        if d < 0 {
            // The per-copy minimum strictly decreases, so the global
            // minimum is first attained in the last copy.
            out.min_bal = d
                .saturating_mul(i64::try_from(tail).unwrap_or(i64::MAX))
                .saturating_add(self.min_bal);
            out.min_off = self
                .min_off
                .map(|o| o.saturating_add(self.len.saturating_mul(tail)));
        }
        if self.finalized {
            out.after_fin = self
                .after_fin
                .saturating_add(self.completed.saturating_mul(tail));
            if self.after_fin == 0 {
                // First offender: the first completion of copy 2.
                out.after_off = self.first_complete.map(|o| o.saturating_add(self.len));
            }
        }
        out.kinds = rle_repeat(&self.kinds, count, self.len);
        out.sigs = rle_repeat(&self.sigs, count, self.len);
        for n in out.pending.values_mut() {
            *n = n.saturating_mul(count);
        }
        out
    }

    /// Symbol length covered (for tests).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the summary covers no symbols.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Memoizes per-loop-body summaries against a shared loop table.
pub struct Summarizer<'t> {
    table: &'t LoopTable,
    vocab: &'t ReqVocab,
    memo: HashMap<LoopId, TermSummary>,
}

impl<'t> Summarizer<'t> {
    /// A summarizer over `table`, classifying symbols with `vocab`.
    pub fn new(table: &'t LoopTable, vocab: &'t ReqVocab) -> Summarizer<'t> {
        Summarizer {
            table,
            vocab,
            memo: HashMap::new(),
        }
    }

    /// Summary of a whole element sequence.
    pub fn summary_of(&mut self, elements: &[Element]) -> TermSummary {
        let mut acc = TermSummary::identity();
        for e in elements {
            match *e {
                Element::Sym(s) => acc.push_symbol(s, self.vocab),
                Element::Loop { body, count } => {
                    let s = self.body_summary(body).repeat(count);
                    acc.append(&s);
                }
            }
        }
        acc
    }

    /// Summary of one iteration of `id`'s body (memoized).
    fn body_summary(&mut self, id: LoopId) -> TermSummary {
        if let Some(s) = self.memo.get(&id) {
            return s.clone();
        }
        let body = self.table.body(id);
        let s = self.summary_of(body);
        self.memo.insert(id, s.clone());
        s
    }

    /// Summarize one NLR term — must equal
    /// [`crate::expanded::summarize`] on the term's expansion.
    pub fn summarize(&mut self, id: TraceId, term: &Nlr, truncated: bool) -> TraceReqFacts {
        let s = self.summary_of(term.elements());
        TraceReqFacts {
            id,
            posted: s.posted,
            completed: s.completed,
            min_balance: s.min_bal,
            min_balance_offset: s.min_off,
            first_post_offset: s.first_post,
            finalized: s.finalized,
            after_finalize: s.after_fin,
            after_finalize_offset: s.after_off,
            kinds: s.kinds,
            sigs: s.sigs,
            pending: s.pending.into_iter().collect(),
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expanded;
    use dt_trace::FunctionRegistry;
    use nlr::NlrBuilder;
    use proptest::prelude::*;

    fn call(f: dt_trace::FnId) -> u32 {
        f.0 << 1
    }
    fn ret(f: dt_trace::FnId) -> u32 {
        (f.0 << 1) | 1
    }

    /// Registry with the standard test vocabulary; returns marker ids.
    fn vocabulary() -> (FunctionRegistry, Vec<(u32, u32)>) {
        let reg = FunctionRegistry::new();
        let names = [
            "MPI_Isend",
            "MPI_Irecv",
            "MPI_Wait",
            "MPI_Finalize",
            "MPI_Barrier",
            "MPI_Allreduce",
            "MPI_Bcast",
            "mpi_coll@MPI_Allreduce:4:-:sum",
            "mpi_coll@MPI_Allreduce:4:-:max",
            "mpi_req_pending@MPI_Isend:dst=1,tag=7",
            "compute",
            "helper",
        ];
        let pairs = names
            .iter()
            .map(|n| {
                let f = reg.intern(n);
                (call(f), ret(f))
            })
            .collect();
        (reg, pairs)
    }

    fn agree(reg: &FunctionRegistry, symbols: &[u32], truncated: bool) {
        let vocab = ReqVocab::build(reg);
        let mut table = LoopTable::new();
        let term = NlrBuilder::new(10).build(symbols, &mut table);
        assert_eq!(term.expand(&table), symbols, "NLR must be lossless");
        let mut summarizer = Summarizer::new(&table, &vocab);
        let id = TraceId::new(0, 1);
        assert_eq!(
            summarizer.summarize(id, &term, truncated),
            expanded::summarize(id, symbols, truncated, &vocab),
        );
    }

    #[test]
    fn balanced_request_loop_agrees() {
        let (reg, p) = vocabulary();
        let (isend, wait) = (p[0], p[2]);
        let mut syms = Vec::new();
        for _ in 0..40 {
            syms.extend_from_slice(&[isend.0, isend.1, wait.0, wait.1]);
        }
        agree(&reg, &syms, false);
    }

    #[test]
    fn leaking_loop_agrees() {
        let (reg, p) = vocabulary();
        let isend = p[0];
        let mut syms = Vec::new();
        for _ in 0..30 {
            syms.extend_from_slice(&[isend.0, isend.1]);
        }
        agree(&reg, &syms, false);
    }

    #[test]
    fn overdraining_loop_puts_the_minimum_in_the_last_copy() {
        let (reg, p) = vocabulary();
        let (isend, wait) = (p[0], p[2]);
        // Net −1 per iteration: post once, wait twice.
        let mut syms = Vec::new();
        for _ in 0..20 {
            syms.extend_from_slice(&[isend.0, isend.1, wait.0, wait.1, wait.0, wait.1]);
        }
        agree(&reg, &syms, false);
        let vocab = ReqVocab::build(&reg);
        let facts = expanded::summarize(TraceId::new(0, 1), &syms, false, &vocab);
        assert_eq!(facts.min_balance, -20);
        // First attained by the last iteration's second wait.
        assert_eq!(facts.min_balance_offset, Some(19 * 6 + 4));
    }

    #[test]
    fn finalize_inside_the_loop_agrees() {
        let (reg, p) = vocabulary();
        let (isend, wait, fin) = (p[0], p[2], p[3]);
        let mut syms = vec![isend.0, isend.1];
        for _ in 0..15 {
            syms.extend_from_slice(&[fin.0, fin.1, wait.0, wait.1]);
        }
        agree(&reg, &syms, false);
    }

    #[test]
    fn alternating_collectives_agree() {
        let (reg, p) = vocabulary();
        let (bar, red, sig_sum) = (p[4], p[5], p[7]);
        let mut syms = Vec::new();
        for _ in 0..25 {
            syms.extend_from_slice(&[
                bar.0, bar.1, red.0, sig_sum.0, sig_sum.1, red.1, bar.0, bar.1,
            ]);
        }
        // Coda rotates the pattern so runs straddle loop boundaries.
        syms.extend_from_slice(&[bar.0, bar.1, bar.0, bar.1]);
        agree(&reg, &syms, false);
    }

    #[test]
    fn high_repetition_counts_fold_without_expansion() {
        let (reg, p) = vocabulary();
        let vocab = ReqVocab::build(&reg);
        let (isend, wait, bar, sig_sum) = (p[0], p[2], p[4], p[7]);
        let mut table = LoopTable::new();
        let body = table.intern(vec![
            Element::Sym(isend.0),
            Element::Sym(isend.1),
            Element::Sym(wait.0),
            Element::Sym(wait.1),
            Element::Sym(bar.0),
            Element::Sym(bar.1),
            Element::Sym(sig_sum.0),
            Element::Sym(sig_sum.1),
        ]);
        let elements = vec![Element::Loop {
            body,
            count: 1_000_000,
        }];
        let mut s = Summarizer::new(&table, &vocab);
        let sum = s.summary_of(&elements);
        assert_eq!(sum.len(), 8_000_000);
        let term = Nlr::from_parts(elements, 8_000_000);
        let facts = s.summarize(TraceId::new(0, 1), &term, false);
        assert_eq!((facts.posted, facts.completed), (1_000_000, 1_000_000));
        assert_eq!(facts.min_balance, 0);
        assert_eq!(facts.min_balance_offset, None);
        // Uniform bodies fold to a single multiplied run.
        assert_eq!(
            facts.kinds,
            vec![CollRun {
                sig: "MPI_Barrier".into(),
                count: 1_000_000,
                first_offset: 4
            }]
        );
        assert_eq!(
            facts.sigs,
            vec![CollRun {
                sig: "MPI_Allreduce:4:-:sum".into(),
                count: 1_000_000,
                first_offset: 6
            }]
        );
    }

    /// Random marker streams: build a symbol stream from a random
    /// script of operations and assert fact equality in both domains.
    fn script_strategy() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..12, 0..60)
    }

    proptest! {
        #[test]
        fn facts_agree_on_random_scripts(script in script_strategy(), reps in 1usize..20) {
            let (reg, p) = vocabulary();
            let mut syms = Vec::new();
            // A looped section: the script repeated `reps` times.
            for _ in 0..reps {
                for &op in &script {
                    let (c, r) = p[op as usize % p.len()];
                    syms.push(c);
                    syms.push(r);
                }
            }
            // Plus an unlooped coda from the same script, reversed.
            for &op in script.iter().rev() {
                let (c, r) = p[op as usize % p.len()];
                syms.push(c);
                syms.push(r);
            }
            agree(&reg, &syms, false);
        }

        #[test]
        fn facts_agree_on_truncated_random_scripts(script in script_strategy()) {
            let (reg, p) = vocabulary();
            let mut syms = Vec::new();
            for _ in 0..8 {
                for &op in &script {
                    let (c, _r) = p[op as usize % p.len()];
                    // Calls without returns: maximally unbalanced.
                    syms.push(c);
                }
            }
            agree(&reg, &syms, true);
        }
    }
}
