//! A minimal JSON reader/escaper — just enough to validate
//! `difftrace-metrics/v1` documents without an external dependency.
//!
//! The writer side of the schema lives in [`crate::Metrics::to_json`];
//! this module provides the matching [`parse`] (strict recursive
//! descent over the full JSON grammar) and the string [`escape`] both
//! sides share. Numbers are held as `f64`, which is exact for every
//! magnitude the schema emits in practice and irrelevant for
//! validation, the only consumer.

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The members when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one JSON document. Trailing content (other than whitespace)
/// is an error.
pub fn parse(doc: &str) -> Result<Value, String> {
    let bytes = doc.as_bytes();
    let mut at = 0usize;
    let v = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing content at byte {at}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*at) == Some(&c) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {at}", c as char))
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Value, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of document".into()),
        Some(b'{') => parse_object(b, at),
        Some(b'[') => parse_array(b, at),
        Some(b'"') => parse_string(b, at).map(Value::Str),
        Some(b't') => parse_lit(b, at, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, at, b"false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, at, b"null", Value::Null),
        Some(_) => parse_number(b, at),
    }
}

fn parse_lit(b: &[u8], at: &mut usize, lit: &[u8], v: Value) -> Result<Value, String> {
    if b.len() >= *at + lit.len() && &b[*at..*at + lit.len()] == lit {
        *at += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {at}"))
    }
}

fn parse_number(b: &[u8], at: &mut usize) -> Result<Value, String> {
    let start = *at;
    if b.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *at += 1;
    }
    std::str::from_utf8(&b[start..*at])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
    expect(b, at, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*at) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match b.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*at + 1..*at + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. The document came in as
                // &str, so slicing at char boundaries is safe.
                let s = std::str::from_utf8(&b[*at..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], at: &mut usize) -> Result<Value, String> {
    expect(b, at, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, at)?);
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {at}")),
        }
    }
}

fn parse_object(b: &[u8], at: &mut usize) -> Result<Value, String> {
    expect(b, at, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, at);
        let key = parse_string(b, at)?;
        skip_ws(b, at);
        expect(b, at, b':')?;
        let val = parse_value(b, at)?;
        out.push((key, val));
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {at}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse("{\"k\":[1,2,{}],\"s\":\"x\"}").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "k");
        assert_eq!(obj[0].1.as_array().unwrap().len(), 3);
        assert_eq!(obj[1].1, Value::Str("x".into()));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}π";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Value::Str(nasty.to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "1 2",
            "nul",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
