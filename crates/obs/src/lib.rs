//! `dt-obs` — the observability substrate of the DiffTrace pipeline.
//!
//! The paper sells DiffTrace on *efficiency* (§IV reports per-stage
//! costs for NLR, FCA, and clustering); this crate is how the
//! reproduction answers "where did the time go?" for any run. It
//! provides:
//!
//! * a [`Recorder`] trait every pipeline stage reports into, with a
//!   **no-op default** ([`Noop`] / [`NOOP`]) whose methods are empty —
//!   disabled instrumentation is a virtual call that immediately
//!   returns, and the [`stage`] guard does not even read the clock
//!   unless [`Recorder::enabled`] says someone is listening;
//! * [`MetricsRecorder`], a thread-safe collector aggregating
//!   monotonic stage spans (hierarchical `a/b` paths), u64 counters,
//!   and per-worker wall-time samples for imbalance analysis;
//! * [`Metrics`], the finished snapshot, rendering either as a text
//!   profile table ([`Metrics::render_table`]) or as a JSON document
//!   in the stable `difftrace-metrics/v1` schema ([`Metrics::to_json`],
//!   validated by [`validate_json`]);
//! * [`peak_rss_bytes`], a Linux `VmHWM` sampler (graceful `None`
//!   elsewhere).
//!
//! # Contract
//!
//! Instrumentation is **observational only**: recorders receive copies
//! of measurements and may never influence an analysis result. The
//! pipeline's byte-identity harness asserts this (instrumented and
//! uninstrumented runs produce identical reports at every thread
//! count).

pub mod json;

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// The stable schema identifier written into every metrics document.
pub const SCHEMA: &str = "difftrace-metrics/v1";

/// A sink for pipeline measurements.
///
/// All methods default to doing nothing, so a unit struct gets a
/// complete no-op implementation for free. Implementors must be `Sync`:
/// parallel stages report from worker threads.
pub trait Recorder: Sync {
    /// Is anyone listening? Hot paths consult this before computing
    /// anything purely diagnostic (clock reads, event tallies).
    fn enabled(&self) -> bool {
        false
    }

    /// A completed span of stage `path` (hierarchical, `/`-separated),
    /// `ns` nanoseconds long. Repeated spans of one path aggregate.
    fn span_ns(&self, _path: &str, _ns: u64) {}

    /// Add `n` to the named monotonic counter.
    fn add(&self, _counter: &str, _n: u64) {}

    /// One worker's total busy time inside a parallel stage — the raw
    /// material of the per-thread imbalance report.
    fn worker_ns(&self, _path: &str, _worker: usize, _ns: u64) {}
}

/// The do-nothing recorder. Every entry point that does not thread an
/// explicit recorder uses this.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Recorder for Noop {}

/// Shared instance of [`Noop`] for `&dyn Recorder` call sites.
pub static NOOP: Noop = Noop;

/// RAII stage timer: measures from construction to drop and reports to
/// the recorder. When the recorder is disabled the clock is never read.
pub struct StageTimer<'a> {
    rec: &'a dyn Recorder,
    path: std::borrow::Cow<'a, str>,
    start: Option<Instant>,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.rec
                .span_ns(&self.path, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Time a stage with a static path: `let _s = stage(rec, "nlr");`.
pub fn stage<'a>(rec: &'a dyn Recorder, path: &'a str) -> StageTimer<'a> {
    StageTimer {
        rec,
        path: std::borrow::Cow::Borrowed(path),
        start: rec.enabled().then(Instant::now),
    }
}

/// [`stage`] with an owned path (e.g. one sweep grid cell). Callers
/// should guard the `format!` behind [`Recorder::enabled`].
pub fn stage_owned(rec: &dyn Recorder, path: String) -> StageTimer<'_> {
    StageTimer {
        rec,
        path: std::borrow::Cow::Owned(path),
        start: rec.enabled().then(Instant::now),
    }
}

/// Aggregate of all spans recorded under one path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SpanAgg {
    ns: u64,
    calls: u64,
}

#[derive(Debug, Default)]
struct Inner {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    workers: BTreeMap<String, BTreeMap<usize, u64>>,
}

/// Thread-safe metrics collector. Create one per CLI invocation (or
/// bench iteration), pass it as `&dyn Recorder` to the `_rec` pipeline
/// entry points, then snapshot with [`MetricsRecorder::finish`].
#[derive(Debug)]
pub struct MetricsRecorder {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for MetricsRecorder {
    fn default() -> MetricsRecorder {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// A fresh recorder; wall time counts from here.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder {
            start: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another worker panicked mid-write;
        // metrics are diagnostics, so keep what we have.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Live snapshot of every monotonic counter recorded so far,
    /// sorted by name. Unlike [`MetricsRecorder::finish`] this takes
    /// no command context — it is the cheap probe a long-running
    /// server polls for its `metrics` query between requests.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Live value of one counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot everything recorded so far into a [`Metrics`] document.
    pub fn finish(&self, command: &str, threads: usize) -> Metrics {
        let inner = self.lock();
        Metrics {
            command: command.to_string(),
            threads,
            wall_ns: self.start.elapsed().as_nanos() as u64,
            peak_rss_bytes: peak_rss_bytes(),
            stages: inner
                .spans
                .iter()
                .map(|(path, agg)| StageMetric {
                    path: path.clone(),
                    ns: agg.ns,
                    calls: agg.calls,
                })
                .collect(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            workers: inner
                .workers
                .iter()
                .map(|(path, by_worker)| {
                    // Dense per-worker vector; workers that never
                    // reported (no work stolen) show as 0.
                    let max = by_worker.keys().copied().max().unwrap_or(0);
                    let mut v = vec![0u64; max + 1];
                    for (&w, &ns) in by_worker {
                        v[w] = ns;
                    }
                    (path.clone(), v)
                })
                .collect(),
        }
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_ns(&self, path: &str, ns: u64) {
        let mut inner = self.lock();
        let agg = inner.spans.entry(path.to_string()).or_default();
        agg.ns += ns;
        agg.calls += 1;
    }

    fn add(&self, counter: &str, n: u64) {
        *self.lock().counters.entry(counter.to_string()).or_insert(0) += n;
    }

    fn worker_ns(&self, path: &str, worker: usize, ns: u64) {
        *self
            .lock()
            .workers
            .entry(path.to_string())
            .or_default()
            .entry(worker)
            .or_insert(0) += ns;
    }
}

/// One aggregated stage of a [`Metrics`] document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMetric {
    /// Hierarchical `/`-separated stage path, e.g. `diff/nlr`.
    pub path: String,
    /// Total wall nanoseconds across all spans of this path.
    pub ns: u64,
    /// Number of spans aggregated.
    pub calls: u64,
}

/// A finished metrics snapshot — one `difftrace-metrics/v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// The invocation that produced this document (`diff`, `sweep`, …).
    pub command: String,
    /// The *requested* thread knob (0 = all available parallelism).
    pub threads: usize,
    /// Wall time from recorder creation to snapshot.
    pub wall_ns: u64,
    /// Peak resident set (`VmHWM`), when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Aggregated stage spans, sorted by path.
    pub stages: Vec<StageMetric>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-worker busy nanoseconds of parallel stages, sorted by path.
    pub workers: Vec<(String, Vec<u64>)>,
}

impl Metrics {
    /// Serialise as one `difftrace-metrics/v1` JSON document
    /// (newline-terminated). The field set is a stability promise; see
    /// DESIGN.md §"Metrics schema".
    pub fn to_json(&self) -> String {
        use json::escape;
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"schema\":\"{SCHEMA}\",\"command\":\"{}\",\"threads\":{},\"wall_ns\":{}",
            escape(&self.command),
            self.threads,
            self.wall_ns
        ));
        match self.peak_rss_bytes {
            Some(b) => out.push_str(&format!(",\"peak_rss_bytes\":{b}")),
            None => out.push_str(",\"peak_rss_bytes\":null"),
        }
        out.push_str(",\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"ns\":{},\"calls\":{}}}",
                escape(&s.path),
                s.ns,
                s.calls
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(k)));
        }
        out.push_str("},\"workers\":{");
        for (i, (k, v)) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ns: Vec<String> = v.iter().map(u64::to_string).collect();
            out.push_str(&format!("\"{}\":[{}]", escape(k), ns.join(",")));
        }
        out.push_str("}}\n");
        out
    }

    /// Render the human profile table (`--profile`): stage wall-times
    /// with share-of-total, counters, and per-thread imbalance.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== profile: {} (threads={}, wall {}{})\n",
            self.command,
            if self.threads == 0 {
                "all".to_string()
            } else {
                self.threads.to_string()
            },
            fmt_ns(self.wall_ns),
            match self.peak_rss_bytes {
                Some(b) => format!(", peak RSS {}", fmt_bytes(b)),
                None => String::new(),
            }
        ));
        if !self.stages.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>6} {:>12} {:>8}\n",
                "stage", "calls", "wall", "% wall"
            ));
            for s in &self.stages {
                let pct = if self.wall_ns > 0 {
                    100.0 * s.ns as f64 / self.wall_ns as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{:<28} {:>6} {:>12} {:>7.1}%\n",
                    s.path,
                    s.calls,
                    fmt_ns(s.ns),
                    pct
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<28} {:>12}\n", "counter", "value"));
            for (k, v) in &self.counters {
                out.push_str(&format!("{k:<28} {v:>12}\n"));
            }
        }
        for (path, per_worker) in &self.workers {
            if per_worker.is_empty() {
                continue;
            }
            let max = per_worker.iter().copied().max().unwrap_or(0);
            let mean = per_worker.iter().sum::<u64>() as f64 / per_worker.len() as f64;
            let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
            let times: Vec<String> = per_worker.iter().map(|&ns| fmt_ns(ns)).collect();
            out.push_str(&format!(
                "workers[{path}]: [{}]  max/mean {imbalance:.2}\n",
                times.join(", ")
            ));
        }
        out
    }
}

/// Human-readable duration.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Human-readable byte count.
fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

/// Peak resident set size of this process, in bytes, sampled from
/// `/proc/self/status` (`VmHWM`). `None` where the platform does not
/// expose it — metrics documents then carry `"peak_rss_bytes":null`.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Validate a `difftrace-metrics/v1` document: well-formed JSON with
/// every schema field present and correctly typed. Returns a
/// human-readable description of the first violation.
pub fn validate_json(doc: &str) -> Result<(), String> {
    use json::Value;
    let v = json::parse(doc)?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    let field = |name: &str| -> Result<&Value, String> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{name}`"))
    };
    match field("schema")? {
        Value::Str(s) if s == SCHEMA => {}
        other => return Err(format!("bad `schema`: {other:?} (want \"{SCHEMA}\")")),
    }
    if !matches!(field("command")?, Value::Str(_)) {
        return Err("`command` is not a string".into());
    }
    for key in ["threads", "wall_ns"] {
        if !matches!(field(key)?, Value::Num(_)) {
            return Err(format!("`{key}` is not a number"));
        }
    }
    if !matches!(field("peak_rss_bytes")?, Value::Num(_) | Value::Null) {
        return Err("`peak_rss_bytes` is not a number or null".into());
    }
    let stages = field("stages")?
        .as_array()
        .ok_or("`stages` is not an array")?;
    for (i, s) in stages.iter().enumerate() {
        let s = s
            .as_object()
            .ok_or_else(|| format!("stages[{i}] is not an object"))?;
        let want = [("path", false), ("ns", true), ("calls", true)];
        for (key, numeric) in want {
            let v = s
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("stages[{i}] missing `{key}`"))?;
            let ok = if numeric {
                matches!(v, Value::Num(_))
            } else {
                matches!(v, Value::Str(_))
            };
            if !ok {
                return Err(format!("stages[{i}].{key} has the wrong type"));
            }
        }
    }
    let counters = field("counters")?
        .as_object()
        .ok_or("`counters` is not an object")?;
    for (k, v) in counters {
        if !matches!(v, Value::Num(_)) {
            return Err(format!("counter `{k}` is not a number"));
        }
    }
    let workers = field("workers")?
        .as_object()
        .ok_or("`workers` is not an object")?;
    for (k, v) in workers {
        let arr = v
            .as_array()
            .ok_or_else(|| format!("workers[`{k}`] is not an array"))?;
        if arr.iter().any(|x| !matches!(x, Value::Num(_))) {
            return Err(format!("workers[`{k}`] has a non-numeric element"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_inert() {
        assert!(!NOOP.enabled());
        {
            let _t = stage(&NOOP, "anything");
        }
        NOOP.add("c", 3);
        NOOP.worker_ns("p", 0, 5);
        // Nothing to observe — the point is that this compiles to
        // nothing and panics nowhere.
    }

    #[test]
    fn recorder_aggregates_spans_and_counters() {
        let rec = MetricsRecorder::new();
        rec.span_ns("diff/nlr", 100);
        rec.span_ns("diff/nlr", 50);
        rec.span_ns("diff/filter", 7);
        rec.add("events_kept", 10);
        rec.add("events_kept", 5);
        rec.worker_ns("diff/mine", 1, 30);
        rec.worker_ns("diff/mine", 0, 20);
        let m = rec.finish("diff", 4);
        assert_eq!(m.command, "diff");
        assert_eq!(m.threads, 4);
        let nlr = m.stages.iter().find(|s| s.path == "diff/nlr").unwrap();
        assert_eq!((nlr.ns, nlr.calls), (150, 2));
        assert_eq!(m.counters, vec![("events_kept".to_string(), 15)]);
        assert_eq!(m.workers, vec![("diff/mine".to_string(), vec![20, 30])]);
        // Stage paths come out sorted.
        let paths: Vec<&str> = m.stages.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["diff/filter", "diff/nlr"]);
    }

    #[test]
    fn stage_guard_times_only_when_enabled() {
        let rec = MetricsRecorder::new();
        {
            let _t = stage(&rec, "s");
        }
        {
            let _t = stage_owned(&rec, format!("cell/{}", 3));
        }
        let m = rec.finish("t", 1);
        assert_eq!(m.stages.len(), 2);
        assert!(m.stages.iter().any(|s| s.path == "cell/3"));
    }

    #[test]
    fn json_round_trips_the_schema() {
        let rec = MetricsRecorder::new();
        rec.span_ns("a/b", 12);
        rec.add("n \"quoted\"", 1);
        rec.worker_ns("a/b", 0, 12);
        let doc = rec.finish("diff", 0).to_json();
        validate_json(&doc).unwrap();
        assert!(doc.ends_with('\n'));
        assert!(doc.contains("\"schema\":\"difftrace-metrics/v1\""));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json("[1,2]").is_err());
        // Wrong schema tag.
        let wrong = Metrics {
            command: "x".into(),
            threads: 1,
            wall_ns: 1,
            peak_rss_bytes: None,
            stages: vec![],
            counters: vec![],
            workers: vec![],
        }
        .to_json()
        .replace("metrics/v1", "metrics/v9");
        assert!(validate_json(&wrong).is_err());
        // Field with the wrong type.
        let bad = "{\"schema\":\"difftrace-metrics/v1\",\"command\":7,\"threads\":1,\
                   \"wall_ns\":1,\"peak_rss_bytes\":null,\"stages\":[],\"counters\":{},\
                   \"workers\":{}}";
        assert!(validate_json(bad).unwrap_err().contains("command"));
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("linux exposes VmHWM");
            assert!(rss > 0);
        }
    }

    #[test]
    fn table_renders_all_sections() {
        let rec = MetricsRecorder::new();
        rec.span_ns("filter", 1_500_000);
        rec.add("events_kept", 42);
        rec.worker_ns("mine", 0, 1_000);
        rec.worker_ns("mine", 1, 3_000);
        let t = rec.finish("diff", 2).render_table();
        assert!(t.contains("== profile: diff"), "{t}");
        assert!(t.contains("filter"), "{t}");
        assert!(t.contains("events_kept"), "{t}");
        assert!(t.contains("workers[mine]"), "{t}");
        assert!(t.contains("max/mean"), "{t}");
    }

    /// The live-counter probe reads without consuming: values keep
    /// accumulating afterwards, and a later `finish` still sees
    /// everything.
    #[test]
    fn live_counter_snapshot_is_nondestructive() {
        let rec = MetricsRecorder::new();
        assert_eq!(rec.counter("requests"), 0);
        assert!(rec.counters().is_empty());
        rec.add("requests", 2);
        rec.add("cache_hits", 1);
        assert_eq!(rec.counter("requests"), 2);
        assert_eq!(
            rec.counters(),
            vec![("cache_hits".to_string(), 1), ("requests".to_string(), 2)]
        );
        rec.add("requests", 1);
        assert_eq!(rec.counter("requests"), 3);
        let m = rec.finish("serve", 1);
        assert!(m.counters.contains(&("requests".to_string(), 3)));
    }
}
