//! The wire protocol of `difftrace serve`: line-delimited JSON over a
//! TCP stream.
//!
//! Each request is ONE line holding ONE JSON object; each reply is one
//! line too. Requests carry an `id` the reply echoes, so a client may
//! pipeline several requests on one connection and match answers.
//!
//! ```text
//! → {"id":1,"cmd":"lint","corpus":"faulty","format":"json"}
//! ← {"id":1,"ok":true,"errors":2,"output":"{…}\n"}
//! → {"id":2,"cmd":"nonsense"}
//! ← {"id":2,"ok":false,"error":"unknown command `nonsense` (…)"}
//! ```
//!
//! The `output` field of a successful reply is byte-for-byte what the
//! one-shot CLI would have printed to stdout for the same query — the
//! serve-equivalence suite holds the daemon to that.
//!
//! Malformed frames (bad JSON, unknown fields, wrong types) get a
//! diagnosed `ok:false` reply — never a dropped connection, never a
//! daemon crash.

use dt_obs::json::{self, Value};

/// Commands the daemon answers, in help order.
pub const COMMANDS: &[&str] = &[
    "lint",
    "hbcheck",
    "racecheck",
    "reqcheck",
    "diff",
    "fleet",
    "single",
    "metrics",
    "shutdown",
];

/// One parsed request frame. Fields mirror the one-shot CLI flags of
/// the matching subcommand; absent fields take that subcommand's
/// defaults, so a minimal request reproduces the minimal CLI call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Request {
    /// Echoed in the reply (defaults to 0).
    pub id: u64,
    /// One of [`COMMANDS`].
    pub cmd: String,
    /// Corpus name for single-corpus queries.
    pub corpus: Option<String>,
    /// Reference corpus for `diff`.
    pub normal: Option<String>,
    /// Candidate corpus for `diff`.
    pub faulty: Option<String>,
    /// Fleet member corpora for `fleet` (≥ 2).
    pub corpora: Vec<String>,
    /// `fleet`'s `--suspect` run name.
    pub suspect: Option<String>,
    /// `text` (default) or `json` — check-command report format.
    pub format: Option<String>,
    /// `expanded` or `compressed` — check-command analysis domain.
    pub domain: Option<String>,
    /// Lint's `--deep` switch.
    pub deep: bool,
    /// Filter code (lenient for `lint`, strict elsewhere).
    pub filter: Option<String>,
    /// Attribute code for `diff`/`single`.
    pub attrs: Option<String>,
    /// Linkage name for `diff`.
    pub linkage: Option<String>,
    /// Flat-cluster count for `single` (0 = automatic).
    pub k: Option<usize>,
    /// Worker-thread knob, like the CLI `--threads`.
    pub threads: Option<usize>,
    /// Restrict `lint`/`single` to one trace (`"P.T"`) — the lazy
    /// store decodes only that trace.
    pub trace: Option<String>,
    /// diffNLR target override for `diff` (`"P.T"`).
    pub diffnlr: Option<String>,
    /// `diff`'s `--full` report switch.
    pub full: bool,
}

/// One parsed reply frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Response {
    /// The request's `id`, echoed back.
    pub id: u64,
    /// Did the query run?
    pub ok: bool,
    /// Error-severity diagnostic count (check commands; 0 elsewhere).
    pub errors: u64,
    /// Exactly what the one-shot CLI prints to stdout (when `ok`).
    pub output: String,
    /// The diagnosis (when `!ok`).
    pub error: String,
}

fn as_str(v: &Value, field: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("malformed request: `{field}` must be a string")),
    }
}

fn as_bool(v: &Value, field: &str) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("malformed request: `{field}` must be a boolean")),
    }
}

fn as_str_array(v: &Value, field: &str) -> Result<Vec<String>, String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("malformed request: `{field}` must be an array of strings"))?;
    arr.iter()
        .map(|e| match e {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(format!(
                "malformed request: `{field}` must be an array of strings"
            )),
        })
        .collect()
}

fn as_uint(v: &Value, field: &str) -> Result<u64, String> {
    match v {
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => Ok(*n as u64),
        _ => Err(format!(
            "malformed request: `{field}` must be a non-negative integer"
        )),
    }
}

/// Parse one request line. Every failure is a diagnosed message fit
/// for an `ok:false` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let obj = v
        .as_object()
        .ok_or("malformed request: frame is not a JSON object")?;
    let mut req = Request::default();
    let mut cmd_seen = false;
    for (key, val) in obj {
        match key.as_str() {
            "id" => req.id = as_uint(val, "id")?,
            "cmd" => {
                req.cmd = as_str(val, "cmd")?;
                cmd_seen = true;
            }
            "corpus" => req.corpus = Some(as_str(val, "corpus")?),
            "normal" => req.normal = Some(as_str(val, "normal")?),
            "faulty" => req.faulty = Some(as_str(val, "faulty")?),
            "corpora" => req.corpora = as_str_array(val, "corpora")?,
            "suspect" => req.suspect = Some(as_str(val, "suspect")?),
            "format" => req.format = Some(as_str(val, "format")?),
            "domain" => req.domain = Some(as_str(val, "domain")?),
            "deep" => req.deep = as_bool(val, "deep")?,
            "filter" => req.filter = Some(as_str(val, "filter")?),
            "attrs" => req.attrs = Some(as_str(val, "attrs")?),
            "linkage" => req.linkage = Some(as_str(val, "linkage")?),
            "k" => req.k = Some(as_uint(val, "k")? as usize),
            "threads" => req.threads = Some(as_uint(val, "threads")? as usize),
            "trace" => req.trace = Some(as_str(val, "trace")?),
            "diffnlr" => req.diffnlr = Some(as_str(val, "diffnlr")?),
            "full" => req.full = as_bool(val, "full")?,
            other => return Err(format!("malformed request: unknown field `{other}`")),
        }
    }
    if !cmd_seen {
        return Err("malformed request: missing `cmd` field".to_string());
    }
    if !COMMANDS.contains(&req.cmd.as_str()) {
        return Err(format!(
            "unknown command `{}` (expected one of: {})",
            req.cmd,
            COMMANDS.join(", ")
        ));
    }
    Ok(req)
}

/// Serialise a request as one wire line (no trailing newline) — the
/// client side of [`parse_request`].
pub fn request_line(req: &Request) -> String {
    let mut out = format!("{{\"id\":{},\"cmd\":\"{}\"", req.id, json::escape(&req.cmd));
    for (key, val) in [
        ("corpus", &req.corpus),
        ("normal", &req.normal),
        ("faulty", &req.faulty),
        ("suspect", &req.suspect),
        ("format", &req.format),
        ("domain", &req.domain),
        ("filter", &req.filter),
        ("attrs", &req.attrs),
        ("linkage", &req.linkage),
        ("trace", &req.trace),
        ("diffnlr", &req.diffnlr),
    ] {
        if let Some(v) = val {
            out.push_str(&format!(",\"{key}\":\"{}\"", json::escape(v)));
        }
    }
    if !req.corpora.is_empty() {
        out.push_str(",\"corpora\":[");
        for (i, c) in req.corpora.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json::escape(c)));
        }
        out.push(']');
    }
    if let Some(k) = req.k {
        out.push_str(&format!(",\"k\":{k}"));
    }
    if let Some(t) = req.threads {
        out.push_str(&format!(",\"threads\":{t}"));
    }
    if req.deep {
        out.push_str(",\"deep\":true");
    }
    if req.full {
        out.push_str(",\"full\":true");
    }
    out.push('}');
    out
}

/// A successful reply line (no trailing newline).
pub fn ok_line(id: u64, output: &str, errors: u64) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"errors\":{errors},\"output\":\"{}\"}}",
        json::escape(output)
    )
}

/// A failed reply line (no trailing newline).
pub fn err_line(id: u64, error: &str) -> String {
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}",
        json::escape(error)
    )
}

/// Parse one reply line — the client side of [`ok_line`]/[`err_line`].
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = json::parse(line).map_err(|e| format!("malformed response: {e}"))?;
    let obj = v
        .as_object()
        .ok_or("malformed response: frame is not a JSON object")?;
    let mut resp = Response::default();
    let mut ok_seen = false;
    for (key, val) in obj {
        match key.as_str() {
            "id" => resp.id = as_uint(val, "id")?,
            "ok" => {
                resp.ok = as_bool(val, "ok")?;
                ok_seen = true;
            }
            "errors" => resp.errors = as_uint(val, "errors")?,
            "output" => resp.output = as_str(val, "output")?,
            "error" => resp.error = as_str(val, "error")?,
            other => return Err(format!("malformed response: unknown field `{other}`")),
        }
    }
    if !ok_seen {
        return Err("malformed response: missing `ok` field".to_string());
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let fleet = Request {
            id: 11,
            cmd: "fleet".to_string(),
            corpora: vec![
                "run-0".to_string(),
                "run-1".to_string(),
                "fault".to_string(),
            ],
            suspect: Some("fault".to_string()),
            threads: Some(2),
            format: Some("json".to_string()),
            ..Request::default()
        };
        let line = request_line(&fleet);
        assert_eq!(parse_request(&line).unwrap(), fleet);

        let req = Request {
            id: 7,
            cmd: "lint".to_string(),
            corpus: Some("faulty".to_string()),
            format: Some("json".to_string()),
            domain: Some("compressed".to_string()),
            deep: true,
            filter: Some("11.all.K10".to_string()),
            threads: Some(4),
            trace: Some("1.0".to_string()),
            ..Request::default()
        };
        let line = request_line(&req);
        assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn response_round_trips_with_tricky_output_bytes() {
        let out = "line one\nline \"two\"\t\\done\n";
        let line = ok_line(3, out, 2);
        let resp = parse_response(&line).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.id, 3);
        assert_eq!(resp.errors, 2);
        assert_eq!(resp.output, out);
        let err = parse_response(&err_line(9, "bad `thing`")).unwrap();
        assert!(!err.ok);
        assert_eq!(err.error, "bad `thing`");
    }

    #[test]
    fn malformed_frames_are_diagnosed() {
        for (frame, needle) in [
            ("", "malformed request"),
            ("not json", "malformed request"),
            ("[1,2]", "not a JSON object"),
            ("{\"id\":1}", "missing `cmd`"),
            ("{\"cmd\":\"launch-missiles\"}", "unknown command"),
            ("{\"cmd\":\"lint\",\"bogus\":1}", "unknown field `bogus`"),
            ("{\"cmd\":\"lint\",\"id\":\"x\"}", "`id` must be"),
            ("{\"cmd\":\"lint\",\"deep\":3}", "`deep` must be"),
            ("{\"cmd\":\"lint\",\"k\":-2}", "`k` must be"),
            ("{\"cmd\":7}", "`cmd` must be a string"),
            (
                "{\"cmd\":\"fleet\",\"corpora\":\"x\"}",
                "`corpora` must be an array",
            ),
            (
                "{\"cmd\":\"fleet\",\"corpora\":[1]}",
                "`corpora` must be an array of strings",
            ),
            (
                "{\"cmd\":\"fleet\",\"suspect\":4}",
                "`suspect` must be a string",
            ),
        ] {
            let err = parse_request(frame).unwrap_err();
            assert!(err.contains(needle), "{frame} → {err}");
        }
    }
}
