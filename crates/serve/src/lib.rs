//! `dt-serve` — the DiffTrace analysis daemon.
//!
//! One-shot `difftrace` invocations pay the whole corpus cost on every
//! query: read the file, decode every blob, analyze, exit. For
//! interactive debugging loops ("lint this, now diff those, now show
//! me trace 3.1") that load dominates. `difftrace serve` amortizes it:
//! the daemon opens each corpus ONCE behind a
//! [`dt_trace::store::IndexedSet`] — the `.dtts` v3 per-trace offset
//! index means *opening* decodes nothing — and answers queries over a
//! line-delimited JSON protocol on TCP ([`protocol`]). Traces decode
//! lazily on first touch and stay cached; a shared [`dt_cache::Cache`]
//! carries intermediate analysis artifacts across requests; a bounded
//! [`difftrace::sync::Pool`] schedules the actual analyses.
//!
//! The contract that makes the daemon trustworthy: **every served
//! reply's `output` is byte-identical to what the one-shot CLI prints
//! for the same query**, at any worker count and any request
//! interleaving. The [`render`] module is how — the CLI and the server
//! share one renderer per command — and the serve-equivalence suite in
//! `crates/cli/tests` is the proof.

pub mod protocol;
pub mod render;
pub mod server;

pub use protocol::{
    err_line, ok_line, parse_request, parse_response, request_line, Request, Response, COMMANDS,
};
pub use server::{ServeConfig, Server};
