//! The daemon: corpora behind lazily-decoded [`IndexedSet`]s, a
//! persistent [`difftrace::sync::Pool`] scheduling query execution, a
//! shared in-memory analysis cache as the cross-request hot set, and a
//! live [`MetricsRecorder`] the `metrics` query snapshots.
//!
//! Concurrency model: one OS thread per *connection* reads frames and
//! writes replies in order; each query's analysis runs as one job on
//! the worker pool, so at most `jobs` analyses execute at once no
//! matter how many clients connect. Every analysis entry point used
//! here is observational-deterministic (byte-identical output at any
//! thread count), and per-corpus decode caches are interior-mutable
//! behind per-trace once-cells — so replies are byte-identical to the
//! one-shot CLI at any interleaving, which the serve-equivalence suite
//! enforces.

use crate::protocol::{self, Request};
use crate::render;
use difftrace::sync::Pool;
use difftrace::{
    hbcheck_set, lint_set, racecheck_set, reqcheck_set_rec, AttrConfig, AttrKind, FilterConfig,
    FreqMode, HbOptions, LintDomain, LintGate, LintOptions, Params, PipelineOptions, RaceOptions,
    ReqOptions,
};
use dt_cache::Cache;
use dt_obs::{MetricsRecorder, Recorder};
use dt_trace::store::IndexedSet;
use dt_trace::TraceSet;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What to serve and how.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:4178` (`:0` picks a free port).
    pub addr: String,
    /// Named corpora: `(name, path-to-.dtts)`.
    pub corpora: Vec<(String, PathBuf)>,
    /// Worker-pool size (`0` = all available parallelism).
    pub jobs: usize,
    /// Persist the shared analysis cache here (in-memory when `None`).
    pub cache_dir: Option<PathBuf>,
}

struct State {
    corpora: BTreeMap<String, IndexedSet>,
    cache: Arc<Cache>,
    rec: MetricsRecorder,
    pool: Pool,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// A bound (not yet running) daemon. Splitting bind from run lets the
/// caller learn the actual port (`:0` requests) before serving, and
/// lets tests run the accept loop on a thread they control.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Load every corpus lazily, open the cache, spawn the pool, and
    /// bind the socket. No request runs yet.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, String> {
        if cfg.corpora.is_empty() {
            return Err("nothing to serve: no corpora given".to_string());
        }
        let mut corpora = BTreeMap::new();
        for (name, path) in &cfg.corpora {
            let ix = IndexedSet::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
            if corpora.insert(name.clone(), ix).is_some() {
                return Err(format!("duplicate corpus name `{name}`"));
            }
        }
        let cache = match &cfg.cache_dir {
            None => Arc::new(Cache::new()),
            Some(d) => Arc::new(
                Cache::with_dir(d).map_err(|e| format!("opening cache {}: {e}", d.display()))?,
            ),
        };
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("resolving listen address: {e}"))?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                corpora,
                cache,
                rec: MetricsRecorder::new(),
                pool: Pool::new(cfg.jobs),
                stop: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (with the real port when `:0` was asked for).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Worker-pool size actually spawned.
    pub fn workers(&self) -> usize {
        self.state.pool.threads()
    }

    /// Corpus names being served, sorted.
    pub fn corpus_names(&self) -> Vec<String> {
        self.state.corpora.keys().cloned().collect()
    }

    /// Accept connections until a `shutdown` request arrives. Each
    /// connection gets its own reader thread; replies to one
    /// connection go out in request order. Connection threads are
    /// detached, not joined: an idle client blocked in a read must not
    /// be able to hold up shutdown. They share only the `Arc`'d state,
    /// which outlives this call, and die when their client disconnects.
    pub fn run(self) -> Result<(), String> {
        for stream in self.listener.incoming() {
            if self.state.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
        Ok(())
    }
}

fn handle_connection(state: &Arc<State>, stream: TcpStream) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = answer(state, &line);
        if writeln!(writer, "{reply}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// One frame in, one reply line out. Never panics the daemon: parse
/// failures become diagnosed error replies, and a panicking analysis
/// job is caught at the pool boundary and reported as an error too.
fn answer(state: &Arc<State>, line: &str) -> String {
    state.rec.add("requests", 1);
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(e) => {
            state.rec.add("requests_malformed", 1);
            return protocol::err_line(0, &e);
        }
    };
    state.rec.add(&format!("requests_{}", req.cmd), 1);
    let id = req.id;
    match req.cmd.as_str() {
        // Control-plane commands answer inline — they must not queue
        // behind long analyses.
        "metrics" => protocol::ok_line(id, &metrics_text(state), 0),
        "shutdown" => {
            state.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so `run` can join and return.
            let _ = TcpStream::connect(state.addr);
            protocol::ok_line(id, "shutting down\n", 0)
        }
        _ => {
            let st = Arc::clone(state);
            let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                state.pool.run(move || execute(&st, &req))
            }));
            match ran {
                Ok(Ok((output, errors))) => protocol::ok_line(id, &output, errors as u64),
                Ok(Err(e)) => {
                    state.rec.add("requests_failed", 1);
                    protocol::err_line(id, &e)
                }
                Err(_) => {
                    state.rec.add("requests_panicked", 1);
                    protocol::err_line(id, "internal error: query panicked (daemon still up)")
                }
            }
        }
    }
}

/// `GET /metrics`-style text: one `name value` line per counter, the
/// live dt-obs counters plus the store-level decode tally and corpus
/// count. Deterministic for a given request history.
fn metrics_text(state: &State) -> String {
    let mut counters: BTreeMap<String, u64> = state.rec.counters().into_iter().collect();
    counters.insert(
        "store_trace_decodes".to_string(),
        state.corpora.values().map(|ix| ix.decode_count()).sum(),
    );
    counters.insert("corpora".to_string(), state.corpora.len() as u64);
    counters.insert("workers".to_string(), state.pool.threads() as u64);
    let mut out = String::new();
    for (k, v) in counters {
        out.push_str(&format!("{k} {v}\n"));
    }
    out
}

fn corpus<'s>(
    state: &'s State,
    name: &Option<String>,
    field: &str,
) -> Result<&'s IndexedSet, String> {
    let name = name
        .as_deref()
        .ok_or_else(|| format!("request needs a `{field}` field"))?;
    state.corpora.get(name).ok_or_else(|| {
        format!(
            "unknown corpus `{name}` (serving: {})",
            state.corpora.keys().cloned().collect::<Vec<_>>().join(", ")
        )
    })
}

/// The set a query analyzes: the whole corpus (decoded once, shared
/// across requests) or a lazily-decoded single-trace subset.
enum WorkingSet {
    Full(Arc<TraceSet>),
    Sub(TraceSet),
}

impl WorkingSet {
    fn as_set(&self) -> &TraceSet {
        match self {
            WorkingSet::Full(s) => s,
            WorkingSet::Sub(s) => s,
        }
    }
}

fn working_set(ix: &IndexedSet, trace: &Option<String>) -> Result<WorkingSet, String> {
    match trace {
        None => Ok(WorkingSet::Full(ix.full_set().map_err(|e| e.to_string())?)),
        Some(spec) => {
            let id = render::parse_trace_id(spec)?;
            Ok(WorkingSet::Sub(
                ix.subset(&[id]).map_err(|e| e.to_string())?,
            ))
        }
    }
}

fn format_of(req: &Request) -> Result<&str, String> {
    match req.format.as_deref() {
        None => Ok("text"),
        Some(f @ ("text" | "json")) => Ok(f),
        Some(other) => Err(format!("unknown format `{other}` (text|json)")),
    }
}

fn domain_of(req: &Request, dflt: LintDomain) -> Result<LintDomain, String> {
    match req.domain.as_deref() {
        None => Ok(dflt),
        Some(d) => LintDomain::parse(d),
    }
}

fn no_trace_field(req: &Request) -> Result<(), String> {
    if req.trace.is_some() {
        return Err(format!(
            "`trace` is only supported for lint and single queries, not `{}`",
            req.cmd
        ));
    }
    Ok(())
}

fn params_of(req: &Request) -> Result<Params, String> {
    let filter = match &req.filter {
        Some(f) => f.parse::<FilterConfig>()?,
        None => FilterConfig::everything(10),
    };
    let attrs = match &req.attrs {
        Some(a) => a.parse::<AttrConfig>()?,
        None => AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    };
    let linkage = match &req.linkage {
        Some(name) => cluster::Method::ALL
            .into_iter()
            .find(|m| m.name() == name.as_str())
            .ok_or_else(|| format!("unknown linkage `{name}`"))?,
        None => cluster::Method::Ward,
    };
    Ok(Params {
        filter,
        attrs,
        linkage,
    })
}

/// Run one analysis query. Returns `(stdout-equivalent output,
/// error-severity diagnostic count)`.
fn execute(state: &State, req: &Request) -> Result<(String, usize), String> {
    let rec: &dyn Recorder = &state.rec;
    match req.cmd.as_str() {
        "lint" => {
            let ix = corpus(state, &req.corpus, "corpus")?;
            let format = format_of(req)?;
            let mut opts = LintOptions::default();
            opts.domain = domain_of(req, opts.domain)?;
            opts.deep = req.deep;
            if let Some(t) = req.threads {
                opts.threads = t;
            }
            if let Some(f) = &req.filter {
                opts.filter = Some(FilterConfig::parse_lenient(f)?);
            }
            let ws = working_set(ix, &req.trace)?;
            let report = lint_set(ws.as_set(), &opts);
            let out = if format == "json" {
                report.render_json()
            } else {
                report.render_text()
            };
            Ok((out, report.error_count()))
        }
        "hbcheck" => {
            no_trace_field(req)?;
            let ix = corpus(state, &req.corpus, "corpus")?;
            let format = format_of(req)?;
            if ix.hb().world_size() == 0 {
                return Err(format!(
                    "corpus `{}`: no happens-before section — re-record the run (e.g. \
                     `difftrace demo`) to get one",
                    req.corpus.as_deref().unwrap_or_default()
                ));
            }
            let mut opts = HbOptions::default();
            opts.domain = domain_of(req, opts.domain)?;
            if let Some(t) = req.threads {
                opts.threads = t;
            }
            let set = ix.full_set().map_err(|e| e.to_string())?;
            let report = hbcheck_set(&set, ix.hb(), &opts);
            let out = if format == "json" {
                report.render_json()
            } else {
                report.render_text()
            };
            Ok((out, report.error_count()))
        }
        "racecheck" => {
            no_trace_field(req)?;
            let ix = corpus(state, &req.corpus, "corpus")?;
            let format = format_of(req)?;
            let mut opts = RaceOptions::default();
            opts.domain = domain_of(req, opts.domain)?;
            if let Some(t) = req.threads {
                opts.threads = t;
            }
            let set = ix.full_set().map_err(|e| e.to_string())?;
            let report = racecheck_set(&set, &opts);
            let out = if format == "json" {
                report.render_json()
            } else {
                report.render_text()
            };
            Ok((out, report.error_count()))
        }
        "reqcheck" => {
            no_trace_field(req)?;
            let ix = corpus(state, &req.corpus, "corpus")?;
            let format = format_of(req)?;
            let mut opts = ReqOptions::default();
            opts.domain = domain_of(req, opts.domain)?;
            if let Some(t) = req.threads {
                opts.threads = t;
            }
            let set = ix.full_set().map_err(|e| e.to_string())?;
            let report = reqcheck_set_rec(&set, &opts, rec);
            let out = if format == "json" {
                report.render_json()
            } else {
                report.render_text()
            };
            Ok((out, report.error_count()))
        }
        "fleet" => {
            no_trace_field(req)?;
            if req.corpora.len() < 2 {
                return Err(format!(
                    "fleet needs at least 2 corpora, got {}",
                    req.corpora.len()
                ));
            }
            let params = params_of(req)?;
            let format = format_of(req)?;
            let opts = difftrace::FleetOptions {
                threads: req.threads.unwrap_or(0),
                cache: Some(Arc::clone(&state.cache)),
            };
            let mut fleet = difftrace::FleetRun::new(params.clone());
            for name in &req.corpora {
                let ix = state.corpora.get(name).ok_or_else(|| {
                    format!(
                        "unknown corpus `{name}` (serving: {})",
                        state.corpora.keys().cloned().collect::<Vec<_>>().join(", ")
                    )
                })?;
                let set = ix.full_set().map_err(|e| e.to_string())?;
                fleet
                    .add_run_rec(name, &set, &opts, rec)
                    .map_err(|e| e.to_string())?;
            }
            let report = fleet.report();
            let out = render::fleet_summary(&report, &params, req.suspect.as_deref(), format)?;
            Ok((out, usize::from(report.outlier.is_some())))
        }
        "single" => {
            let ix = corpus(state, &req.corpus, "corpus")?;
            let params = params_of(req)?;
            let k = req.k.unwrap_or(0);
            let ws = working_set(ix, &req.trace)?;
            let popts = PipelineOptions {
                threads: req.threads.unwrap_or(1),
                cache: Some(Arc::clone(&state.cache)),
                ..PipelineOptions::default()
            };
            let set = ws.as_set();
            let report = difftrace::analyze_single_opts_rec(set, &params, k, &popts, rec);
            Ok((render::single_summary(set.len(), &report), 0))
        }
        "diff" => {
            no_trace_field(req)?;
            let normal_ix = corpus(state, &req.normal, "normal")?;
            let faulty_ix = corpus(state, &req.faulty, "faulty")?;
            let params = params_of(req)?;
            let diffnlr = match &req.diffnlr {
                Some(spec) => Some(render::parse_trace_id(spec)?),
                None => None,
            };
            let normal = normal_ix.full_set().map_err(|e| e.to_string())?;
            let faulty = faulty_ix.full_set().map_err(|e| e.to_string())?;
            let popts = PipelineOptions {
                threads: req.threads.unwrap_or(0),
                lint: LintGate::Off,
                hb: LintGate::Off,
                race: LintGate::Off,
                req: LintGate::Off,
                cache: Some(Arc::clone(&state.cache)),
            };
            let Ok(d) =
                difftrace::try_diff_runs_hb_rec(&normal, &faulty, None, &params, &popts, rec)
            else {
                unreachable!("gates are off");
            };
            let out = if req.full {
                difftrace::generate_report(&d, &difftrace::ReportOptions::default())
            } else {
                render::diff_summary(&d, &params, diffnlr)
            };
            Ok((out, 0))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
