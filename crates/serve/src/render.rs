//! Stdout renderers shared by the one-shot CLI and the daemon.
//!
//! The serve contract is *byte identity*: a served reply's `output`
//! must equal what `difftrace <cmd> …` prints for the same query. The
//! only safe way to keep two front ends byte-identical is to make them
//! call the same code — so the `diff` and `single` summaries, which
//! used to be inline `println!`s in the CLI, live here and both sides
//! render through them. (The check commands need no shared helper:
//! their whole stdout is `Report::render_text`/`render_json`, already
//! one function.)

use difftrace::{DiffRun, Params, SingleRunReport};
use dt_trace::TraceId;

/// The default `difftrace diff` summary: params echo, B-score,
/// suspect lists, and the diffNLR view of `diffnlr` (or, when `None`,
/// of the top suspicious thread).
pub fn diff_summary(d: &DiffRun, params: &Params, diffnlr: Option<TraceId>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "params: {} {} {}\n",
        params.filter,
        params.attrs,
        params.linkage.name()
    ));
    out.push_str(&format!("B-score: {:.3}\n", d.bscore));
    out.push_str(&format!(
        "suspicious processes: {:?}\n",
        d.suspicious_processes
    ));
    out.push_str(&format!(
        "suspicious threads:   {}\n",
        d.suspicious_threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let target = diffnlr.or_else(|| d.suspicious_threads.first().copied());
    if let Some(id) = target {
        match d.diff_nlr(id) {
            Some(dn) => out.push_str(&format!("\n{dn}\n")),
            None => out.push_str(&format!("\n(no trace {id} in both runs)\n")),
        }
    }
    out
}

/// The `difftrace single` summary: cluster membership plus the
/// outlier verdict. `set_len` is the analyzed trace count.
pub fn single_summary(set_len: usize, report: &SingleRunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} traces, {} clusters:\n",
        set_len,
        report.clusters.len()
    ));
    for (i, c) in report.clusters.iter().enumerate() {
        out.push_str(&format!(
            "  cluster {i} ({} traces): {}\n",
            c.len(),
            c.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if report.outliers.is_empty() {
        out.push_str("no outliers — the execution looks homogeneous\n");
    } else {
        out.push_str(&format!(
            "outliers: {}\n",
            report
                .outliers
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out
}

/// Parse a `"P.T"` trace spec — the `--trace`/`--diffnlr` value and
/// the wire `trace`/`diffnlr` fields go through the same function.
pub fn parse_trace_id(spec: &str) -> Result<TraceId, String> {
    let (p, t) = spec
        .split_once('.')
        .ok_or_else(|| format!("trace spec wants P.T, got `{spec}`"))?;
    Ok(TraceId::new(
        p.parse().map_err(|_| "bad process id".to_string())?,
        t.parse().map_err(|_| "bad thread id".to_string())?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_spec_parses_and_diagnoses() {
        assert_eq!(parse_trace_id("3.1").unwrap(), TraceId::new(3, 1));
        assert!(parse_trace_id("31").is_err());
        assert!(parse_trace_id("a.b").is_err());
    }
}
