//! Stdout renderers shared by the one-shot CLI and the daemon.
//!
//! The serve contract is *byte identity*: a served reply's `output`
//! must equal what `difftrace <cmd> …` prints for the same query. The
//! only safe way to keep two front ends byte-identical is to make them
//! call the same code — so the `diff` and `single` summaries, which
//! used to be inline `println!`s in the CLI, live here and both sides
//! render through them. (The check commands need no shared helper:
//! their whole stdout is `Report::render_text`/`render_json`, already
//! one function.)

use difftrace::{DiffRun, FleetReport, Params, SingleRunReport};
use dt_obs::json;
use dt_trace::TraceId;

/// The default `difftrace diff` summary: params echo, B-score,
/// suspect lists, and the diffNLR view of `diffnlr` (or, when `None`,
/// of the top suspicious thread).
pub fn diff_summary(d: &DiffRun, params: &Params, diffnlr: Option<TraceId>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "params: {} {} {}\n",
        params.filter,
        params.attrs,
        params.linkage.name()
    ));
    out.push_str(&format!("B-score: {:.3}\n", d.bscore));
    out.push_str(&format!(
        "suspicious processes: {:?}\n",
        d.suspicious_processes
    ));
    out.push_str(&format!(
        "suspicious threads:   {}\n",
        d.suspicious_threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let target = diffnlr.or_else(|| d.suspicious_threads.first().copied());
    if let Some(id) = target {
        match d.diff_nlr(id) {
            Some(dn) => out.push_str(&format!("\n{dn}\n")),
            None => out.push_str(&format!("\n(no trace {id} in both runs)\n")),
        }
    }
    out
}

/// The `difftrace single` summary: cluster membership plus the
/// outlier verdict. `set_len` is the analyzed trace count.
pub fn single_summary(set_len: usize, report: &SingleRunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} traces, {} clusters:\n",
        set_len,
        report.clusters.len()
    ));
    for (i, c) in report.clusters.iter().enumerate() {
        out.push_str(&format!(
            "  cluster {i} ({} traces): {}\n",
            c.len(),
            c.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if report.outliers.is_empty() {
        out.push_str("no outliers — the execution looks homogeneous\n");
    } else {
        out.push_str(&format!(
            "outliers: {}\n",
            report
                .outliers
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out
}

/// How many per-trace deviations the fleet summary shows for the
/// top-ranked run.
const FLEET_TOP_TRACES: usize = 3;

/// The `difftrace fleet` summary, shared by the one-shot CLI and the
/// `fleet` daemon query: params echo, ranking table with the 2-way
/// cluster cut, the outlier verdict, and (when `--suspect` names a
/// run) where that run landed. `format` is `"text"` or `"json"`.
pub fn fleet_summary(
    report: &FleetReport,
    params: &Params,
    suspect: Option<&str>,
    format: &str,
) -> Result<String, String> {
    let suspect_rank = match suspect {
        None => None,
        Some(name) => Some(report.rank_of(name).ok_or_else(|| {
            format!(
                "suspect run `{name}` is not in the fleet (runs: {})",
                report
                    .runs
                    .iter()
                    .map(|r| r.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?),
    };
    let cluster_of = |name: &str| {
        report
            .clusters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    match format {
        "json" => {
            let mut out = String::from("{\"format\":\"difftrace-fleet/v1\"");
            out.push_str(&format!(
                ",\"runs\":{},\"traces\":{},\"objects\":{},\"concepts\":{},\"median\":{:.6}",
                report.runs.len(),
                report.universe.len(),
                report.objects,
                report.concepts,
                report.median
            ));
            match &report.outlier {
                Some(name) => {
                    out.push_str(&format!(",\"outlier\":\"{}\"", json::escape(name)));
                }
                None => out.push_str(",\"outlier\":null"),
            }
            out.push_str(",\"ranking\":[");
            for (i, r) in report.runs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"rank\":{},\"run\":\"{}\",\"score\":{:.6},\"cluster\":{},\"top_traces\":[",
                    i + 1,
                    json::escape(&r.name),
                    r.score,
                    cluster_of(&r.name)
                ));
                for (j, (id, dev)) in r.traces.iter().take(FLEET_TOP_TRACES).enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"trace\":\"{id}\",\"dev\":{dev:.6}}}"));
                }
                out.push_str("]}");
            }
            out.push(']');
            if let (Some(name), Some((rank, score))) = (suspect, suspect_rank) {
                out.push_str(&format!(
                    ",\"suspect\":{{\"run\":\"{}\",\"rank\":{rank},\"score\":{score:.6},\
                     \"is_outlier\":{}}}",
                    json::escape(name),
                    report.outlier.as_deref() == Some(name)
                ));
            }
            out.push_str("}\n");
            Ok(out)
        }
        "text" => {
            let mut out = String::new();
            out.push_str(&format!(
                "params: {} {} {}\n",
                params.filter,
                params.attrs,
                params.linkage.name()
            ));
            out.push_str(&format!(
                "fleet: {} runs × {} traces ({} objects, {} concepts)\n",
                report.runs.len(),
                report.universe.len(),
                report.objects,
                report.concepts
            ));
            out.push_str("rank  score     cluster  run\n");
            for (i, r) in report.runs.iter().enumerate() {
                out.push_str(&format!(
                    "{:>4}  {:.6}  {:>7}  {}\n",
                    i + 1,
                    r.score,
                    cluster_of(&r.name),
                    r.name
                ));
            }
            match &report.outlier {
                Some(name) => {
                    let top = &report.runs[0];
                    out.push_str(&format!(
                        "outlier: {name} (score {:.6} > 2 × median {:.6})\n",
                        top.score, report.median
                    ));
                    let traces = top
                        .traces
                        .iter()
                        .take(FLEET_TOP_TRACES)
                        .map(|(id, dev)| format!("{id} ({dev:.4})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push_str(&format!("  most deviant traces: {traces}\n"));
                }
                None => out.push_str("no outlier — the fleet looks homogeneous\n"),
            }
            if let (Some(name), Some((rank, score))) = (suspect, suspect_rank) {
                let verdict = if report.outlier.as_deref() == Some(name) {
                    "it IS the fleet outlier"
                } else {
                    "it is not the fleet outlier"
                };
                out.push_str(&format!(
                    "suspect {name}: ranked #{rank} of {} (score {score:.6}) — {verdict}\n",
                    report.runs.len()
                ));
            }
            Ok(out)
        }
        other => Err(format!("unknown format `{other}` (text|json)")),
    }
}

/// Parse a `"P.T"` trace spec — the `--trace`/`--diffnlr` value and
/// the wire `trace`/`diffnlr` fields go through the same function.
pub fn parse_trace_id(spec: &str) -> Result<TraceId, String> {
    let (p, t) = spec
        .split_once('.')
        .ok_or_else(|| format!("trace spec wants P.T, got `{spec}`"))?;
    Ok(TraceId::new(
        p.parse().map_err(|_| "bad process id".to_string())?,
        t.parse().map_err(|_| "bad thread id".to_string())?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_spec_parses_and_diagnoses() {
        assert_eq!(parse_trace_id("3.1").unwrap(), TraceId::new(3, 1));
        assert!(parse_trace_id("31").is_err());
        assert!(parse_trace_id("a.b").is_err());
    }
}
