//! Daemon behaviour tests: equivalence with direct library calls,
//! malformed-frame resilience, lazy decode accounting, concurrent
//! clients, clean shutdown.

use dt_serve::protocol::{self, Request};
use dt_serve::{render, ServeConfig, Server};
use dt_trace::{store, FunctionRegistry, TraceId};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

/// Record the demo oddeven pair into `<tmp>/{normal,faulty}.dtts` and
/// return the directory. Deterministic: the workloads are seeded.
fn demo_corpora(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dt_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let registry = Arc::new(FunctionRegistry::new());
    let normal = run_oddeven(&OddEvenConfig::paper(None), registry.clone());
    let faulty = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())),
        registry.clone(),
    );
    store::save_full(&normal.traces, &normal.hb, &dir.join("normal.dtts")).unwrap();
    store::save_full(&faulty.traces, &faulty.hb, &dir.join("faulty.dtts")).unwrap();
    dir
}

struct Daemon {
    addr: std::net::SocketAddr,
    handle: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl Daemon {
    fn start(dir: &std::path::Path, jobs: usize) -> Daemon {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            corpora: vec![
                ("normal".to_string(), dir.join("normal.dtts")),
                ("faulty".to_string(), dir.join("faulty.dtts")),
            ],
            jobs,
            cache_dir: None,
        };
        let server = Server::bind(&cfg).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            handle: Some(handle),
        }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(self.addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn shutdown(mut self) {
        let mut c = self.connect();
        let resp = c.roundtrip(&Request {
            id: 999,
            cmd: "shutdown".to_string(),
            ..Request::default()
        });
        assert!(resp.ok, "{}", resp.error);
        self.handle.take().unwrap().join().unwrap().unwrap();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            // Best-effort shutdown so a failing test doesn't hang.
            if let Ok(mut s) = TcpStream::connect(self.addr) {
                let _ = writeln!(s, "{{\"cmd\":\"shutdown\"}}");
            }
            let _ = h.join();
        }
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send_line(&mut self, line: &str) -> protocol::Response {
        writeln!(self.stream, "{line}").unwrap();
        self.stream.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        protocol::parse_response(reply.trim_end()).unwrap()
    }

    fn roundtrip(&mut self, req: &Request) -> protocol::Response {
        self.send_line(&protocol::request_line(req))
    }
}

fn req(cmd: &str, corpus: &str) -> Request {
    Request {
        id: 1,
        cmd: cmd.to_string(),
        corpus: Some(corpus.to_string()),
        ..Request::default()
    }
}

#[test]
fn check_queries_match_direct_library_calls() {
    let dir = demo_corpora("checks");
    let daemon = Daemon::start(&dir, 2);
    let mut c = daemon.connect();

    let set = store::load(&dir.join("faulty.dtts")).unwrap();
    let (hb_set, hb) = store::load_full(&dir.join("faulty.dtts")).unwrap();

    // lint, text and json.
    let expect = difftrace::lint_set(&set, &difftrace::LintOptions::default());
    let resp = c.roundtrip(&req("lint", "faulty"));
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.output, expect.render_text());
    assert_eq!(resp.errors as usize, expect.error_count());
    let mut jq = req("lint", "faulty");
    jq.format = Some("json".to_string());
    assert_eq!(c.roundtrip(&jq).output, expect.render_json());

    // hbcheck.
    let expect = difftrace::hbcheck_set(&hb_set, &hb, &difftrace::HbOptions::default());
    let resp = c.roundtrip(&req("hbcheck", "faulty"));
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.output, expect.render_text());

    // racecheck.
    let expect = difftrace::racecheck_set(&set, &difftrace::RaceOptions::default());
    assert_eq!(
        c.roundtrip(&req("racecheck", "faulty")).output,
        expect.render_text()
    );

    // reqcheck.
    let expect = difftrace::reqcheck_set(&set, &difftrace::ReqOptions::default());
    assert_eq!(
        c.roundtrip(&req("reqcheck", "faulty")).output,
        expect.render_text()
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_and_diff_match_shared_renderers() {
    let dir = demo_corpora("sd");
    let daemon = Daemon::start(&dir, 2);
    let mut c = daemon.connect();

    let normal = store::load(&dir.join("normal.dtts")).unwrap();
    let faulty = store::load(&dir.join("faulty.dtts")).unwrap();
    let params = difftrace::Params::new(
        difftrace::FilterConfig::everything(10),
        difftrace::AttrConfig {
            kind: difftrace::AttrKind::Single,
            freq: difftrace::FreqMode::Actual,
        },
    );

    let popts = difftrace::PipelineOptions::default();
    let rec: &dyn dt_obs::Recorder = &dt_obs::Noop;
    let report = difftrace::analyze_single_opts_rec(&faulty, &params, 0, &popts, rec);
    let resp = c.roundtrip(&req("single", "faulty"));
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.output, render::single_summary(faulty.len(), &report));

    let dopts = difftrace::PipelineOptions {
        threads: 0,
        ..difftrace::PipelineOptions::default()
    };
    let d = difftrace::try_diff_runs_hb_rec(&normal, &faulty, None, &params, &dopts, rec).unwrap();
    let mut dq = Request {
        id: 4,
        cmd: "diff".to_string(),
        normal: Some("normal".to_string()),
        faulty: Some("faulty".to_string()),
        ..Request::default()
    };
    let resp = c.roundtrip(&dq);
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.output, render::diff_summary(&d, &params, None));

    // --full report too.
    dq.full = true;
    assert_eq!(
        c.roundtrip(&dq).output,
        difftrace::generate_report(&d, &difftrace::ReportOptions::default())
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_frames_get_error_replies_and_the_connection_survives() {
    let dir = demo_corpora("bad");
    let daemon = Daemon::start(&dir, 1);
    let mut c = daemon.connect();

    for frame in [
        "not json at all",
        "[]",
        "{\"cmd\":\"explode\"}",
        "{\"cmd\":\"lint\",\"wat\":true}",
        "{\"cmd\":\"lint\"}", // no corpus
        "{\"cmd\":\"lint\",\"corpus\":\"nope\"}",
        "{\"cmd\":\"lint\",\"corpus\":\"faulty\",\"format\":\"yaml\"}",
        "{\"cmd\":\"hbcheck\",\"corpus\":\"faulty\",\"trace\":\"0.0\"}",
        "{\"cmd\":\"diff\",\"normal\":\"normal\"}", // no faulty
        "{\"cmd\":\"lint\",\"corpus\":\"faulty\",\"trace\":\"zero.zero\"}",
    ] {
        let resp = c.send_line(frame);
        assert!(!resp.ok, "frame should fail: {frame}");
        assert!(!resp.error.is_empty(), "diagnosis missing for: {frame}");
    }

    // Same connection still answers real queries.
    let resp = c.roundtrip(&req("lint", "faulty"));
    assert!(resp.ok, "{}", resp.error);

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_trace_query_decodes_exactly_one_trace() {
    let dir = demo_corpora("lazy");
    let daemon = Daemon::start(&dir, 1);
    let mut c = daemon.connect();

    let set = store::load(&dir.join("faulty.dtts")).unwrap();
    let id = set.ids()[0];
    assert!(set.len() > 1, "need a multi-trace corpus for this test");

    let mut lq = req("lint", "faulty");
    lq.trace = Some(id.to_string());
    let resp = c.roundtrip(&lq);
    assert!(resp.ok, "{}", resp.error);
    // Equivalent one-trace one-shot output.
    let sub = {
        let mut s = dt_trace::TraceSet::new(set.registry.clone());
        s.insert(set.get(id).unwrap().clone());
        s
    };
    let expect = difftrace::lint_set(&sub, &difftrace::LintOptions::default());
    assert_eq!(resp.output, expect.render_text());

    // The metrics query proves the store decoded ONLY that trace.
    let m = c.roundtrip(&Request {
        id: 2,
        cmd: "metrics".to_string(),
        ..Request::default()
    });
    assert!(m.ok);
    let decodes = m
        .output
        .lines()
        .find_map(|l| l.strip_prefix("store_trace_decodes "))
        .unwrap()
        .parse::<u64>()
        .unwrap();
    assert_eq!(decodes, 1, "metrics:\n{}", m.output);
    assert!(m.output.contains("requests_lint 1"));
    assert!(m.output.contains("corpora 2"));

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_get_identical_bytes() {
    let dir = demo_corpora("conc");
    let daemon = Daemon::start(&dir, 4);

    let set = store::load(&dir.join("faulty.dtts")).unwrap();
    let expect_lint = difftrace::lint_set(&set, &difftrace::LintOptions::default()).render_text();
    let expect_race =
        difftrace::racecheck_set(&set, &difftrace::RaceOptions::default()).render_text();

    std::thread::scope(|s| {
        for w in 0..8u64 {
            let daemon = &daemon;
            let (expect_lint, expect_race) = (&expect_lint, &expect_race);
            s.spawn(move || {
                let mut c = daemon.connect();
                for round in 0..3u64 {
                    let id = w * 100 + round;
                    let (cmd, expect) = if (w + round) % 2 == 0 {
                        ("lint", expect_lint)
                    } else {
                        ("racecheck", expect_race)
                    };
                    let mut r = req(cmd, "faulty");
                    r.id = id;
                    let resp = c.roundtrip(&r);
                    assert!(resp.ok, "{}", resp.error);
                    assert_eq!(resp.id, id, "reply order broken");
                    assert_eq!(&resp.output, expect);
                }
            });
        }
    });

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_trace_and_bad_spec_are_diagnosed() {
    let dir = demo_corpora("spec");
    let daemon = Daemon::start(&dir, 1);
    let mut c = daemon.connect();

    let mut q = req("lint", "faulty");
    q.trace = Some(TraceId::new(99, 99).to_string());
    let resp = c.roundtrip(&q);
    assert!(!resp.ok);
    assert!(resp.error.contains("not in store"), "{}", resp.error);

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
