//! Compressed-domain race-fact extraction: [`crate::TraceRaceFacts`]
//! computed **directly on the NLR term**, without expanding loops.
//!
//! The ZipTrack observation (Kini et al., PLDI 2018) adapted to the
//! barrier-phase/lockset abstraction: everything the race rules need
//! from a subterm is a small **summary** — its symbol length, its
//! barrier count, its net lock effect, and its access groups keyed by
//! a lockset *relative to the unknown entry lockset* — and summaries
//! compose associatively, so each loop body is summarized once and
//! `body^n` is applied in closed form. A million-iteration loop costs
//! O(|body|), which is the asymptotic win `racecheck_bench` measures.
//!
//! # The relative-lockset algebra
//!
//! Inside a term, the absolute lockset of an access is determined by
//! the term's own acquire/release history plus whatever was held at
//! term entry (`E`). Because a lock's membership depends only on the
//! *last* operation touching it, every access point is captured by two
//! disjoint sets: `acq` (locks whose last op before the access was an
//! acquire) and `rel` (last op was a release). The absolute lockset is
//! then
//!
//! ```text
//! L(E) = acq ∪ (E  \  (acq ∪ rel))
//! ```
//!
//! Sequential composition `A · B` rewrites each B-side context against
//! A's exit effect (`exit_acq`/`exit_rel`, same shape):
//!
//! ```text
//! acq' = acq ∪ (A.exit_acq \ (acq ∪ rel))
//! rel' = rel ∪ (A.exit_rel \ (acq ∪ rel))
//! ```
//!
//! and repetition exploits that the exit effect is idempotent
//! (`exit(T·T) = exit(T)`), so iterations 2…n all see the same entry
//! context: their groups are one rewritten copy with `count × (n−1)`,
//! `first_offset + len` (the iteration-2 witness is the earliest),
//! and the phase envelope `[phase_first + barriers,
//! phase_last + (n−1)·barriers]`. Offsets shift by `len` per
//! iteration, phases by `barriers` per iteration; both are exact, not
//! approximations, because the expanded domain also only keeps the
//! (min offset, phase min/max) envelope per group.

use crate::{AccessGroup, AccessKind, RaceSym, RaceVocab, TraceRaceFacts};
use dt_trace::race::RaceOp;
use dt_trace::TraceId;
use nlr::{Element, LoopId, LoopTable, Nlr};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An access-group key relative to the term's entry lockset: the
/// target, the kind, and the (acq, rel) context sets.
type RelKey = (String, AccessKind, BTreeSet<String>, BTreeSet<String>);

/// Aggregated values of one relative group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupVal {
    count: u64,
    first_offset: u64,
    phase_first: u64,
    phase_last: u64,
}

/// The summary of one element sequence (a loop body, or a prefix of
/// the walk): everything needed to place its accesses in any context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermSummary {
    len: u64,
    barriers: u64,
    exit_acq: BTreeSet<String>,
    exit_rel: BTreeSet<String>,
    groups: BTreeMap<RelKey, GroupVal>,
}

impl TermSummary {
    fn identity() -> TermSummary {
        TermSummary {
            len: 0,
            barriers: 0,
            exit_acq: BTreeSet::new(),
            exit_rel: BTreeSet::new(),
            groups: BTreeMap::new(),
        }
    }

    /// Record one access at the current end of the summary.
    fn record(&mut self, var: &str, kind: AccessKind) {
        let key = (
            var.to_string(),
            kind,
            self.exit_acq.clone(),
            self.exit_rel.clone(),
        );
        let val = GroupVal {
            count: 1,
            first_offset: self.len,
            phase_first: self.barriers,
            phase_last: self.barriers,
        };
        merge_group(&mut self.groups, key, val);
    }

    /// Append one raw symbol.
    fn push_symbol(&mut self, sym: u32, vocab: &RaceVocab) {
        if sym & 1 == 0 {
            match vocab.classify(sym >> 1) {
                RaceSym::Barrier => self.barriers += 1,
                RaceSym::Op(RaceOp::Read(v)) => self.record(&v.clone(), AccessKind::Read),
                RaceSym::Op(RaceOp::Write(v)) => self.record(&v.clone(), AccessKind::Write),
                RaceSym::Op(RaceOp::Acquire(l)) => {
                    let l = l.clone();
                    self.record(&l, AccessKind::Acquire);
                    self.exit_acq.insert(l.clone());
                    self.exit_rel.remove(&l);
                }
                RaceSym::Op(RaceOp::Release(l)) => {
                    let l = l.clone();
                    self.exit_rel.insert(l.clone());
                    self.exit_acq.remove(&l);
                }
                RaceSym::Other => {}
            }
        }
        self.len += 1;
    }

    /// Rewrite a context set pair against this summary's exit effect
    /// (the composition rule from the module docs).
    fn rewrite(
        &self,
        acq: &BTreeSet<String>,
        rel: &BTreeSet<String>,
    ) -> (BTreeSet<String>, BTreeSet<String>) {
        let mut acq2 = acq.clone();
        let mut rel2 = rel.clone();
        for l in &self.exit_acq {
            if !acq.contains(l) && !rel.contains(l) {
                acq2.insert(l.clone());
            }
        }
        for l in &self.exit_rel {
            if !acq.contains(l) && !rel.contains(l) {
                rel2.insert(l.clone());
            }
        }
        (acq2, rel2)
    }

    /// Append a whole summary (sequential composition `self · next`).
    fn append(&mut self, next: &TermSummary) {
        for ((var, kind, acq, rel), val) in &next.groups {
            let (acq2, rel2) = self.rewrite(acq, rel);
            let key = (var.clone(), *kind, acq2, rel2);
            merge_group(
                &mut self.groups,
                key,
                GroupVal {
                    count: val.count,
                    first_offset: val.first_offset.saturating_add(self.len),
                    phase_first: val.phase_first.saturating_add(self.barriers),
                    phase_last: val.phase_last.saturating_add(self.barriers),
                },
            );
        }
        let (exit_acq, exit_rel) = next.rewrite(&self.exit_acq, &self.exit_rel);
        // `next`'s own exit effect wins for locks it touched.
        let mut acq = next.exit_acq.clone();
        let mut rel = next.exit_rel.clone();
        for l in exit_acq {
            if !next.exit_acq.contains(&l) && !next.exit_rel.contains(&l) {
                acq.insert(l);
            }
        }
        for l in exit_rel {
            if !next.exit_acq.contains(&l) && !next.exit_rel.contains(&l) {
                rel.insert(l);
            }
        }
        self.exit_acq = acq;
        self.exit_rel = rel;
        self.len = self.len.saturating_add(next.len);
        self.barriers = self.barriers.saturating_add(next.barriers);
    }

    /// `self` repeated `count` times, in closed form: iteration 1
    /// verbatim, iterations 2…count as one rewritten copy (the exit
    /// effect is idempotent, so they all share a context).
    fn repeat(&self, count: u64) -> TermSummary {
        match count {
            0 => return TermSummary::identity(),
            1 => return self.clone(),
            _ => {}
        }
        let mut out = TermSummary {
            len: self.len.saturating_mul(count),
            barriers: self.barriers.saturating_mul(count),
            exit_acq: self.exit_acq.clone(),
            exit_rel: self.exit_rel.clone(),
            groups: self.groups.clone(),
        };
        let tail = count - 1;
        for ((var, kind, acq, rel), val) in &self.groups {
            let (acq2, rel2) = self.rewrite(acq, rel);
            merge_group(
                &mut out.groups,
                (var.clone(), *kind, acq2, rel2),
                GroupVal {
                    count: val.count.saturating_mul(tail),
                    first_offset: val.first_offset.saturating_add(self.len),
                    phase_first: val.phase_first.saturating_add(self.barriers),
                    phase_last: val
                        .phase_last
                        .saturating_add(self.barriers.saturating_mul(tail)),
                },
            );
        }
        out
    }
}

fn merge_group(groups: &mut BTreeMap<RelKey, GroupVal>, key: RelKey, val: GroupVal) {
    groups
        .entry(key)
        .and_modify(|g| {
            g.count = g.count.saturating_add(val.count);
            g.first_offset = g.first_offset.min(val.first_offset);
            g.phase_first = g.phase_first.min(val.phase_first);
            g.phase_last = g.phase_last.max(val.phase_last);
        })
        .or_insert(val);
}

/// Memoizes per-loop-body summaries against a shared loop table.
pub struct Summarizer<'t> {
    table: &'t LoopTable,
    vocab: &'t RaceVocab,
    memo: HashMap<LoopId, TermSummary>,
}

impl<'t> Summarizer<'t> {
    /// A summarizer over `table`, classifying symbols with `vocab`.
    pub fn new(table: &'t LoopTable, vocab: &'t RaceVocab) -> Summarizer<'t> {
        Summarizer {
            table,
            vocab,
            memo: HashMap::new(),
        }
    }

    /// Summary of a whole element sequence.
    pub fn summary_of(&mut self, elements: &[Element]) -> TermSummary {
        let mut acc = TermSummary::identity();
        for e in elements {
            match *e {
                Element::Sym(s) => acc.push_symbol(s, self.vocab),
                Element::Loop { body, count } => {
                    let s = self.body_summary(body).repeat(count);
                    acc.append(&s);
                }
            }
        }
        acc
    }

    /// Summary of one iteration of `id`'s body (memoized).
    fn body_summary(&mut self, id: LoopId) -> TermSummary {
        if let Some(s) = self.memo.get(&id) {
            return s.clone();
        }
        let body = self.table.body(id);
        let s = self.summary_of(body);
        self.memo.insert(id, s.clone());
        s
    }

    /// Summarize one NLR term — must equal
    /// [`crate::expanded::summarize`] on the term's expansion.
    pub fn summarize(&mut self, id: TraceId, term: &Nlr, truncated: bool) -> TraceRaceFacts {
        let s = self.summary_of(term.elements());
        // Top level: the entry lockset is empty, so the absolute
        // lockset of a group is exactly its `acq` context; groups that
        // differ only in `rel` collapse together.
        let mut groups: BTreeMap<(String, AccessKind, BTreeSet<String>), GroupVal> =
            BTreeMap::new();
        for ((var, kind, acq, _rel), val) in s.groups {
            groups
                .entry((var, kind, acq))
                .and_modify(|g| {
                    g.count = g.count.saturating_add(val.count);
                    g.first_offset = g.first_offset.min(val.first_offset);
                    g.phase_first = g.phase_first.min(val.phase_first);
                    g.phase_last = g.phase_last.max(val.phase_last);
                })
                .or_insert(val);
        }
        TraceRaceFacts {
            id,
            groups: groups
                .into_iter()
                .map(|((var, kind, lockset), v)| AccessGroup {
                    var,
                    kind,
                    lockset,
                    count: v.count,
                    first_offset: v.first_offset,
                    phase_first: v.phase_first,
                    phase_last: v.phase_last,
                })
                .collect(),
            barriers: s.barriers,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expanded;
    use dt_trace::FunctionRegistry;
    use nlr::NlrBuilder;
    use proptest::prelude::*;

    fn call(f: dt_trace::FnId) -> u32 {
        f.0 << 1
    }
    fn ret(f: dt_trace::FnId) -> u32 {
        (f.0 << 1) | 1
    }

    /// Registry with the standard test vocabulary; returns marker ids.
    fn vocabulary() -> (FunctionRegistry, Vec<(u32, u32)>) {
        let reg = FunctionRegistry::new();
        let names = [
            "omp_read@x",
            "omp_write@x",
            "omp_read@y",
            "omp_write@y",
            "omp_acquire@A",
            "omp_release@A",
            "omp_acquire@B",
            "omp_release@B",
            "GOMP_barrier",
            "compute",
            "helper",
        ];
        let pairs = names
            .iter()
            .map(|n| {
                let f = reg.intern(n);
                (call(f), ret(f))
            })
            .collect();
        (reg, pairs)
    }

    fn agree(reg: &FunctionRegistry, symbols: &[u32], truncated: bool) {
        let vocab = RaceVocab::build(reg);
        let mut table = LoopTable::new();
        let term = NlrBuilder::new(10).build(symbols, &mut table);
        assert_eq!(term.expand(&table), symbols, "NLR must be lossless");
        let mut summarizer = Summarizer::new(&table, &vocab);
        let id = TraceId::new(0, 1);
        assert_eq!(
            summarizer.summarize(id, &term, truncated),
            expanded::summarize(id, symbols, truncated, &vocab),
        );
    }

    #[test]
    fn locked_loop_agrees_with_expanded() {
        let (reg, p) = vocabulary();
        let (acq_a, rel_a) = (p[4], p[5]);
        let (w_x, r_x) = (p[1], p[0]);
        let mut syms = Vec::new();
        for _ in 0..40 {
            syms.extend_from_slice(&[
                acq_a.0, acq_a.1, r_x.0, r_x.1, w_x.0, w_x.1, rel_a.0, rel_a.1,
            ]);
        }
        agree(&reg, &syms, false);
    }

    #[test]
    fn barrier_phased_loop_agrees_with_expanded() {
        let (reg, p) = vocabulary();
        let bar = p[8];
        let w_x = p[1];
        let mut syms = Vec::new();
        for _ in 0..25 {
            syms.extend_from_slice(&[w_x.0, w_x.1, bar.0, bar.1]);
        }
        agree(&reg, &syms, false);
    }

    #[test]
    fn lock_held_across_loop_iterations_agrees() {
        let (reg, p) = vocabulary();
        let (acq_a, rel_a) = (p[4], p[5]);
        let w_x = p[1];
        // acquire A; (write x)^30; release A — the loop body has no
        // lock ops of its own, the context comes from outside.
        let mut syms = vec![acq_a.0, acq_a.1];
        for _ in 0..30 {
            syms.extend_from_slice(&[w_x.0, w_x.1]);
        }
        syms.extend_from_slice(&[rel_a.0, rel_a.1]);
        agree(&reg, &syms, false);
    }

    #[test]
    fn acquire_release_inside_loop_body_agrees() {
        let (reg, p) = vocabulary();
        let (acq_a, rel_a) = (p[4], p[5]);
        let (acq_b, rel_b) = (p[6], p[7]);
        let (w_x, w_y) = (p[1], p[3]);
        // Nested lock order A → B inside a loop, plus an unlocked write.
        let mut syms = Vec::new();
        for _ in 0..20 {
            syms.extend_from_slice(&[
                acq_a.0, acq_a.1, acq_b.0, acq_b.1, w_x.0, w_x.1, rel_b.0, rel_b.1, rel_a.0,
                rel_a.1, w_y.0, w_y.1,
            ]);
        }
        agree(&reg, &syms, true);
    }

    #[test]
    fn net_lock_effect_across_body_boundary_agrees() {
        let (reg, p) = vocabulary();
        let (acq_a, rel_a) = (p[4], p[5]);
        let w_x = p[1];
        let bar = p[8];
        // Each iteration ends holding A and releases it at the top of
        // the next — the rotated-body case where acquire/release pairs
        // straddle the NLR loop-body boundary.
        let mut syms = Vec::new();
        for _ in 0..15 {
            syms.extend_from_slice(&[
                acq_a.0, acq_a.1, bar.0, bar.1, w_x.0, w_x.1, rel_a.0, rel_a.1,
            ]);
            syms.extend_from_slice(&[w_x.0, w_x.1]);
        }
        agree(&reg, &syms, false);
    }

    #[test]
    fn high_repetition_counts_fold_without_expansion() {
        let (reg, p) = vocabulary();
        let vocab = RaceVocab::build(&reg);
        let (acq_a, rel_a) = (p[4], p[5]);
        let w_x = p[1];
        let bar = p[8];
        let mut table = LoopTable::new();
        let body = table.intern(vec![
            Element::Sym(acq_a.0),
            Element::Sym(acq_a.1),
            Element::Sym(w_x.0),
            Element::Sym(w_x.1),
            Element::Sym(rel_a.0),
            Element::Sym(rel_a.1),
            Element::Sym(bar.0),
            Element::Sym(bar.1),
        ]);
        let elements = vec![Element::Loop {
            body,
            count: 1_000_000,
        }];
        let mut s = Summarizer::new(&table, &vocab);
        let sum = s.summary_of(&elements);
        assert_eq!(sum.len, 8_000_000);
        assert_eq!(sum.barriers, 1_000_000);
        // Relative groups: the iteration-1 acquire sees an untouched
        // context while iterations 2…n see `A` as released — distinct
        // keys that the top-level collapse merges (same `acq` set).
        assert_eq!(sum.groups.len(), 3);
        let term = Nlr::from_parts(elements, 8_000_000);
        let facts = s.summarize(TraceId::new(0, 1), &term, false);
        // One write group (under A) and one acquire group, each hit
        // once per iteration.
        assert_eq!(facts.groups.len(), 2);
        for g in &facts.groups {
            assert_eq!(g.count, 1_000_000);
        }
        assert_eq!(facts.barriers, 1_000_000);
    }

    /// Random marker streams: build a symbol stream from a random
    /// script of operations and assert fact equality in both domains.
    fn script_strategy() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..12, 0..60)
    }

    proptest! {
        #[test]
        fn facts_agree_on_random_scripts(script in script_strategy(), reps in 1usize..20) {
            let (reg, p) = vocabulary();
            let mut syms = Vec::new();
            // A looped section: the script repeated `reps` times.
            for _ in 0..reps {
                for &op in &script {
                    let (c, r) = p[op as usize % p.len()];
                    syms.push(c);
                    syms.push(r);
                }
            }
            // Plus an unlooped coda from the same script, reversed.
            for &op in script.iter().rev() {
                let (c, r) = p[op as usize % p.len()];
                syms.push(c);
                syms.push(r);
            }
            agree(&reg, &syms, false);
        }

        #[test]
        fn facts_agree_on_truncated_random_scripts(script in script_strategy()) {
            let (reg, p) = vocabulary();
            let mut syms = Vec::new();
            for _ in 0..8 {
                for &op in &script {
                    let (c, _r) = p[op as usize % p.len()];
                    // Calls without returns: maximally unbalanced.
                    syms.push(c);
                }
            }
            agree(&reg, &syms, true);
        }
    }
}
