//! Expanded-domain race-fact extraction: the reference semantics.
//!
//! Walks the raw symbol stream (`fn_id << 1 | is_return`) event by
//! event, maintaining the running lockset and barrier phase.
//! [`crate::compressed`] must produce identical [`TraceRaceFacts`]
//! without expanding anything — the crate's property tests assert that
//! equality.

use crate::{AccessGroup, AccessKind, RaceSym, RaceVocab, TraceRaceFacts};
use dt_trace::race::RaceOp;
use dt_trace::TraceId;
use std::collections::{BTreeMap, BTreeSet};

/// Summarize one expanded symbol stream.
pub fn summarize(
    id: TraceId,
    symbols: &[u32],
    truncated: bool,
    vocab: &RaceVocab,
) -> TraceRaceFacts {
    let mut held: BTreeSet<String> = BTreeSet::new();
    let mut phase: u64 = 0;
    #[allow(clippy::type_complexity)]
    let mut groups: BTreeMap<(String, AccessKind, BTreeSet<String>), (u64, u64, u64, u64)> =
        BTreeMap::new();
    let mut record =
        |var: &str, kind: AccessKind, lockset: &BTreeSet<String>, offset: u64, phase: u64| {
            groups
                .entry((var.to_string(), kind, lockset.clone()))
                .and_modify(|(count, first, pf, pl)| {
                    *count += 1;
                    *first = (*first).min(offset);
                    *pf = (*pf).min(phase);
                    *pl = (*pl).max(phase);
                })
                .or_insert((1, offset, phase, phase));
        };
    for (offset, &sym) in symbols.iter().enumerate() {
        if sym & 1 == 1 {
            continue; // only marker *calls* act
        }
        match vocab.classify(sym >> 1) {
            RaceSym::Barrier => phase += 1,
            RaceSym::Op(RaceOp::Read(v)) => {
                record(v, AccessKind::Read, &held, offset as u64, phase);
            }
            RaceSym::Op(RaceOp::Write(v)) => {
                record(v, AccessKind::Write, &held, offset as u64, phase);
            }
            RaceSym::Op(RaceOp::Acquire(l)) => {
                // The acquire group's lockset is the held-set *before*
                // the acquisition: the lock-order context.
                record(l, AccessKind::Acquire, &held, offset as u64, phase);
                held.insert(l.clone());
            }
            RaceSym::Op(RaceOp::Release(l)) => {
                held.remove(l);
            }
            RaceSym::Other => {}
        }
    }
    TraceRaceFacts {
        id,
        groups: groups
            .into_iter()
            .map(
                |((var, kind, lockset), (count, first_offset, phase_first, phase_last))| {
                    AccessGroup {
                        var,
                        kind,
                        lockset,
                        count,
                        first_offset,
                        phase_first,
                        phase_last,
                    }
                },
            )
            .collect(),
        barriers: phase,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::FunctionRegistry;

    fn call(f: dt_trace::FnId) -> u32 {
        f.0 << 1
    }
    fn ret(f: dt_trace::FnId) -> u32 {
        (f.0 << 1) | 1
    }

    #[test]
    fn locksets_phases_and_offsets() {
        let reg = FunctionRegistry::new();
        let acq = reg.intern("omp_acquire@l");
        let rel = reg.intern("omp_release@l");
        let w = reg.intern("omp_write@x");
        let bar = reg.intern("GOMP_barrier");
        let other = reg.intern("compute");
        let vocab = RaceVocab::build(&reg);
        // write(x); barrier; lock l { write(x) }; compute
        let syms = vec![
            call(w),
            ret(w),
            call(bar),
            ret(bar),
            call(acq),
            ret(acq),
            call(w),
            ret(w),
            call(rel),
            ret(rel),
            call(other),
            ret(other),
        ];
        let facts = summarize(TraceId::new(0, 1), &syms, false, &vocab);
        assert_eq!(facts.barriers, 1);
        assert_eq!(facts.groups.len(), 3); // bare write, locked write, acquire
        let locked = &facts.groups[2]; // sorted: acquire(l) < write{} < write{l}
        assert_eq!(
            facts
                .groups
                .iter()
                .map(|g| (&g.var[..], g.kind))
                .collect::<Vec<_>>(),
            vec![
                ("l", AccessKind::Acquire),
                ("x", AccessKind::Write),
                ("x", AccessKind::Write)
            ]
        );
        let unlocked = &facts.groups[1];
        assert!(unlocked.lockset.is_empty());
        assert_eq!(unlocked.first_offset, 0);
        assert_eq!((unlocked.phase_first, unlocked.phase_last), (0, 0));
        assert_eq!(locked.lockset.len(), 1);
        assert_eq!(locked.first_offset, 6);
        assert_eq!((locked.phase_first, locked.phase_last), (1, 1));
    }

    #[test]
    fn repeated_accesses_aggregate() {
        let reg = FunctionRegistry::new();
        let r = reg.intern("omp_read@x");
        let vocab = RaceVocab::build(&reg);
        let mut syms = Vec::new();
        for _ in 0..100 {
            syms.extend_from_slice(&[call(r), ret(r)]);
        }
        let facts = summarize(TraceId::new(0, 1), &syms, false, &vocab);
        assert_eq!(facts.groups.len(), 1);
        assert_eq!(facts.groups[0].count, 100);
        assert_eq!(facts.groups[0].first_offset, 0);
    }

    #[test]
    fn inert_streams_have_no_groups() {
        let reg = FunctionRegistry::new();
        let f = reg.intern("MPI_Send");
        let vocab = RaceVocab::build(&reg);
        let facts = summarize(TraceId::new(0, 0), &[call(f), ret(f)], true, &vocab);
        assert!(facts.groups.is_empty());
        assert!(facts.truncated);
    }
}
