//! `racecheck` — shared-memory data-race detection over recorded runs.
//!
//! The third dual-implementation analysis product (after `tracelint`
//! and `hbcheck`): it reads the `omp_read@…` / `omp_write@…` /
//! `omp_acquire@…` / `omp_release@…` marker events the simulated
//! OpenMP runtime embeds in its ParLOT call traces (see
//! [`dt_trace::race`]) and reports the shared-memory bug classes of
//! hybrid MPI+OpenMP codes.
//!
//! # Rule catalog
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | RC001 | error    | write-write race: two threads write one variable in overlapping barrier phases with disjoint locksets |
//! | RC002 | error    | read-write race: a read and a write of one variable, unordered and unprotected |
//! | RC003 | error    | lock-order inversion: the lock-acquisition graph has a cycle — potential deadlock |
//! | RC004 | warning  | unprotected shared access: no single lock consistently protects a variable written by several threads (Eraser-style lockset) |
//!
//! # Detection model
//!
//! The analysis is deliberately *interleaving-independent* so reports
//! are byte-identical across runs and thread counts: instead of a
//! dynamic vector clock per event it abstracts each thread's stream
//! into **barrier phases** (the count of `GOMP_barrier` calls before
//! an access — two accesses in disjoint phases are ordered, two in
//! overlapping phase intervals are not) and **locksets** (Eraser): two
//! unordered accesses race unless they share a lock. Everything the
//! rules consume is in the per-trace [`TraceRaceFacts`].
//!
//! # Domains
//!
//! [`expanded::summarize`] walks the raw symbol stream; the
//! [`compressed`] summarizer folds per-term summaries bottom-up over
//! NLR loop structure — each loop body is summarized once and its
//! repetition applied in closed form, so a million-iteration loop
//! costs O(|body|) (the ZipTrack result, adapted to barrier-phase
//! abstraction). Property tests assert the two produce *equal* facts,
//! and [`analyze`] is a pure function of the facts, so the rendered
//! reports are byte-identical.

pub mod compressed;
pub mod expanded;

use dt_trace::race::{RaceOp, BARRIER_MARKER};
use dt_trace::{FnId, FunctionRegistry, TraceId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use dt_diag::{Severity, Span};

/// A diagnostic carrying a [`RaceCode`].
pub type RaceDiagnostic = dt_diag::Diagnostic<RaceCode>;

/// A canonical, sorted report of race diagnostics.
pub type RaceReport = dt_diag::Report<RaceCode>;

/// Stable rule codes (RC001–RC004).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceCode {
    /// RC001: write-write data race.
    WriteWrite,
    /// RC002: read-write data race.
    ReadWrite,
    /// RC003: lock-order inversion (potential deadlock).
    LockOrder,
    /// RC004: unprotected shared access (inconsistent lockset).
    Unprotected,
}

impl RaceCode {
    /// The stable `RCnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            RaceCode::WriteWrite => "RC001",
            RaceCode::ReadWrite => "RC002",
            RaceCode::LockOrder => "RC003",
            RaceCode::Unprotected => "RC004",
        }
    }

    /// Short human title of the rule family.
    pub fn title(self) -> &'static str {
        match self {
            RaceCode::WriteWrite => "write-write race",
            RaceCode::ReadWrite => "read-write race",
            RaceCode::LockOrder => "lock-order inversion",
            RaceCode::Unprotected => "unprotected shared access",
        }
    }
}

impl fmt::Display for RaceCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl dt_diag::Code for RaceCode {
    fn as_str(self) -> &'static str {
        RaceCode::as_str(self)
    }
    fn title(self) -> &'static str {
        RaceCode::title(self)
    }
}

/// How a group of accesses touches its variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Reads (`omp_read@…`).
    Read,
    /// Writes (`omp_write@…`).
    Write,
    /// Lock acquisitions (`omp_acquire@…`) — kept as groups too, so
    /// the lock-order graph derives from the same facts.
    Acquire,
}

/// All accesses of one trace to one target under one lockset,
/// aggregated: the analysis never needs individual events, only the
/// set of (variable, kind, lockset) combinations each thread exhibits
/// and *when* (which barrier phases) and *where* (first symbol offset)
/// they happen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessGroup {
    /// The shared variable (or, for [`AccessKind::Acquire`], the lock
    /// being acquired).
    pub var: String,
    /// Read, write, or acquire.
    pub kind: AccessKind,
    /// Locks held at the access (for acquires: held *before* the
    /// acquisition — the held-while-acquiring context the lock-order
    /// graph is built from).
    pub lockset: BTreeSet<String>,
    /// Number of such accesses.
    pub count: u64,
    /// Symbol offset (index into the expanded stream) of the first
    /// such access's marker call.
    pub first_offset: u64,
    /// Earliest barrier phase containing such an access.
    pub phase_first: u64,
    /// Latest barrier phase containing such an access.
    pub phase_last: u64,
}

/// Per-trace facts, derivable in either domain.
///
/// [`expanded::summarize`] and [`compressed::Summarizer::summarize`]
/// must produce *equal* values for the same trace — that equality is
/// what "verdict agreement" means for `racecheck`, since [`analyze`]
/// is a pure function of these facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRaceFacts {
    /// Which trace.
    pub id: TraceId,
    /// Access groups, canonically sorted by (var, kind, lockset).
    pub groups: Vec<AccessGroup>,
    /// Total `GOMP_barrier` calls in the trace.
    pub barriers: u64,
    /// Whether the trace was flagged truncated by the tracer.
    pub truncated: bool,
}

/// Classification of one interned function for the race analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceSym {
    /// A `GOMP_barrier` call: phase boundary.
    Barrier,
    /// A shared-memory marker.
    Op(RaceOp),
    /// Anything else: inert.
    Other,
}

/// Function-ID → race-operation lookup, built once per registry so the
/// per-symbol walks never parse strings.
pub struct RaceVocab {
    ops: HashMap<u32, RaceSym>,
}

impl RaceVocab {
    /// Classify every interned name of `registry`.
    pub fn build(registry: &FunctionRegistry) -> RaceVocab {
        let mut ops = HashMap::new();
        for (i, name) in registry.names().into_iter().enumerate() {
            let sym = if name == BARRIER_MARKER {
                RaceSym::Barrier
            } else if let Some(op) = RaceOp::parse(&name) {
                RaceSym::Op(op)
            } else {
                continue;
            };
            ops.insert(i as u32, sym);
        }
        RaceVocab { ops }
    }

    /// Classification of `fn_id` ([`RaceSym::Other`] when inert).
    pub fn classify(&self, fn_id: u32) -> &RaceSym {
        self.ops.get(&fn_id).unwrap_or(&RaceSym::Other)
    }

    /// True when the registry contains any race-relevant marker at all
    /// (used to skip whole traces cheaply).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Convenience for callers holding [`FnId`]s.
    pub fn classify_fn(&self, id: FnId) -> &RaceSym {
        self.classify(id.0)
    }
}

/// Two phase intervals overlap (no barrier orders every pair).
fn phases_overlap(a: &AccessGroup, b: &AccessGroup) -> bool {
    a.phase_first <= b.phase_last && b.phase_first <= a.phase_last
}

/// Disjoint locksets: no common lock protects the pair.
fn locksets_disjoint(a: &AccessGroup, b: &AccessGroup) -> bool {
    a.lockset.intersection(&b.lockset).next().is_none()
}

/// `0.0, 0.1` renderer for trace-id lists.
fn render_threads(ids: &BTreeSet<TraceId>) -> String {
    ids.iter()
        .map(|id| id.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Run every RC rule over one execution's per-trace facts.
///
/// Shared memory does not cross MPI process boundaries, so traces are
/// grouped by process and every rule applies within one process's
/// thread team. The report is canonically sorted and independent of
/// `facts` order.
pub fn analyze(facts: &[TraceRaceFacts]) -> RaceReport {
    let mut diags: Vec<RaceDiagnostic> = Vec::new();
    let mut by_process: BTreeMap<u32, Vec<&TraceRaceFacts>> = BTreeMap::new();
    for f in facts {
        by_process.entry(f.id.process).or_default().push(f);
    }
    for traces in by_process.values_mut() {
        traces.sort_by_key(|f| f.id);
    }

    for (&process, traces) in &by_process {
        diags.extend(race_pairs(process, traces));
        diags.extend(unprotected(process, traces));
        diags.extend(lock_order(process, traces));
    }
    RaceReport::new(diags)
}

/// All (trace, group) data-access pairs of one process, flattened.
fn access_groups<'a>(traces: &'a [&TraceRaceFacts]) -> Vec<(TraceId, &'a AccessGroup)> {
    let mut out = Vec::new();
    for t in traces {
        for g in &t.groups {
            if matches!(g.kind, AccessKind::Read | AccessKind::Write) {
                out.push((t.id, g));
            }
        }
    }
    out
}

/// RC001/RC002: cross-thread unordered, unprotected access pairs,
/// aggregated into one diagnostic per (variable, code).
fn race_pairs(process: u32, traces: &[&TraceRaceFacts]) -> Vec<RaceDiagnostic> {
    let groups = access_groups(traces);
    // (var, code) → (pair count, threads, anchor candidates).
    #[derive(Default)]
    struct Agg {
        pairs: u64,
        threads: BTreeSet<TraceId>,
        anchor: Option<(TraceId, u64)>,
    }
    let mut aggs: BTreeMap<(String, RaceCode), Agg> = BTreeMap::new();
    for (x, &(ti, gi)) in groups.iter().enumerate() {
        for &(tj, gj) in &groups[x + 1..] {
            if ti == tj || gi.var != gj.var {
                continue;
            }
            let code = match (gi.kind, gj.kind) {
                (AccessKind::Write, AccessKind::Write) => RaceCode::WriteWrite,
                (AccessKind::Read, AccessKind::Write) | (AccessKind::Write, AccessKind::Read) => {
                    RaceCode::ReadWrite
                }
                _ => continue, // read-read pairs never race
            };
            if !phases_overlap(gi, gj) || !locksets_disjoint(gi, gj) {
                continue;
            }
            let agg = aggs.entry((gi.var.clone(), code)).or_default();
            agg.pairs += gi.count.saturating_mul(gj.count);
            agg.threads.insert(ti);
            agg.threads.insert(tj);
            for (t, g) in [(ti, gi), (tj, gj)] {
                let cand = (t, g.first_offset);
                if agg.anchor.is_none_or(|a| cand < a) {
                    agg.anchor = Some(cand);
                }
            }
        }
    }
    aggs.into_iter()
        .map(|((var, code), agg)| {
            let what = match code {
                RaceCode::WriteWrite => "write-write",
                _ => "read-write",
            };
            let (trace, offset) = agg.anchor.expect("aggregate implies a witness");
            RaceDiagnostic::error(
                code,
                format!(
                    "{what} race on `{var}` in process {process}: {} unordered, unprotected \
                     access pair(s) across threads {}",
                    agg.pairs,
                    render_threads(&agg.threads)
                ),
            )
            .with_trace(trace)
            .with_span(Span::at(usize::try_from(offset).unwrap_or(usize::MAX)))
            .with_hint(format!(
                "protect `{var}` with one common lock, or order the accesses with a barrier"
            ))
        })
        .collect()
}

/// RC004: Eraser-style lockset warnings — a variable written by a
/// thread team with an empty *common* lockset and at least one
/// genuinely unordered pair.
fn unprotected(process: u32, traces: &[&TraceRaceFacts]) -> Vec<RaceDiagnostic> {
    let groups = access_groups(traces);
    let mut vars: BTreeSet<&str> = BTreeSet::new();
    for &(_, g) in &groups {
        vars.insert(&g.var);
    }
    let mut out = Vec::new();
    for var in vars {
        let mine: Vec<&(TraceId, &AccessGroup)> =
            groups.iter().filter(|(_, g)| g.var == var).collect();
        let threads: BTreeSet<TraceId> = mine.iter().map(|(t, _)| *t).collect();
        if threads.len() < 2 || !mine.iter().any(|(_, g)| g.kind == AccessKind::Write) {
            continue;
        }
        // The Eraser candidate set: locks held at *every* access.
        let mut common = mine[0].1.lockset.clone();
        for (_, g) in &mine[1..] {
            common = common.intersection(&g.lockset).cloned().collect();
        }
        if !common.is_empty() {
            continue;
        }
        // Only warn when some cross-thread pair is actually unordered —
        // strictly barrier-phased protocols are fine without locks.
        let unordered = mine.iter().enumerate().any(|(x, (ti, gi))| {
            mine[x + 1..]
                .iter()
                .any(|(tj, gj)| ti != tj && phases_overlap(gi, gj))
        });
        if !unordered {
            continue;
        }
        let anchor = mine
            .iter()
            .filter(|(_, g)| g.lockset.is_empty())
            .chain(mine.iter())
            .map(|(t, g)| (*t, g.first_offset))
            .min()
            .expect("non-empty access set");
        out.push(
            RaceDiagnostic::warning(
                RaceCode::Unprotected,
                format!(
                    "no single lock consistently protects `{var}` in process {process} \
                     (written by threads {})",
                    render_threads(&threads)
                ),
            )
            .with_trace(anchor.0)
            .with_span(Span::at(usize::try_from(anchor.1).unwrap_or(usize::MAX)))
            .with_hint(
                "the Eraser lockset for this variable is empty: every access should hold \
                 one common lock",
            ),
        );
    }
    out
}

/// RC003: cycles in the per-process lock-acquisition-order graph
/// (edge `h → l` when some thread acquires `l` while holding `h`).
fn lock_order(process: u32, traces: &[&TraceRaceFacts]) -> Vec<RaceDiagnostic> {
    // Edges with their earliest witness (trace, offset).
    let mut edges: BTreeMap<(String, String), (TraceId, u64)> = BTreeMap::new();
    for t in traces {
        for g in &t.groups {
            if g.kind != AccessKind::Acquire {
                continue;
            }
            for held in &g.lockset {
                if held == &g.var {
                    continue; // re-acquisition is not an ordering edge
                }
                let witness = (t.id, g.first_offset);
                edges
                    .entry((held.clone(), g.var.clone()))
                    .and_modify(|w| {
                        if witness < *w {
                            *w = witness;
                        }
                    })
                    .or_insert(witness);
            }
        }
    }
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (h, l) in edges.keys() {
        adj.entry(h).or_default().push(l);
        adj.entry(l).or_default();
    }
    let mut out = Vec::new();
    for cycle in cycles(&adj) {
        let chain: Vec<String> = cycle
            .iter()
            .chain(cycle.first())
            .map(|l| format!("`{l}`"))
            .collect();
        // Witness: the earliest edge of the cycle.
        let witness = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .filter_map(|(h, l)| edges.get(&(h.clone(), l.clone())))
            .min()
            .copied()
            .expect("cycle edges exist");
        out.push(
            RaceDiagnostic::error(
                RaceCode::LockOrder,
                format!(
                    "lock-order inversion in process {process}: acquisition order cycle {} \
                     — threads taking these locks in opposite orders can deadlock",
                    chain.join(" → ")
                ),
            )
            .with_trace(witness.0)
            .with_span(Span::at(usize::try_from(witness.1).unwrap_or(usize::MAX)))
            .with_hint("impose one global acquisition order on these locks"),
        );
    }
    out
}

/// One witness cycle per strongly-connected component of the lock
/// graph, deterministic: the shortest cycle through the component's
/// lexicographically smallest lock, components in that lock's order.
fn cycles(adj: &BTreeMap<&str, Vec<&str>>) -> Vec<Vec<String>> {
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();
    let edges: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&u| {
            let mut v: Vec<usize> = adj[u].iter().map(|t| index_of[t]).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    // Iterative Tarjan (mirrors `hbcheck::graph`).
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*child) {
                *child += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs.sort();

    let mut out = Vec::new();
    for scc in sccs {
        let root = scc[0];
        if scc.len() < 2 && !edges[root].contains(&root) {
            continue;
        }
        // BFS for the shortest cycle root → … → root within the SCC.
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        'bfs: while let Some(v) = queue.pop_front() {
            for &w in &edges[v] {
                if w == root {
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != root {
                        cur = pred[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    out.push(path.into_iter().map(|i| nodes[i].to_string()).collect());
                    break 'bfs;
                }
                if scc.contains(&w) && !pred.contains_key(&w) && w != root {
                    pred.insert(w, v);
                    queue.push_back(w);
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(
        var: &str,
        kind: AccessKind,
        locks: &[&str],
        count: u64,
        offset: u64,
        phases: (u64, u64),
    ) -> AccessGroup {
        AccessGroup {
            var: var.to_string(),
            kind,
            lockset: locks.iter().map(|s| s.to_string()).collect(),
            count,
            first_offset: offset,
            phase_first: phases.0,
            phase_last: phases.1,
        }
    }

    fn facts(process: u32, thread: u32, groups: Vec<AccessGroup>) -> TraceRaceFacts {
        TraceRaceFacts {
            id: TraceId::new(process, thread),
            groups,
            barriers: 0,
            truncated: false,
        }
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(RaceCode::WriteWrite.as_str(), "RC001");
        assert_eq!(RaceCode::ReadWrite.as_str(), "RC002");
        assert_eq!(RaceCode::LockOrder.as_str(), "RC003");
        assert_eq!(RaceCode::Unprotected.as_str(), "RC004");
        assert_eq!(RaceCode::Unprotected.to_string(), "RC004");
    }

    #[test]
    fn unprotected_writes_fire_rc001_and_rc004() {
        let report = analyze(&[
            facts(0, 0, vec![group("c", AccessKind::Write, &[], 5, 3, (0, 0))]),
            facts(0, 1, vec![group("c", AccessKind::Write, &[], 5, 2, (0, 0))]),
        ]);
        assert!(report.codes().contains(&RaceCode::WriteWrite));
        assert!(report.codes().contains(&RaceCode::Unprotected));
        assert!(report.has_errors());
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == RaceCode::WriteWrite)
            .unwrap();
        assert_eq!(d.trace, Some(TraceId::new(0, 0)));
        assert_eq!(d.span, Some(Span::at(3)));
        assert!(d.message.contains("25 unordered"), "{}", d.message);
    }

    #[test]
    fn common_lock_silences_everything() {
        let report = analyze(&[
            facts(
                0,
                0,
                vec![
                    group("c", AccessKind::Write, &["l"], 5, 3, (0, 0)),
                    group("c", AccessKind::Read, &["l"], 5, 4, (0, 0)),
                ],
            ),
            facts(
                0,
                1,
                vec![group("c", AccessKind::Write, &["l"], 5, 2, (0, 0))],
            ),
        ]);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn barrier_separation_silences_everything() {
        let report = analyze(&[
            facts(0, 0, vec![group("c", AccessKind::Write, &[], 5, 3, (0, 0))]),
            facts(0, 1, vec![group("c", AccessKind::Read, &[], 5, 2, (1, 1))]),
        ]);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn read_write_mix_fires_rc002() {
        let report = analyze(&[
            facts(
                0,
                0,
                vec![group("c", AccessKind::Write, &["l"], 1, 3, (0, 0))],
            ),
            facts(0, 1, vec![group("c", AccessKind::Read, &[], 1, 2, (0, 0))]),
        ]);
        assert!(report.codes().contains(&RaceCode::ReadWrite));
        assert!(!report.codes().contains(&RaceCode::WriteWrite));
    }

    #[test]
    fn cross_process_accesses_never_race() {
        let report = analyze(&[
            facts(0, 0, vec![group("c", AccessKind::Write, &[], 5, 3, (0, 0))]),
            facts(1, 0, vec![group("c", AccessKind::Write, &[], 5, 2, (0, 0))]),
        ]);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn lock_order_cycle_fires_rc003() {
        let report = analyze(&[
            facts(
                0,
                1,
                vec![group("B", AccessKind::Acquire, &["A"], 2, 10, (0, 0))],
            ),
            facts(
                0,
                2,
                vec![group("A", AccessKind::Acquire, &["B"], 2, 8, (0, 0))],
            ),
        ]);
        assert!(report.codes().contains(&RaceCode::LockOrder));
        let d = report.diagnostics()[0].clone();
        assert!(d.message.contains("`A` → `B` → `A`"), "{}", d.message);
        // Anchored at the cycle's earliest (trace, offset) edge witness.
        assert_eq!(d.trace, Some(TraceId::new(0, 1)));
        assert_eq!(d.span, Some(Span::at(10)));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let report = analyze(&[
            facts(
                0,
                1,
                vec![group("B", AccessKind::Acquire, &["A"], 2, 10, (0, 0))],
            ),
            facts(
                0,
                2,
                vec![group("B", AccessKind::Acquire, &["A"], 2, 8, (0, 0))],
            ),
        ]);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn three_lock_ring_renders_canonically() {
        let report = analyze(&[
            facts(
                0,
                1,
                vec![
                    group("B", AccessKind::Acquire, &["A"], 1, 1, (0, 0)),
                    group("C", AccessKind::Acquire, &["B"], 1, 2, (0, 0)),
                ],
            ),
            facts(
                0,
                2,
                vec![group("A", AccessKind::Acquire, &["C"], 1, 1, (0, 0))],
            ),
        ]);
        let d = report.diagnostics()[0].clone();
        assert!(d.message.contains("`A` → `B` → `C` → `A`"), "{}", d.message);
    }

    #[test]
    fn vocab_classifies_markers_and_barriers() {
        let reg = FunctionRegistry::new();
        let r = reg.intern("omp_read@x");
        let b = reg.intern("GOMP_barrier");
        let o = reg.intern("MPI_Send");
        let vocab = RaceVocab::build(&reg);
        assert_eq!(vocab.classify_fn(r), &RaceSym::Op(RaceOp::Read("x".into())));
        assert_eq!(vocab.classify_fn(b), &RaceSym::Barrier);
        assert_eq!(vocab.classify_fn(o), &RaceSym::Other);
        assert!(!vocab.is_empty());
        assert!(RaceVocab::build(&FunctionRegistry::new()).is_empty());
    }
}
