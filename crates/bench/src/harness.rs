//! Shared helpers for experiments and benches.

use difftrace::{AttrConfig, FilterConfig, KeepClass};
use dt_trace::{FunctionRegistry, TraceSet};
use std::sync::Arc;

/// Build an aligned (normal, faulty) trace-set pair by running the
/// same workload twice against one shared registry.
pub fn trace_pair<F>(mut run: F) -> (TraceSet, TraceSet)
where
    F: FnMut(bool, Arc<FunctionRegistry>) -> TraceSet,
{
    let registry = Arc::new(FunctionRegistry::new());
    let normal = run(false, registry.clone());
    let faulty = run(true, registry);
    (normal, faulty)
}

/// The custom "user code" filter class for ILCS (keeps `CPU_*`).
pub fn ilcs_custom() -> KeepClass {
    KeepClass::Custom("^CPU_".to_string())
}

/// Filter grid for the ILCS OpenMP-bug experiment (Table VI):
/// memory / OpenMP-critical / custom combinations, with and without
/// returns.
pub fn table_vi_filters() -> Vec<FilterConfig> {
    let mut out = Vec::new();
    for drop_returns in [true, false] {
        out.push(FilterConfig {
            drop_returns,
            drop_plt: true,
            keep: vec![KeepClass::Memory, ilcs_custom()],
            nlr_k: 10,
        });
        out.push(FilterConfig {
            drop_returns,
            drop_plt: true,
            keep: vec![KeepClass::Memory, KeepClass::OmpCritical, ilcs_custom()],
            nlr_k: 10,
        });
    }
    out
}

/// Filter grid for the MPI-bug experiments (Tables VII & VIII).
pub fn mpi_filters() -> Vec<FilterConfig> {
    let mut out = Vec::new();
    for drop_returns in [true, false] {
        for keep in [
            vec![KeepClass::MpiAll, ilcs_custom()],
            vec![KeepClass::MpiCollectives, ilcs_custom()],
            vec![KeepClass::MpiSendRecv, ilcs_custom()],
        ] {
            out.push(FilterConfig {
                drop_returns,
                drop_plt: true,
                keep,
                nlr_k: 10,
            });
        }
    }
    out
}

/// Filter grid for LULESH (Table IX): "everything" with and without
/// returns, K = 10.
pub fn lulesh_filters() -> Vec<FilterConfig> {
    vec![
        FilterConfig::everything(10),
        FilterConfig {
            drop_returns: false,
            ..FilterConfig::everything(10)
        },
    ]
}

/// All six Table V attribute configurations.
pub fn all_attr_configs() -> Vec<AttrConfig> {
    AttrConfig::ALL.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_expected_sizes() {
        assert_eq!(table_vi_filters().len(), 4);
        assert_eq!(mpi_filters().len(), 6);
        assert_eq!(lulesh_filters().len(), 2);
        assert_eq!(all_attr_configs().len(), 6);
        for f in table_vi_filters().iter().chain(&mpi_filters()) {
            f.validate().unwrap();
        }
    }
}
