//! One function per paper artifact. Each returns a printable report;
//! the integration tests assert the reproduced *shapes* (who wins,
//! what is flagged, where traces truncate).

use crate::harness;
use difftrace::{
    analyze, diff_runs, render_ranking, sweep, AttrConfig, AttrKind, DiffRun, FilterConfig,
    FreqMode, KeepClass, Params, RankingRow,
};
use dt_trace::{FunctionRegistry, TraceId, TraceSetStats};
use nlr::LoopTable;
use std::fmt::Write as _;
use std::sync::Arc;
use workloads::{run_ilcs, run_lulesh, run_oddeven, IlcsConfig, LuleshConfig, OddEvenConfig};

fn oddeven4() -> dt_trace::TraceSet {
    let cfg = OddEvenConfig {
        ranks: 4,
        values_per_rank: 4,
        seed: 7,
        fault: None,
    };
    run_oddeven(&cfg, Arc::new(FunctionRegistry::new())).traces
}

/// Walk-through filter: MPI calls plus the user functions of Figure 2.
fn walkthrough_filter(k: usize) -> FilterConfig {
    FilterConfig {
        keep: vec![
            KeepClass::MpiAll,
            KeepClass::Custom("^(main|oddEvenSort|findPtr)$".to_string()),
        ],
        nlr_k: k,
        ..FilterConfig::default()
    }
}

/// E1 — Tables II & III: the odd/even traces (pre-processed) and their
/// NLR summaries.
pub fn e1_traces_and_nlr() -> String {
    let set = oddeven4();
    let mut out = String::new();
    out.push_str("== Table II: pre-processed traces (4 ranks) ==\n");
    let full = walkthrough_filter(10);
    let filtered = full.apply(&set);
    for t in &filtered.traces {
        let names: Vec<String> = t
            .symbols
            .iter()
            .map(|&s| difftrace::filter::symbol_name(&set.registry, s))
            .collect();
        let _ = writeln!(out, "T{}: {}", t.id.process, names.join(" · "));
    }

    out.push_str("\n== Table III: NLR of MPI-filtered traces (K=10) ==\n");
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
    );
    let mut table = LoopTable::new();
    let run = analyze(&set, &params, &mut table);
    for id in &run.ids {
        let nlr = run.nlrs.get(*id).unwrap();
        let rendered = nlr.render(&|s| difftrace::filter::symbol_name(&set.registry, s));
        let _ = writeln!(out, "T{}: {}", id.process, rendered.join(" · "));
    }
    out.push_str("\nLoop bodies:\n");
    for i in 0..table.len() {
        let id = nlr::LoopId(i as u32);
        let _ = writeln!(
            out,
            "{id} = {}",
            table.render_body(id, &|s| difftrace::filter::symbol_name(&set.registry, s))
        );
    }
    out
}

/// The analysis used by E2/E3 (MPI filter, single/noFreq attributes).
fn walkthrough_analysis() -> (dt_trace::TraceSet, difftrace::AnalysisRun) {
    let set = oddeven4();
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
    );
    let mut table = LoopTable::new();
    let run = analyze(&set, &params, &mut table);
    (set, run)
}

/// E2 — Table IV (formal context) and Figure 3 (concept lattice).
pub fn e2_context_and_lattice() -> String {
    let (_set, run) = walkthrough_analysis();
    let mut out = String::new();
    out.push_str("== Table IV: formal context ==\n");
    out.push_str(&run.context.render_table());
    out.push_str("\n== Figure 3: concept lattice (top-down) ==\n");
    out.push_str(&run.lattice.render(&run.context));
    let _ = writeln!(
        out,
        "\nconcepts: {}   top extent: {}   bottom intent: {}",
        run.lattice.concepts().len(),
        run.lattice.top().extent_len(),
        run.lattice.bottom().intent_len()
    );
    out
}

/// E3 — Figure 4: the pairwise JSM heatmap.
pub fn e3_jsm_heatmap() -> String {
    let (_set, run) = walkthrough_analysis();
    let mut out = String::new();
    out.push_str("== Figure 4: Jaccard similarity matrix ==\n");
    out.push_str(&run.jsm.render_heatmap());
    out.push('\n');
    out.push_str(&run.jsm.to_csv());
    out
}

fn oddeven_pair(fault: workloads::OddEvenFault) -> DiffRun {
    let (normal, faulty) = harness::trace_pair(|inject, reg| {
        let cfg = OddEvenConfig::paper(if inject { Some(fault) } else { None });
        run_oddeven(&cfg, reg).traces
    });
    diff_runs(
        &normal,
        &faulty,
        &Params::new(
            FilterConfig::mpi_all(10),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
        ),
    )
}

/// E4 — Figures 5 & 6: diffNLR of swapBug and dlBug (16 ranks, bug in
/// rank 5 after iteration 7).
pub fn e4_diffnlr_oddeven() -> String {
    let mut out = String::new();
    out.push_str("== Figure 5: diffNLR(5) of swapBug ==\n");
    let swap = oddeven_pair(OddEvenConfig::swap_bug());
    out.push_str(&swap.diff_nlr(TraceId::master(5)).unwrap().render());
    let _ = writeln!(
        out,
        "suspects: threads [{}]  processes {:?}  (B-score {:.3})",
        fmt_ids(&swap.suspicious_threads),
        swap.suspicious_processes,
        swap.bscore
    );
    out.push_str("\n== Figure 6: diffNLR(5) of dlBug ==\n");
    let dl = oddeven_pair(OddEvenConfig::dl_bug());
    out.push_str(&dl.diff_nlr(TraceId::master(5)).unwrap().render());
    let _ = writeln!(
        out,
        "suspects: threads [{}]  processes {:?}  (B-score {:.3})",
        fmt_ids(&dl.suspicious_threads),
        dl.suspicious_processes,
        dl.bscore
    );
    out
}

fn ilcs_pair(fault: workloads::IlcsFault) -> (dt_trace::TraceSet, dt_trace::TraceSet) {
    harness::trace_pair(|inject, reg| {
        let cfg = IlcsConfig::paper(if inject { Some(fault) } else { None });
        run_ilcs(&cfg, reg).traces
    })
}

fn fmt_ids(ids: &[TraceId]) -> String {
    ids.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn report_rows(title: &str, rows: &[RankingRow]) -> String {
    format!("== {title} ==\n{}\n", render_ranking(rows))
}

/// E5 — Table VI + Figure 7a: ILCS OpenMP bug (unprotected memcpy in
/// thread 4 of process 6).
pub fn e5_ilcs_ompcrit() -> String {
    let (normal, faulty) = ilcs_pair(IlcsConfig::omp_crit_bug());
    let rows = sweep(
        &normal,
        &faulty,
        &harness::table_vi_filters(),
        &harness::all_attr_configs(),
        cluster::Method::Ward,
    );
    let mut out = report_rows("Table VI: ranking, OpenMP unprotected-memcpy bug", &rows);
    // Figure 7a: diffNLR(6.4) under the mem+ompcrit+cust filter.
    let params = Params::new(
        FilterConfig {
            keep: vec![
                KeepClass::Memory,
                KeepClass::OmpCritical,
                harness::ilcs_custom(),
            ],
            nlr_k: 10,
            ..FilterConfig::default()
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
    );
    let d = diff_runs(&normal, &faulty, &params);
    out.push_str("\n== Figure 7a: diffNLR(6.4) ==\n");
    out.push_str(&d.diff_nlr(TraceId::new(6, 4)).unwrap().render());
    out
}

/// E6 — Table VII + Figure 7b: ILCS deadlock via wrong collective size
/// in process 2.
pub fn e6_ilcs_collsize() -> String {
    let (normal, faulty) = ilcs_pair(IlcsConfig::coll_size_bug());
    let rows = sweep(
        &normal,
        &faulty,
        &harness::mpi_filters(),
        &harness::all_attr_configs(),
        cluster::Method::Ward,
    );
    let mut out = report_rows(
        "Table VII: ranking, wrong collective size in process 2",
        &rows,
    );
    let params = Params::new(
        FilterConfig {
            keep: vec![KeepClass::MpiAll, harness::ilcs_custom()],
            nlr_k: 10,
            ..FilterConfig::default()
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let d = diff_runs(&normal, &faulty, &params);
    out.push_str("\n== Figure 7b: diffNLR(4.0) — picked arbitrarily, as in the paper ==\n");
    out.push_str(&d.diff_nlr(TraceId::master(4)).unwrap().render());
    out
}

/// E7 — Table VIII + Figure 7c: wrong collective operation (MAX for
/// MIN) in process 0.
pub fn e7_ilcs_wrongop() -> String {
    let (normal, faulty) = ilcs_pair(IlcsConfig::wrong_op_bug());
    let mut filters = harness::mpi_filters();
    // The paper's table also sweeps plt+cust (user-code) filters.
    for drop_returns in [true, false] {
        filters.push(FilterConfig {
            drop_returns,
            drop_plt: true,
            keep: vec![harness::ilcs_custom(), KeepClass::Memory],
            nlr_k: 10,
        });
    }
    let rows = sweep(
        &normal,
        &faulty,
        &filters,
        &harness::all_attr_configs(),
        cluster::Method::Ward,
    );
    let mut out = report_rows(
        "Table VIII: ranking, wrong collective operation in process 0",
        &rows,
    );
    // Figure 7c: diffNLR of the top suspicious master trace under an
    // MPI filter — the buggy run executes more champion rounds, i.e.
    // more MPI_Bcast calls.
    let params = Params::new(
        FilterConfig {
            keep: vec![KeepClass::MpiAll, harness::ilcs_custom()],
            nlr_k: 10,
            ..FilterConfig::default()
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let d = diff_runs(&normal, &faulty, &params);
    let pick = d
        .suspicious_threads
        .iter()
        .find(|t| t.thread == 0)
        .copied()
        .unwrap_or(TraceId::master(5));
    let _ = writeln!(out, "\n== Figure 7c: diffNLR({pick}) ==");
    out.push_str(&d.diff_nlr(pick).unwrap().render());
    out
}

/// E8 — §V LULESH trace statistics: distinct functions, compressed
/// size, call counts, NLR reduction factors at K=10 and K=50.
pub fn e8_lulesh_stats() -> String {
    let set = run_lulesh(
        &LuleshConfig::paper_scale(),
        Arc::new(FunctionRegistry::new()),
    )
    .traces;
    let stats = TraceSetStats::measure(&set);
    let mut out = String::new();
    out.push_str("== §V LULESH trace statistics (paper: ≈410 distinct fns, ≈421k calls/process, <2.8 KB/thread compressed, NLR ×1.92 @K10 / ×16.74 @K50) ==\n");
    let _ = writeln!(
        out,
        "distinct functions / process (avg): {:.0}",
        stats.avg_distinct_per_process()
    );
    let _ = writeln!(
        out,
        "function calls / process (avg):     {:.0}",
        stats.avg_calls_per_process()
    );
    let _ = writeln!(
        out,
        "compressed trace / thread (avg):    {:.1} KB",
        stats.avg_compressed_bytes_per_thread() / 1024.0
    );
    let _ = writeln!(
        out,
        "overall compression ratio:          {:.0}×",
        stats.overall_ratio()
    );

    // NLR reduction on returns-kept traces, K = 10 vs K = 50. The
    // master traces carry the long EOS loops whose 12-symbol bodies
    // only fold at K = 50 — the K-dependence the paper reports.
    for k in [10usize, 50] {
        let filter = FilterConfig {
            drop_returns: false,
            ..FilterConfig::everything(k)
        };
        let filtered = filter.apply(&set);
        let mut table = LoopTable::new();
        let nlrs = difftrace::NlrSet::build(&filtered, k, &mut table);
        let masters: Vec<f64> = nlrs
            .ids()
            .iter()
            .filter(|id| id.thread == 0)
            .map(|id| nlrs.get(*id).unwrap().reduction_factor())
            .collect();
        let master_mean = masters.iter().sum::<f64>() / masters.len().max(1) as f64;
        let max_depth = nlrs
            .ids()
            .iter()
            .map(|id| nlrs.get(*id).unwrap().max_depth(&table))
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "NLR sequence reduction @K={k}:        ×{:.2} (all threads)   ×{:.2} (master traces)   max nest depth {}",
            nlrs.mean_reduction_factor(),
            master_mean,
            max_depth
        );
    }
    out
}

/// E9 — Table IX: LULESH ranking for the rank-2 skip fault.
pub fn e9_lulesh_ranking() -> String {
    let (normal, faulty) = harness::trace_pair(|inject, reg| {
        let cfg = LuleshConfig::paper(if inject {
            Some(LuleshConfig::skip_bug())
        } else {
            None
        });
        run_lulesh(&cfg, reg).traces
    });
    let attrs = [
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::NoFreq,
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Log10,
        },
        AttrConfig {
            kind: AttrKind::Double,
            freq: FreqMode::NoFreq,
        },
    ];
    let rows = sweep(
        &normal,
        &faulty,
        &harness::lulesh_filters(),
        &attrs,
        cluster::Method::Ward,
    );
    let mut out = report_rows(
        "Table IX: LULESH ranking (rank 2 skips LagrangeLeapFrog)",
        &rows,
    );
    // The paper notes the diffNLRs clearly show where each process
    // stopped; show rank 1 (a neighbour stuck in the halo exchange).
    let d = diff_runs(
        &normal,
        &faulty,
        &Params::new(FilterConfig::mpi_all(10), attrs[1]),
    );
    out.push_str("\n== diffNLR(1.0): neighbour of the faulty rank ==\n");
    out.push_str(&d.diff_nlr(TraceId::master(1)).unwrap().render());
    out
}

/// E10 — the paper's §VII-3 future-work extension: systematic bug
/// injection + bug classification from lattice/loop features.
///
/// Builds a labelled corpus by injecting every fault family at several
/// sites across all three workloads, extracts the "elevated features"
/// from each normal/faulty diff, and reports leave-one-out accuracy of
/// a nearest-centroid classifier.
pub fn e10_bug_classification() -> String {
    use difftrace::{extract_features, leave_one_out, Sample};
    use workloads::{IlcsFault, LuleshFault, OddEvenFault};

    let params = Params::new(
        FilterConfig::everything(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );

    let mut samples: Vec<Sample> = Vec::new();
    let mut push = |label: &str, normal: dt_trace::TraceSet, faulty: dt_trace::TraceSet| {
        let d = diff_runs(&normal, &faulty, &params);
        samples.push(Sample {
            label: label.to_string(),
            features: extract_features(&d),
        });
    };

    // hang: real deadlocks from three different mechanisms/sites.
    for (rank, after_iter) in [(5, 7), (3, 5), (9, 3)] {
        let (n, f) = harness::trace_pair(|inject, reg| {
            let fault = inject.then_some(OddEvenFault::DlBug { rank, after_iter });
            run_oddeven(&OddEvenConfig::paper(fault), reg).traces
        });
        push("hang", n, f);
    }
    {
        let (n, f) = harness::trace_pair(|inject, reg| {
            let fault = inject.then_some(IlcsFault::CollSizeBug { process: 2 });
            run_ilcs(&IlcsConfig::paper(fault), reg).traces
        });
        push("hang", n, f);
    }
    {
        let (n, f) = harness::trace_pair(|inject, reg| {
            let fault = inject.then_some(LuleshFault::SkipLagrangeLeapFrog { rank: 2 });
            run_lulesh(&LuleshConfig::paper(fault), reg).traces
        });
        push("hang", n, f);
    }

    // reorder: swapped Send/Recv at several sites (terminates).
    for (rank, after_iter) in [(5, 7), (3, 5), (9, 3), (11, 9)] {
        let (n, f) = harness::trace_pair(|inject, reg| {
            let fault = inject.then_some(OddEvenFault::SwapBug { rank, after_iter });
            run_oddeven(&OddEvenConfig::paper(fault), reg).traces
        });
        push("reorder", n, f);
    }

    // missing-sync: omitted critical sections at several threads.
    for (process, thread) in [(6, 4), (3, 2), (1, 1)] {
        let (n, f) = harness::trace_pair(|inject, reg| {
            let fault = inject.then_some(IlcsFault::OmpCritBug { process, thread });
            run_ilcs(&IlcsConfig::paper(fault), reg).traces
        });
        push("missing-sync", n, f);
    }

    // semantic-drift: wrong reduction op over several instances.
    for cities in [20usize, 24, 28] {
        let (n, f) = harness::trace_pair(|inject, reg| {
            let mut cfg = IlcsConfig::paper(inject.then_some(IlcsFault::WrongOpBug { process: 0 }));
            cfg.cities = cities;
            run_ilcs(&cfg, reg).traces
        });
        push("semantic-drift", n, f);
    }

    let (correct, total, predictions) = leave_one_out(&samples);
    let mut out = String::new();
    out.push_str("== E10: systematic bug injection + classification (§VII-3) ==\n");
    let _ = writeln!(
        out,
        "{} labelled injections, 4 classes; leave-one-out nearest-centroid accuracy: {}/{} ({:.0}%)",
        total,
        correct,
        total,
        100.0 * correct as f64 / total as f64
    );
    out.push_str("\nlabel           -> predicted\n");
    for (truth, pred) in &predictions {
        let mark = if truth == pred { "✓" } else { "✗" };
        let _ = writeln!(out, "{truth:<15} -> {pred:<15} {mark}");
    }
    out.push_str("\nper-class feature centroids (raw):\n");
    let mut by_label: std::collections::BTreeMap<&str, Vec<&Sample>> = Default::default();
    for s in &samples {
        by_label.entry(&s.label).or_default().push(s);
    }
    for (label, group) in by_label {
        let mut mean = [0.0f64; difftrace::classify::NUM_FEATURES];
        for s in &group {
            for (m, v) in mean.iter_mut().zip(&s.features.0) {
                *m += v / group.len() as f64;
            }
        }
        let _ = writeln!(out, "{label}:");
        for (name, v) in difftrace::classify::FEATURE_NAMES.iter().zip(mean) {
            let _ = writeln!(out, "    {name:<22} {v:.4}");
        }
    }
    out
}

/// E11 — attribute-granularity ablation, including the caller/callee
/// extension (`ctxt.*`): does each attribute kind still pin the ILCS
/// OpenMP bug to trace 6.4 when returns are kept (so nesting is
/// recoverable)?
pub fn e11_attribute_ablation() -> String {
    let (normal, faulty) = ilcs_pair(IlcsConfig::omp_crit_bug());
    let filter = FilterConfig {
        drop_returns: false, // ctxt needs returns for nesting
        drop_plt: true,
        keep: vec![
            KeepClass::Memory,
            KeepClass::OmpCritical,
            harness::ilcs_custom(),
        ],
        nlr_k: 10,
    };
    let rows = sweep(
        &normal,
        &faulty,
        &[filter],
        &AttrConfig::EXTENDED,
        cluster::Method::Ward,
    );
    let mut out = report_rows(
        "E11: attribute ablation (Table V + caller/callee) on the ILCS OpenMP bug",
        &rows,
    );
    let hits = rows
        .iter()
        .filter(|r| r.top_threads.first() == Some(&TraceId::new(6, 4)))
        .count();
    let _ = writeln!(
        out,
        "{hits}/{} attribute configurations put the planted bug site (6.4) first",
        rows.len()
    );
    out
}

/// Run every experiment, concatenating the reports.
pub fn run_all() -> String {
    let mut out = String::new();
    for (name, f) in experiments_list() {
        let _ = writeln!(out, "\n######## {name} ########\n");
        out.push_str(&f());
    }
    out
}

/// An experiment id paired with its report generator.
pub type Experiment = (&'static str, fn() -> String);

/// `(id, function)` pairs for dispatch.
pub fn experiments_list() -> Vec<Experiment> {
    vec![
        ("e1", e1_traces_and_nlr as fn() -> String),
        ("e2", e2_context_and_lattice),
        ("e3", e3_jsm_heatmap),
        ("e4", e4_diffnlr_oddeven),
        ("e5", e5_ilcs_ompcrit),
        ("e6", e6_ilcs_collsize),
        ("e7", e7_ilcs_wrongop),
        ("e8", e8_lulesh_stats),
        ("e9", e9_lulesh_ranking),
        ("e10", e10_bug_classification),
        ("e11", e11_attribute_ablation),
    ]
}
