//! `bench_gate` — hold the pipeline perf trajectory to the committed
//! snapshot.
//!
//! Compares a freshly measured `BENCH_pipeline.json` against the
//! checked-in baseline document (`BENCH_baselines/BENCH_pipeline.json`)
//! and fails when the gated sweep stages regress beyond the tolerance.
//!
//! Two comparison modes:
//!
//! * **ratio** (default): gates the cache-effectiveness ratio
//!   `sweep_cached_best_ns / sweep_cold_best_ns`. Absolute times are
//!   machine-relative — CI hardware is not the machine that recorded
//!   the snapshot — but the warm/cold ratio measures what the analysis
//!   cache is worth on the golden corpus and is portable. A regression
//!   here means the cached sweep stopped answering from the memo.
//! * **`--absolute`**: gates each stage's raw nanoseconds directly.
//!   Only meaningful when both documents come from the same machine
//!   (e.g. a local before/after check while optimising).
//!
//! ```text
//! cargo run --release -p difftrace-bench --bin bench_gate -- \
//!     [--tolerance PCT] [--absolute] <baseline.json> <fresh.json>
//! ```
//!
//! Exits 0 when within tolerance, 1 on a regression, 2 on usage/IO/
//! schema errors (2 means the gate could not run, not that perf is ok).

use dt_obs::json::Value;

/// The best-of-K sweep minima `bench_pipeline` records for this gate.
/// One-shot stage times jitter far beyond any useful tolerance, so the
/// gate reads these counters, not the `sweep_cold`/`sweep_cached`
/// stage spans (those stay in the document for the perf trajectory).
const GATED_STAGES: [&str; 2] = ["sweep_cold_best_ns", "sweep_cached_best_ns"];

/// The value of counter `name` in a parsed metrics document.
fn counter_ns(doc: &Value, name: &str) -> Option<f64> {
    let counters = doc
        .as_object()?
        .iter()
        .find(|(k, _)| k == "counters")?
        .1
        .as_object()?;
    counters.iter().find(|(k, _)| k == name).and_then(|(_, v)| {
        if let Value::Num(n) = v {
            Some(*n)
        } else {
            None
        }
    })
}

fn load(path: &str) -> Value {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = dt_obs::validate_json(&doc) {
        eprintln!("{path}: schema violation: {e}");
        std::process::exit(2);
    }
    match dt_obs::json::parse(&doc) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: unparseable after validation: {e}");
            std::process::exit(2);
        }
    }
}

fn gated(doc: &Value, path: &str) -> [f64; 2] {
    GATED_STAGES.map(|stage| match counter_ns(doc, stage) {
        Some(ns) if ns > 0.0 => ns,
        Some(_) => {
            eprintln!("{path}: counter `{stage}` recorded zero time");
            std::process::exit(2);
        }
        None => {
            eprintln!("{path}: counter `{stage}` is missing — not a bench_pipeline document?");
            std::process::exit(2);
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 15.0_f64;
    let mut absolute = false;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(t) if t >= 0.0 => t,
                    _ => {
                        eprintln!("--tolerance needs a non-negative percentage");
                        std::process::exit(2);
                    }
                };
            }
            "--absolute" => absolute = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown option {flag}");
                std::process::exit(2);
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [base_path, fresh_path] = &paths[..] else {
        eprintln!("usage: bench_gate [--tolerance PCT] [--absolute] <baseline.json> <fresh.json>");
        std::process::exit(2);
    };

    let base = gated(&load(base_path), base_path);
    let fresh = gated(&load(fresh_path), fresh_path);
    let mut failed = false;

    if absolute {
        for (stage, (b, f)) in GATED_STAGES.iter().zip(base.iter().zip(&fresh)) {
            let pct = (f / b - 1.0) * 100.0;
            let verdict = if pct > tolerance {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!("{stage}: baseline {b:.0} ns, fresh {f:.0} ns ({pct:+.1}%) {verdict}");
        }
    } else {
        let [b_cold, b_cached] = base;
        let [f_cold, f_cached] = fresh;
        let (r_base, r_fresh) = (b_cached / b_cold, f_cached / f_cold);
        let pct = (r_fresh / r_base - 1.0) * 100.0;
        let verdict = if pct > tolerance {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "sweep_cached/sweep_cold: baseline {r_base:.3}, fresh {r_fresh:.3} ({pct:+.1}%) {verdict}"
        );
    }

    if failed {
        eprintln!(
            "bench gate: regression beyond {tolerance}% tolerance vs {base_path} — \
             investigate, or re-record the snapshot if the change is intentional"
        );
        std::process::exit(1);
    }
}
