//! `metrics_check` — validate `difftrace-metrics/v1` JSON documents.
//!
//! CI's metrics-smoke job runs every emitted document through this
//! before archiving it, so a schema drift fails the build instead of
//! silently corrupting the perf trajectory. `--require <counter>`
//! (repeatable) additionally asserts that every document carries the
//! named counter with a nonzero value — e.g.
//! `--require cache_nlr_hits` proves a warm cached run actually hit.
//!
//! ```text
//! cargo run --release -p difftrace-bench --bin metrics_check -- \
//!     [--require COUNTER]... m.json...
//! ```
//!
//! Exits 0 when every document validates (and satisfies every
//! `--require`), 1 on the first violation, 2 on usage/IO errors.

use dt_obs::json::Value;

/// The value of counter `name` in a parsed metrics document, if
/// present. Counters live in the top-level `"counters"` object.
fn counter_value(doc: &Value, name: &str) -> Option<f64> {
    let counters = doc
        .as_object()?
        .iter()
        .find(|(k, _)| k == "counters")?
        .1
        .as_object()?;
    counters.iter().find(|(k, _)| k == name).and_then(|(_, v)| {
        if let Value::Num(n) = v {
            Some(*n)
        } else {
            None
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut required: Vec<String> = Vec::new();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require" => {
                i += 1;
                match args.get(i) {
                    Some(c) => required.push(c.clone()),
                    None => {
                        eprintln!("--require needs a counter name");
                        std::process::exit(2);
                    }
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown option {flag}");
                std::process::exit(2);
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("usage: metrics_check [--require COUNTER]... <metrics.json>...");
        std::process::exit(2);
    }
    for path in &paths {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = dt_obs::validate_json(&doc) {
            eprintln!("{path}: schema violation: {e}");
            std::process::exit(1);
        }
        if !required.is_empty() {
            let parsed = match dt_obs::json::parse(&doc) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("{path}: unparseable after validation: {e}");
                    std::process::exit(1);
                }
            };
            for name in &required {
                match counter_value(&parsed, name) {
                    Some(v) if v > 0.0 => {}
                    Some(_) => {
                        eprintln!("{path}: counter `{name}` is zero");
                        std::process::exit(1);
                    }
                    None => {
                        eprintln!("{path}: counter `{name}` is missing");
                        std::process::exit(1);
                    }
                }
            }
        }
        println!("{path}: ok");
    }
}
