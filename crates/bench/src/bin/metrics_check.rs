//! `metrics_check` — validate `difftrace-metrics/v1` JSON documents.
//!
//! CI's metrics-smoke job runs every emitted document through this
//! before archiving it, so a schema drift fails the build instead of
//! silently corrupting the perf trajectory.
//!
//! ```text
//! cargo run --release -p difftrace-bench --bin metrics_check -- m.json...
//! ```
//!
//! Exits 0 when every document validates, 1 on the first violation,
//! 2 on usage/IO errors.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: metrics_check <metrics.json>...");
        std::process::exit(2);
    }
    for path in &args {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = dt_obs::validate_json(&doc) {
            eprintln!("{path}: schema violation: {e}");
            std::process::exit(1);
        }
        println!("{path}: ok");
    }
}
