//! `bench_pipeline` — run one instrumented DiffTrace iteration on the
//! golden odd/even corpus and write the stage metrics as
//! `BENCH_pipeline.json` (schema `difftrace-metrics/v1`, the same
//! document `difftrace --metrics` emits). This is the machine-readable
//! perf trajectory: CI archives one document per commit, so stage-level
//! regressions show up as a diffable time series.
//!
//! ```text
//! cargo run --release -p difftrace-bench --bin bench_pipeline -- [out.json]
//! ```

use difftrace::{
    sweep_parallel_cached_rec, try_diff_runs_hb_rec, AttrConfig, AttrKind, FilterConfig, FreqMode,
    Params, PipelineOptions,
};
use dt_cache::Cache;
use dt_obs::Recorder;
use dt_trace::FunctionRegistry;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let registry = Arc::new(FunctionRegistry::new());
    let normal = run_oddeven(&OddEvenConfig::paper(None), registry.clone()).traces;
    let faulty = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())),
        registry,
    )
    .traces;
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );

    let rec = dt_obs::MetricsRecorder::new();
    let d = try_diff_runs_hb_rec(
        &normal,
        &faulty,
        None,
        &params,
        &PipelineOptions::default(),
        &rec,
    )
    .expect("gates are off");
    // Sanity: the corpus must still implicate the seeded fault — a
    // perf document for a wrong answer is worse than no document.
    assert_eq!(
        d.suspicious_processes.first(),
        Some(&5),
        "odd/even swap bug no longer implicates rank 5"
    );

    // Cold vs. warm sweep through the analysis cache: two identical
    // parameter sweeps sharing one in-memory cache. The first pays for
    // every NLR fold; the second answers from the memo. Both land in
    // the document as `sweep_cold` / `sweep_cached` spans, so the time
    // series records what the cache is worth on the golden corpus.
    let filters = vec![FilterConfig::mpi_all(10), FilterConfig::everything(10)];
    let cache = Arc::new(Cache::new());
    let mut sweeps = Vec::new();
    for pass in ["sweep_cold", "sweep_cached"] {
        let _s = dt_obs::stage(&rec, pass);
        sweeps.push(sweep_parallel_cached_rec(
            &normal,
            &faulty,
            &filters,
            &AttrConfig::ALL,
            cluster::Method::Ward,
            0,
            Some(cache.clone()),
            &rec,
        ));
    }
    let [cold, warm] = &sweeps[..] else {
        unreachable!()
    };
    assert_eq!(cold.len(), warm.len(), "cold/warm sweep row count");
    for (a, b) in cold.iter().zip(warm) {
        assert_eq!(
            (a.bscore.to_bits(), &a.filter, &a.attrs),
            (b.bscore.to_bits(), &b.filter, &b.attrs),
            "cached sweep diverged from cold sweep"
        );
    }
    cache.report_to(&rec);

    // Best-of-K sweep timing for CI's bench_gate: a single sweep on
    // this corpus takes single-digit milliseconds, so one-shot times
    // jitter far beyond any useful gate tolerance. Measure K fresh
    // cold/warm pairs and record the minima as counters; bench_gate
    // holds these against the committed snapshot.
    let (mut best_cold, mut best_cached) = (u64::MAX, u64::MAX);
    for _ in 0..5 {
        let cache = Arc::new(Cache::new());
        let t = std::time::Instant::now();
        let cold = sweep_parallel_cached_rec(
            &normal,
            &faulty,
            &filters,
            &AttrConfig::ALL,
            cluster::Method::Ward,
            0,
            Some(cache.clone()),
            &dt_obs::NOOP,
        );
        best_cold = best_cold.min(t.elapsed().as_nanos() as u64);
        let t = std::time::Instant::now();
        let warm = sweep_parallel_cached_rec(
            &normal,
            &faulty,
            &filters,
            &AttrConfig::ALL,
            cluster::Method::Ward,
            0,
            Some(cache),
            &dt_obs::NOOP,
        );
        best_cached = best_cached.min(t.elapsed().as_nanos() as u64);
        assert_eq!(cold.len(), warm.len(), "gate sweep row count");
    }
    rec.add("sweep_cold_best_ns", best_cold);
    rec.add("sweep_cached_best_ns", best_cached);

    let m = rec.finish("bench_pipeline", 0);
    let doc = m.to_json();
    if let Err(e) = dt_obs::validate_json(&doc) {
        eprintln!("emitted metrics do not validate: {e}\n{doc}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("writing {out}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "wrote {out} ({} stages, {} counters)",
        m.stages.len(),
        m.counters.len()
    );
    print!("{}", m.render_table());
}
