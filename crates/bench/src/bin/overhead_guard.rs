//! `overhead_guard` — assert the dt-obs instrumentation stays cheap.
//!
//! Runs the same single-threaded DiffTrace iteration N times without a
//! recorder and N times with a live [`dt_obs::MetricsRecorder`], then
//! compares the *minimum* wall times (min-of-N is the standard
//! noise-resistant estimator for "how fast can this go"). The
//! instrumented minimum must stay within `--tolerance` percent of the
//! uninstrumented one — the tentpole's "disabled instrumentation
//! compiles to nothing" claim, enforced on the enabled side too.
//!
//! ```text
//! cargo run --release -p difftrace-bench --bin overhead_guard -- \
//!     [--runs N] [--tolerance PCT]
//! ```
//!
//! Exits 0 when within tolerance, 1 on breach, 2 on usage errors.

use difftrace::{
    try_diff_runs_hb_rec, AttrConfig, AttrKind, FilterConfig, FreqMode, Params, PipelineOptions,
};
use dt_trace::{FunctionRegistry, TraceSet};
use std::sync::Arc;
use std::time::Instant;
use workloads::{run_oddeven, OddEvenConfig};

fn min_wall(
    runs: usize,
    normal: &TraceSet,
    faulty: &TraceSet,
    params: &Params,
    rec: &dyn dt_obs::Recorder,
) -> f64 {
    let opts = PipelineOptions::with_threads(1);
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let d =
            try_diff_runs_hb_rec(normal, faulty, None, params, &opts, rec).expect("gates are off");
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(d.suspicious_processes.first(), Some(&5));
        best = best.min(dt);
    }
    best
}

fn main() {
    let mut runs = 5usize;
    let mut tolerance = 5.0f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--runs" => {
                runs = value("--runs").parse().unwrap_or_else(|_| {
                    eprintln!("bad --runs");
                    std::process::exit(2);
                });
            }
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("bad --tolerance");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown option `{other}` (usage: overhead_guard [--runs N] [--tolerance PCT])"
                );
                std::process::exit(2);
            }
        }
    }

    let registry = Arc::new(FunctionRegistry::new());
    let normal = run_oddeven(&OddEvenConfig::paper(None), registry.clone()).traces;
    let faulty = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())),
        registry,
    )
    .traces;
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );

    // Warm-up: fault in lazily-initialized state before timing either
    // side, and interleave-free: full uninstrumented pass, then full
    // instrumented pass.
    min_wall(1, &normal, &faulty, &params, &dt_obs::NOOP);
    let plain = min_wall(runs, &normal, &faulty, &params, &dt_obs::NOOP);
    let live = dt_obs::MetricsRecorder::new();
    let instrumented = min_wall(runs, &normal, &faulty, &params, &live);

    let overhead_pct = 100.0 * (instrumented - plain) / plain;
    println!(
        "uninstrumented min {:.3} ms, instrumented min {:.3} ms, overhead {overhead_pct:+.2}% (tolerance {tolerance}%, {runs} runs)",
        plain * 1e3,
        instrumented * 1e3,
    );
    if overhead_pct > tolerance {
        eprintln!("overhead guard breached: {overhead_pct:.2}% > {tolerance}%");
        std::process::exit(1);
    }
}
