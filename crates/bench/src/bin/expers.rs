//! `expers` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p difftrace-bench --bin expers -- all
//! cargo run --release -p difftrace-bench --bin expers -- e5 e6
//! ```

use difftrace_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = experiments::experiments_list();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: expers <all | e1 … e9>...");
        eprintln!("experiments:");
        for (name, _) in &list {
            eprintln!("  {name}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        list.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for sel in selected {
        match list.iter().find(|(n, _)| *n == sel) {
            Some((name, f)) => {
                println!("\n######## {name} ########\n");
                let t0 = std::time::Instant::now();
                print!("{}", f());
                println!("[{name} regenerated in {:.2?}]", t0.elapsed());
            }
            None => {
                eprintln!("unknown experiment `{sel}` (try --help)");
                std::process::exit(2);
            }
        }
    }
}
