//! `difftrace-bench` — the experiment harness.
//!
//! One function per paper artifact (table/figure); each regenerates the
//! artifact from a fresh simulated execution and returns a printable
//! report. The `expers` binary dispatches them; integration tests
//! assert on their contents; EXPERIMENTS.md records paper-vs-measured.
//!
//! | ID | Paper artifact | Function |
//! |----|----------------|----------|
//! | e1 | Tables II & III (odd/even traces + NLRs) | [`experiments::e1_traces_and_nlr`] |
//! | e2 | Table IV + Figure 3 (context + lattice)  | [`experiments::e2_context_and_lattice`] |
//! | e3 | Figure 4 (JSM heatmap)                   | [`experiments::e3_jsm_heatmap`] |
//! | e4 | Figures 5 & 6 (diffNLR swapBug/dlBug)    | [`experiments::e4_diffnlr_oddeven`] |
//! | e5 | Table VI + Figure 7a (ILCS OpenMP bug)   | [`experiments::e5_ilcs_ompcrit`] |
//! | e6 | Table VII + Figure 7b (ILCS deadlock)    | [`experiments::e6_ilcs_collsize`] |
//! | e7 | Table VIII + Figure 7c (ILCS wrong op)   | [`experiments::e7_ilcs_wrongop`] |
//! | e8 | §V LULESH trace statistics               | [`experiments::e8_lulesh_stats`] |
//! | e9 | Table IX (LULESH ranking)                | [`experiments::e9_lulesh_ranking`] |

pub mod experiments;
pub mod harness;
