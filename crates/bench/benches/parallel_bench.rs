//! Scaling of the parallel intra-run engine: one full DiffTrace
//! iteration (`diff_runs_opts`) at `threads = 1` (the exact sequential
//! path) vs `threads = 0` (all cores). Output is byte-identical across
//! thread counts — the benchmark asserts the B-scores agree — so the
//! wall-clock delta is pure speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use difftrace::{
    diff_runs_opts, AttrConfig, AttrKind, FilterConfig, FreqMode, Params, PipelineOptions,
};
use dt_trace::{FunctionRegistry, TraceSet};
use std::hint::black_box;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn pair(ranks: u32) -> (TraceSet, TraceSet) {
    let registry = Arc::new(FunctionRegistry::new());
    let healthy = OddEvenConfig {
        ranks,
        ..OddEvenConfig::paper(None)
    };
    let broken = OddEvenConfig {
        ranks,
        ..OddEvenConfig::paper(Some(OddEvenConfig::swap_bug()))
    };
    let normal = run_oddeven(&healthy, registry.clone()).traces;
    let faulty = run_oddeven(&broken, registry).traces;
    (normal, faulty)
}

fn bench_parallel(c: &mut Criterion) {
    let params = Params::new(
        FilterConfig::mpi_all(10),
        AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        },
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    for ranks in [16u32, 64] {
        let (normal, faulty) = pair(ranks);
        // Force the parallel code path (threads > 1) even on one-core
        // machines, where `threads = 0` would resolve back to 1.
        let seq = diff_runs_opts(&normal, &faulty, &params, &PipelineOptions::with_threads(1));
        let par = diff_runs_opts(&normal, &faulty, &params, &PipelineOptions::with_threads(4));
        assert_eq!(
            seq.bscore.to_bits(),
            par.bscore.to_bits(),
            "sequential and parallel runs must agree exactly"
        );
        for threads in [1usize, 0] {
            let opts = PipelineOptions::with_threads(threads);
            let label = if threads == 0 {
                format!("{ranks}ranks/{cores}threads")
            } else {
                format!("{ranks}ranks/1thread")
            };
            g.bench_with_input(BenchmarkId::new("diff_runs", label), &opts, |b, opts| {
                b.iter(|| {
                    black_box(
                        diff_runs_opts(black_box(&normal), black_box(&faulty), &params, opts)
                            .bscore,
                    )
                });
            });
        }
    }
    g.finish();
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_parallel}
criterion_main!(benches);
