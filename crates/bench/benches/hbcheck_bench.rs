//! Compressed-domain vs expanded-domain hbcheck progress summaries.
//!
//! The per-rank progress summary (call counts, open-call stack,
//! innermost open call — the inputs to HB002/HB005) has two
//! implementations with property-tested agreement: one replaying the
//! expanded event stream, one folding the NLR term with closed-form
//! loop repetition. The expanded walk is O(events); the compressed one
//! is O(term size), so on a high-repetition trace (`reps` iterations
//! of one loop body) its cost should stay flat while the expanded
//! walk grows linearly — the asymptotic win this bench exhibits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dt_trace::TraceId;
use hbcheck::{compressed::Summarizer, expanded};
use nlr::{LoopTable, NlrBuilder};
use std::hint::black_box;

// The loop body's period (2·(FNS−1) = 6 symbols) must fit the NLR
// window K below, or nothing folds and there is no compressed domain
// to speak of.
const FNS: u32 = 4;
const NLR_K: usize = 10;

/// `reps` iterations of a fixed nested loop body, plus a dangling open
/// call so the open-stack machinery has work to do.
fn high_repetition_stream(reps: usize) -> Vec<u32> {
    let call = |f: u32| f << 1;
    let ret = |f: u32| (f << 1) | 1;
    let mut v = vec![call(0)];
    for _ in 0..reps {
        for f in 1..FNS {
            v.push(call(f));
        }
        for f in (1..FNS).rev() {
            v.push(ret(f));
        }
    }
    v.push(call(1)); // never returns: the trace ends inside fn 1
    v
}

fn bench_hbcheck(c: &mut Criterion) {
    let mut g = c.benchmark_group("hbcheck_summarize");
    g.sample_size(10);
    let id = TraceId::master(0);
    for reps in [1_000usize, 10_000, 100_000] {
        let syms = high_repetition_stream(reps);
        let mut table = LoopTable::new();
        let term = NlrBuilder::new(NLR_K).build(&syms, &mut table);
        assert_eq!(term.expand(&table), syms, "NLR must be lossless");
        assert!(
            term.elements().len() * 100 < syms.len(),
            "the stream must actually fold ({} elements for {} events)",
            term.elements().len(),
            syms.len()
        );

        // The two domains must agree before their speeds mean anything.
        let exp = expanded::summarize(id, &syms, true);
        let mut s = Summarizer::new(&table);
        assert_eq!(exp, s.summarize(id, &term, true), "domains disagree");

        g.throughput(Throughput::Elements(syms.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("expanded", format!("{reps}reps/{}ev", syms.len())),
            &syms,
            |b, syms| b.iter(|| black_box(expanded::summarize(id, black_box(syms), true))),
        );
        g.bench_with_input(
            BenchmarkId::new("compressed", format!("{reps}reps/{}ev", syms.len())),
            &term,
            |b, term| {
                b.iter(|| {
                    let mut s = Summarizer::new(&table);
                    black_box(s.summarize(id, black_box(term), true))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_hbcheck);
criterion_main!(benches);
