//! End-to-end DiffTrace iteration cost and the parameter ablations the
//! design calls out: attribute granularity (single vs double),
//! frequency encoding, and linkage method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use difftrace::{diff_runs, AttrConfig, AttrKind, FilterConfig, FreqMode, Params};
use dt_trace::{FunctionRegistry, TraceSet};
use std::hint::black_box;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn pair() -> (TraceSet, TraceSet) {
    let registry = Arc::new(FunctionRegistry::new());
    let normal = run_oddeven(&OddEvenConfig::paper(None), registry.clone()).traces;
    let faulty = run_oddeven(
        &OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())),
        registry,
    )
    .traces;
    (normal, faulty)
}

fn bench_pipeline(c: &mut Criterion) {
    let (normal, faulty) = pair();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    // Ablation: attribute granularity × frequency mode.
    for attrs in AttrConfig::ALL {
        let params = Params::new(FilterConfig::mpi_all(10), attrs);
        g.bench_with_input(
            BenchmarkId::new("diff_runs", attrs.to_string()),
            &params,
            |b, params| {
                b.iter(|| {
                    black_box(diff_runs(black_box(&normal), black_box(&faulty), params).bscore)
                });
            },
        );
    }

    // Ablation: linkage method (ward vs the rest).
    for method in cluster::Method::ALL {
        let params = Params {
            filter: FilterConfig::mpi_all(10),
            attrs: AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
            linkage: method,
        };
        g.bench_with_input(
            BenchmarkId::new("linkage_ablation", method.name()),
            &params,
            |b, params| {
                b.iter(|| {
                    black_box(diff_runs(black_box(&normal), black_box(&faulty), params).bscore)
                });
            },
        );
    }

    // Ablation: NLR K constant.
    for k in [2usize, 10, 50] {
        let params = Params::new(
            FilterConfig::mpi_all(k),
            AttrConfig {
                kind: AttrKind::Single,
                freq: FreqMode::Actual,
            },
        );
        g.bench_with_input(
            BenchmarkId::new("nlr_k_ablation", k),
            &params,
            |b, params| {
                b.iter(|| {
                    black_box(diff_runs(black_box(&normal), black_box(&faulty), params).bscore)
                });
            },
        );
    }
    g.finish();

    // Report what each ablation concludes (suspect stability).
    for attrs in AttrConfig::ALL {
        let params = Params::new(FilterConfig::mpi_all(10), attrs);
        let d = diff_runs(&normal, &faulty, &params);
        eprintln!(
            "[pipeline] {}: bscore={:.3} top={:?}",
            attrs,
            d.bscore,
            d.suspicious_processes.first()
        );
    }
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_pipeline}
criterion_main!(benches);
