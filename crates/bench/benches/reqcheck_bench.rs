//! Compressed-domain vs expanded-domain reqcheck request summaries.
//!
//! The per-trace request facts (the inputs to RQ001–RQ005) have two
//! implementations with property-tested agreement: one replaying the
//! expanded marker stream, one folding the NLR term with closed-form
//! loop repetition. The expanded walk is O(events); the compressed
//! one is O(term size), so on a high-repetition trace (`reps`
//! iterations of one post/wait/collective body) its cost should stay
//! flat while the expanded walk grows linearly — the asymptotic win
//! this bench exhibits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dt_reqcheck::compressed::Summarizer;
use dt_reqcheck::{expanded, ReqVocab};
use dt_trace::{FunctionRegistry, TraceId};
use nlr::{LoopTable, NlrBuilder};
use std::hint::black_box;

// The loop body's period (8 symbols) must fit the NLR window K below,
// or nothing folds and there is no compressed domain to speak of.
const NLR_K: usize = 10;

/// A registry whose first four functions are the marker vocabulary the
/// body below uses, in interning order.
fn marker_registry() -> (FunctionRegistry, Vec<u32>) {
    let reg = FunctionRegistry::new();
    let ids = [
        "MPI_Isend",
        "MPI_Wait",
        "mpi_coll@MPI_Allreduce:4:-:sum",
        "MPI_Allreduce",
    ]
    .iter()
    .map(|n| reg.intern(n).0)
    .collect();
    (reg, ids)
}

/// `reps` iterations of a post/wait/collective body, with one bare
/// post left dangling after the loop so the min-balance witness and
/// the truncation path both get exercised.
fn high_repetition_stream(reps: usize, ids: &[u32]) -> Vec<u32> {
    let call = |f: u32| f << 1;
    let ret = |f: u32| (f << 1) | 1;
    let mut v = Vec::with_capacity(reps * 8 + 1);
    for _ in 0..reps {
        for &f in ids {
            v.push(call(f));
            v.push(ret(f));
        }
    }
    v.push(call(ids[0])); // a trailing leaked post, never returned
    v
}

fn bench_reqcheck(c: &mut Criterion) {
    let mut g = c.benchmark_group("reqcheck_summarize");
    g.sample_size(10);
    let (reg, ids) = marker_registry();
    let vocab = ReqVocab::build(&reg);
    let id = TraceId::new(0, 0);
    for reps in [1_000usize, 10_000, 100_000] {
        let syms = high_repetition_stream(reps, &ids);
        let mut table = LoopTable::new();
        let term = NlrBuilder::new(NLR_K).build(&syms, &mut table);
        assert_eq!(term.expand(&table), syms, "NLR must be lossless");
        assert!(
            term.elements().len() * 100 < syms.len(),
            "the stream must actually fold ({} elements for {} events)",
            term.elements().len(),
            syms.len()
        );

        // The two domains must agree before their speeds mean anything.
        let exp = expanded::summarize(id, &syms, true, &vocab);
        let mut s = Summarizer::new(&table, &vocab);
        assert_eq!(exp, s.summarize(id, &term, true), "domains disagree");

        g.throughput(Throughput::Elements(syms.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("expanded", format!("{reps}reps/{}ev", syms.len())),
            &syms,
            |b, syms| {
                b.iter(|| black_box(expanded::summarize(id, black_box(syms), true, &vocab)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("compressed", format!("{reps}reps/{}ev", syms.len())),
            &term,
            |b, term| {
                b.iter(|| {
                    let mut s = Summarizer::new(&table, &vocab);
                    black_box(s.summarize(id, black_box(term), true))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_reqcheck);
criterion_main!(benches);
