//! Simulator throughput: how fast the mpisim substrate runs the
//! paper's workloads (the cost of producing one trace pair, which
//! bounds how fast fault-injection campaigns like e10 can go).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dt_trace::FunctionRegistry;
use std::hint::black_box;
use std::sync::Arc;
use workloads::{
    run_ilcs, run_lulesh, run_oddeven, run_stencil, IlcsConfig, LuleshConfig, OddEvenConfig,
    StencilConfig,
};

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.sample_size(10);

    for ranks in [4u32, 8, 16] {
        g.bench_with_input(BenchmarkId::new("oddeven", ranks), &ranks, |b, &ranks| {
            let cfg = OddEvenConfig {
                ranks,
                values_per_rank: 4,
                seed: 7,
                fault: None,
            };
            b.iter(|| {
                black_box(
                    run_oddeven(&cfg, Arc::new(FunctionRegistry::new()))
                        .traces
                        .len(),
                )
            });
        });
    }

    g.bench_function("ilcs_paper", |b| {
        let cfg = IlcsConfig::paper(None);
        b.iter(|| {
            black_box(
                run_ilcs(&cfg, Arc::new(FunctionRegistry::new()))
                    .traces
                    .len(),
            )
        });
    });

    g.bench_function("lulesh_paper", |b| {
        let cfg = LuleshConfig::paper(None);
        b.iter(|| {
            black_box(
                run_lulesh(&cfg, Arc::new(FunctionRegistry::new()))
                    .traces
                    .len(),
            )
        });
    });

    g.bench_function("stencil_8", |b| {
        let cfg = StencilConfig::default_8();
        b.iter(|| {
            black_box(
                run_stencil(&cfg, Arc::new(FunctionRegistry::new()))
                    .0
                    .traces
                    .len(),
            )
        });
    });
    g.finish();
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_workloads}
criterion_main!(benches);
