//! Compressed-domain vs expanded-domain lint throughput.
//!
//! TL001–TL003 have two implementations with property-tested verdict
//! agreement: one walking the expanded event streams, one working
//! directly on the NLR terms (`tracelint::compressed`). The paper's
//! whole premise is that compressed-domain processing scales with the
//! *summary* size, not the trace length — this benchmark measures that
//! gap on oddeven corpora of growing rank counts. Throughput is
//! reported in (raw) events per second for both, so the compressed
//! series should pull away as loops get longer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use difftrace::{lint_set, LintDomain, LintOptions};
use dt_trace::{FunctionRegistry, TraceSet};
use std::hint::black_box;
use std::sync::Arc;
use workloads::{run_oddeven, OddEvenConfig};

fn corpus(ranks: u32, values_per_rank: usize) -> TraceSet {
    let registry = Arc::new(FunctionRegistry::new());
    let cfg = OddEvenConfig {
        ranks,
        values_per_rank,
        ..OddEvenConfig::paper(None)
    };
    run_oddeven(&cfg, registry).traces
}

fn bench_lint(c: &mut Criterion) {
    let mut g = c.benchmark_group("lint");
    g.sample_size(10);
    for ranks in [16u32, 64] {
        let set = corpus(ranks, 4);
        let total_events: usize = set.iter().map(|t| t.events.len()).sum();
        g.throughput(Throughput::Elements(total_events as u64));

        let opts = |domain| LintOptions {
            domain,
            ..LintOptions::default()
        };
        // The two domains must agree before their speeds mean anything.
        let expanded = lint_set(&set, &opts(LintDomain::Expanded));
        let compressed = lint_set(&set, &opts(LintDomain::Compressed));
        for id in set.ids() {
            assert_eq!(
                expanded.verdicts_for(id),
                compressed.verdicts_for(id),
                "domains disagree on {id}"
            );
        }

        for (label, domain) in [
            ("expanded", LintDomain::Expanded),
            ("compressed", LintDomain::Compressed),
        ] {
            let o = opts(domain);
            g.bench_with_input(
                BenchmarkId::new(label, format!("{ranks}ranks/{total_events}ev")),
                &o,
                |b, o| b.iter(|| black_box(lint_set(black_box(&set), o).error_count())),
            );
        }
    }
    g.finish();
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_lint}
criterion_main!(benches);
