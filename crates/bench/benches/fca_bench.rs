//! Incremental concept-lattice construction scaling.
//!
//! The paper chooses Godin's incremental algorithm (O(2^{2K}·|G|))
//! over Ganter's batch Next Closure because traces arrive one at a
//! time. This bench measures lattice build time as the number of
//! objects (traces) and attributes grows, plus the JSM computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fca::{jaccard_matrix, ConceptLattice, FormalContext};
use std::hint::black_box;

/// A context resembling trace attributes: `n` objects over a universe
/// of `m` attributes, each object holding a deterministic subset.
fn trace_like_context(n: usize, m: usize) -> FormalContext {
    let mut ctx = FormalContext::new();
    let names: Vec<String> = (0..m).map(|i| format!("fn_{i}")).collect();
    for g in 0..n {
        // Common core + a structured per-object slice (master/worker
        // style classes) + a couple of object-specific attributes.
        let mut attrs: Vec<&str> = names[..m / 4].iter().map(|s| s.as_str()).collect();
        let class = g % 4;
        attrs.extend(
            names[m / 4 + class * (m / 8)..m / 4 + (class + 1) * (m / 8)]
                .iter()
                .map(|s| s.as_str()),
        );
        attrs.push(&names[m / 2 + g % (m / 2)]);
        ctx.add_object_unweighted(&format!("T{g}"), attrs);
    }
    ctx
}

fn bench_fca(c: &mut Criterion) {
    let mut g = c.benchmark_group("fca");
    for n in [8usize, 16, 32, 64] {
        let ctx = trace_like_context(n, 64);
        g.bench_with_input(BenchmarkId::new("lattice_build", n), &ctx, |b, ctx| {
            b.iter(|| {
                black_box(
                    ConceptLattice::from_context(black_box(ctx))
                        .concepts()
                        .len(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("jaccard_matrix", n), &ctx, |b, ctx| {
            b.iter(|| black_box(jaccard_matrix(black_box(ctx))));
        });
    }
    g.finish();

    for n in [8usize, 64] {
        let ctx = trace_like_context(n, 64);
        let l = ConceptLattice::from_context(&ctx);
        eprintln!("[fca] n={n}: {} concepts", l.concepts().len());
    }
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_fca}
criterion_main!(benches);
