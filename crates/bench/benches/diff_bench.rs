//! Myers O(ND) diff scaling: cost grows with the edit distance D, not
//! the input size — the property that makes diffNLR cheap on
//! NLR-summarized traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use diffalg::diff;
use std::hint::black_box;

fn with_edits(n: usize, edits: usize) -> (Vec<u32>, Vec<u32>) {
    let a: Vec<u32> = (0..n as u32).collect();
    let mut b = a.clone();
    for e in 0..edits {
        let pos = (e * 997) % b.len();
        b[pos] = 1_000_000 + e as u32;
    }
    (a, b)
}

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("myers_diff");
    for n in [200usize, 1000, 4000] {
        for edits in [2usize, 16, 64] {
            let (a, b) = with_edits(n, edits);
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("n{n}"), edits),
                &(a, b),
                |bench, (a, b)| {
                    bench.iter(|| black_box(diff(black_box(a), black_box(b))).distance());
                },
            );
        }
    }
    g.finish();
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_diff}
criterion_main!(benches);
