//! NLR throughput and reduction vs the buffer constant K.
//!
//! The paper quotes Θ(K²·N) complexity and reports trace-size
//! reductions at K = 10 and K = 50 (§V). This bench measures both the
//! time and (printed once) the reduction factor over three trace
//! shapes: flat loops, nested loops, and loop bodies longer than K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nlr::{LoopTable, NlrBuilder};
use std::hint::black_box;

/// (A B C D)^n — a flat 4-symbol loop.
fn flat_loop(n: usize) -> Vec<u32> {
    (0..n).flat_map(|_| [0u32, 1, 2, 3]).collect()
}

/// ((A B)^3 C)^n — depth-2 nest.
fn nested_loop(n: usize) -> Vec<u32> {
    let mut v = Vec::new();
    for _ in 0..n {
        for _ in 0..3 {
            v.push(0);
            v.push(1);
        }
        v.push(2);
    }
    v
}

/// A 12-symbol body repeated — foldable only for K ≥ 12.
fn long_body(n: usize) -> Vec<u32> {
    (0..n).flat_map(|_| 0u32..12).collect()
}

fn bench_nlr(c: &mut Criterion) {
    let mut g = c.benchmark_group("nlr");
    for (name, input) in [
        ("flat", flat_loop(25_000)),
        ("nested", nested_loop(10_000)),
        ("long_body", long_body(8_000)),
    ] {
        g.throughput(Throughput::Elements(input.len() as u64));
        for k in [10usize, 50] {
            g.bench_with_input(BenchmarkId::new(name, k), &input, |b, input| {
                b.iter(|| {
                    let mut table = LoopTable::new();
                    let nlr = NlrBuilder::new(k).build(black_box(input), &mut table);
                    black_box(nlr.elements().len())
                });
            });
        }
    }
    g.finish();

    // Print the K-dependence of the reduction once (the §V numbers).
    for (name, input) in [
        ("flat", flat_loop(25_000)),
        ("nested", nested_loop(10_000)),
        ("long_body", long_body(8_000)),
    ] {
        for k in [10usize, 50] {
            let mut table = LoopTable::new();
            let nlr = NlrBuilder::new(k).build(&input, &mut table);
            eprintln!(
                "[nlr] {name} K={k}: {} -> {} elements (×{:.1})",
                input.len(),
                nlr.elements().len(),
                nlr.reduction_factor()
            );
        }
    }
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_nlr}
criterion_main!(benches);
