//! ParLOT-style trace compression: throughput and (printed) ratios on
//! loopy vs incompressible streams — the §I/§V compression claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dt_trace::compress::{compress, decompress, CompressionStats};
use std::hint::black_box;

fn loopy(n: usize) -> Vec<u32> {
    // (A B C D E F)^k with occasional phase markers — call-trace-like.
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        for s in 0..6u32 {
            v.push(s);
        }
        if v.len() % 1200 < 6 {
            v.push(99);
        }
    }
    v.truncate(n);
    v
}

fn random(n: usize) -> Vec<u32> {
    let mut x = 88172645463325252u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 33) as u32
        })
        .collect()
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    for n in [10_000usize, 100_000] {
        for (name, data) in [("loopy", loopy(n)), ("random", random(n))] {
            g.throughput(Throughput::Elements(n as u64));
            g.bench_with_input(BenchmarkId::new(name, n), &data, |b, data| {
                b.iter(|| black_box(compress(black_box(data))).len());
            });
            let blob = compress(&data);
            g.bench_with_input(
                BenchmarkId::new(format!("{name}_decompress"), n),
                &blob,
                |b, blob| b.iter(|| black_box(decompress(black_box(blob)).unwrap()).len()),
            );
        }
    }
    g.finish();

    for (name, data) in [("loopy", loopy(400_000)), ("random", random(400_000))] {
        let blob = compress(&data);
        let s = CompressionStats::measure(&data, &blob);
        eprintln!(
            "[compress] {name}: {} symbols -> {} bytes (ratio {:.0}×)",
            s.symbols,
            s.compressed_bytes,
            s.ratio()
        );
    }
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_compress}
criterion_main!(benches);
