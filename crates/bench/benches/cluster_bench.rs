//! Linkage-method ablation (the paper's "alter the linkage method"
//! knob) and B-score computation cost.

use cluster::{bscore, fcluster_maxclust, linkage, CondensedMatrix, Method};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A JSM-like similarity structure: 4 process classes + noise.
fn jsm_like(n: usize, perturb: bool) -> CondensedMatrix {
    CondensedMatrix::from_fn(n, |i, j| {
        let (ci, cj) = (i % 4, j % 4);
        let base = if ci == cj { 0.1 } else { 0.7 };
        let noise = ((i * 31 + j * 17) % 10) as f64 / 100.0;
        let bump = if perturb && (i == 5 || j == 5) {
            0.4
        } else {
            0.0
        };
        (base + noise + bump).min(1.0)
    })
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    for n in [16usize, 40, 64] {
        let d = jsm_like(n, false);
        for m in Method::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("linkage_{}", m.name()), n),
                &d,
                |b, d| b.iter(|| black_box(linkage(black_box(d), m))),
            );
        }
    }
    let d = jsm_like(40, false);
    let z = linkage(&d, Method::Ward);
    g.bench_function("fcluster_maxclust_40", |b| {
        b.iter(|| black_box(fcluster_maxclust(black_box(&z), 4)));
    });
    let z2 = linkage(&jsm_like(40, true), Method::Ward);
    g.bench_function("bscore_40", |b| {
        b.iter(|| black_box(bscore(black_box(&z), black_box(&z2))));
    });
    g.finish();

    eprintln!(
        "[cluster] bscore(normal, perturbed) = {:.3}; bscore(normal, normal) = {:.3}",
        bscore(&z, &z2),
        bscore(&z, &z)
    );
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_cluster}
criterion_main!(benches);
