//! Vector-clock and happens-before query costs (the §VII-2 extension):
//! how expensive is exact causality tracking at simulation time and at
//! query time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpisim::{HbLog, HbOp, VectorClock};
use std::hint::black_box;

/// A synthetic log: `ranks` ranks each emitting `per_rank` events in a
/// round-robin causal chain.
fn synthetic_log(ranks: usize, per_rank: usize) -> HbLog {
    let mut clocks: Vec<VectorClock> = (0..ranks).map(|_| VectorClock::zero(ranks)).collect();
    let mut log = HbLog::new(ranks);
    for step in 0..per_rank {
        for r in 0..ranks {
            // Receive from the previous rank's latest state, then tick.
            let prev = (r + ranks - 1) % ranks;
            let prev_vc = clocks[prev].clone();
            clocks[r].merge(&prev_vc);
            clocks[r].tick(r);
            let name = if step % 2 == 0 {
                "MPI_Send"
            } else {
                "MPI_Recv"
            };
            log.push(
                dt_trace::TraceId::master(r as u32),
                name,
                HbOp::Local,
                &clocks[r],
            );
        }
    }
    log
}

fn bench_hb(c: &mut Criterion) {
    let mut g = c.benchmark_group("hb");
    for ranks in [8usize, 32] {
        let log = synthetic_log(ranks, 100);
        g.bench_with_input(
            BenchmarkId::new("happens_before_query", ranks),
            &log,
            |b, log| {
                let n = log.len();
                b.iter(|| {
                    let mut count = 0usize;
                    for i in (0..n).step_by(17) {
                        for j in (0..n).step_by(13) {
                            if log.happens_before(i, j) {
                                count += 1;
                            }
                        }
                    }
                    black_box(count)
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("least_progressed", ranks),
            &log,
            |b, log| b.iter(|| black_box(log.least_progressed_ranks())),
        );
    }
    // Raw clock ops.
    let mut a = VectorClock::zero(64);
    let b_clock = {
        let mut c = VectorClock::zero(64);
        for i in 0..64 {
            c.0[i] = i as u64;
        }
        c
    };
    g.bench_function("clock_merge_tick_64", |b| {
        b.iter(|| {
            a.merge(black_box(&b_clock));
            a.tick(3);
            black_box(a.lamport())
        });
    });
    g.finish();
}

/// Short measurement profile so `cargo bench --workspace` stays
/// practical; pass `--measurement-time` on the CLI to override.
fn short() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(10)
}
criterion_group! {name = benches; config = short(); targets = bench_hb}
criterion_main!(benches);
