//! Property tests for hierarchical clustering and clustering
//! comparison.

use cluster::{
    bscore, fcluster_distance, fcluster_maxclust, fowlkes_mallows, linkage, CondensedMatrix, Method,
};
use proptest::prelude::*;

fn dist_matrix() -> impl Strategy<Value = CondensedMatrix> {
    (2usize..12).prop_flat_map(|n| {
        proptest::collection::vec(0.0f64..10.0, n * (n - 1) / 2).prop_map(move |data| {
            let mut m = CondensedMatrix::zeros(n);
            let mut it = data.into_iter();
            for i in 0..n {
                for j in i + 1..n {
                    m.set(i, j, it.next().unwrap());
                }
            }
            m
        })
    })
}

fn any_method() -> impl Strategy<Value = Method> {
    proptest::sample::select(Method::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every linkage produces exactly n−1 merges ending in one cluster
    /// of size n, with non-negative heights.
    #[test]
    fn merge_sequence_well_formed(d in dist_matrix(), m in any_method()) {
        let n = d.len();
        let z = linkage(&d, m);
        prop_assert_eq!(z.merges().len(), n - 1);
        prop_assert_eq!(z.merges().last().unwrap().size, n);
        for merge in z.merges() {
            prop_assert!(merge.distance >= -1e-9, "{merge:?}");
            prop_assert!(merge.a < merge.b);
        }
    }

    /// A maxclust cut with k ≤ n yields exactly k dense labels.
    #[test]
    fn maxclust_yields_exactly_k(d in dist_matrix(), m in any_method(), k in 1usize..12) {
        let n = d.len();
        let z = linkage(&d, m);
        let k = k.min(n);
        let labels = fcluster_maxclust(&z, k);
        prop_assert_eq!(labels.len(), n);
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), k);
        for &l in &labels {
            prop_assert!(l < k);
        }
    }

    /// Distance cuts refine monotonically: a larger height never
    /// produces more clusters.
    #[test]
    fn distance_cut_monotone(d in dist_matrix(), m in any_method(), h1 in 0.0f64..12.0, h2 in 0.0f64..12.0) {
        let z = linkage(&d, m);
        let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        let count = |h: f64| {
            fcluster_distance(&z, h)
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        prop_assert!(count(lo) >= count(hi));
    }

    /// Fowlkes–Mallows is bounded, symmetric, and 1 on identity.
    #[test]
    fn fm_properties(labels_a in proptest::collection::vec(0usize..4, 2..12)) {
        let labels_b: Vec<usize> = labels_a.iter().map(|&l| (l + 1) % 4).collect();
        let v = fowlkes_mallows(&labels_a, &labels_b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        prop_assert!((fowlkes_mallows(&labels_b, &labels_a) - v).abs() < 1e-12);
        prop_assert_eq!(fowlkes_mallows(&labels_a, &labels_a), 1.0);
    }

    /// B-score is 0 against itself and within [0, 1] against anything.
    #[test]
    fn bscore_properties(d1 in dist_matrix(), m in any_method()) {
        let z1 = linkage(&d1, m);
        prop_assert_eq!(bscore(&z1, &z1), 0.0);
        // Perturb the matrix and compare.
        let n = d1.len();
        let mut d2 = d1.clone();
        if n >= 2 {
            d2.set(0, 1, d1.get(0, 1) + 5.0);
        }
        let z2 = linkage(&d2, m);
        let b = bscore(&z1, &z2);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&b), "b = {b}");
    }

    /// Cophenetic distance is symmetric, zero on the diagonal, and an
    /// ultrametric for monotone (reducible) linkages.
    #[test]
    fn cophenetic_ultrametric(d in dist_matrix()) {
        let z = linkage(&d, Method::Average);
        let n = d.len();
        for i in 0..n {
            prop_assert_eq!(z.cophenetic(i, i), 0.0);
            for j in 0..n {
                let cij = z.cophenetic(i, j);
                prop_assert!((cij - z.cophenetic(j, i)).abs() < 1e-12);
                for k in 0..n {
                    // Ultrametric inequality.
                    prop_assert!(
                        cij <= z.cophenetic(i, k).max(z.cophenetic(k, j)) + 1e-9
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NN-chain and the naive search agree on merge heights for every
    /// reducible method (random continuous distances — ties have
    /// probability ~0).
    #[test]
    fn nn_chain_matches_naive(d in dist_matrix(), mi in 0usize..5) {
        use cluster::linkage_nn_chain;
        let method = [
            Method::Single,
            Method::Complete,
            Method::Average,
            Method::Weighted,
            Method::Ward,
        ][mi];
        let a = linkage(&d, method);
        let b = linkage_nn_chain(&d, method);
        for (x, y) in a.merges().iter().zip(b.merges()) {
            prop_assert!((x.distance - y.distance).abs() < 1e-9);
        }
        // Cuts agree at every granularity.
        for k in 1..=d.len() {
            let fm = fowlkes_mallows(
                &fcluster_maxclust(&a, k),
                &fcluster_maxclust(&b, k),
            );
            prop_assert!((fm - 1.0).abs() < 1e-12, "k={k} differs");
        }
    }
}
