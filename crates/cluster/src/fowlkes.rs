//! Fowlkes–Mallows comparison of clusterings, and the paper's B-score.
//!
//! Fowlkes & Mallows (JASA 1983) compare two hierarchical clusterings by
//! cutting both into `k` clusters and computing
//!
//! ```text
//! B_k = T_k / sqrt(P_k · Q_k)
//! T_k = Σ_ij m_ij² − n      (m = contingency matrix of the two cuts)
//! P_k = Σ_i m_i·² − n
//! Q_k = Σ_j m_·j² − n
//! ```
//!
//! `B_k = 1` when the cuts agree perfectly. DiffTrace sorts its ranking
//! tables by "the B-score of DiffJSMs"; we define (see DESIGN.md) the
//! [`bscore`] of two dendrograms as `1 − mean_{k=2..n−1} B_k`: zero when
//! the fault did not change the clustering structure at any granularity,
//! growing as the hierarchies diverge.

use crate::dendrogram::{fcluster_maxclust, Dendrogram};
use std::collections::HashMap;

/// The Fowlkes–Mallows index of two flat clusterings (label vectors of
/// equal length). Returns 1.0 for identical partitions (up to label
/// permutation), 0.0 when no pair of observations is co-clustered in
/// both.
pub fn fowlkes_mallows(labels_a: &[usize], labels_b: &[usize]) -> f64 {
    assert_eq!(
        labels_a.len(),
        labels_b.len(),
        "clusterings must label the same observations"
    );
    let n = labels_a.len() as f64;
    if labels_a.is_empty() {
        return 1.0;
    }
    let mut contingency: HashMap<(usize, usize), f64> = HashMap::new();
    let mut row: HashMap<usize, f64> = HashMap::new();
    let mut col: HashMap<usize, f64> = HashMap::new();
    for (&a, &b) in labels_a.iter().zip(labels_b) {
        *contingency.entry((a, b)).or_insert(0.0) += 1.0;
        *row.entry(a).or_insert(0.0) += 1.0;
        *col.entry(b).or_insert(0.0) += 1.0;
    }
    let t: f64 = contingency.values().map(|v| v * v).sum::<f64>() - n;
    let p: f64 = row.values().map(|v| v * v).sum::<f64>() - n;
    let q: f64 = col.values().map(|v| v * v).sum::<f64>() - n;
    if p == 0.0 || q == 0.0 {
        // One of the cuts is all-singletons: define agreement as 1 if
        // both are (no information to contradict), else 0.
        return if p == q { 1.0 } else { 0.0 };
    }
    t / (p * q).sqrt()
}

/// The paper's ranking-table sort key: `1 − mean_{k} B_k` over all
/// non-trivial cut levels `k = 2..n−1` of the two dendrograms.
///
/// 0.0 ⇒ the two hierarchies (normal vs. faulty) are structurally
/// identical; larger ⇒ the fault perturbed the clustering more.
pub fn bscore(a: &Dendrogram, b: &Dendrogram) -> f64 {
    assert_eq!(a.len(), b.len(), "dendrograms must cover the same traces");
    let n = a.len();
    if n <= 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for k in 2..n {
        let la = fcluster_maxclust(a, k);
        let lb = fcluster_maxclust(b, k);
        sum += fowlkes_mallows(&la, &lb);
        count += 1;
    }
    1.0 - sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::CondensedMatrix;
    use crate::linkage::{linkage, Method};

    #[test]
    fn identical_partitions_score_one() {
        assert_eq!(fowlkes_mallows(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        // Label permutation is irrelevant.
        assert_eq!(fowlkes_mallows(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
    }

    #[test]
    fn orthogonal_partitions_score_zero() {
        // No pair co-clustered in both.
        assert_eq!(fowlkes_mallows(&[0, 0, 1, 1], &[0, 1, 0, 1]), 0.0);
    }

    #[test]
    fn hand_computed_partial_agreement() {
        // A: {0,1},{2,3}  B: {0,1},{2},{3}
        // T = 1 (pair (0,1)), P = 2, Q = 1 → 1/sqrt(2).
        let v = fowlkes_mallows(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((v - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_edge_case() {
        assert_eq!(fowlkes_mallows(&[0, 1, 2], &[2, 1, 0]), 1.0);
        assert_eq!(fowlkes_mallows(&[0, 1, 2], &[0, 0, 0]), 0.0);
    }

    #[test]
    fn bscore_zero_for_identical_hierarchies() {
        let pos = [0.0f64, 1.0, 5.0, 6.0, 20.0];
        let d = CondensedMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs());
        let z1 = linkage(&d, Method::Ward);
        let z2 = linkage(&d, Method::Ward);
        assert_eq!(bscore(&z1, &z2), 0.0);
    }

    #[test]
    fn bscore_grows_with_structural_change() {
        let pos_normal = [0.0f64, 1.0, 5.0, 6.0, 20.0, 21.0];
        // Fault: observation 2 teleports next to the outliers.
        let pos_faulty = [0.0f64, 1.0, 20.5, 6.0, 20.0, 21.0];
        let dn = CondensedMatrix::from_fn(6, |i, j| (pos_normal[i] - pos_normal[j]).abs());
        let df = CondensedMatrix::from_fn(6, |i, j| (pos_faulty[i] - pos_faulty[j]).abs());
        let zn = linkage(&dn, Method::Ward);
        let zf = linkage(&df, Method::Ward);
        let small_change = bscore(&zn, &zn);
        let big_change = bscore(&zn, &zf);
        assert_eq!(small_change, 0.0);
        assert!(
            big_change > 0.1,
            "bscore {big_change} should reflect the move"
        );
    }

    #[test]
    fn bscore_tiny_inputs() {
        let d = CondensedMatrix::zeros(2);
        let z = linkage(&d, Method::Single);
        assert_eq!(bscore(&z, &z), 0.0);
        let d1 = CondensedMatrix::zeros(1);
        let z1 = linkage(&d1, Method::Single);
        assert_eq!(bscore(&z1, &z1), 0.0);
    }
}
