//! Condensed (upper-triangle) pairwise dissimilarity matrices.

/// Pairwise dissimilarities over `n` observations, stored as the strict
/// upper triangle in row-major order (SciPy's `pdist` convention):
/// entry `(i, j)` with `i < j` lives at
/// `i·n − i·(i+1)/2 + (j − i − 1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// Zero matrix for `n` observations.
    pub fn zeros(n: usize) -> CondensedMatrix {
        CondensedMatrix {
            n,
            data: vec![0.0; n * n.saturating_sub(1) / 2],
        }
    }

    /// Build from a function of index pairs (`i < j`).
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> CondensedMatrix {
        let mut m = CondensedMatrix::zeros(n);
        for i in 0..n {
            for j in i + 1..n {
                let v = f(i, j);
                m.set(i, j, v);
            }
        }
        m
    }

    /// Build from a full square matrix (symmetry is assumed; the upper
    /// triangle is read).
    pub fn from_full(full: &[Vec<f64>]) -> CondensedMatrix {
        let n = full.len();
        CondensedMatrix::from_fn(n, |i, j| full[i][j])
    }

    /// Convert a *similarity* matrix in `[0, 1]` (e.g. a Jaccard
    /// similarity matrix) to dissimilarities `1 − s`.
    pub fn from_similarity(full: &[Vec<f64>]) -> CondensedMatrix {
        let n = full.len();
        CondensedMatrix::from_fn(n, |i, j| 1.0 - full[i][j])
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no observations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Dissimilarity between `i` and `j` (0 on the diagonal).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.data[self.index(i, j)]
    }

    /// Set the dissimilarity between `i ≠ j`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i != j, "diagonal is fixed at 0");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let idx = self.index(i, j);
        self.data[idx] = v;
    }

    /// The raw condensed buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_matches_scipy_layout() {
        // n = 4 → condensed order: (0,1) (0,2) (0,3) (1,2) (1,3) (2,3)
        let m = CondensedMatrix::from_fn(4, |i, j| (10 * i + j) as f64);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 12.0, 13.0, 23.0]);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.get(3, 2), 23.0); // symmetric access
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn from_similarity_inverts() {
        let s = vec![vec![1.0, 0.25], vec![0.25, 1.0]];
        let d = CondensedMatrix::from_similarity(&s);
        assert!((d.get(0, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = CondensedMatrix::zeros(5);
        m.set(3, 1, 7.5);
        assert_eq!(m.get(1, 3), 7.5);
        assert_eq!(m.get(3, 1), 7.5);
    }

    #[test]
    #[should_panic]
    fn setting_diagonal_panics() {
        let mut m = CondensedMatrix::zeros(3);
        m.set(1, 1, 1.0);
    }
}
