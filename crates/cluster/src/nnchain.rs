//! Nearest-neighbour-chain agglomeration — `O(n²)` linkage for
//! *reducible* Lance–Williams methods (single, complete, average,
//! weighted, ward). Produces the same dendrogram as the naive
//! `O(n³)` search (verified by equivalence tests); useful when the
//! number of traces grows beyond the paper's 8×5 scale.
//!
//! The NN-chain invariant: follow nearest-neighbour links until two
//! clusters are mutually nearest, merge them, and continue from the
//! previous stack element. Reducibility guarantees a merge never
//! invalidates the chain below it. Merges emerge out of height order,
//! so they are sorted and relabelled to the SciPy convention at the
//! end.

use crate::dendrogram::{Dendrogram, Merge};
use crate::dist::CondensedMatrix;
use crate::linkage::Method;

/// Is `method` reducible (NN-chain-safe)?
pub fn is_reducible(method: Method) -> bool {
    !matches!(method, Method::Centroid | Method::Median)
}

/// NN-chain linkage. Panics if `method` is not reducible — callers
/// fall back to [`crate::linkage()`] for centroid/median.
#[allow(clippy::needless_range_loop)] // square working-matrix indexing
pub fn linkage_nn_chain(dist: &CondensedMatrix, method: Method) -> Dendrogram {
    assert!(
        is_reducible(method),
        "{} is not reducible; use cluster::linkage",
        method.name()
    );
    let n = dist.len();
    assert!(n >= 1, "cannot cluster zero observations");
    if n == 1 {
        return Dendrogram::new(n, Vec::new());
    }

    let sq = matches!(method, Method::Ward);
    // Working distances between slots (slot = original leaf index; a
    // merged cluster lives in one of its two slots).
    let mut d = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let v = dist.get(i, j);
            let v = if sq { v * v } else { v };
            d[i][j] = v;
            d[j][i] = v;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut sizes: Vec<f64> = vec![1.0; n];
    // Members of the cluster in each slot (leaf indices), for final
    // relabelling.
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    // Raw merges: (leaf-member snapshot of a, of b, height).
    let mut raw: Vec<(Vec<usize>, Vec<usize>, f64)> = Vec::with_capacity(n - 1);

    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 1 {
        if chain.is_empty() {
            let start = (0..n).find(|&i| active[i]).expect("clusters remain");
            chain.push(start);
        }
        loop {
            let top = *chain.last().unwrap();
            // Nearest active neighbour of `top` (deterministic
            // tie-break toward the smallest slot).
            let mut nearest = None;
            for j in 0..n {
                if j == top || !active[j] {
                    continue;
                }
                let better = match nearest {
                    None => true,
                    Some(k) => d[top][j] < d[top][k],
                };
                if better {
                    nearest = Some(j);
                }
            }
            let nearest = nearest.expect("at least two active clusters");
            if chain.len() >= 2 && chain[chain.len() - 2] == nearest {
                // Mutual nearest neighbours: merge.
                let b = chain.pop().unwrap();
                let a = chain.pop().unwrap();
                let dij = d[a][b];
                let height = if sq { dij.max(0.0).sqrt() } else { dij };
                raw.push((members[a].clone(), members[b].clone(), height));
                // Lance–Williams update into slot a.
                for k in 0..n {
                    if !active[k] || k == a || k == b {
                        continue;
                    }
                    let v = lw(method, d[k][a], d[k][b], dij, sizes[a], sizes[b], sizes[k]);
                    d[k][a] = v;
                    d[a][k] = v;
                }
                active[b] = false;
                sizes[a] += sizes[b];
                let moved = std::mem::take(&mut members[b]);
                members[a].extend(moved);
                remaining -= 1;
                break;
            }
            chain.push(nearest);
        }
    }

    // Sort merges by height (stable: ties keep chain order) and
    // relabel to SciPy cluster IDs via union-find over leaves.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&x, &y| raw[x].2.total_cmp(&raw[y].2).then(x.cmp(&y)));

    let mut parent: Vec<usize> = (0..2 * n - 1).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    // leaf → current cluster id mapping happens through parent links:
    // each merge creates id n+step and parents both roots to it.
    let mut merges = Vec::with_capacity(raw.len());
    for (step, &ri) in order.iter().enumerate() {
        let (ma, mb, h) = &raw[ri];
        let ra = find(&mut parent, ma[0]);
        let rb = find(&mut parent, mb[0]);
        let new_id = n + step;
        parent[ra] = new_id;
        parent[rb] = new_id;
        merges.push(Merge {
            a: ra.min(rb),
            b: ra.max(rb),
            distance: *h,
            size: ma.len() + mb.len(),
        });
    }
    Dendrogram::new(n, merges)
}

#[allow(clippy::too_many_arguments)]
fn lw(method: Method, dki: f64, dkj: f64, dij: f64, ni: f64, nj: f64, nk: f64) -> f64 {
    match method {
        Method::Single => dki.min(dkj),
        Method::Complete => dki.max(dkj),
        Method::Average => (ni * dki + nj * dkj) / (ni + nj),
        Method::Weighted => 0.5 * (dki + dkj),
        Method::Ward => {
            let t = ni + nj + nk;
            ((ni + nk) * dki + (nj + nk) * dkj - nk * dij) / t
        }
        Method::Centroid | Method::Median => unreachable!("not reducible"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::fcluster_maxclust;
    use crate::fowlkes::fowlkes_mallows;
    use crate::linkage::linkage;

    /// Distinct pseudo-random distances (general position — no ties, so
    /// both algorithms must agree exactly).
    fn random_matrix(n: usize, seed: u64) -> CondensedMatrix {
        let mut x = seed | 1;
        CondensedMatrix::from_fn(n, |i, j| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let noise = (x % 1_000_000) as f64 / 1_000_000.0;
            (i + j) as f64 + noise * 10.0
        })
    }

    #[test]
    fn heights_match_naive_for_all_reducible_methods() {
        for method in [
            Method::Single,
            Method::Complete,
            Method::Average,
            Method::Weighted,
            Method::Ward,
        ] {
            for seed in [3u64, 17, 99] {
                for n in [2usize, 5, 12, 25] {
                    let d = random_matrix(n, seed);
                    let a = linkage(&d, method);
                    let b = linkage_nn_chain(&d, method);
                    let ha: Vec<f64> = a.merges().iter().map(|m| m.distance).collect();
                    let hb: Vec<f64> = b.merges().iter().map(|m| m.distance).collect();
                    for (x, y) in ha.iter().zip(&hb) {
                        assert!(
                            (x - y).abs() < 1e-9,
                            "{} n={n} seed={seed}: {ha:?} vs {hb:?}",
                            method.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flat_cuts_match_naive() {
        for method in [Method::Average, Method::Ward, Method::Single] {
            let d = random_matrix(20, 7);
            let a = linkage(&d, method);
            let b = linkage_nn_chain(&d, method);
            for k in 1..=20 {
                let la = fcluster_maxclust(&a, k);
                let lb = fcluster_maxclust(&b, k);
                assert!(
                    (fowlkes_mallows(&la, &lb) - 1.0).abs() < 1e-12,
                    "{} cut at k={k} differs",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn sizes_are_consistent() {
        let d = random_matrix(15, 5);
        let z = linkage_nn_chain(&d, Method::Ward);
        assert_eq!(z.merges().len(), 14);
        assert_eq!(z.merges().last().unwrap().size, 15);
        let mut hs: Vec<f64> = z.merges().iter().map(|m| m.distance).collect();
        let sorted = {
            let mut s = hs.clone();
            s.sort_by(|a, b| a.total_cmp(b));
            s
        };
        assert_eq!(hs.len(), sorted.len());
        hs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(hs, sorted);
    }

    #[test]
    #[should_panic]
    fn centroid_is_rejected() {
        let d = random_matrix(5, 1);
        let _ = linkage_nn_chain(&d, Method::Centroid);
    }

    #[test]
    fn singleton_input() {
        let d = CondensedMatrix::zeros(1);
        let z = linkage_nn_chain(&d, Method::Ward);
        assert!(z.merges().is_empty());
    }
}
