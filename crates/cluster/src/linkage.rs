//! Agglomerative clustering via the Lance–Williams update formula.
//!
//! All seven SciPy linkage methods are supported. As in SciPy, the
//! geometric methods (`centroid`, `median`, `ward`) apply the
//! Lance–Williams recurrence to **squared** dissimilarities and report
//! the square root, which makes our merge heights directly comparable
//! to `scipy.cluster.hierarchy.linkage` output.

use crate::dendrogram::{Dendrogram, Merge};
use crate::dist::CondensedMatrix;

/// Linkage method (SciPy names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Nearest neighbour.
    Single,
    /// Farthest neighbour.
    Complete,
    /// UPGMA.
    Average,
    /// WPGMA.
    Weighted,
    /// UPGMC (squared-distance recurrence).
    Centroid,
    /// WPGMC (squared-distance recurrence).
    Median,
    /// Ward variance minimization — the method used for every ranking
    /// table in the paper.
    Ward,
}

impl Method {
    /// All methods, for parameter sweeps.
    pub const ALL: [Method; 7] = [
        Method::Single,
        Method::Complete,
        Method::Average,
        Method::Weighted,
        Method::Centroid,
        Method::Median,
        Method::Ward,
    ];

    /// SciPy's string name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Single => "single",
            Method::Complete => "complete",
            Method::Average => "average",
            Method::Weighted => "weighted",
            Method::Centroid => "centroid",
            Method::Median => "median",
            Method::Ward => "ward",
        }
    }

    fn squared(self) -> bool {
        matches!(self, Method::Centroid | Method::Median | Method::Ward)
    }
}

impl std::str::FromStr for Method {
    type Err = String;

    /// Parse a SciPy linkage name (`ward`, `single`, …).
    fn from_str(name: &str) -> Result<Method, String> {
        Method::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| format!("unknown linkage method `{name}`"))
    }
}

impl Method {
    /// Lance–Williams distance of cluster `k` to the merge of `i`+`j`.
    #[allow(clippy::too_many_arguments)]
    fn update(self, dki: f64, dkj: f64, dij: f64, ni: f64, nj: f64, nk: f64) -> f64 {
        match self {
            Method::Single => dki.min(dkj),
            Method::Complete => dki.max(dkj),
            Method::Average => (ni * dki + nj * dkj) / (ni + nj),
            Method::Weighted => 0.5 * (dki + dkj),
            Method::Centroid => {
                let s = ni + nj;
                (ni / s) * dki + (nj / s) * dkj - (ni * nj) / (s * s) * dij
            }
            Method::Median => 0.5 * dki + 0.5 * dkj - 0.25 * dij,
            Method::Ward => {
                let t = ni + nj + nk;
                ((ni + nk) * dki + (nj + nk) * dkj - nk * dij) / t
            }
        }
    }
}

/// Build the dendrogram of `dist` under `method`.
///
/// Deterministic: ties in the nearest-pair search break toward the
/// lexicographically smallest `(i, j)` cluster-ID pair, so repeated runs
/// (and the normal/faulty pair of an experiment) agree on ordering.
#[allow(clippy::needless_range_loop)] // square working-matrix indexing
pub fn linkage(dist: &CondensedMatrix, method: Method) -> Dendrogram {
    let n = dist.len();
    assert!(n >= 1, "cannot cluster zero observations");
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));
    if n == 1 {
        return Dendrogram::new(n, merges);
    }

    // Working distance matrix between *active* clusters, full square for
    // simplicity (n is the number of traces — small). Squared methods
    // square on entry and sqrt on report.
    let sq = method.squared();
    let mut d = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let v = dist.get(i, j);
            let v = if sq { v * v } else { v };
            d[i][j] = v;
            d[j][i] = v;
        }
    }

    // slot i holds: active?, current cluster ID (leaf or n+merge), size.
    let mut active: Vec<bool> = vec![true; n];
    let mut ids: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<f64> = vec![1.0; n];

    for step in 0..n - 1 {
        // Nearest active pair; break ties toward smallest (id_i, id_j).
        let mut best: Option<(usize, usize)> = None;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in i + 1..n {
                if !active[j] {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bi, bj)) => {
                        let cur = d[i][j];
                        let b = d[bi][bj];
                        cur < b
                            || (cur == b
                                && (ids[i].min(ids[j]), ids[i].max(ids[j]))
                                    < (ids[bi].min(ids[bj]), ids[bi].max(ids[bj])))
                    }
                };
                if better {
                    best = Some((i, j));
                }
            }
        }
        let (i, j) = best.expect("at least two active clusters");
        let dij = d[i][j];
        let height = if sq { dij.max(0.0).sqrt() } else { dij };
        let (ida, idb) = (ids[i].min(ids[j]), ids[i].max(ids[j]));
        let new_size = sizes[i] + sizes[j];
        merges.push(Merge {
            a: ida,
            b: idb,
            distance: height,
            size: new_size as usize,
        });

        // Update distances of every other active cluster to the merge;
        // store the merged cluster in slot i, deactivate slot j.
        for k in 0..n {
            if !active[k] || k == i || k == j {
                continue;
            }
            let v = method.update(d[k][i], d[k][j], dij, sizes[i], sizes[j], sizes[k]);
            d[k][i] = v;
            d[i][k] = v;
        }
        active[j] = false;
        sizes[i] = new_size;
        ids[i] = n + step;
    }
    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dendrogram::fcluster_maxclust;

    /// Chain example verifiable by hand (see module docs of the tests).
    fn chain() -> CondensedMatrix {
        // d01=1 d02=4 d03=5 d12=2 d13=6 d23=3
        let full = vec![
            vec![0.0, 1.0, 4.0, 5.0],
            vec![1.0, 0.0, 2.0, 6.0],
            vec![4.0, 2.0, 0.0, 3.0],
            vec![5.0, 6.0, 3.0, 0.0],
        ];
        CondensedMatrix::from_full(&full)
    }

    #[test]
    fn method_names_parse() {
        for m in Method::ALL {
            let parsed: Method = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("quantum".parse::<Method>().is_err());
    }

    #[test]
    fn single_linkage_hand_computed() {
        let dend = linkage(&chain(), Method::Single);
        let h: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        // merge(0,1)@1 → min-dist to 2 is 2 → merge@2 → then 3 joins @3.
        assert_eq!(h, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn complete_linkage_hand_computed() {
        let dend = linkage(&chain(), Method::Complete);
        let h: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        // merge(0,1)@1; then {2,3}@3; final max(4,5,2?,6)=6.
        assert_eq!(h, vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn average_linkage_hand_computed() {
        let dend = linkage(&chain(), Method::Average);
        let h: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        // merge(0,1)@1 → d({01},2)=(4+2)/2=3, d({01},3)=5.5, d(2,3)=3.
        // tie at 3: pair ({01},2) has ids (2,4); (2,3) has ids (2,3) →
        // smaller pair wins: merge (2,3)@3. Then (avg of 4,5,2,6)=4.25.
        assert_eq!(h[0], 1.0);
        assert_eq!(h[1], 3.0);
        assert!((h[2] - 4.25).abs() < 1e-12);
    }

    #[test]
    fn ward_on_one_dimensional_points() {
        // Points at 0, 2, 10, 12 (Euclidean distances).
        let pos = [0.0f64, 2.0, 10.0, 12.0];
        let d = CondensedMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
        let dend = linkage(&d, Method::Ward);
        let h: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        // First two merges at height 2 (the tight pairs), final merge:
        // Ward distance between {0,2} and {10,12}:
        // sqrt( ((1+1)*d² terms)/… ) — known closed form: for two pairs
        // with centroids 1 and 11, Ward height = sqrt(2*2/(2+2)) * |1-11| ...
        // = sqrt( (2*2)/(4) ) * 10 = 10 * 1 = 10 → but SciPy reports
        // sqrt(2*nm/(n+m)) * ||c1-c2|| = sqrt(4/4)*10? Verify numerically:
        assert!((h[0] - 2.0).abs() < 1e-9);
        assert!((h[1] - 2.0).abs() < 1e-9);
        // Lance-Williams on squared distances gives the ESS increase ×2;
        // the point: the final merge is far larger than the first two.
        assert!(h[2] > 9.0, "far clusters must merge last: {h:?}");
    }

    #[test]
    fn all_methods_produce_full_merge_sequences() {
        for m in Method::ALL {
            let dend = linkage(&chain(), m);
            assert_eq!(dend.merges().len(), 3, "{}", m.name());
            assert_eq!(dend.merges().last().unwrap().size, 4);
        }
    }

    #[test]
    fn reducible_methods_are_monotonic() {
        // single/complete/average/weighted/ward cannot produce
        // inversions (centroid/median can).
        let pos = [0.0f64, 1.3, 2.9, 7.2, 7.9, 15.0];
        let d = CondensedMatrix::from_fn(6, |i, j| (pos[i] - pos[j]).abs());
        for m in [
            Method::Single,
            Method::Complete,
            Method::Average,
            Method::Weighted,
            Method::Ward,
        ] {
            let dend = linkage(&d, m);
            let hs: Vec<f64> = dend.merges().iter().map(|x| x.distance).collect();
            for w in hs.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-12,
                    "{} produced an inversion: {hs:?}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let d = CondensedMatrix::from_fn(4, |_, _| 1.0); // all equal
        let a = linkage(&d, Method::Average);
        let b = linkage(&d, Method::Average);
        assert_eq!(a.merges(), b.merges());
        assert_eq!(a.merges()[0].a, 0);
        assert_eq!(a.merges()[0].b, 1);
    }

    #[test]
    fn flat_cut_consistency() {
        let pos = [0.0f64, 0.5, 8.0, 8.5, 20.0];
        let d = CondensedMatrix::from_fn(5, |i, j| (pos[i] - pos[j]).abs());
        let dend = linkage(&d, Method::Ward);
        let l3 = fcluster_maxclust(&dend, 3);
        assert_eq!(l3[0], l3[1]);
        assert_eq!(l3[2], l3[3]);
        assert_ne!(l3[0], l3[2]);
        assert_ne!(l3[2], l3[4]);
    }

    #[test]
    fn single_observation() {
        let d = CondensedMatrix::zeros(1);
        let dend = linkage(&d, Method::Ward);
        assert!(dend.merges().is_empty());
        assert_eq!(fcluster_maxclust(&dend, 1), vec![0]);
    }
}
