//! Dendrogram text rendering and the cophenetic correlation
//! coefficient (how faithfully a dendrogram preserves the original
//! distances — SciPy's `cophenet`).

use crate::dendrogram::Dendrogram;
use crate::dist::CondensedMatrix;

/// Pearson correlation between the original pairwise distances and the
/// cophenetic distances of `dend` (SciPy `cophenet(Z, Y)[0]`). Returns
/// `None` for degenerate inputs (fewer than 2 observations or zero
/// variance).
pub fn cophenetic_correlation(dend: &Dendrogram, dist: &CondensedMatrix) -> Option<f64> {
    let n = dist.len();
    if n < 3 {
        return None;
    }
    let mut xs = Vec::with_capacity(n * (n - 1) / 2);
    let mut ys = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            xs.push(dist.get(i, j));
            ys.push(dend.cophenetic(i, j));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mx, my) = (mean(&xs), mean(&ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx < 1e-24 || vy < 1e-24 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Export a dendrogram as a Graphviz DOT digraph (leaves labelled via
/// `label`, internal nodes by merge height).
pub fn dendrogram_to_dot<F: Fn(usize) -> String>(dend: &Dendrogram, label: &F) -> String {
    let n = dend.len();
    let mut out = String::from("digraph dendrogram {\n  rankdir=BT;\n");
    for i in 0..n {
        out.push_str(&format!(
            "  n{i} [shape=box, label=\"{}\"];\n",
            label(i).replace('"', "'")
        ));
    }
    for (step, m) in dend.merges().iter().enumerate() {
        let id = n + step;
        out.push_str(&format!(
            "  n{id} [shape=ellipse, label=\"h={:.2}\"];\n",
            m.distance
        ));
        out.push_str(&format!("  n{} -> n{id};\n", m.a));
        out.push_str(&format!("  n{} -> n{id};\n", m.b));
    }
    out.push_str("}\n");
    out
}

/// Render a dendrogram as ASCII art, labels resolved by `label`:
///
/// ```text
/// ── h=3.00 ─┬─ h=1.00 ─┬─ T0
///            │          └─ T1
///            └─ h=2.00 ─┬─ T2
///                       └─ T3
/// ```
pub fn render_dendrogram<F: Fn(usize) -> String>(dend: &Dendrogram, label: &F) -> String {
    if dend.is_empty() {
        return String::new();
    }
    let root = if dend.merges().is_empty() {
        0
    } else {
        dend.len() + dend.merges().len() - 1
    };
    let mut out = String::new();
    render_node(dend, root, "", "── ", &mut out, label);
    out
}

fn render_node<F: Fn(usize) -> String>(
    dend: &Dendrogram,
    id: usize,
    indent: &str,
    connector: &str,
    out: &mut String,
    label: &F,
) {
    if id < dend.len() {
        out.push_str(indent);
        out.push_str(connector);
        out.push_str(&label(id));
        out.push('\n');
        return;
    }
    let m = dend.merges()[id - dend.len()];
    let header = format!("{connector}h={:.2} ", m.distance);
    out.push_str(indent);
    out.push_str(&header);
    // First child continues on the same line via a ┬ connector.
    let child_indent = format!("{indent}{}", " ".repeat(header.chars().count() - 3));
    // Render first child inline-ish: use recursive calls with the drawn
    // tree characters.
    let first_conn = "┬─ ";
    let rest_conn = "└─ ";
    let pass_indent = format!("{child_indent}│  ");
    let last_indent = format!("{child_indent}   ");
    // Children, larger side first for stable display.
    let (a, b) = (m.a, m.b);
    render_inline(
        dend,
        a,
        &header,
        indent,
        first_conn,
        &pass_indent,
        out,
        label,
    );
    render_node(dend, b, &child_indent, rest_conn, out, label);
    let _ = last_indent;
}

#[allow(clippy::too_many_arguments)]
fn render_inline<F: Fn(usize) -> String>(
    dend: &Dendrogram,
    id: usize,
    _header: &str,
    _indent: &str,
    connector: &str,
    pass_indent: &str,
    out: &mut String,
    label: &F,
) {
    if id < dend.len() {
        out.push_str(connector);
        out.push_str(&label(id));
        out.push('\n');
        return;
    }
    let m = dend.merges()[id - dend.len()];
    let header = format!("{connector}h={:.2} ", m.distance);
    out.push_str(&header);
    let child_indent = format!("{pass_indent}{}", " ".repeat(header.chars().count() - 3));
    render_inline(
        dend,
        m.a,
        &header,
        pass_indent,
        "┬─ ",
        &format!("{child_indent}│  "),
        out,
        label,
    );
    render_node(dend, m.b, &child_indent, "└─ ", out, label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkage::{linkage, Method};

    fn two_pairs() -> (CondensedMatrix, Dendrogram) {
        let pos = [0.0f64, 1.0, 10.0, 11.5];
        let d = CondensedMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
        let z = linkage(&d, Method::Average);
        (d, z)
    }

    #[test]
    fn cophenetic_correlation_high_for_clean_structure() {
        let (d, z) = two_pairs();
        let c = cophenetic_correlation(&z, &d).unwrap();
        assert!(c > 0.9, "clean two-cluster data should correlate: {c}");
        assert!(c <= 1.0 + 1e-12);
    }

    #[test]
    fn cophenetic_correlation_degenerate_cases() {
        let d = CondensedMatrix::zeros(2);
        let z = linkage(&d, Method::Single);
        assert!(cophenetic_correlation(&z, &d).is_none()); // n < 3
        let d3 = CondensedMatrix::zeros(3); // zero variance
        let z3 = linkage(&d3, Method::Single);
        assert!(cophenetic_correlation(&z3, &d3).is_none());
    }

    #[test]
    fn render_contains_all_leaves_and_heights() {
        let (_, z) = two_pairs();
        let s = render_dendrogram(&z, &|i| format!("T{i}"));
        for t in ["T0", "T1", "T2", "T3"] {
            assert!(s.contains(t), "{t} missing:\n{s}");
        }
        assert!(s.contains("h=1.00"), "{s}");
        assert!(s.contains("h=1.50"), "{s}");
        // Every leaf on its own line.
        assert_eq!(s.lines().count(), 4, "{s}");
    }

    #[test]
    fn dot_export_structure() {
        let (_, z) = two_pairs();
        let dot = dendrogram_to_dot(&z, &|i| format!("T{i}"));
        assert!(dot.starts_with("digraph dendrogram {"));
        // 4 leaves + 3 merges = 7 nodes, 6 edges.
        assert_eq!(dot.matches("label=").count(), 7);
        assert_eq!(dot.matches("->").count(), 6);
        assert!(dot.contains("T3"));
        assert!(dot.contains("h=1.00"));
    }

    #[test]
    fn render_single_leaf() {
        let z = Dendrogram::new(1, vec![]);
        let s = render_dendrogram(&z, &|i| format!("only{i}"));
        assert!(s.contains("only0"));
    }
}
