//! `cluster` — agglomerative hierarchical clustering and clustering
//! comparison, re-implementing the SciPy facilities the DiffTrace paper
//! uses (`scipy.cluster.hierarchy`, SciPy 1.3.0).
//!
//! DiffTrace turns the diffed Jaccard similarity matrix into
//! dissimilarities, builds a dendrogram with a configurable *linkage*
//! (the paper's experiments use **ward**; single, complete, average,
//! weighted, centroid and median are available as the "alter the
//! linkage method" knob of the iterative loop), flattens it into
//! clusters, and ranks parameter combinations by the **B-score** —
//! Fowlkes & Mallows' method for comparing two hierarchical
//! clusterings (JASA 1983).
//!
//! * [`CondensedMatrix`] — upper-triangle pairwise dissimilarities.
//! * [`linkage()`] — Lance–Williams agglomeration producing a
//!   [`Dendrogram`] (SciPy `Z`-matrix convention: leaves `0..n`,
//!   merge `i` creates cluster `n+i`).
//! * [`fcluster_maxclust`] / [`fcluster_distance`] — flat cuts.
//! * [`fowlkes_mallows`] — the `B_k` index of two flat clusterings;
//!   [`bscore`] aggregates `1 − mean_k B_k` over all cut levels, the
//!   sort key of the paper's ranking tables (0 = identical hierarchies).
//!
//! ```
//! use cluster::{CondensedMatrix, linkage, Method, fcluster_maxclust};
//!
//! // Three nearby points and one far outlier.
//! let pos = [0.0f64, 1.0, 1.5, 10.0];
//! let d = CondensedMatrix::from_fn(4, |i, j| (pos[i] - pos[j]).abs());
//! let dend = linkage(&d, Method::Average);
//! let labels = fcluster_maxclust(&dend, 2);
//! assert_eq!(labels[0], labels[1]);
//! assert_eq!(labels[1], labels[2]);
//! assert_ne!(labels[0], labels[3]); // the outlier is its own cluster
//! ```

pub mod dendrogram;
pub mod dist;
pub mod fowlkes;
pub mod linkage;
pub mod nnchain;
pub mod render;

pub use dendrogram::{fcluster_distance, fcluster_maxclust, Dendrogram, Merge};
pub use dist::CondensedMatrix;
pub use fowlkes::{bscore, fowlkes_mallows};
pub use linkage::{linkage, Method};
pub use nnchain::{is_reducible, linkage_nn_chain};
pub use render::{cophenetic_correlation, dendrogram_to_dot, render_dendrogram};
