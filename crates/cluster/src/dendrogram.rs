//! Dendrograms (SciPy `Z`-matrix convention) and flat cuts.

/// One agglomeration step: clusters `a` and `b` merge at `distance`
/// into a cluster of `size` observations. Cluster IDs follow SciPy:
/// `0..n` are leaves; merge `i` creates cluster `n + i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Smaller cluster ID of the pair.
    pub a: usize,
    /// Larger cluster ID of the pair.
    pub b: usize,
    /// Merge height (cophenetic distance of the pair).
    pub distance: f64,
    /// Observations in the new cluster.
    pub size: usize,
}

/// The full merge history of an agglomerative clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Wrap a merge sequence over `n` observations.
    pub fn new(n: usize, merges: Vec<Merge>) -> Dendrogram {
        assert!(
            merges.len() == n.saturating_sub(1),
            "a dendrogram over {n} observations needs {} merges, got {}",
            n.saturating_sub(1),
            merges.len()
        );
        Dendrogram { n, merges }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no observations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps in order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Resolve a cluster ID (leaf or internal) to its member leaves.
    pub fn members(&self, id: usize) -> Vec<usize> {
        if id < self.n {
            return vec![id];
        }
        let m = &self.merges[id - self.n];
        let mut out = self.members(m.a);
        out.extend(self.members(m.b));
        out
    }

    /// Cophenetic distance between two leaves: the height of their
    /// lowest common merge.
    #[allow(clippy::needless_range_loop)]
    pub fn cophenetic(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        // Walk merges in order; the first merge joining the two leaves'
        // current clusters gives the height.
        let mut label: Vec<usize> = (0..self.n).collect();
        for (step, m) in self.merges.iter().enumerate() {
            let new_id = self.n + step;
            for l in label.iter_mut() {
                if *l == m.a || *l == m.b {
                    *l = new_id;
                }
            }
            if label[i] == label[j] {
                return m.distance;
            }
        }
        f64::INFINITY
    }
}

/// Flat clustering with exactly `k` clusters (SciPy
/// `fcluster(criterion='maxclust')`): apply the first `n − k` merges.
/// Returns dense labels `0..k` in order of first appearance.
pub fn fcluster_maxclust(dend: &Dendrogram, k: usize) -> Vec<usize> {
    let n = dend.len();
    let k = k.clamp(1, n.max(1));
    cut(dend, n.saturating_sub(k))
}

/// Flat clustering cutting at `height`: apply every merge with
/// `distance ≤ height` (SciPy `fcluster(criterion='distance')`).
pub fn fcluster_distance(dend: &Dendrogram, height: f64) -> Vec<usize> {
    let steps = dend
        .merges()
        .iter()
        .take_while(|m| m.distance <= height)
        .count();
    cut(dend, steps)
}

#[allow(clippy::needless_range_loop)]
fn cut(dend: &Dendrogram, steps: usize) -> Vec<usize> {
    let n = dend.len();
    // Union-find over cluster IDs.
    let mut parent: Vec<usize> = (0..n + steps).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (step, m) in dend.merges().iter().take(steps).enumerate() {
        let new_id = n + step;
        let ra = find(&mut parent, m.a);
        let rb = find(&mut parent, m.b);
        parent[ra] = new_id;
        parent[rb] = new_id;
    }
    // Dense labels in order of first appearance.
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut seen: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        let l = *seen.entry(r).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
        labels[i] = l;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dendrogram over 4 leaves: (0,1)@1 → 4; (2,3)@2 → 5; (4,5)@3 → 6.
    fn sample() -> Dendrogram {
        Dendrogram::new(
            4,
            vec![
                Merge {
                    a: 0,
                    b: 1,
                    distance: 1.0,
                    size: 2,
                },
                Merge {
                    a: 2,
                    b: 3,
                    distance: 2.0,
                    size: 2,
                },
                Merge {
                    a: 4,
                    b: 5,
                    distance: 3.0,
                    size: 4,
                },
            ],
        )
    }

    #[test]
    fn members_resolve_recursively() {
        let d = sample();
        assert_eq!(d.members(0), vec![0]);
        assert_eq!(d.members(4), vec![0, 1]);
        let mut all = d.members(6);
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn maxclust_cuts() {
        let d = sample();
        assert_eq!(fcluster_maxclust(&d, 4), vec![0, 1, 2, 3]);
        let two = fcluster_maxclust(&d, 2);
        assert_eq!(two[0], two[1]);
        assert_eq!(two[2], two[3]);
        assert_ne!(two[0], two[2]);
        let one = fcluster_maxclust(&d, 1);
        assert!(one.iter().all(|&l| l == one[0]));
        // k larger than n clamps to n.
        assert_eq!(fcluster_maxclust(&d, 99), vec![0, 1, 2, 3]);
    }

    #[test]
    fn distance_cuts() {
        let d = sample();
        assert_eq!(fcluster_distance(&d, 0.5), vec![0, 1, 2, 3]);
        let at1 = fcluster_distance(&d, 1.0);
        assert_eq!(at1[0], at1[1]);
        assert_ne!(at1[2], at1[3]);
        let at3 = fcluster_distance(&d, 3.0);
        assert!(at3.iter().all(|&l| l == 0));
    }

    #[test]
    fn cophenetic_heights() {
        let d = sample();
        assert_eq!(d.cophenetic(0, 1), 1.0);
        assert_eq!(d.cophenetic(2, 3), 2.0);
        assert_eq!(d.cophenetic(0, 3), 3.0);
        assert_eq!(d.cophenetic(2, 2), 0.0);
    }

    #[test]
    #[should_panic]
    fn wrong_merge_count_panics() {
        Dendrogram::new(4, vec![]);
    }
}
