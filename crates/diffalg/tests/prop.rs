//! Property tests: Myers diff minimality (against DP LCS) and
//! reconstruction on random sequences.

use diffalg::{align_blocks, diff, BlockKind};
use proptest::prelude::*;

fn lcs_len(a: &[u8], b: &[u8]) -> usize {
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[a.len()][b.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn minimal_and_reconstructs(
        a in proptest::collection::vec(0u8..4, 0..40),
        b in proptest::collection::vec(0u8..4, 0..40),
    ) {
        let s = diff(&a, &b);
        prop_assert_eq!(s.apply_with(&a, &b), b.clone());
        let expected = a.len() + b.len() - 2 * lcs_len(&a, &b);
        prop_assert_eq!(s.distance(), expected);
        prop_assert_eq!(s.common_len(), lcs_len(&a, &b));
    }

    #[test]
    fn blocks_partition_both_sides(
        a in proptest::collection::vec(0u8..6, 0..30),
        b in proptest::collection::vec(0u8..6, 0..30),
    ) {
        let s = diff(&a, &b);
        let blocks = align_blocks(&s, &a, &b);
        let left: Vec<u8> = blocks
            .iter()
            .filter(|bl| bl.kind != BlockKind::RightOnly)
            .flat_map(|bl| bl.items.iter().copied())
            .collect();
        let right: Vec<u8> = blocks
            .iter()
            .filter(|bl| bl.kind != BlockKind::LeftOnly)
            .flat_map(|bl| bl.items.iter().copied())
            .collect();
        prop_assert_eq!(left, a);
        prop_assert_eq!(right, b);
    }

    #[test]
    fn diff_against_self_is_all_common(a in proptest::collection::vec(0u8..6, 0..50)) {
        let s = diff(&a, &a);
        prop_assert_eq!(s.distance(), 0);
        prop_assert_eq!(s.common_len(), a.len());
    }

    #[test]
    fn prefix_suffix_edits_stay_local(
        pre in proptest::collection::vec(0u8..4, 0..20),
        mid_a in proptest::collection::vec(10u8..14, 0..5),
        mid_b in proptest::collection::vec(20u8..24, 0..5),
        post in proptest::collection::vec(0u8..4, 0..20),
    ) {
        // a = pre ∥ mid_a ∥ post, b = pre ∥ mid_b ∥ post: distance is
        // at most |mid_a| + |mid_b|.
        let a: Vec<u8> = pre.iter().chain(&mid_a).chain(&post).copied().collect();
        let b: Vec<u8> = pre.iter().chain(&mid_b).chain(&post).copied().collect();
        let s = diff(&a, &b);
        prop_assert!(s.distance() <= mid_a.len() + mid_b.len());
    }
}
