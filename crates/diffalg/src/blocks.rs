//! Grouping edit scripts into aligned blocks for side-by-side display.
//!
//! diffNLR shows a *main stem* of common blocks with left-only (normal)
//! and right-only (faulty) blocks hanging off it. [`align_blocks`]
//! produces that structure from an edit script plus the two sequences.

use crate::script::{EditScript, Op};

/// Which side(s) a block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Present in both sequences (the "main stem", green in Figure 5).
    Common,
    /// Present only in the left/first sequence (normal run; blue).
    LeftOnly,
    /// Present only in the right/second sequence (faulty run; red).
    RightOnly,
}

/// A contiguous block of elements with one kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block<T> {
    /// The side.
    pub kind: BlockKind,
    /// The elements (cloned out of the input sequences).
    pub items: Vec<T>,
}

/// Align `a` (left) and `b` (right) into blocks according to `script`.
///
/// Adjacent Delete+Insert runs appear as a LeftOnly block followed by a
/// RightOnly block — the "replace" shape of Figure 5b.
pub fn align_blocks<T: Clone + PartialEq>(script: &EditScript, a: &[T], b: &[T]) -> Vec<Block<T>> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    for r in script.ops() {
        match r.op {
            Op::Keep => {
                out.push(Block {
                    kind: BlockKind::Common,
                    items: a[i..i + r.len].to_vec(),
                });
                i += r.len;
                j += r.len;
            }
            Op::Delete => {
                out.push(Block {
                    kind: BlockKind::LeftOnly,
                    items: a[i..i + r.len].to_vec(),
                });
                i += r.len;
            }
            Op::Insert => {
                out.push(Block {
                    kind: BlockKind::RightOnly,
                    items: b[j..j + r.len].to_vec(),
                });
                j += r.len;
            }
        }
    }
    debug_assert_eq!(i, a.len());
    debug_assert_eq!(j, b.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::myers::diff;

    #[test]
    fn replace_shape() {
        let a = ["Init", "L1^16", "Finalize"];
        let b = ["Init", "L1^7", "L0^9", "Finalize"];
        let blocks = align_blocks(&diff(&a, &b), &a, &b);
        let kinds: Vec<BlockKind> = blocks.iter().map(|x| x.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Common,
                BlockKind::LeftOnly,
                BlockKind::RightOnly,
                BlockKind::Common
            ]
        );
        assert_eq!(blocks[1].items, vec!["L1^16"]);
        assert_eq!(blocks[2].items, vec!["L1^7", "L0^9"]);
    }

    #[test]
    fn truncation_shape() {
        // dlBug: faulty stops early — trailing LeftOnly block.
        let a = ["Init", "L1^16", "Finalize"];
        let b = ["Init", "L1^7"];
        let blocks = align_blocks(&diff(&a, &b), &a, &b);
        assert_eq!(blocks.first().unwrap().kind, BlockKind::Common);
        assert!(blocks
            .iter()
            .any(|bl| bl.kind == BlockKind::LeftOnly && bl.items.contains(&"Finalize")));
    }

    #[test]
    fn identical_sequences_single_common_block() {
        let a = [1, 2, 3];
        let blocks = align_blocks(&diff(&a, &a), &a, &a);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].kind, BlockKind::Common);
        assert_eq!(blocks[0].items, vec![1, 2, 3]);
    }

    #[test]
    fn fully_disjoint() {
        let a = [1, 2];
        let b = [3, 4];
        let blocks = align_blocks(&diff(&a, &b), &a, &b);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|bl| bl.kind != BlockKind::Common));
    }
}
