//! The greedy forward O(ND) algorithm with full traceback.

use crate::script::{EditScript, Op, Run};

/// Compute a minimal edit script turning `a` into `b`.
///
/// Time `O((N+M)·D)`, space `O(D²)` for the traceback (the per-`d`
/// furthest-reaching frontier snapshots). Trace inputs are
/// NLR-summarized, so `N`, `M`, and especially `D` are small.
pub fn diff<T: PartialEq>(a: &[T], b: &[T]) -> EditScript {
    let n = a.len();
    let m = b.len();
    let max = n + m;
    if max == 0 {
        return EditScript::default();
    }
    let offset = max;
    // v[k + offset] = furthest x on diagonal k.
    let mut v = vec![0usize; 2 * max + 1];
    let mut snapshots: Vec<Vec<usize>> = Vec::new();

    'outer: {
        for d in 0..=max as isize {
            snapshots.push(v.clone());
            let mut k = -d;
            while k <= d {
                let ki = (k + offset as isize) as usize;
                let mut x = if k == -d || (k != d && v[ki - 1] < v[ki + 1]) {
                    v[ki + 1] // move down (insert from b)
                } else {
                    v[ki - 1] + 1 // move right (delete from a)
                };
                let mut y = (x as isize - k) as usize;
                while x < n && y < m && a[x] == b[y] {
                    x += 1;
                    y += 1;
                }
                v[ki] = x;
                if x >= n && y >= m {
                    break 'outer;
                }
                k += 2;
            }
        }
        unreachable!("diff always terminates within n+m steps");
    }

    // Traceback from (n, m) through the snapshots.
    let mut ops_rev: Vec<Run> = Vec::new();
    let mut x = n;
    let mut y = m;
    for d in (1..snapshots.len()).rev() {
        let vprev = &snapshots[d];
        let d = d as isize;
        let k = x as isize - y as isize;
        let ki = (k + offset as isize) as usize;
        let went_down = k == -d || (k != d && vprev[ki - 1] < vprev[ki + 1]);
        let (prev_k, edit) = if went_down {
            (k + 1, Op::Insert)
        } else {
            (k - 1, Op::Delete)
        };
        let prev_x = vprev[(prev_k + offset as isize) as usize];
        let prev_y = (prev_x as isize - prev_k) as usize;
        // Snake (common run) after the edit step.
        let after_edit_x = if went_down { prev_x } else { prev_x + 1 };
        let snake = x - after_edit_x;
        if snake > 0 {
            ops_rev.push(Run {
                op: Op::Keep,
                len: snake,
            });
        }
        ops_rev.push(Run { op: edit, len: 1 });
        x = prev_x;
        y = prev_y;
    }
    // Leading snake at d = 0.
    debug_assert_eq!(x, y);
    if x > 0 {
        ops_rev.push(Run {
            op: Op::Keep,
            len: x,
        });
    }
    ops_rev.reverse();
    EditScript::from_runs(ops_rev)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference LCS length by dynamic programming.
    fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[a.len()][b.len()]
    }

    fn check(a: &[u32], b: &[u32]) {
        let s = diff(a, b);
        assert_eq!(s.apply_with(a, b), b.to_vec(), "a={a:?} b={b:?}");
        let expected_d = a.len() + b.len() - 2 * lcs_len(a, b);
        assert_eq!(
            s.distance(),
            expected_d,
            "non-minimal script for a={a:?} b={b:?}: {s:?}"
        );
    }

    #[test]
    fn trivial_cases() {
        check(&[], &[]);
        check(&[1], &[]);
        check(&[], &[1]);
        check(&[1, 2, 3], &[1, 2, 3]);
        check(&[1, 2, 3], &[4, 5, 6]);
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA → CBABAC (the paper's running example), D = 5.
        let a = [b'A', b'B', b'C', b'A', b'B', b'B', b'A'].map(u32::from);
        let b = [b'C', b'B', b'A', b'B', b'A', b'C'].map(u32::from);
        let s = diff(&a, &b);
        assert_eq!(s.distance(), 5);
        assert_eq!(s.apply_with(&a, &b), b.to_vec());
    }

    #[test]
    fn swap_bug_shape() {
        // Figure 5 of DiffTrace: common stem, one block replaced.
        let a = [0u32, 1, 99, 2];
        let b = [0u32, 1, 50, 51, 2];
        let s = diff(&a, &b);
        assert_eq!(s.distance(), 3);
        check(&a, &b);
    }

    #[test]
    fn truncation_shape() {
        // Figure 6: faulty trace is a prefix that stops early.
        let a = [0u32, 1, 2, 3, 4, 5];
        let b = [0u32, 1, 2];
        let s = diff(&a, &b);
        assert_eq!(s.distance(), 3);
        assert_eq!(s.common_len(), 3);
        check(&a, &b);
    }

    #[test]
    fn exhaustive_small_alphabet() {
        // All sequence pairs over {0,1} up to length 4: minimality and
        // reconstruction must hold everywhere.
        fn seqs(len: usize) -> Vec<Vec<u32>> {
            let mut out = vec![vec![]];
            for _ in 0..len {
                out = out
                    .into_iter()
                    .flat_map(|s| {
                        [0u32, 1].iter().map(move |&c| {
                            let mut t = s.clone();
                            t.push(c);
                            t
                        })
                    })
                    .collect();
            }
            out
        }
        let mut all = Vec::new();
        for l in 0..=4 {
            all.extend(seqs(l));
        }
        for a in &all {
            for b in &all {
                check(a, b);
            }
        }
    }

    #[test]
    fn long_common_prefix_suffix() {
        let mut a: Vec<u32> = (0..500).collect();
        let mut b = a.clone();
        a.insert(250, 9999);
        b.insert(250, 8888);
        b.insert(251, 8887);
        check(&a, &b);
    }
}
