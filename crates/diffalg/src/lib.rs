//! `diffalg` — Myers' O(ND) difference algorithm.
//!
//! diffNLR (§II-F-1 of the DiffTrace paper) visualizes the differences
//! between a normal and a faulty trace using "the diff algorithm …
//! used in the GNU diff utility and in git" — Myers, *An O(ND)
//! Difference Algorithm and Its Variations* (Algorithmica 1986). This
//! crate implements the greedy forward variant over arbitrary
//! `PartialEq` element types (diffNLR diffs *NLR elements*, not lines of
//! text), producing a minimal edit script which is then grouped into
//! common / left-only / right-only **blocks** for side-by-side
//! rendering.
//!
//! ```
//! use diffalg::{diff, Op};
//!
//! let a = ["Init", "L1^16", "Finalize"];
//! let b = ["Init", "L1^7", "L0^9", "Finalize"];
//! let script = diff(&a, &b);
//! assert_eq!(script.distance(), 3); // delete L1^16, insert L1^7, L0^9
//! assert_eq!(script.apply_with(&a, &b), b.to_vec());
//! let kinds: Vec<Op> = script.ops().iter().map(|r| r.op).collect();
//! assert_eq!(kinds, [Op::Keep, Op::Delete, Op::Insert, Op::Keep]);
//! ```

pub mod blocks;
pub mod myers;
pub mod script;

pub use blocks::{align_blocks, Block, BlockKind};
pub use myers::diff;
pub use script::{EditScript, Op, Run};
