//! Edit scripts: run-length-grouped Keep/Delete/Insert sequences.

/// Kind of an edit run, relative to transforming `a` into `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Elements common to both sequences.
    Keep,
    /// Elements present only in `a` (removed).
    Delete,
    /// Elements present only in `b` (added).
    Insert,
}

/// A maximal run of one edit kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The kind.
    pub op: Op,
    /// Number of consecutive elements.
    pub len: usize,
}

/// A minimal edit script from `a` to `b`, as produced by
/// [`crate::myers::diff`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EditScript {
    runs: Vec<Run>,
}

impl EditScript {
    /// Build from raw runs, merging adjacent runs of equal kind and
    /// dropping empty ones.
    pub fn from_runs<I: IntoIterator<Item = Run>>(runs: I) -> EditScript {
        let mut out: Vec<Run> = Vec::new();
        for r in runs {
            if r.len == 0 {
                continue;
            }
            match out.last_mut() {
                Some(last) if last.op == r.op => last.len += r.len,
                _ => out.push(r),
            }
        }
        EditScript { runs: out }
    }

    /// The runs in order.
    pub fn ops(&self) -> &[Run] {
        &self.runs
    }

    /// Edit distance: total inserted + deleted elements (the `D` of
    /// Myers' O(ND)).
    pub fn distance(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.op != Op::Keep)
            .map(|r| r.len)
            .sum()
    }

    /// Number of common elements (length of the implied LCS).
    pub fn common_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.op == Op::Keep)
            .map(|r| r.len)
            .sum()
    }

    /// Reconstruct `b` from `a` plus the original `b` (structure check:
    /// walks both cursors and asserts consistency). Primarily a testing
    /// and verification aid.
    pub fn apply_with<T: Clone + PartialEq>(&self, a: &[T], b: &[T]) -> Vec<T> {
        let mut out = Vec::with_capacity(b.len());
        let (mut i, mut j) = (0usize, 0usize);
        for r in &self.runs {
            match r.op {
                Op::Keep => {
                    for _ in 0..r.len {
                        assert!(a[i] == b[j], "Keep run over unequal elements");
                        out.push(a[i].clone());
                        i += 1;
                        j += 1;
                    }
                }
                Op::Delete => {
                    i += r.len;
                }
                Op::Insert => {
                    for _ in 0..r.len {
                        out.push(b[j].clone());
                        j += 1;
                    }
                }
            }
        }
        assert_eq!(i, a.len(), "script does not consume all of a");
        assert_eq!(j, b.len(), "script does not produce all of b");
        out
    }

    /// Lengths consumed on the `a` side and produced on the `b` side.
    pub fn side_lens(&self) -> (usize, usize) {
        let mut a = 0;
        let mut b = 0;
        for r in &self.runs {
            match r.op {
                Op::Keep => {
                    a += r.len;
                    b += r.len;
                }
                Op::Delete => a += r.len,
                Op::Insert => b += r.len,
            }
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_runs_merges_and_drops() {
        let s = EditScript::from_runs([
            Run {
                op: Op::Keep,
                len: 2,
            },
            Run {
                op: Op::Keep,
                len: 3,
            },
            Run {
                op: Op::Delete,
                len: 0,
            },
            Run {
                op: Op::Insert,
                len: 1,
            },
        ]);
        assert_eq!(
            s.ops(),
            &[
                Run {
                    op: Op::Keep,
                    len: 5
                },
                Run {
                    op: Op::Insert,
                    len: 1
                }
            ]
        );
        assert_eq!(s.distance(), 1);
        assert_eq!(s.common_len(), 5);
        assert_eq!(s.side_lens(), (5, 6));
    }

    #[test]
    fn apply_with_reconstructs() {
        let s = EditScript::from_runs([
            Run {
                op: Op::Keep,
                len: 1,
            },
            Run {
                op: Op::Delete,
                len: 1,
            },
            Run {
                op: Op::Insert,
                len: 2,
            },
            Run {
                op: Op::Keep,
                len: 1,
            },
        ]);
        let a = ["x", "dead", "z"];
        let b = ["x", "n1", "n2", "z"];
        assert_eq!(s.apply_with(&a, &b), b.to_vec());
    }

    #[test]
    #[should_panic]
    fn inconsistent_script_panics() {
        let s = EditScript::from_runs([Run {
            op: Op::Keep,
            len: 2,
        }]);
        let _ = s.apply_with(&["a"], &["a"]);
    }
}
