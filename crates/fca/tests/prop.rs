//! Property tests: the incremental lattice matches a brute-force
//! closure enumeration on random contexts.

use fca::{BitSet, ConceptLattice, FormalContext};
use proptest::prelude::*;

fn random_context() -> impl Strategy<Value = FormalContext> {
    proptest::collection::vec(proptest::collection::vec(0usize..8, 0..8), 1..7).prop_map(|objs| {
        let mut ctx = FormalContext::new();
        for (i, attrs) in objs.iter().enumerate() {
            let names: Vec<String> = attrs.iter().map(|a| format!("m{a}")).collect();
            ctx.add_object_unweighted(&format!("g{i}"), names.iter().map(|s| s.as_str()));
        }
        ctx
    })
}

/// All closed intents by fixpoint intersection, with their extents.
fn brute_force(ctx: &FormalContext) -> Vec<(Vec<usize>, Vec<usize>)> {
    let n = ctx.num_objects();
    let mut all_attrs = BitSet::new();
    for g in 0..n {
        all_attrs = all_attrs.union(ctx.object_attrs(g));
    }
    let mut intents = vec![all_attrs.canonical()];
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = intents.clone();
        for y in &snapshot {
            for g in 0..n {
                let cand = y.intersection(ctx.object_attrs(g)).canonical();
                if !intents.contains(&cand) {
                    intents.push(cand);
                    changed = true;
                }
            }
        }
    }
    let mut out: Vec<(Vec<usize>, Vec<usize>)> = intents
        .into_iter()
        .map(|intent| {
            let extent: Vec<usize> = (0..n)
                .filter(|&g| intent.is_subset(ctx.object_attrs(g)))
                .collect();
            (extent, intent.iter().collect())
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn incremental_equals_brute_force(ctx in random_context()) {
        let lattice = ConceptLattice::from_context(&ctx);
        let mut got: Vec<(Vec<usize>, Vec<usize>)> = lattice
            .concepts()
            .iter()
            .map(|c| (c.extent.iter().collect(), c.intent.iter().collect()))
            .collect();
        got.sort();
        prop_assert_eq!(got, brute_force(&ctx));
    }

    #[test]
    fn object_concept_is_minimal_and_contains_object(ctx in random_context()) {
        let lattice = ConceptLattice::from_context(&ctx);
        for g in 0..ctx.num_objects() {
            let oc = lattice.object_concept(g);
            prop_assert!(oc.extent.contains(g));
            // Minimality: no other concept containing g has a smaller
            // extent.
            for c in lattice.concepts() {
                if c.extent.contains(g) {
                    prop_assert!(c.extent_len() >= oc.extent_len());
                }
            }
        }
    }

    #[test]
    fn covers_are_acyclic_and_respect_order(ctx in random_context()) {
        let lattice = ConceptLattice::from_context(&ctx);
        for (lo, hi) in lattice.covers() {
            let cl = &lattice.concepts()[lo];
            let ch = &lattice.concepts()[hi];
            prop_assert!(cl.extent.is_proper_subset(&ch.extent));
        }
    }

    #[test]
    fn lattice_jaccard_matches_direct(ctx in random_context()) {
        let lattice = ConceptLattice::from_context(&ctx);
        for a in 0..ctx.num_objects() {
            for b in 0..ctx.num_objects() {
                let lhs = lattice.object_jaccard(a, b);
                let rhs = fca::weighted_jaccard(&ctx, a, b);
                prop_assert!((lhs - rhs).abs() < 1e-12);
            }
        }
    }
}
