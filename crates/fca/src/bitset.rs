//! A compact fixed-capacity bit set used for concept extents/intents.
//!
//! Lattice operations are dominated by subset tests and intersections
//! over attribute sets; a `u64`-block bit set makes these word-parallel.

use std::fmt;

/// Growable bit set over `usize` indices.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
}

impl BitSet {
    /// An empty set.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// An empty set with capacity for `n` indices.
    pub fn with_capacity(n: usize) -> BitSet {
        BitSet {
            blocks: vec![0; n.div_ceil(64)],
        }
    }

    /// Build from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    fn grow_for(&mut self, idx: usize) {
        let need = idx / 64 + 1;
        if self.blocks.len() < need {
            self.blocks.resize(need, 0);
        }
    }

    /// Insert `idx`. Returns true if newly inserted.
    pub fn insert(&mut self, idx: usize) -> bool {
        self.grow_for(idx);
        let (b, o) = (idx / 64, idx % 64);
        let was = self.blocks[b] & (1 << o) != 0;
        self.blocks[b] |= 1 << o;
        !was
    }

    /// Remove `idx`. Returns true if it was present.
    pub fn remove(&mut self, idx: usize) -> bool {
        let (b, o) = (idx / 64, idx % 64);
        if b >= self.blocks.len() {
            return false;
        }
        let was = self.blocks[b] & (1 << o) != 0;
        self.blocks[b] &= !(1 << o);
        was
    }

    /// Membership test.
    pub fn contains(&self, idx: usize) -> bool {
        let (b, o) = (idx / 64, idx % 64);
        self.blocks.get(b).is_some_and(|&w| w & (1 << o) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `self ⊆ other`?
    pub fn is_subset(&self, other: &BitSet) -> bool {
        for (i, &b) in self.blocks.iter().enumerate() {
            let o = other.blocks.get(i).copied().unwrap_or(0);
            if b & !o != 0 {
                return false;
            }
        }
        true
    }

    /// `self ⊂ other` (strict)?
    pub fn is_proper_subset(&self, other: &BitSet) -> bool {
        self.is_subset(other) && !other.is_subset(self)
    }

    /// Intersection.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let n = self.blocks.len().min(other.blocks.len());
        BitSet {
            blocks: (0..n).map(|i| self.blocks[i] & other.blocks[i]).collect(),
        }
    }

    /// Union.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let n = self.blocks.len().max(other.blocks.len());
        let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        BitSet {
            blocks: (0..n)
                .map(|i| get(&self.blocks, i) | get(&other.blocks, i))
                .collect(),
        }
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        let n = self.blocks.len().min(other.blocks.len());
        (0..n)
            .map(|i| (self.blocks[i] & other.blocks[i]).count_ones() as usize)
            .sum()
    }

    /// Size of the union without materializing it.
    pub fn union_len(&self, other: &BitSet) -> usize {
        let n = self.blocks.len().max(other.blocks.len());
        let get = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        (0..n)
            .map(|i| (get(&self.blocks, i) | get(&other.blocks, i)).count_ones() as usize)
            .sum()
    }

    /// Iterate set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + t)
                }
            })
        })
    }

    /// Canonical key (trailing-zero-block-free) for hashing sets that
    /// may have different capacities but equal content.
    pub fn canonical(&self) -> BitSet {
        let mut blocks = self.blocks.clone();
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        BitSet { blocks }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitSet {
        BitSet::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.insert(200));
        assert_eq!(s.len(), 2);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1, 3, 5, 64, 65].into_iter().collect();
        let b: BitSet = [3, 5, 65, 100].into_iter().collect();
        assert_eq!(
            a.intersection(&b).iter().collect::<Vec<_>>(),
            vec![3, 5, 65]
        );
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![1, 3, 5, 64, 65, 100]
        );
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(a.union_len(&b), 6);
    }

    #[test]
    fn subset_relations() {
        let small: BitSet = [1, 3].into_iter().collect();
        let big: BitSet = [1, 2, 3].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(small.is_proper_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(big.is_subset(&big));
        assert!(!big.is_proper_subset(&big));
        assert!(BitSet::new().is_subset(&small));
    }

    #[test]
    fn capacity_mismatch_equality_via_canonical() {
        let mut a = BitSet::with_capacity(1000);
        a.insert(3);
        let b: BitSet = [3].into_iter().collect();
        assert_ne!(a, b); // different block lengths
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn iter_is_sorted() {
        let s: BitSet = [100, 1, 64, 63, 2].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 63, 64, 100]);
    }
}
