//! Formal contexts `K = (G, M, I)` with optionally weighted incidence.

use crate::bitset::BitSet;
use std::collections::HashMap;

/// Dense attribute identifier within one context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A formal context: objects (trace labels), interned attributes, the
/// incidence relation, and per-(object, attribute) weights.
///
/// Weights implement the paper's Table V frequency modes: under
/// `noFreq` every weight is 1.0 and similarity degenerates to set
/// Jaccard; under `actual`/`log10` the weights carry (a function of)
/// the observed attribute frequency.
#[derive(Debug, Clone, Default)]
pub struct FormalContext {
    attr_names: Vec<String>,
    attr_ids: HashMap<String, AttrId>,
    object_labels: Vec<String>,
    /// Per object: its attribute set.
    incidence: Vec<BitSet>,
    /// Per object: attribute → weight (only incident attrs present).
    weights: Vec<HashMap<AttrId, f64>>,
}

impl FormalContext {
    /// An empty context.
    pub fn new() -> FormalContext {
        FormalContext::default()
    }

    /// Intern an attribute name.
    pub fn intern_attr(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.attr_ids.get(name) {
            return id;
        }
        let id = AttrId(self.attr_names.len() as u32);
        self.attr_names.push(name.to_string());
        self.attr_ids.insert(name.to_string(), id);
        id
    }

    /// The name of an attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attr_names[id.index()]
    }

    /// Look up an attribute without interning.
    pub fn resolve_attr(&self, name: &str) -> Option<AttrId> {
        self.attr_ids.get(name).copied()
    }

    /// Add an object with `(attribute, weight)` pairs. Returns its index.
    pub fn add_object<'a, I>(&mut self, label: &str, attrs: I) -> usize
    where
        I: IntoIterator<Item = (&'a str, f64)>,
    {
        let mut set = BitSet::new();
        let mut w = HashMap::new();
        for (name, weight) in attrs {
            let id = self.intern_attr(name);
            set.insert(id.index());
            w.insert(id, weight);
        }
        self.object_labels.push(label.to_string());
        self.incidence.push(set);
        self.weights.push(w);
        self.object_labels.len() - 1
    }

    /// Add an object whose attributes all weigh 1.0 (`noFreq`).
    pub fn add_object_unweighted<'a, I>(&mut self, label: &str, attrs: I) -> usize
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.add_object(label, attrs.into_iter().map(|a| (a, 1.0)))
    }

    /// Number of objects `|G|`.
    pub fn num_objects(&self) -> usize {
        self.object_labels.len()
    }

    /// Number of attributes `|M|`.
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Label of object `g`.
    pub fn object_label(&self, g: usize) -> &str {
        &self.object_labels[g]
    }

    /// Attribute set of object `g`.
    pub fn object_attrs(&self, g: usize) -> &BitSet {
        &self.incidence[g]
    }

    /// Weight of `(g, m)`; 0.0 when not incident.
    pub fn weight(&self, g: usize, m: AttrId) -> f64 {
        self.weights[g].get(&m).copied().unwrap_or(0.0)
    }

    /// Does object `g` have attribute `m`?
    pub fn incident(&self, g: usize, m: AttrId) -> bool {
        self.incidence[g].contains(m.index())
    }

    /// Export as CSV: header `object,<attr>,…`; cells carry the weight
    /// (0 = not incident). Interops with pandas/ConExp-style tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("object");
        for a in &self.attr_names {
            out.push(',');
            out.push_str(&a.replace(',', ";"));
        }
        out.push('\n');
        for g in 0..self.num_objects() {
            out.push_str(&self.object_labels[g].replace(',', ";"));
            for m in 0..self.num_attrs() {
                let w = self.weight(g, AttrId(m as u32));
                out.push_str(&format!(",{w}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the CSV produced by [`FormalContext::to_csv`] (or any
    /// object×attribute weight table). Zero weights mean not incident.
    pub fn from_csv(csv: &str) -> Result<FormalContext, String> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or("empty CSV")?;
        let attrs: Vec<&str> = header.split(',').skip(1).collect();
        let mut ctx = FormalContext::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut cells = line.split(',');
            let label = cells.next().ok_or("missing object label")?;
            let mut pairs = Vec::new();
            for (a, cell) in attrs.iter().zip(cells.by_ref()) {
                let w: f64 = cell
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {}: bad weight `{cell}`", lineno + 2))?;
                if w != 0.0 {
                    pairs.push((*a, w));
                }
            }
            if cells.next().is_some() {
                return Err(format!("line {}: too many cells", lineno + 2));
            }
            ctx.add_object(label, pairs);
        }
        Ok(ctx)
    }

    /// Render the cross table (Table IV of the paper) as text.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12}", ""));
        for a in &self.attr_names {
            out.push_str(&format!("{a:<18}"));
        }
        out.push('\n');
        for g in 0..self.num_objects() {
            out.push_str(&format!("{:<12}", self.object_labels[g]));
            for m in 0..self.num_attrs() {
                let mark = if self.incidence[g].contains(m) {
                    "×"
                } else {
                    ""
                };
                out.push_str(&format!("{mark:<18}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_iv() -> FormalContext {
        let mut ctx = FormalContext::new();
        let common = ["MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "MPI_Finalize"];
        for (i, lp) in ["L0", "L1", "L0", "L1"].iter().enumerate() {
            let mut attrs: Vec<&str> = common.to_vec();
            attrs.push(lp);
            ctx.add_object_unweighted(&format!("Trace {i}"), attrs);
        }
        ctx
    }

    #[test]
    fn build_and_query() {
        let ctx = table_iv();
        assert_eq!(ctx.num_objects(), 4);
        assert_eq!(ctx.num_attrs(), 6); // 4 common + L0 + L1
        let l0 = ctx.resolve_attr("L0").unwrap();
        let l1 = ctx.resolve_attr("L1").unwrap();
        assert!(ctx.incident(0, l0));
        assert!(!ctx.incident(0, l1));
        assert!(ctx.incident(1, l1));
        assert_eq!(ctx.object_label(2), "Trace 2");
    }

    #[test]
    fn weights_default_and_explicit() {
        let mut ctx = FormalContext::new();
        ctx.add_object("g0", [("a", 3.0), ("b", 1.0)]);
        ctx.add_object_unweighted("g1", ["a"]);
        let a = ctx.resolve_attr("a").unwrap();
        let b = ctx.resolve_attr("b").unwrap();
        assert_eq!(ctx.weight(0, a), 3.0);
        assert_eq!(ctx.weight(1, a), 1.0);
        assert_eq!(ctx.weight(1, b), 0.0);
    }

    #[test]
    fn attr_interning_shared_across_objects() {
        let ctx = table_iv();
        // All four objects share the id for MPI_Init.
        let init = ctx.resolve_attr("MPI_Init").unwrap();
        for g in 0..4 {
            assert!(ctx.incident(g, init));
        }
    }

    #[test]
    fn csv_round_trip() {
        let mut ctx = FormalContext::new();
        ctx.add_object("T0", [("MPI_Init", 1.0), ("L0", 4.0)]);
        ctx.add_object("T1", [("MPI_Init", 1.0), ("L1", 2.0)]);
        let csv = ctx.to_csv();
        let back = FormalContext::from_csv(&csv).unwrap();
        assert_eq!(back.num_objects(), 2);
        assert_eq!(back.num_attrs(), 3);
        let l0 = back.resolve_attr("L0").unwrap();
        assert_eq!(back.weight(0, l0), 4.0);
        assert!(!back.incident(1, l0));
        // Second round trip is byte-stable.
        assert_eq!(back.to_csv(), csv);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(FormalContext::from_csv("").is_err());
        assert!(FormalContext::from_csv("object,a\ng0,notanumber").is_err());
        assert!(FormalContext::from_csv("object,a\ng0,1,2,3").is_err());
        // Blank lines are tolerated.
        let ok = FormalContext::from_csv("object,a\ng0,1\n\n").unwrap();
        assert_eq!(ok.num_objects(), 1);
    }

    #[test]
    fn render_table_marks_incidence() {
        let ctx = table_iv();
        let t = ctx.render_table();
        assert!(t.contains("Trace 0"));
        assert!(t.contains("MPI_Finalize"));
        assert!(t.contains('×'));
    }
}
