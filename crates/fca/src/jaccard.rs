//! (Weighted) Jaccard similarity between context objects.
//!
//! The paper's JSMs (Figures 4, and the JSM_normal/JSM_faulty pair) are
//! pairwise Jaccard similarity matrices over traces. With `noFreq`
//! attributes this is set Jaccard `|A∩B| / |A∪B|`; with frequency
//! weights it is the weighted Jaccard `Σ min(w_a, w_b) / Σ max(w_a, w_b)`
//! over the attribute universe.

use crate::context::{AttrId, FormalContext};

/// Weighted Jaccard similarity of objects `a` and `b` in `ctx`.
///
/// Two objects with no attributes at all are defined maximally similar
/// (1.0) — e.g. two traces that were filtered to nothing.
pub fn weighted_jaccard(ctx: &FormalContext, a: usize, b: usize) -> f64 {
    let sa = ctx.object_attrs(a);
    let sb = ctx.object_attrs(b);
    let mut min_sum = 0.0f64;
    let mut max_sum = 0.0f64;
    for m in sa.union(sb).iter() {
        let id = AttrId(m as u32);
        let wa = ctx.weight(a, id);
        let wb = ctx.weight(b, id);
        min_sum += wa.min(wb);
        max_sum += wa.max(wb);
    }
    if max_sum == 0.0 {
        1.0
    } else {
        min_sum / max_sum
    }
}

/// One row of the pairwise similarity matrix: `row[j] =
/// weighted_jaccard(i, j)`, with `row[i] = 1.0`.
///
/// `weighted_jaccard` iterates the attribute *union* in index order and
/// combines with `min`/`max`, so it is bitwise symmetric in its two
/// arguments: computing full rows independently (e.g. one row per
/// thread) yields the exact same floats as [`jaccard_matrix`]'s
/// mirrored upper triangle.
pub fn jaccard_row(ctx: &FormalContext, i: usize) -> Vec<f64> {
    (0..ctx.num_objects())
        .map(|j| {
            if i == j {
                1.0
            } else {
                weighted_jaccard(ctx, i, j)
            }
        })
        .collect()
}

/// The full symmetric pairwise similarity matrix.
#[allow(clippy::needless_range_loop)] // triangular matrix indexing is clearer by index
pub fn jaccard_matrix(ctx: &FormalContext) -> Vec<Vec<f64>> {
    let n = ctx.num_objects();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in i + 1..n {
            let s = weighted_jaccard(ctx, i, j);
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::ConceptLattice;

    #[test]
    fn unweighted_equals_set_jaccard() {
        let mut ctx = FormalContext::new();
        ctx.add_object_unweighted("a", ["x", "y", "z"]);
        ctx.add_object_unweighted("b", ["y", "z", "w"]);
        // |∩| = 2 (y,z), |∪| = 4.
        assert!((weighted_jaccard(&ctx, 0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_uses_min_over_max() {
        let mut ctx = FormalContext::new();
        ctx.add_object("a", [("x", 4.0), ("y", 1.0)]);
        ctx.add_object("b", [("x", 2.0), ("y", 1.0)]);
        // Σmin = 2+1 = 3, Σmax = 4+1 = 5.
        assert!((weighted_jaccard(&ctx, 0, 1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let mut ctx = FormalContext::new();
        ctx.add_object_unweighted("a", ["x"]);
        ctx.add_object_unweighted("b", ["x", "y"]);
        ctx.add_object_unweighted("c", ["z"]);
        let m = jaccard_matrix(&ctx);
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            assert_eq!(m[i][i], 1.0);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        assert_eq!(m[0][2], 0.0); // disjoint
    }

    #[test]
    fn row_computation_is_bitwise_identical_to_matrix() {
        let mut ctx = FormalContext::new();
        ctx.add_object("a", [("x", 4.0), ("y", 1.0), ("q", 0.25)]);
        ctx.add_object("b", [("x", 2.0), ("y", 1.0)]);
        ctx.add_object("c", [("z", 3.0), ("q", 7.5)]);
        ctx.add_object("d", []);
        let m = jaccard_matrix(&ctx);
        for (i, m_row) in m.iter().enumerate() {
            let row = jaccard_row(&ctx, i);
            for j in 0..4 {
                assert_eq!(m_row[j].to_bits(), row[j].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_objects_are_maximally_similar() {
        let mut ctx = FormalContext::new();
        ctx.add_object_unweighted("a", []);
        ctx.add_object_unweighted("b", []);
        assert_eq!(weighted_jaccard(&ctx, 0, 1), 1.0);
    }

    #[test]
    fn lattice_side_and_context_side_agree_on_unweighted() {
        let mut ctx = FormalContext::new();
        ctx.add_object_unweighted("a", ["p", "q", "r"]);
        ctx.add_object_unweighted("b", ["q", "r", "s"]);
        ctx.add_object_unweighted("c", ["p"]);
        let l = ConceptLattice::from_context(&ctx);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (l.object_jaccard(i, j) - weighted_jaccard(&ctx, i, j)).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }
}
