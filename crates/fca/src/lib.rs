//! `fca` — Formal Concept Analysis for trace clustering.
//!
//! Implements §II-E / §III-B of the DiffTrace paper. A *formal context*
//! `K = (G, M, I)` has objects `G` (traces), attributes `M` (mined
//! trace features — function calls, loop IDs, pairs of consecutive
//! entries), and an incidence relation `I ⊆ G × M`. The *concept
//! lattice* `B(K)` is the set of all `(extent, intent)` pairs closed
//! under the Galois connection; DiffTrace derives the pairwise Jaccard
//! Similarity Matrix (JSM) of traces from it.
//!
//! Because HPC executions produce one object per thread and contexts
//! arrive trace-by-trace, the paper rejects Ganter's batch *Next
//! Closure* in favour of **Godin's incremental algorithm**: objects are
//! injected one at a time into an initially empty lattice, each
//! insertion minimally updating the concept set (`O(2^{2K}·|G|)` with
//! `K` bounding attributes per object). [`ConceptLattice::add_object`]
//! implements that incremental step.
//!
//! Attributes can carry *weights* (the paper's `{attr:freq}` with
//! `actual`, `log10`, or `noFreq` frequency modes — Table V); weighted
//! Jaccard similarity is `Σᵢ min(wᵢ) / Σᵢ max(wᵢ)`, which degenerates to
//! set Jaccard under `noFreq`.
//!
//! # Example (the paper's Table IV / Figure 3)
//!
//! ```
//! use fca::{FormalContext, ConceptLattice};
//!
//! let mut ctx = FormalContext::new();
//! for (label, attrs) in [
//!     ("T0", vec!["MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "L0", "MPI_Finalize"]),
//!     ("T1", vec!["MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "L1", "MPI_Finalize"]),
//!     ("T2", vec!["MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "L0", "MPI_Finalize"]),
//!     ("T3", vec!["MPI_Init", "MPI_Comm_Size", "MPI_Comm_Rank", "L1", "MPI_Finalize"]),
//! ] {
//!     ctx.add_object_unweighted(label, attrs);
//! }
//! let lattice = ConceptLattice::from_context(&ctx);
//! // top: all traces share the four MPI calls; middle: {T0,T2} vs {T1,T3}.
//! assert_eq!(lattice.top().extent_len(), 4);
//! let jsm = fca::jaccard_matrix(&ctx);
//! assert!(jsm[0][2] > jsm[0][1]); // T0 is more similar to T2 than to T1
//! ```

pub mod bitset;
pub mod context;
pub mod jaccard;
pub mod lattice;

pub use bitset::BitSet;
pub use context::{AttrId, FormalContext};
pub use jaccard::{jaccard_matrix, jaccard_row, weighted_jaccard};
pub use lattice::{Concept, ConceptLattice};
