//! `difftrace` — command-line front end.
//!
//! ```text
//! difftrace demo <workload> <outdir>     record a normal/faulty trace pair
//! difftrace info <file.dtts>             trace-file statistics
//! difftrace diff <normal> <faulty> [...] one DiffTrace iteration
//! difftrace sweep <normal> <faulty> [...] full ranking table
//! difftrace baseline record <run> <out>  snapshot a run into a sealed bundle
//! difftrace baseline check <run> <bundle> gate a candidate against it
//! ```
//!
//! See `difftrace help` for the options of each command.
//!
//! Exit codes: 0 success, 2 ordinary error (including a corrupt
//! baseline bundle), 3 gate denied (`--gate deny` found
//! error-severity diagnostics, or `baseline check` failed a policy
//! clause) — distinct so CI scripts can gate on broken traces
//! specifically.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(commands::CliError::LintDenied(e)) => {
            eprintln!("difftrace: {e}");
            ExitCode::from(3)
        }
        Err(commands::CliError::Msg(e)) => {
            eprintln!("difftrace: {e}");
            ExitCode::from(2)
        }
    }
}
