//! Command parsing and execution.

use difftrace::{
    hbcheck_set, lint_set, racecheck_set, render_ranking, reqcheck_set_rec,
    sweep_parallel_cached_rec, try_diff_runs_hb_rec, AttrConfig, AttrKind, DiffDenied,
    FilterConfig, FreqMode, HbOptions, LintDomain, LintGate, LintOptions, Params, PipelineOptions,
    RaceOptions, ReqOptions,
};
use dt_baseline::{evaluate, snapshot_rec, Baseline, Policy};
use dt_cache::Cache;
use dt_obs::{stage, MetricsRecorder, Recorder};
use dt_trace::hb::HbLog;
use dt_trace::{store, FunctionRegistry, TraceId, TraceSet, TraceSetStats};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// CLI failure modes; `main` maps each variant to a distinct exit code
/// (see the EXIT CODES section of the help text).
#[derive(Debug)]
pub enum CliError {
    /// Ordinary failure — bad arguments, unreadable input. Exit code 2.
    Msg(String),
    /// The lint gate denied the inputs (`--gate deny`). Exit code 3,
    /// so CI scripts can tell "traces are broken" from "tool misused".
    LintDenied(String),
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Msg(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Msg(m.to_string())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Msg(m) | CliError::LintDenied(m) => write!(f, "{m}"),
        }
    }
}

/// One-line usage string per subcommand, appended to argument errors
/// so the fix is visible without a round-trip through `help`.
fn usage_of(cmd: &str) -> &'static str {
    match cmd {
        "demo" => "usage: difftrace demo <workload> <outdir> [--force]",
        "info" => "usage: difftrace info <file.dtts>",
        "filters" => "usage: difftrace filters <file.dtts>",
        "single" => "usage: difftrace single <run.dtts> [options]",
        "lint" => "usage: difftrace lint <file.dtts>... [options]",
        "hbcheck" => "usage: difftrace hbcheck <file.dtts>... [options]",
        "racecheck" => "usage: difftrace racecheck <file.dtts>... [options]",
        "reqcheck" => "usage: difftrace reqcheck <file.dtts>... [options]",
        "diff" => "usage: difftrace diff <normal.dtts> <faulty.dtts> [options]",
        "fleet" => "usage: difftrace fleet <run.dtts|dir>... [--suspect RUN] [options]",
        "serve" => {
            "usage: difftrace serve <file.dtts>... [--addr HOST:PORT] [--jobs N] [--cache DIR]"
        }
        "query" => {
            "usage: difftrace query <HOST:PORT> <cmd> [<corpus> | <normal> <faulty>] [options]"
        }
        "export" => "usage: difftrace export <normal.dtts> <faulty.dtts> <outdir> [options]",
        "sweep" => "usage: difftrace sweep <normal.dtts> <faulty.dtts> [options]",
        "cache" => "usage: difftrace cache <stats|clear> <DIR>",
        "baseline" => "usage: difftrace baseline <record|check> … (see `difftrace help`)",
        "baseline record" => "usage: difftrace baseline record <run.dtts> <out.dtb> [options]",
        "baseline check" => {
            "usage: difftrace baseline check <run.dtts> <baseline.dtb> [options], or \
             difftrace baseline check --dir RUNS --out OUTDIR <baseline.dtb> [options]"
        }
        _ => "try `difftrace help`",
    }
}

fn unknown_option(flag: &str, cmd: &str) -> String {
    format!("unknown option `{flag}` for `{cmd}` ({})", usage_of(cmd))
}

/// Duplicate-flag guard for the hand-rolled option loops. Every flag
/// match arm calls [`Seen::check`] first, so `--filter A --filter B`
/// fails the same way on every subcommand instead of silently keeping
/// whichever value the loop happened to see last. Flags that are
/// genuinely repeatable (sweep's grid axes) skip the check.
struct Seen<'a> {
    cmd: &'a str,
    seen: std::collections::BTreeSet<&'static str>,
}

impl<'a> Seen<'a> {
    fn new(cmd: &'a str) -> Seen<'a> {
        Seen {
            cmd,
            seen: std::collections::BTreeSet::new(),
        }
    }

    fn check(&mut self, flag: &'static str) -> Result<(), String> {
        if self.seen.insert(flag) {
            Ok(())
        } else {
            Err(format!(
                "duplicate option `{flag}` for `{}` ({})",
                self.cmd,
                usage_of(self.cmd)
            ))
        }
    }
}

/// The `--profile` / `--metrics FILE` pair shared by the analysis
/// subcommands.
#[derive(Default)]
struct ObsOpts {
    profile: bool,
    metrics: Option<PathBuf>,
}

impl ObsOpts {
    fn active(&self) -> bool {
        self.profile || self.metrics.is_some()
    }

    /// The recorder the pipeline should report into: the live one when
    /// any observability output was requested, the no-op (whose stage
    /// guards never read the clock) otherwise.
    fn recorder<'r>(&self, live: &'r MetricsRecorder) -> &'r dyn Recorder {
        if self.active() {
            live
        } else {
            &dt_obs::NOOP
        }
    }

    /// Finalize and emit: the profile table goes to stderr (stdout is
    /// reserved for the analysis report, which must stay byte-identical
    /// under instrumentation), the JSON document to `--metrics FILE`.
    fn emit(&self, live: &MetricsRecorder, command: &str, threads: usize) -> Result<(), String> {
        if !self.active() {
            return Ok(());
        }
        let m = live.finish(command, threads);
        if self.profile {
            eprint!("{}", m.render_table());
        }
        if let Some(path) = &self.metrics {
            let doc = m.to_json();
            debug_assert!(dt_obs::validate_json(&doc).is_ok());
            write_file_atomic(path, doc.as_bytes())
                .map_err(|e| format!("writing metrics to {}: {e}", path.display()))?;
        }
        Ok(())
    }
}

const HELP: &str = "\
difftrace — whole-program trace analysis and diffing for debugging

USAGE:
  difftrace demo <workload> <outdir> [--force]
      Run the workload twice (healthy + with its paper fault) under the
      simulated MPI runtime; write <outdir>/normal.dtts and
      <outdir>/faulty.dtts (with their happens-before logs). Refuses
      to overwrite an existing pair unless --force is given.
      Workloads: oddeven oddeven-dl ilcs-crit ilcs-size ilcs-op lulesh
      stencil-tag (halo-exchange tag mismatch → recv↔recv deadlock)
      lulesh-coll (rank deserts a collective → wait-for cycle)
      omp-counter (shared counter updated without its lock → data race)
      omp-lockorder (two locks nested in opposite orders → potential
      deadlock)
      isend-leak (MPI_Isend posted but never waited on → leaked request)
      coll-args (one rank passes a different reduce op → divergent
      collective signature).
      Fleet workloads write N runs instead of a pair: fleet-oddeven /
      fleet-stencil produce <outdir>/run-0.dtts … run-7.dtts (healthy,
      varied seeds/thresholds) plus <outdir>/fault.dtts (one injected
      fault) — the corpus shape `difftrace fleet` consumes.

  difftrace info <file.dtts>
      Per-process/per-thread statistics of a stored trace set.

  difftrace filters <file.dtts>
      Coverage of every predefined Table I filter on this trace set
      (how many events each keeps) — guidance for the iterative loop.

  difftrace lint <file.dtts>... [--format text|json] [--gate warn|deny]
          [--domain expanded|compressed] [--deep] [--threads N] [--filter CODE]
          [--trace P.T] [--profile] [--metrics FILE]
      Static trace analysis *before* any diffing: stack discipline
      (TL001), cross-rank collective order (TL002), truncation (TL003),
      dead filters (TL004), NLR roundtrip (TL005), and — under --deep —
      the FCA lattice postconditions (TL006). --domain compressed runs
      TL001–TL003 directly on the NLR terms without expansion (same
      verdicts, no event spans). --filter probes that filter's classes
      for TL004 (bad custom patterns become diagnostics, not argument
      errors); without it the Table I presets are audited. --gate deny
      exits 3 when any error-severity diagnostic fires.

  difftrace hbcheck <file.dtts>... [--format text|json] [--gate warn|deny]
          [--domain expanded|compressed] [--threads N] [--profile] [--metrics FILE]
      Happens-before analysis of recorded runs: wait-for-graph deadlock
      cycles (HB001), operations blocked on finished peers (HB002),
      unmatched sends (HB003), racy channels — concurrent sends to one
      receiver slot (HB004), and least-progressed-rank hang triage
      (HB005). Needs traces recorded with a happens-before section
      (`difftrace demo` writes one). --domain compressed computes the
      per-rank progress summaries on the NLR terms without expansion
      (same verdicts, property-tested). --gate deny exits 3 when any
      error-severity diagnostic fires.

  difftrace racecheck <file.dtts>... [--format text|json] [--gate warn|deny]
          [--domain expanded|compressed] [--threads N] [--profile] [--metrics FILE]
      Shared-memory data-race detection over the `omp_*@` marker
      vocabulary: write-write races (RC001), read-write races (RC002),
      lock-order inversions — potential deadlocks (RC003), and
      inconsistently protected variables à la Eraser (RC004), using a
      barrier-phase + lockset abstraction that is independent of the
      recorded interleaving. --domain compressed folds per-term access
      summaries over the NLR loop structure without expansion — flat in
      loop repetition count (same reports byte for byte,
      property-tested). Trace sets without race markers are trivially
      clean. --gate deny exits 3 when any error-severity diagnostic
      fires.

  difftrace reqcheck <file.dtts>... [--format text|json] [--gate warn|deny]
          [--domain expanded|compressed] [--threads N] [--profile] [--metrics FILE]
      MPI request-lifecycle and collective-consistency analysis over
      the request marker vocabulary: leaked nonblocking requests
      (RQ001), waits without a matching post (RQ002), collective
      signature mismatches across ranks (RQ003), collective order
      divergence (RQ004), and request activity after MPI_Finalize
      (RQ005, warning). Runs record the vocabulary when request
      tracking is on (`difftrace demo isend-leak` / `coll-args` do).
      --domain compressed folds per-trace request summaries over the
      NLR loop structure without expansion — flat in loop repetition
      count (same reports byte for byte, property-tested). Trace sets
      without request markers are trivially clean. --gate deny exits 3
      when any error-severity diagnostic fires.

  difftrace diff <normal.dtts> <faulty.dtts>
          [--filter CODE] [--attrs CODE] [--linkage NAME] [--diffnlr P.T]
          [--threads N] [--full] [--gate off|warn|deny] [--hb off|warn|deny]
          [--race off|warn|deny] [--req off|warn|deny] [--cache DIR]
          [--profile] [--metrics FILE]
      One DiffTrace iteration: suspects, B-score, optional diffNLR view.
      --full prints the complete report (heatmaps, dendrograms,
      lattice summary, top diffNLRs).
      --threads 0 (default) parallelizes the iteration across all
      cores; --threads 1 forces the sequential path. The output is
      byte-identical either way.
      --gate runs the tracelint pre-pass first: warn reports findings
      and continues, deny refuses to diff broken traces (exit code 3).
      --hb runs the hbcheck pre-pass over the runs' happens-before
      logs: warn attaches the reports and annotates diffNLR views of
      deadlocked ranks with their wait-for cycle, deny refuses to diff
      a deadlocked/racy run (exit code 3).
      --race runs the racecheck pre-pass (no happens-before log
      needed): warn attaches the race reports, deny refuses to diff a
      run with data races or lock-order inversions (exit code 3).
      --req runs the reqcheck pre-pass: warn attaches the request-
      lifecycle reports, deny refuses to diff a run with leaked
      requests or inconsistent collectives (exit code 3).
      Defaults: --filter 11.all.K10 --attrs sing.actual --linkage ward
      --gate off --hb off --race off --req off.

  difftrace fleet <run.dtts|dir>... [--suspect RUN]
          [--filter CODE] [--attrs CODE] [--linkage NAME] [--threads N]
          [--format text|json] [--gate off|warn|deny] [--cache DIR]
          [--profile] [--metrics FILE]
      N-way corpus analysis WITHOUT a blessed reference: fold every
      run's mined attribute sets into ONE concept lattice (each new
      run arrives as an incremental Godin fold — the lattice is never
      rebuilt), maintain the cross-run JSM view incrementally, and
      rank which run (and which trace within it) deviates most from
      the fleet consensus. A run is flagged as THE outlier when its
      deviation exceeds 2 × the fleet median. Each positional is a
      .dtts file or a directory (expanded to its *.dtts, sorted);
      run names are file stems and must be unique. Ingestion order
      does not matter: any fold order yields byte-identical rankings.
      --suspect RUN additionally reports where that run ranked.
      --gate deny exits 3 when the fleet has an outlier (healthy
      fleets exit 0), so CI can gate on fleet homogeneity. A ragged
      fleet (runs covering different trace sets) is a diagnosed
      error naming the offending run and trace ids — exit 2.

  difftrace single <run.dtts> [--filter CODE] [--attrs CODE] [--k N]
          [--trace P.T] [--cache DIR] [--profile] [--metrics FILE]
      No-reference outlier analysis of ONE execution (the paper's
      §II-A mode): cluster traces, report the smallest clusters as
      outliers. --k 0 (default) picks the granularity automatically.
      --trace P.T restricts the analysis to one trace, decoded through
      the store's offset index without touching the rest of the file
      (lint takes the same flag).

  difftrace serve <file.dtts>... [--addr HOST:PORT] [--jobs N] [--cache DIR]
      Persistent analysis daemon. Each file becomes a named corpus
      (its file stem), opened ONCE behind the v3 offset index — no
      trace is decoded until a query touches it, and decoded traces
      stay cached across requests, as do intermediate analysis results
      in the shared cache. Queries arrive as line-delimited JSON over
      TCP (one request object per line, `id` echoed in the reply) and
      run on a bounded worker pool (--jobs 0 = all cores). Supported
      query cmds: lint hbcheck racecheck reqcheck diff fleet single
      metrics shutdown. Every reply's `output` is byte-identical to the
      one-shot subcommand's stdout for the same query, at any worker
      count. Default --addr 127.0.0.1:4178 (`:0` picks a free port;
      the chosen address is printed). Malformed frames get diagnosed
      `ok:false` replies; they never crash the daemon.

  difftrace query <HOST:PORT> <cmd> [<corpus> | <normal> <faulty> | <run>...]
          [--format text|json] [--gate warn|deny] [--domain expanded|compressed]
          [--deep] [--filter CODE] [--attrs CODE] [--linkage NAME] [--k N]
          [--threads N] [--trace P.T] [--diffnlr P.T] [--suspect RUN] [--full]
      One-shot client for a running `difftrace serve`: sends <cmd>
      against the named corpus (two names for diff: normal faulty;
      two or more for fleet; none for metrics/shutdown) and prints
      the reply's output — byte-identical to running the subcommand
      locally. --gate deny exits 3 when the reply carries
      error-severity diagnostics; a refused or failed query exits 2
      with the daemon's diagnosis.

  difftrace export <normal.dtts> <faulty.dtts> <outdir>
          [--filter CODE] [--attrs CODE] [--linkage NAME] [--threads N]
          [--cache DIR]
      Write analysis artifacts for external tools: concept lattices and
      dendrograms as Graphviz DOT, formal contexts and JSMs as CSV, and
      the full text report.

  difftrace sweep <normal.dtts> <faulty.dtts>
          [--filter CODE]... [--attrs CODE]... [--linkage NAME] [--jobs N]
          [--cache DIR] [--profile] [--metrics FILE]
      Ranking table over a parameter grid (default: the 11.all/01.all ×
      Table V grid), computed in parallel (--jobs 0 = all cores).
      Repeated --filter/--attrs values are deduplicated: each distinct
      (filter, attrs) combination runs exactly once.

  difftrace cache stats <DIR>
      Entry counts and total size of an analysis cache directory.

  difftrace cache clear <DIR>
      Delete every cache entry in DIR (the directory itself stays).

  difftrace baseline record <run.dtts> <out.dtb>
          [--filter CODE] [--attrs CODE] [--threads N] [--cache DIR]
          [--force] [--profile] [--metrics FILE]
      Snapshot a blessed run into a sealed baseline bundle: per-trace
      NLR content fingerprints (the same dt-cache content keys the
      analysis cache uses), the single-run JSM ranking and cluster
      structure, and the tracelint/hbcheck findings. Re-recording an
      unchanged corpus reproduces the bundle byte for byte. Refuses
      to overwrite an existing bundle unless --force is given.

  difftrace baseline check <run.dtts> <baseline.dtb>
          [--policy FILE] [--format text|json] [--threads N]
          [--cache DIR] [--profile] [--metrics FILE]
      Re-analyze a candidate run under the baseline's recorded
      parameters and judge the divergence under a policy: new/removed
      traces, changed fingerprints, ranking shifts beyond the allowed
      budget, and required-clean tracelint/hbcheck codes. Prints an
      assertion report with one entry per policy clause and exits 3
      when any clause fails. Without --policy the strict default
      applies: nothing tolerated, zero ranking shift, every TL/HB
      code required clean, fixed trace population. A corrupt or
      truncated bundle is an ordinary error (exit 2) naming the file.

  difftrace baseline check --dir RUNS --out OUTDIR <baseline.dtb>
          [--policy FILE] [--threads N] [--cache DIR]
          [--profile] [--metrics FILE]
      Check every RUNS/*.dtts against the baseline through one shared
      analysis cache; write OUTDIR/index.json plus one JSON assertion
      report per run (all with stable content hashes), and exit 3 if
      any run fails.

CACHING (single, diff, export, sweep, baseline):
  --cache DIR      memoize content-addressed analysis results — per-
                   trace NLR folds and mined attribute sets — in DIR
                   (created if absent). Grid cells sharing a filter
                   reuse each other's folds within one sweep, and later
                   invocations over unchanged traces hit from disk.
                   Entries are keyed by a stable digest of trace
                   content + parameters and stamped with the cache
                   format version; corrupted, truncated, or stale
                   entries are silently re-derived. The cache is
                   observational: output is byte-identical with or
                   without it, at any thread count.

PROFILING (lint, hbcheck, racecheck, reqcheck, diff, single, export, sweep,
           baseline):
  --profile        print a per-stage wall-time and counter table to
                   stderr after the run, including per-worker busy
                   times for the parallel stages.
  --metrics FILE   write the same data as one machine-readable JSON
                   document (schema `difftrace-metrics/v1`, see
                   DESIGN.md). One document per invocation.
  Instrumentation is observational only: the analysis output on stdout
  is byte-identical with or without it, at any thread count.

CODES:
  filter   <r><p>.<class>*.K<k>  e.g. 11.mpiall.K10, 01.mem.ompcrit.K10,
           classes: all mpiall mpicol mpisr mpiint omp ompcrit mem net poll str
           cust:<regex>
  attrs    sing|doub|ctxt . actual|log10|noFreq
  linkage  single complete average weighted centroid median ward

EXIT CODES:
  0  success
  2  error (bad arguments, unreadable input, corrupt baseline bundle, …)
  3  gate denied: `--gate deny` / `--hb deny` / `--race deny` /
     `--req deny` found error-severity diagnostics, or `baseline
     check` failed a policy clause
";

pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    match args.first().map(|s| s.as_str()) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print!("{HELP}");
            Ok(())
        }
        Some("demo") => demo(&args[1..]).map_err(CliError::Msg),
        Some("info") => info(&args[1..]).map_err(CliError::Msg),
        Some("filters") => filters(&args[1..]).map_err(CliError::Msg),
        Some("single") => single(&args[1..]).map_err(CliError::Msg),
        Some("export") => export(&args[1..]).map_err(CliError::Msg),
        Some("lint") => lint_cmd(&args[1..]),
        Some("hbcheck") => hbcheck_cmd(&args[1..]),
        Some("racecheck") => racecheck_cmd(&args[1..]),
        Some("reqcheck") => reqcheck_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        Some("fleet") => fleet_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]).map_err(CliError::Msg),
        Some("query") => query_cmd(&args[1..]),
        Some("sweep") => sweep_cmd(&args[1..]).map_err(CliError::Msg),
        Some("cache") => cache_cmd(&args[1..]).map_err(CliError::Msg),
        Some("baseline") => baseline_cmd(&args[1..]),
        Some(other) => Err(CliError::Msg(format!(
            "unknown command `{other}` (try `difftrace help`)"
        ))),
    }
}

fn demo(args: &[String]) -> Result<(), String> {
    let mut seen = Seen::new("demo");
    let mut force = false;
    let mut positional = Vec::new();
    for a in args {
        match a.as_str() {
            "--force" => {
                seen.check("--force")?;
                force = true;
            }
            other if other.starts_with("--") => return Err(unknown_option(other, "demo")),
            other => positional.push(other.to_string()),
        }
    }
    let [workload, outdir] = positional.as_slice() else {
        return Err(usage_of("demo").to_string());
    };
    if matches!(workload.as_str(), "fleet-oddeven" | "fleet-stencil") {
        return demo_fleet(workload, outdir, force);
    }
    let out = PathBuf::from(outdir);
    let np = out.join("normal.dtts");
    let fp = out.join("faulty.dtts");
    if !force {
        let existing: Vec<String> = [&np, &fp]
            .into_iter()
            .filter(|p| p.exists())
            .map(|p| p.display().to_string())
            .collect();
        if !existing.is_empty() {
            return Err(format!(
                "refusing to overwrite {} (pass --force to replace the pair)",
                existing.join(" and ")
            ));
        }
    }
    let registry = Arc::new(FunctionRegistry::new());
    let ((normal, normal_hb), (faulty, faulty_hb)) = run_demo_pair(workload, &registry)?;
    std::fs::create_dir_all(outdir).map_err(|e| format!("creating {outdir}: {e}"))?;
    store::save_full(&normal, &normal_hb, &np).map_err(|e| e.to_string())?;
    store::save_full(&faulty, &faulty_hb, &fp).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} traces) and {} ({} traces)",
        np.display(),
        normal.len(),
        fp.display(),
        faulty.len()
    );
    Ok(())
}

/// `demo fleet-*`: write an N-run corpus — healthy runs plus one
/// injected fault, each under its run name — instead of the
/// normal/faulty pair the other workloads produce.
fn demo_fleet(workload: &str, outdir: &str, force: bool) -> Result<(), String> {
    const HEALTHY: usize = 8;
    let fleet = match workload {
        "fleet-oddeven" => workloads::oddeven_fleet(HEALTHY),
        "fleet-stencil" => workloads::stencil_fleet(HEALTHY),
        _ => unreachable!("caller matched the fleet workloads"),
    };
    let out = PathBuf::from(outdir);
    let paths: Vec<PathBuf> = fleet
        .iter()
        .map(|(name, _)| out.join(format!("{name}.dtts")))
        .collect();
    if !force {
        let existing: Vec<String> = paths
            .iter()
            .filter(|p| p.exists())
            .map(|p| p.display().to_string())
            .collect();
        if !existing.is_empty() {
            return Err(format!(
                "refusing to overwrite {} (pass --force to replace the fleet)",
                existing.join(" and ")
            ));
        }
    }
    std::fs::create_dir_all(outdir).map_err(|e| format!("creating {outdir}: {e}"))?;
    for ((_, run), path) in fleet.iter().zip(&paths) {
        store::save_full(&run.traces, &run.hb, path).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {} runs ({} traces each) to {outdir}: {}",
        fleet.len(),
        fleet[0].1.traces.len(),
        fleet
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

/// One recorded execution: its traces plus its happens-before log.
type RecordedRun = (TraceSet, HbLog);

fn run_demo_pair(
    workload: &str,
    registry: &Arc<FunctionRegistry>,
) -> Result<(RecordedRun, RecordedRun), String> {
    use workloads::*;
    let pair = |n: RunOutcome, f: RunOutcome| Ok(((n.traces, n.hb), (f.traces, f.hb)));
    match workload {
        "oddeven" => pair(
            run_oddeven(&OddEvenConfig::paper(None), registry.clone()),
            run_oddeven(
                &OddEvenConfig::paper(Some(OddEvenConfig::swap_bug())),
                registry.clone(),
            ),
        ),
        "oddeven-dl" => pair(
            run_oddeven(&OddEvenConfig::paper(None), registry.clone()),
            run_oddeven(
                &OddEvenConfig::paper(Some(OddEvenConfig::dl_bug())),
                registry.clone(),
            ),
        ),
        "ilcs-crit" => pair(
            run_ilcs(&IlcsConfig::paper(None), registry.clone()),
            run_ilcs(
                &IlcsConfig::paper(Some(IlcsConfig::omp_crit_bug())),
                registry.clone(),
            ),
        ),
        "ilcs-size" => pair(
            run_ilcs(&IlcsConfig::paper(None), registry.clone()),
            run_ilcs(
                &IlcsConfig::paper(Some(IlcsConfig::coll_size_bug())),
                registry.clone(),
            ),
        ),
        "ilcs-op" => pair(
            run_ilcs(&IlcsConfig::paper(None), registry.clone()),
            run_ilcs(
                &IlcsConfig::paper(Some(IlcsConfig::wrong_op_bug())),
                registry.clone(),
            ),
        ),
        "lulesh" => pair(
            run_lulesh(&LuleshConfig::paper(None), registry.clone()),
            run_lulesh(
                &LuleshConfig::paper(Some(LuleshConfig::skip_bug())),
                registry.clone(),
            ),
        ),
        "stencil-tag" => pair(
            run_stencil(&StencilConfig::default_8(), registry.clone()).0,
            run_stencil(
                &StencilConfig {
                    fault: Some(StencilFault::TagMismatch { rank: 1 }),
                    ..StencilConfig::default_8()
                },
                registry.clone(),
            )
            .0,
        ),
        "lulesh-coll" => pair(
            run_lulesh(&LuleshConfig::paper(None), registry.clone()),
            run_lulesh(
                &LuleshConfig::paper(Some(LuleshFault::SkipCollective { rank: 2 })),
                registry.clone(),
            ),
        ),
        "omp-counter" => pair(
            run_omp_counter(&OmpCounterConfig::default_2x4(), registry.clone()),
            run_omp_counter(
                &OmpCounterConfig {
                    fault: Some(OmpCounterFault::Unprotected { rank: 1 }),
                    ..OmpCounterConfig::default_2x4()
                },
                registry.clone(),
            ),
        ),
        "omp-lockorder" => pair(
            run_omp_lockorder(&OmpLockOrderConfig::default_2x3(), registry.clone()),
            run_omp_lockorder(
                &OmpLockOrderConfig {
                    fault: Some(OmpLockOrderFault::Inverted { rank: 0, thread: 2 }),
                    ..OmpLockOrderConfig::default_2x3()
                },
                registry.clone(),
            ),
        ),
        "isend-leak" => pair(
            run_reqlife(&ReqLifeConfig::default_4(), registry.clone()),
            run_reqlife(
                &ReqLifeConfig {
                    fault: Some(ReqLifeFault::LeakRequest { rank: 2, iter: 1 }),
                    ..ReqLifeConfig::default_4()
                },
                registry.clone(),
            ),
        ),
        "coll-args" => pair(
            run_reqlife(&ReqLifeConfig::default_4(), registry.clone()),
            run_reqlife(
                &ReqLifeConfig {
                    fault: Some(ReqLifeFault::MismatchedCollArgs { rank: 1 }),
                    ..ReqLifeConfig::default_4()
                },
                registry.clone(),
            ),
        ),
        other => Err(format!(
            "unknown workload `{other}` (oddeven, oddeven-dl, ilcs-crit, ilcs-size, ilcs-op, \
             lulesh, stencil-tag, lulesh-coll, omp-counter, omp-lockorder, isend-leak, coll-args, \
             fleet-oddeven, fleet-stencil)"
        )),
    }
}

fn load(path: &str) -> Result<TraceSet, String> {
    store::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

/// Load ONE trace from a store via the v3 offset index: the rest of
/// the file's blobs are never decompressed. The store reports its
/// decode tally (`store_trace_decodes`) into `rec`, which is how the
/// laziness is asserted under `--metrics`.
fn load_one_trace(path: &str, id: TraceId, rec: &dyn Recorder) -> Result<TraceSet, String> {
    let ix = store::IndexedSet::open(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let sub = ix.subset(&[id]).map_err(|e| format!("{path}: {e}"))?;
    ix.report_to(rec);
    Ok(sub)
}

/// Write a CLI output file through the store's temp+rename helper, so
/// no reader ever observes a partial file and a failed write leaves
/// nothing behind at the destination. Every file this tool emits —
/// metrics documents, export artifacts, baseline bundles, batch
/// reports — goes through here.
fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    store::write_atomic(path, bytes).map_err(|e| match e {
        // Callers prefix their own context; keep the raw OS error so
        // the message reads like the plain `fs::write` one did.
        store::StoreError::Io(io) => io.to_string(),
        other => other.to_string(),
    })
}

/// Open the persistent analysis cache when `--cache DIR` was given.
fn open_cache(dir: Option<&PathBuf>) -> Result<Option<Arc<Cache>>, String> {
    match dir {
        None => Ok(None),
        Some(d) => Cache::with_dir(d)
            .map(|c| Some(Arc::new(c)))
            .map_err(|e| format!("opening cache {}: {e}", d.display())),
    }
}

/// Fold the cache's hit/miss/byte counters into the metrics recorder,
/// so `--profile`/`--metrics` describe the cache's contribution.
fn report_cache(cache: Option<&Arc<Cache>>, rec: &dyn Recorder) {
    if let Some(c) = cache {
        c.report_to(rec);
    }
}

fn cache_cmd(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(unknown_option(flag, "cache"));
    }
    let [action, dir] = args else {
        return Err(usage_of("cache").to_string());
    };
    let path = Path::new(dir.as_str());
    match action.as_str() {
        "stats" => {
            let s = dt_cache::disk_stats(path).map_err(|e| format!("{dir}: {e}"))?;
            println!(
                "cache {dir}: {} NLR fold(s), {} attribute set(s), {} bytes",
                s.nlr_entries, s.attr_entries, s.total_bytes
            );
            Ok(())
        }
        "clear" => {
            let n = dt_cache::clear_dir(path).map_err(|e| format!("{dir}: {e}"))?;
            println!("cache {dir}: removed {n} entries");
            Ok(())
        }
        other => Err(format!(
            "unknown cache action `{other}` ({})",
            usage_of("cache")
        )),
    }
}

fn load_full(path: &str) -> Result<(TraceSet, HbLog), String> {
    store::load_full(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn info(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(unknown_option(flag, "info"));
    }
    let [path] = args else {
        return Err(usage_of("info").to_string());
    };
    let set = load(path)?;
    let stats = TraceSetStats::measure(&set);
    println!(
        "{path}: {} traces, {} functions interned",
        set.len(),
        set.registry.len()
    );
    println!(
        "calls/process avg {:.0}   distinct fns/process avg {:.0}   compressed/thread avg {:.0} B   ratio {:.0}×",
        stats.avg_calls_per_process(),
        stats.avg_distinct_per_process(),
        stats.avg_compressed_bytes_per_thread(),
        stats.overall_ratio()
    );
    for t in &stats.per_trace {
        println!(
            "  {:>6}  events {:>8}  calls {:>8}  distinct {:>5}  compressed {:>7} B{}",
            t.id.to_string(),
            t.events,
            t.calls,
            t.distinct_functions,
            t.compression.compressed_bytes,
            if set.get(t.id).is_some_and(|tr| tr.truncated) {
                "  [truncated]"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn filters(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(unknown_option(flag, "filters"));
    }
    let [path] = args else {
        return Err(usage_of("filters").to_string());
    };
    let set = load(path)?;
    println!(
        "{:<18} {:<24} {:>10} {:>8} {:>9}",
        "Filter", "code", "kept", "of", "distinct"
    );
    for (name, f) in difftrace::filter::table_i_catalog(10) {
        let c = f.coverage(&set);
        println!(
            "{:<18} {:<24} {:>10} {:>7.1}% {:>9}",
            name,
            f.to_string(),
            c.kept_events,
            100.0 * c.fraction(),
            c.distinct_kept
        );
    }
    Ok(())
}

fn single(args: &[String]) -> Result<(), String> {
    let mut seen = Seen::new("single");
    let mut path: Option<String> = None;
    let mut filter = FilterConfig::everything(10);
    let mut attrs = AttrConfig {
        kind: AttrKind::Single,
        freq: FreqMode::Actual,
    };
    let mut k = 0usize;
    let mut trace: Option<TraceId> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--filter" => {
                seen.check("--filter")?;
                filter = value("--filter")?.parse()?;
            }
            "--attrs" => {
                seen.check("--attrs")?;
                attrs = value("--attrs")?.parse()?;
            }
            "--k" => {
                seen.check("--k")?;
                k = value("--k")?.parse().map_err(|_| "bad --k")?;
            }
            "--trace" => {
                seen.check("--trace")?;
                trace = Some(dt_serve::render::parse_trace_id(&value("--trace")?)?);
            }
            "--cache" => {
                seen.check("--cache")?;
                cache_dir = Some(PathBuf::from(value("--cache")?));
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => return Err(unknown_option(other, "single")),
            other => {
                if path.is_some() {
                    return Err(format!(
                        "unexpected extra argument `{other}` ({})",
                        usage_of("single")
                    ));
                }
                path = Some(other.to_string());
            }
        }
    }
    let path = path.ok_or_else(|| usage_of("single").to_string())?;
    let cache = open_cache(cache_dir.as_ref())?;
    let live = MetricsRecorder::new();
    let rec = obs.recorder(&live);
    let set = {
        let _s = stage(rec, "load");
        match trace {
            None => load(&path)?,
            Some(id) => load_one_trace(&path, id, rec)?,
        }
    };
    let params = difftrace::Params::new(filter, attrs);
    let popts = PipelineOptions {
        cache: cache.clone(),
        ..PipelineOptions::default()
    };
    let report = difftrace::analyze_single_opts_rec(&set, &params, k, &popts, rec);
    // Shared with `difftrace serve`, whose replies must be
    // byte-identical to this stdout.
    print!("{}", dt_serve::render::single_summary(set.len(), &report));
    report_cache(cache.as_ref(), rec);
    obs.emit(&live, "single", 1)?;
    Ok(())
}

fn lint_cmd(args: &[String]) -> Result<(), CliError> {
    let mut seen = Seen::new("lint");
    let mut paths = Vec::new();
    let mut format = "text".to_string();
    let mut gate = LintGate::Warn;
    let mut trace: Option<TraceId> = None;
    let mut opts = LintOptions::default();
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--format" => {
                seen.check("--format")?;
                format = value("--format")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}` (text|json)").into());
                }
            }
            "--gate" => {
                seen.check("--gate")?;
                gate = LintGate::parse(&value("--gate")?)?;
            }
            "--domain" => {
                seen.check("--domain")?;
                opts.domain = LintDomain::parse(&value("--domain")?)?;
            }
            "--deep" => {
                seen.check("--deep")?;
                opts.deep = true;
            }
            "--threads" => {
                seen.check("--threads")?;
                opts.threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            // Lenient on purpose: a bad custom pattern must surface as
            // a TL004 diagnostic with a byte span, not an arg error.
            "--filter" => {
                seen.check("--filter")?;
                opts.filter = Some(FilterConfig::parse_lenient(&value("--filter")?)?);
            }
            "--trace" => {
                seen.check("--trace")?;
                trace = Some(dt_serve::render::parse_trace_id(&value("--trace")?)?);
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => return Err(unknown_option(other, "lint").into()),
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return Err(usage_of("lint").to_string().into());
    }
    let live = MetricsRecorder::new();
    let (rendered, errors) = lint_render(&paths, &format, &opts, trace, obs.recorder(&live))?;
    print!("{rendered}");
    obs.emit(&live, "lint", opts.threads.max(1))?;
    if gate == LintGate::Deny && errors > 0 {
        return Err(CliError::LintDenied(format!(
            "lint gate denied: {errors} error(s) across {} file(s)",
            paths.len()
        )));
    }
    Ok(())
}

/// Render lint reports for `paths` — split out from [`lint_cmd`] so
/// tests can assert the output is byte-identical across thread counts.
/// Returns the rendered output and the total error count. With `trace`
/// set, each file is opened through the v3 offset index and ONLY that
/// trace is decoded (the decode tally lands in the metrics as
/// `store_trace_decodes`).
fn lint_render(
    paths: &[String],
    format: &str,
    opts: &LintOptions,
    trace: Option<TraceId>,
    rec: &dyn Recorder,
) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut errors = 0;
    for path in paths {
        let set = {
            let _s = stage(rec, "load");
            match trace {
                None => load(path)?,
                Some(id) => load_one_trace(path, id, rec)?,
            }
        };
        let report = {
            let _s = stage(rec, "lint");
            lint_set(&set, opts)
        };
        if rec.enabled() {
            rec.add("files", 1);
            rec.add("diagnostics", report.diagnostics().len() as u64);
            rec.add("errors", report.error_count() as u64);
        }
        errors += report.error_count();
        if format == "json" {
            if paths.len() == 1 {
                out.push_str(&report.render_json());
            } else {
                // One object per line, tagged with its file.
                out.push_str(&format!(
                    "{{\"path\":\"{}\",\"report\":{}}}\n",
                    path.replace('\\', "\\\\").replace('"', "\\\""),
                    report.render_json().trim_end()
                ));
            }
        } else {
            if paths.len() > 1 {
                out.push_str(&format!("== {path}\n"));
            }
            out.push_str(&report.render_text());
        }
    }
    Ok((out, errors))
}

fn hbcheck_cmd(args: &[String]) -> Result<(), CliError> {
    let mut seen = Seen::new("hbcheck");
    let mut paths = Vec::new();
    let mut format = "text".to_string();
    let mut gate = LintGate::Warn;
    let mut opts = HbOptions::default();
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--format" => {
                seen.check("--format")?;
                format = value("--format")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}` (text|json)").into());
                }
            }
            "--gate" => {
                seen.check("--gate")?;
                gate = LintGate::parse(&value("--gate")?)?;
            }
            "--domain" => {
                seen.check("--domain")?;
                opts.domain = LintDomain::parse(&value("--domain")?)?;
            }
            "--threads" => {
                seen.check("--threads")?;
                opts.threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => return Err(unknown_option(other, "hbcheck").into()),
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return Err(usage_of("hbcheck").to_string().into());
    }
    let live = MetricsRecorder::new();
    let (rendered, errors) = hbcheck_render(&paths, &format, &opts, obs.recorder(&live))?;
    print!("{rendered}");
    obs.emit(&live, "hbcheck", opts.threads.max(1))?;
    if gate == LintGate::Deny && errors > 0 {
        return Err(CliError::LintDenied(format!(
            "hbcheck gate denied: {errors} error(s) across {} file(s)",
            paths.len()
        )));
    }
    Ok(())
}

/// Render hbcheck reports for `paths` — split out from [`hbcheck_cmd`]
/// so tests can assert the output is byte-identical across thread
/// counts and domains. Returns the rendered output and the total error
/// count.
fn hbcheck_render(
    paths: &[String],
    format: &str,
    opts: &HbOptions,
    rec: &dyn Recorder,
) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut errors = 0;
    for path in paths {
        let (set, hb) = {
            let _s = stage(rec, "load");
            load_full(path)?
        };
        if hb.world_size() == 0 {
            return Err(format!(
                "{path}: no happens-before section — re-record the run (e.g. `difftrace demo`) \
                 to get one"
            ));
        }
        let report = {
            let _s = stage(rec, "hbcheck");
            hbcheck_set(&set, &hb, opts)
        };
        if rec.enabled() {
            rec.add("files", 1);
            rec.add("diagnostics", report.diagnostics().len() as u64);
            rec.add("errors", report.error_count() as u64);
        }
        errors += report.error_count();
        if format == "json" {
            if paths.len() == 1 {
                out.push_str(&report.render_json());
            } else {
                out.push_str(&format!(
                    "{{\"path\":\"{}\",\"report\":{}}}\n",
                    path.replace('\\', "\\\\").replace('"', "\\\""),
                    report.render_json().trim_end()
                ));
            }
        } else {
            if paths.len() > 1 {
                out.push_str(&format!("== {path}\n"));
            }
            out.push_str(&report.render_text());
        }
    }
    Ok((out, errors))
}

fn racecheck_cmd(args: &[String]) -> Result<(), CliError> {
    let mut seen = Seen::new("racecheck");
    let mut paths = Vec::new();
    let mut format = "text".to_string();
    let mut gate = LintGate::Warn;
    let mut opts = RaceOptions::default();
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--format" => {
                seen.check("--format")?;
                format = value("--format")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}` (text|json)").into());
                }
            }
            "--gate" => {
                seen.check("--gate")?;
                gate = LintGate::parse(&value("--gate")?)?;
            }
            "--domain" => {
                seen.check("--domain")?;
                opts.domain = LintDomain::parse(&value("--domain")?)?;
            }
            "--threads" => {
                seen.check("--threads")?;
                opts.threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => {
                return Err(unknown_option(other, "racecheck").into())
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return Err(usage_of("racecheck").to_string().into());
    }
    let live = MetricsRecorder::new();
    let (rendered, errors) = racecheck_render(&paths, &format, &opts, obs.recorder(&live))?;
    print!("{rendered}");
    obs.emit(&live, "racecheck", opts.threads.max(1))?;
    if gate == LintGate::Deny && errors > 0 {
        return Err(CliError::LintDenied(format!(
            "racecheck gate denied: {errors} error(s) across {} file(s)",
            paths.len()
        )));
    }
    Ok(())
}

/// Render racecheck reports for `paths` — split out from
/// [`racecheck_cmd`] so tests can assert the output is byte-identical
/// across thread counts and domains. Returns the rendered output and
/// the total error count.
fn racecheck_render(
    paths: &[String],
    format: &str,
    opts: &RaceOptions,
    rec: &dyn Recorder,
) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut errors = 0;
    for path in paths {
        let set = {
            let _s = stage(rec, "load");
            load(path)?
        };
        let report = {
            let _s = stage(rec, "racecheck");
            racecheck_set(&set, opts)
        };
        if rec.enabled() {
            rec.add("files", 1);
            rec.add("diagnostics", report.diagnostics().len() as u64);
            rec.add("errors", report.error_count() as u64);
        }
        errors += report.error_count();
        if format == "json" {
            if paths.len() == 1 {
                out.push_str(&report.render_json());
            } else {
                out.push_str(&format!(
                    "{{\"path\":\"{}\",\"report\":{}}}\n",
                    path.replace('\\', "\\\\").replace('"', "\\\""),
                    report.render_json().trim_end()
                ));
            }
        } else {
            if paths.len() > 1 {
                out.push_str(&format!("== {path}\n"));
            }
            out.push_str(&report.render_text());
        }
    }
    Ok((out, errors))
}

fn reqcheck_cmd(args: &[String]) -> Result<(), CliError> {
    let mut seen = Seen::new("reqcheck");
    let mut paths = Vec::new();
    let mut format = "text".to_string();
    let mut gate = LintGate::Warn;
    let mut opts = ReqOptions::default();
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--format" => {
                seen.check("--format")?;
                format = value("--format")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}` (text|json)").into());
                }
            }
            "--gate" => {
                seen.check("--gate")?;
                gate = LintGate::parse(&value("--gate")?)?;
            }
            "--domain" => {
                seen.check("--domain")?;
                opts.domain = LintDomain::parse(&value("--domain")?)?;
            }
            "--threads" => {
                seen.check("--threads")?;
                opts.threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => {
                return Err(unknown_option(other, "reqcheck").into())
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        return Err(usage_of("reqcheck").to_string().into());
    }
    let live = MetricsRecorder::new();
    let (rendered, errors) = reqcheck_render(&paths, &format, &opts, obs.recorder(&live))?;
    print!("{rendered}");
    obs.emit(&live, "reqcheck", opts.threads.max(1))?;
    if gate == LintGate::Deny && errors > 0 {
        return Err(CliError::LintDenied(format!(
            "reqcheck gate denied: {errors} error(s) across {} file(s)",
            paths.len()
        )));
    }
    Ok(())
}

/// Render reqcheck reports for `paths` — split out from
/// [`reqcheck_cmd`] so tests can assert the output is byte-identical
/// across thread counts and domains. Returns the rendered output and
/// the total error count.
fn reqcheck_render(
    paths: &[String],
    format: &str,
    opts: &ReqOptions,
    rec: &dyn Recorder,
) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut errors = 0;
    for path in paths {
        let set = {
            let _s = stage(rec, "load");
            load(path)?
        };
        let report = {
            let _s = stage(rec, "reqcheck");
            reqcheck_set_rec(&set, opts, rec)
        };
        if rec.enabled() {
            rec.add("files", 1);
            rec.add("diagnostics", report.diagnostics().len() as u64);
            rec.add("errors", report.error_count() as u64);
        }
        errors += report.error_count();
        if format == "json" {
            if paths.len() == 1 {
                out.push_str(&report.render_json());
            } else {
                out.push_str(&format!(
                    "{{\"path\":\"{}\",\"report\":{}}}\n",
                    path.replace('\\', "\\\\").replace('"', "\\\""),
                    report.render_json().trim_end()
                ));
            }
        } else {
            if paths.len() > 1 {
                out.push_str(&format!("== {path}\n"));
            }
            out.push_str(&report.render_text());
        }
    }
    Ok((out, errors))
}

struct DiffOpts {
    normal: String,
    faulty: String,
    filters: Vec<FilterConfig>,
    attrs: Vec<AttrConfig>,
    linkage: cluster::Method,
    diffnlr: Option<TraceId>,
    jobs: usize,
    threads: usize,
    full: bool,
    gate: LintGate,
    hb: LintGate,
    race: LintGate,
    req: LintGate,
    cache: Option<PathBuf>,
    obs: ObsOpts,
}

fn parse_opts(args: &[String], cmd: &str) -> Result<DiffOpts, String> {
    let mut seen = Seen::new(cmd);
    // Only sweep's grid axes are repeatable; everywhere else a repeated
    // flag is a mistake, not a list.
    let repeatable_axes = cmd == "sweep";
    let mut positional = Vec::new();
    let mut filters = Vec::new();
    let mut attrs = Vec::new();
    let mut linkage = cluster::Method::Ward;
    let mut diffnlr = None;
    let mut jobs = 0usize;
    let mut threads = 0usize;
    let mut full = false;
    let mut gate = LintGate::Off;
    let mut hb = LintGate::Off;
    let mut race = LintGate::Off;
    let mut req = LintGate::Off;
    let mut cache = None;
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--filter" => {
                if !repeatable_axes {
                    seen.check("--filter")?;
                }
                filters.push(value("--filter")?.parse::<FilterConfig>()?);
            }
            "--attrs" => {
                if !repeatable_axes {
                    seen.check("--attrs")?;
                }
                attrs.push(value("--attrs")?.parse::<AttrConfig>()?);
            }
            "--linkage" => {
                seen.check("--linkage")?;
                let name = value("--linkage")?;
                linkage = cluster::Method::ALL
                    .into_iter()
                    .find(|m| m.name() == name)
                    .ok_or_else(|| format!("unknown linkage `{name}`"))?;
            }
            "--diffnlr" => {
                seen.check("--diffnlr")?;
                let spec = value("--diffnlr")?;
                let (p, t) = spec
                    .split_once('.')
                    .ok_or_else(|| format!("--diffnlr wants P.T, got `{spec}`"))?;
                diffnlr = Some(TraceId::new(
                    p.parse().map_err(|_| "bad process id")?,
                    t.parse().map_err(|_| "bad thread id")?,
                ));
            }
            "--jobs" => {
                seen.check("--jobs")?;
                jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
            }
            "--threads" => {
                seen.check("--threads")?;
                threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--full" => {
                seen.check("--full")?;
                full = true;
            }
            "--gate" => {
                seen.check("--gate")?;
                gate = LintGate::parse(&value("--gate")?)?;
            }
            "--hb" => {
                seen.check("--hb")?;
                hb = LintGate::parse(&value("--hb")?)?;
            }
            "--race" => {
                seen.check("--race")?;
                race = LintGate::parse(&value("--race")?)?;
            }
            "--req" => {
                seen.check("--req")?;
                req = LintGate::parse(&value("--req")?)?;
            }
            "--cache" => {
                seen.check("--cache")?;
                cache = Some(PathBuf::from(value("--cache")?));
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => return Err(unknown_option(other, cmd)),
            other => positional.push(other.to_string()),
        }
    }
    let [normal, faulty] = positional.as_slice() else {
        return Err(usage_of(cmd).to_string());
    };
    Ok(DiffOpts {
        normal: normal.clone(),
        faulty: faulty.clone(),
        filters,
        attrs,
        linkage,
        diffnlr,
        jobs,
        threads,
        full,
        gate,
        hb,
        race,
        req,
        cache,
        obs,
    })
}

fn diff_cmd(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args, "diff")?;
    let cache = open_cache(opts.cache.as_ref())?;
    let live = MetricsRecorder::new();
    let rec = opts.obs.recorder(&live);
    let (normal, normal_hb) = {
        let _s = stage(rec, "load");
        load_full(&opts.normal)?
    };
    let (faulty, faulty_hb) = {
        let _s = stage(rec, "load");
        load_full(&opts.faulty)?
    };
    let filter = opts
        .filters
        .into_iter()
        .next()
        .unwrap_or_else(|| FilterConfig::everything(10));
    let attrs = opts.attrs.into_iter().next().unwrap_or(AttrConfig {
        kind: AttrKind::Single,
        freq: FreqMode::Actual,
    });
    let params = Params {
        filter,
        attrs,
        linkage: opts.linkage,
    };
    let hb_logs = if opts.hb != LintGate::Off {
        if normal_hb.world_size() == 0 || faulty_hb.world_size() == 0 {
            eprintln!("note: --hb ignored — the inputs carry no happens-before section");
            None
        } else {
            Some((&normal_hb, &faulty_hb))
        }
    } else {
        None
    };
    let d = match try_diff_runs_hb_rec(
        &normal,
        &faulty,
        hb_logs,
        &params,
        &PipelineOptions {
            threads: opts.threads,
            lint: opts.gate,
            hb: opts.hb,
            race: opts.race,
            req: opts.req,
            cache: cache.clone(),
        },
        rec,
    ) {
        Ok(d) => d,
        Err(DiffDenied::Lint(fail)) => {
            eprint!("lint (normal):\n{}", fail.normal.render_text());
            eprint!("lint (faulty):\n{}", fail.faulty.render_text());
            // The metrics still describe the work that ran (load + the
            // pre-pass that denied).
            opts.obs.emit(&live, "diff", opts.threads)?;
            return Err(CliError::LintDenied(fail.to_string()));
        }
        Err(DiffDenied::Hb(fail)) => {
            eprint!("hbcheck (normal):\n{}", fail.normal.render_text());
            eprint!("hbcheck (faulty):\n{}", fail.faulty.render_text());
            opts.obs.emit(&live, "diff", opts.threads)?;
            return Err(CliError::LintDenied(fail.to_string()));
        }
        Err(DiffDenied::Race(fail)) => {
            eprint!("racecheck (normal):\n{}", fail.normal.render_text());
            eprint!("racecheck (faulty):\n{}", fail.faulty.render_text());
            opts.obs.emit(&live, "diff", opts.threads)?;
            return Err(CliError::LintDenied(fail.to_string()));
        }
        Err(DiffDenied::Req(fail)) => {
            eprint!("reqcheck (normal):\n{}", fail.normal.render_text());
            eprint!("reqcheck (faulty):\n{}", fail.faulty.render_text());
            opts.obs.emit(&live, "diff", opts.threads)?;
            return Err(CliError::LintDenied(fail.to_string()));
        }
    };
    report_cache(cache.as_ref(), rec);
    if let Some((n, f)) = &d.lint {
        if !n.is_clean() || !f.is_clean() {
            eprint!("lint (normal):\n{}", n.render_text());
            eprint!("lint (faulty):\n{}", f.render_text());
        }
    }
    if let Some(pre) = &d.hb {
        if !pre.normal.is_clean() || !pre.faulty.is_clean() {
            eprint!("hbcheck (normal):\n{}", pre.normal.render_text());
            eprint!("hbcheck (faulty):\n{}", pre.faulty.render_text());
        }
    }
    if let Some(pre) = &d.race {
        if !pre.normal.is_clean() || !pre.faulty.is_clean() {
            eprint!("racecheck (normal):\n{}", pre.normal.render_text());
            eprint!("racecheck (faulty):\n{}", pre.faulty.render_text());
        }
    }
    if let Some(pre) = &d.req {
        if !pre.normal.is_clean() || !pre.faulty.is_clean() {
            eprint!("reqcheck (normal):\n{}", pre.normal.render_text());
            eprint!("reqcheck (faulty):\n{}", pre.faulty.render_text());
        }
    }
    if opts.full {
        print!(
            "{}",
            difftrace::generate_report(&d, &difftrace::ReportOptions::default())
        );
        opts.obs.emit(&live, "diff", opts.threads)?;
        return Ok(());
    }
    // Shared with `difftrace serve`, whose replies must be
    // byte-identical to this stdout.
    print!(
        "{}",
        dt_serve::render::diff_summary(&d, &params, opts.diffnlr)
    );
    opts.obs.emit(&live, "diff", opts.threads)?;
    Ok(())
}

/// Derive unique corpus/run names from file stems. A collision
/// (`a/run.dtts b/run.dtts`) is a diagnosed error naming BOTH paths —
/// silently keeping one would make queries against the name ambiguous.
fn named_by_stem(files: &[String]) -> Result<Vec<(String, PathBuf)>, String> {
    let mut named: Vec<(String, PathBuf)> = Vec::new();
    for f in files {
        let p = PathBuf::from(f);
        let stem = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .ok_or_else(|| format!("{f}: cannot derive a corpus name from this path"))?;
        if let Some((_, prev)) = named.iter().find(|(n, _)| *n == stem) {
            return Err(format!(
                "corpus name `{stem}` is ambiguous: {} and {} share a file stem \
                 (rename one of the files)",
                prev.display(),
                p.display()
            ));
        }
        named.push((stem, p));
    }
    Ok(named)
}

/// Expand `fleet` positionals: a directory contributes its `*.dtts`
/// stores in name order, anything else is taken as a store path.
fn expand_fleet_paths(positional: &[String]) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for arg in positional {
        let path = Path::new(arg);
        if path.is_dir() {
            let mut found: Vec<String> = std::fs::read_dir(path)
                .map_err(|e| format!("{arg}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "dtts"))
                .map(|p| p.display().to_string())
                .collect();
            if found.is_empty() {
                return Err(format!("{arg}: directory holds no .dtts stores"));
            }
            found.sort();
            files.extend(found);
        } else {
            files.push(arg.clone());
        }
    }
    Ok(files)
}

fn fleet_cmd(args: &[String]) -> Result<(), CliError> {
    let mut seen = Seen::new("fleet");
    let mut positional = Vec::new();
    let mut suspect: Option<String> = None;
    let mut filter: Option<FilterConfig> = None;
    let mut attrs: Option<AttrConfig> = None;
    let mut linkage = cluster::Method::Ward;
    let mut threads = 0usize;
    let mut format = "text".to_string();
    let mut gate = LintGate::Off;
    let mut cache_dir: Option<PathBuf> = None;
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--suspect" => {
                seen.check("--suspect")?;
                suspect = Some(value("--suspect")?);
            }
            "--filter" => {
                seen.check("--filter")?;
                filter = Some(value("--filter")?.parse::<FilterConfig>()?);
            }
            "--attrs" => {
                seen.check("--attrs")?;
                attrs = Some(value("--attrs")?.parse::<AttrConfig>()?);
            }
            "--linkage" => {
                seen.check("--linkage")?;
                let name = value("--linkage")?;
                linkage = cluster::Method::ALL
                    .into_iter()
                    .find(|m| m.name() == name)
                    .ok_or_else(|| format!("unknown linkage `{name}`"))?;
            }
            "--threads" => {
                seen.check("--threads")?;
                threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--format" => {
                seen.check("--format")?;
                format = value("--format")?;
            }
            "--gate" => {
                seen.check("--gate")?;
                gate = LintGate::parse(&value("--gate")?)?;
            }
            "--cache" => {
                seen.check("--cache")?;
                cache_dir = Some(PathBuf::from(value("--cache")?));
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => return Err(unknown_option(other, "fleet").into()),
            other => positional.push(other.to_string()),
        }
    }
    if positional.is_empty() {
        return Err(usage_of("fleet").to_string().into());
    }
    let files = expand_fleet_paths(&positional)?;
    if files.len() < 2 {
        return Err(format!(
            "fleet needs at least 2 runs, got {} ({})",
            files.len(),
            usage_of("fleet")
        )
        .into());
    }
    let named = named_by_stem(&files)?;
    let cache = open_cache(cache_dir.as_ref())?;
    let live = MetricsRecorder::new();
    let rec = obs.recorder(&live);
    let params = Params {
        filter: filter.unwrap_or_else(|| FilterConfig::everything(10)),
        attrs: attrs.unwrap_or(AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        }),
        linkage,
    };
    let opts = difftrace::FleetOptions {
        threads,
        cache: cache.clone(),
    };
    let mut fleet = difftrace::FleetRun::new(params.clone());
    for (name, path) in &named {
        let set = {
            let _s = stage(rec, "load");
            load(&path.display().to_string())?
        };
        fleet
            .add_run_rec(name, &set, &opts, rec)
            .map_err(|e| e.to_string())?;
    }
    report_cache(cache.as_ref(), rec);
    let report = fleet.report();
    // Shared with `difftrace serve`, whose `fleet` replies must be
    // byte-identical to this stdout.
    let out = dt_serve::render::fleet_summary(&report, &params, suspect.as_deref(), &format)?;
    print!("{out}");
    obs.emit(&live, "fleet", threads)?;
    if gate == LintGate::Deny {
        if let Some(name) = &report.outlier {
            return Err(CliError::LintDenied(format!(
                "fleet gate denied: run `{name}` deviates from the fleet consensus"
            )));
        }
    }
    Ok(())
}

fn serve_cmd(args: &[String]) -> Result<(), String> {
    let mut seen = Seen::new("serve");
    let mut files = Vec::new();
    let mut addr = "127.0.0.1:4178".to_string();
    let mut jobs = 0usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--addr" => {
                seen.check("--addr")?;
                addr = value("--addr")?;
            }
            "--jobs" => {
                seen.check("--jobs")?;
                jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
            }
            "--cache" => {
                seen.check("--cache")?;
                cache_dir = Some(PathBuf::from(value("--cache")?));
            }
            other if other.starts_with("--") => return Err(unknown_option(other, "serve")),
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        return Err(usage_of("serve").to_string());
    }
    let corpora = named_by_stem(&files)?;
    let server = dt_serve::Server::bind(&dt_serve::ServeConfig {
        addr,
        corpora,
        jobs,
        cache_dir,
    })?;
    println!(
        "listening on {} ({} corpora: {}; {} workers)",
        server.local_addr(),
        server.corpus_names().len(),
        server.corpus_names().join(", "),
        server.workers()
    );
    // Smoke scripts wait for the line above through a pipe; flush past
    // the block buffering a non-tty stdout gets.
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run()
}

fn query_cmd(args: &[String]) -> Result<(), CliError> {
    let mut seen = Seen::new("query");
    let mut positional = Vec::new();
    let mut gate = LintGate::Warn;
    let mut req = dt_serve::Request {
        id: 1,
        ..dt_serve::Request::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--format" => {
                seen.check("--format")?;
                req.format = Some(value("--format")?);
            }
            "--gate" => {
                seen.check("--gate")?;
                gate = LintGate::parse(&value("--gate")?)?;
            }
            "--domain" => {
                seen.check("--domain")?;
                req.domain = Some(value("--domain")?);
            }
            "--deep" => {
                seen.check("--deep")?;
                req.deep = true;
            }
            "--filter" => {
                seen.check("--filter")?;
                req.filter = Some(value("--filter")?);
            }
            "--attrs" => {
                seen.check("--attrs")?;
                req.attrs = Some(value("--attrs")?);
            }
            "--linkage" => {
                seen.check("--linkage")?;
                req.linkage = Some(value("--linkage")?);
            }
            "--k" => {
                seen.check("--k")?;
                req.k = Some(value("--k")?.parse().map_err(|_| "bad --k")?);
            }
            "--threads" => {
                seen.check("--threads")?;
                req.threads = Some(value("--threads")?.parse().map_err(|_| "bad --threads")?);
            }
            "--trace" => {
                seen.check("--trace")?;
                req.trace = Some(value("--trace")?);
            }
            "--diffnlr" => {
                seen.check("--diffnlr")?;
                req.diffnlr = Some(value("--diffnlr")?);
            }
            "--suspect" => {
                seen.check("--suspect")?;
                req.suspect = Some(value("--suspect")?);
            }
            "--full" => {
                seen.check("--full")?;
                req.full = true;
            }
            other if other.starts_with("--") => return Err(unknown_option(other, "query").into()),
            other => positional.push(other.to_string()),
        }
    }
    let (addr, cmd, rest) = match positional.as_slice() {
        [addr, cmd, rest @ ..] => (addr.clone(), cmd.clone(), rest.to_vec()),
        _ => return Err(usage_of("query").to_string().into()),
    };
    req.cmd = cmd.clone();
    match (cmd.as_str(), rest.as_slice()) {
        ("metrics" | "shutdown", []) => {}
        ("diff", [normal, faulty]) => {
            req.normal = Some(normal.clone());
            req.faulty = Some(faulty.clone());
        }
        ("fleet", runs @ [_, _, ..]) => {
            req.corpora = runs.to_vec();
        }
        ("lint" | "hbcheck" | "racecheck" | "reqcheck" | "single", [corpus]) => {
            req.corpus = Some(corpus.clone());
        }
        _ => {
            return Err(format!(
                "wrong arguments for query cmd `{cmd}` ({})",
                usage_of("query")
            )
            .into())
        }
    }
    let mut stream =
        std::net::TcpStream::connect(&addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    {
        use std::io::Write as _;
        writeln!(stream, "{}", dt_serve::request_line(&req))
            .and_then(|()| stream.flush())
            .map_err(|e| format!("sending query to {addr}: {e}"))?;
    }
    let mut reply = String::new();
    {
        use std::io::BufRead as _;
        let mut reader = std::io::BufReader::new(&stream);
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("reading reply from {addr}: {e}"))?;
    }
    if reply.is_empty() {
        return Err(format!("{addr}: connection closed before a reply arrived").into());
    }
    let resp = dt_serve::parse_response(reply.trim_end())?;
    if !resp.ok {
        return Err(CliError::Msg(resp.error));
    }
    print!("{}", resp.output);
    if gate == LintGate::Deny && resp.errors > 0 {
        return Err(CliError::LintDenied(format!(
            "query gate denied: {} error(s) from `{cmd}`",
            resp.errors
        )));
    }
    Ok(())
}

fn export(args: &[String]) -> Result<(), String> {
    let mut rest = Vec::new();
    let mut outdir = None;
    // Reuse the diff option parser by peeling off the third positional.
    let mut positional_seen = 0;
    for a in args {
        if !a.starts_with("--") && positional_seen == 2 && outdir.is_none() {
            outdir = Some(a.clone());
            continue;
        }
        if !a.starts_with("--")
            && rest
                .iter()
                .filter(|x: &&String| !x.starts_with("--"))
                .count()
                < 2
        {
            positional_seen += 1;
        }
        rest.push(a.clone());
    }
    let outdir = outdir.ok_or_else(|| usage_of("export").to_string())?;
    let opts = parse_opts(&rest, "export")?;
    let cache = open_cache(opts.cache.as_ref())?;
    let live = MetricsRecorder::new();
    let rec = opts.obs.recorder(&live);
    let normal = {
        let _s = stage(rec, "load");
        load(&opts.normal)?
    };
    let faulty = {
        let _s = stage(rec, "load");
        load(&opts.faulty)?
    };
    let params = difftrace::Params {
        filter: opts
            .filters
            .into_iter()
            .next()
            .unwrap_or_else(|| FilterConfig::everything(10)),
        attrs: opts.attrs.into_iter().next().unwrap_or(AttrConfig {
            kind: AttrKind::Single,
            freq: FreqMode::Actual,
        }),
        linkage: opts.linkage,
    };
    // Gates stay off for export (as before); with them off the
    // pipeline cannot deny.
    let Ok(d) = try_diff_runs_hb_rec(
        &normal,
        &faulty,
        None,
        &params,
        &PipelineOptions {
            cache: cache.clone(),
            ..PipelineOptions::with_threads(opts.threads)
        },
        rec,
    ) else {
        unreachable!("gates are off");
    };
    report_cache(cache.as_ref(), rec);
    let dir = PathBuf::from(&outdir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {outdir}: {e}"))?;
    let write = |name: &str, content: String| -> Result<(), String> {
        write_file_atomic(&dir.join(name), content.as_bytes()).map_err(|e| format!("{name}: {e}"))
    };
    for (tag, run) in [("normal", &d.normal), ("faulty", &d.faulty)] {
        write(
            &format!("{tag}.lattice.dot"),
            run.lattice.to_dot(&run.context),
        )?;
        let ids = run.ids.clone();
        write(
            &format!("{tag}.dendrogram.dot"),
            cluster::dendrogram_to_dot(&run.dendrogram, &|i| ids[i].to_string()),
        )?;
        write(&format!("{tag}.context.csv"), run.context.to_csv())?;
        write(&format!("{tag}.jsm.csv"), run.jsm.to_csv())?;
    }
    write("jsm_d.csv", d.jsm_d.to_csv())?;
    write(
        "report.txt",
        difftrace::generate_report(&d, &difftrace::ReportOptions::default()),
    )?;
    println!("wrote 10 artifacts to {outdir}");
    opts.obs.emit(&live, "export", opts.threads)?;
    Ok(())
}

fn sweep_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, "sweep")?;
    let cache = open_cache(opts.cache.as_ref())?;
    let live = MetricsRecorder::new();
    let rec = opts.obs.recorder(&live);
    let normal = {
        let _s = stage(rec, "load");
        load(&opts.normal)?
    };
    let faulty = {
        let _s = stage(rec, "load");
        load(&opts.faulty)?
    };
    let filters = if opts.filters.is_empty() {
        vec![
            FilterConfig::everything(10),
            FilterConfig {
                drop_returns: false,
                ..FilterConfig::everything(10)
            },
        ]
    } else {
        opts.filters
    };
    let attrs = if opts.attrs.is_empty() {
        AttrConfig::ALL.to_vec()
    } else {
        opts.attrs
    };
    let rows = sweep_parallel_cached_rec(
        &normal,
        &faulty,
        &filters,
        &attrs,
        opts.linkage,
        opts.jobs,
        cache.clone(),
        rec,
    );
    print!("{}", render_ranking(&rows));
    report_cache(cache.as_ref(), rec);
    opts.obs.emit(&live, "sweep", opts.jobs)?;
    Ok(())
}

fn baseline_cmd(args: &[String]) -> Result<(), CliError> {
    match args.first().map(|s| s.as_str()) {
        Some("record") => baseline_record(&args[1..]).map_err(CliError::Msg),
        Some("check") => baseline_check(&args[1..]),
        Some(other) => Err(CliError::Msg(format!(
            "unknown baseline action `{other}` ({})",
            usage_of("baseline")
        ))),
        None => Err(CliError::Msg(usage_of("baseline").to_string())),
    }
}

/// Read and decode a baseline bundle; every failure (unreadable,
/// truncated, corrupt, version skew) names the file and stays an
/// ordinary exit-2 error.
fn load_baseline(path: &str) -> Result<Baseline, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Baseline::decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// Reconstruct the analysis parameters a baseline was recorded under.
fn baseline_params(b: &Baseline) -> Result<Params, String> {
    let filter: FilterConfig = b
        .filter
        .parse()
        .map_err(|e| format!("baseline filter code `{}`: {e}", b.filter))?;
    let attrs: AttrConfig = b
        .attrs
        .parse()
        .map_err(|e| format!("baseline attribute code `{}`: {e}", b.attrs))?;
    Ok(Params::new(filter, attrs))
}

/// Load `--policy FILE`, or the strict default without one.
fn load_policy(path: Option<&PathBuf>) -> Result<Policy, String> {
    match path {
        None => Ok(Policy::default()),
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            Policy::parse(&text).map_err(|e| format!("{}: {e}", p.display()))
        }
    }
}

fn baseline_record(args: &[String]) -> Result<(), String> {
    let mut seen = Seen::new("baseline record");
    let mut positional = Vec::new();
    let mut filter = FilterConfig::everything(10);
    let mut attrs = AttrConfig {
        kind: AttrKind::Single,
        freq: FreqMode::Actual,
    };
    let mut threads = 0usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut force = false;
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--filter" => {
                seen.check("--filter")?;
                filter = value("--filter")?.parse()?;
            }
            "--attrs" => {
                seen.check("--attrs")?;
                attrs = value("--attrs")?.parse()?;
            }
            "--threads" => {
                seen.check("--threads")?;
                threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--cache" => {
                seen.check("--cache")?;
                cache_dir = Some(PathBuf::from(value("--cache")?));
            }
            "--force" => {
                seen.check("--force")?;
                force = true;
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => {
                return Err(unknown_option(other, "baseline record"))
            }
            other => positional.push(other.to_string()),
        }
    }
    let [run, out] = positional.as_slice() else {
        return Err(usage_of("baseline record").to_string());
    };
    let out_path = PathBuf::from(out);
    if out_path.exists() && !force {
        return Err(format!(
            "refusing to overwrite {out} (pass --force to replace the baseline)"
        ));
    }
    let cache = open_cache(cache_dir.as_ref())?;
    let live = MetricsRecorder::new();
    let rec = obs.recorder(&live);
    let (set, hb) = {
        let _s = stage(rec, "load");
        load_full(run)?
    };
    let params = Params::new(filter, attrs);
    let popts = PipelineOptions {
        threads,
        cache: cache.clone(),
        ..PipelineOptions::default()
    };
    let baseline = snapshot_rec(&set, &hb, &params, &popts, rec);
    let bytes = baseline.encode();
    if rec.enabled() {
        rec.add("baseline_bundle_bytes", bytes.len() as u64);
    }
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    write_file_atomic(&out_path, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {out}: {} trace(s), {} cluster(s), bundle {:#034x}",
        baseline.traces.len(),
        baseline.clusters,
        baseline.bundle_hash()
    );
    report_cache(cache.as_ref(), rec);
    obs.emit(&live, "baseline-record", threads)?;
    Ok(())
}

/// Minimal JSON string escaping for the batch index (same idiom as the
/// multi-file lint/hbcheck renderers).
fn json_str(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn baseline_check(args: &[String]) -> Result<(), CliError> {
    let mut seen = Seen::new("baseline check");
    let mut positional = Vec::new();
    let mut policy_path: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut threads = 0usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut runs_dir: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut obs = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--policy" => {
                seen.check("--policy")?;
                policy_path = Some(PathBuf::from(value("--policy")?));
            }
            "--format" => {
                seen.check("--format")?;
                format = value("--format")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}` (text|json)").into());
                }
            }
            "--threads" => {
                seen.check("--threads")?;
                threads = value("--threads")?.parse().map_err(|_| "bad --threads")?;
            }
            "--cache" => {
                seen.check("--cache")?;
                cache_dir = Some(PathBuf::from(value("--cache")?));
            }
            "--dir" => {
                seen.check("--dir")?;
                runs_dir = Some(PathBuf::from(value("--dir")?));
            }
            "--out" => {
                seen.check("--out")?;
                out_dir = Some(PathBuf::from(value("--out")?));
            }
            "--profile" => {
                seen.check("--profile")?;
                obs.profile = true;
            }
            "--metrics" => {
                seen.check("--metrics")?;
                obs.metrics = Some(PathBuf::from(value("--metrics")?));
            }
            other if other.starts_with("--") => {
                return Err(unknown_option(other, "baseline check").into())
            }
            other => positional.push(other.to_string()),
        }
    }
    let policy = load_policy(policy_path.as_ref())?;
    match runs_dir {
        None => {
            if out_dir.is_some() {
                return Err("--out only applies to --dir batch checks"
                    .to_string()
                    .into());
            }
            let [run, bundle] = positional.as_slice() else {
                return Err(usage_of("baseline check").to_string().into());
            };
            let baseline = load_baseline(bundle)?;
            let params = baseline_params(&baseline)?;
            let cache = open_cache(cache_dir.as_ref())?;
            let live = MetricsRecorder::new();
            let rec = obs.recorder(&live);
            let (set, hb) = {
                let _s = stage(rec, "load");
                load_full(run)?
            };
            let popts = PipelineOptions {
                threads,
                cache: cache.clone(),
                ..PipelineOptions::default()
            };
            let candidate = snapshot_rec(&set, &hb, &params, &popts, rec);
            let report = evaluate(&baseline, &candidate, &policy, run)?;
            if rec.enabled() {
                rec.add("baseline_runs_checked", 1);
                rec.add("baseline_clauses_failed", report.failures().len() as u64);
            }
            report_cache(cache.as_ref(), rec);
            if format == "json" {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            obs.emit(&live, "baseline-check", threads)?;
            if !report.passed() {
                let names: Vec<&str> = report.failures().iter().map(|c| c.as_str()).collect();
                return Err(CliError::LintDenied(format!(
                    "baseline gate failed for {run}: {}",
                    names.join(", ")
                )));
            }
            Ok(())
        }
        Some(dir) => {
            let out = out_dir.ok_or("--dir needs --out OUTDIR for the report bundle")?;
            let [bundle] = positional.as_slice() else {
                return Err(usage_of("baseline check").to_string().into());
            };
            let baseline = load_baseline(bundle)?;
            let params = baseline_params(&baseline)?;
            let mut runs: Vec<PathBuf> = std::fs::read_dir(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "dtts"))
                .collect();
            runs.sort();
            if runs.is_empty() {
                return Err(format!("{}: no .dtts runs to check", dir.display()).into());
            }
            std::fs::create_dir_all(&out)
                .map_err(|e| format!("creating {}: {e}", out.display()))?;
            // One shared cache for the whole batch: identical traces
            // across runs fold once. In-memory unless --cache persists
            // it on disk.
            let cache = open_cache(cache_dir.as_ref())?.unwrap_or_else(|| Arc::new(Cache::new()));
            let live = MetricsRecorder::new();
            let rec = obs.recorder(&live);
            let popts = PipelineOptions {
                threads,
                cache: Some(cache.clone()),
                ..PipelineOptions::default()
            };
            let mut failed: Vec<String> = Vec::new();
            let mut index_rows = Vec::new();
            for run in &runs {
                let label = run.display().to_string();
                let (set, hb) = {
                    let _s = stage(rec, "load");
                    load_full(&label)?
                };
                let candidate = snapshot_rec(&set, &hb, &params, &popts, rec);
                let report = evaluate(&baseline, &candidate, &policy, &label)?;
                let stem = run
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "run".to_string());
                let report_name = format!("{stem}.json");
                write_file_atomic(&out.join(&report_name), report.render_json().as_bytes())
                    .map_err(|e| format!("{report_name}: {e}"))?;
                let verdict = if report.passed() {
                    "pass".to_string()
                } else {
                    let names: Vec<&str> = report.failures().iter().map(|c| c.as_str()).collect();
                    failed.push(label.clone());
                    format!("FAIL ({})", names.join(", "))
                };
                println!("{label}: {verdict}");
                index_rows.push(format!(
                    "{{\"run\":\"{}\",\"verdict\":\"{}\",\"report\":\"{}\",\"report_hash\":\"{:032x}\"}}",
                    json_str(&label),
                    if report.passed() { "pass" } else { "fail" },
                    json_str(&report_name),
                    report.report_hash()
                ));
            }
            let index = format!(
                "{{\"schema\":\"difftrace-baseline-index/v1\",\"baseline\":\"{}\",\
                 \"baseline_hash\":\"{:032x}\",\"runs\":[{}]}}\n",
                json_str(bundle),
                baseline.bundle_hash(),
                index_rows.join(",")
            );
            write_file_atomic(&out.join("index.json"), index.as_bytes())
                .map_err(|e| format!("index.json: {e}"))?;
            if rec.enabled() {
                rec.add("baseline_runs_checked", runs.len() as u64);
                rec.add("baseline_runs_failed", failed.len() as u64);
            }
            report_cache(Some(&cache), rec);
            println!(
                "checked {} run(s): {} passed, {} failed; reports in {}",
                runs.len(),
                runs.len() - failed.len(),
                failed.len(),
                out.display()
            );
            obs.emit(&live, "baseline-check", threads)?;
            if !failed.is_empty() {
                return Err(CliError::LintDenied(format!(
                    "baseline gate failed for {}",
                    failed.join(", ")
                )));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&s(&["help"])).is_ok());
        assert!(dispatch(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn parse_opts_full() {
        let o = parse_opts(
            &s(&[
                "n.dtts",
                "f.dtts",
                "--filter",
                "11.mpiall.K10",
                "--attrs",
                "doub.noFreq",
                "--linkage",
                "average",
                "--diffnlr",
                "6.4",
                "--jobs",
                "3",
                "--threads",
                "4",
            ]),
            "diff",
        )
        .unwrap();
        assert_eq!(o.normal, "n.dtts");
        assert_eq!(o.faulty, "f.dtts");
        assert_eq!(o.filters.len(), 1);
        assert_eq!(o.attrs.len(), 1);
        assert_eq!(o.linkage.name(), "average");
        assert_eq!(o.diffnlr, Some(TraceId::new(6, 4)));
        assert_eq!(o.jobs, 3);
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn parse_opts_rejects_garbage() {
        assert!(parse_opts(&s(&["only-one.dtts"]), "diff").is_err());
        assert!(parse_opts(&s(&["a", "b", "--filter", "zz"]), "diff").is_err());
        assert!(parse_opts(&s(&["a", "b", "--linkage", "quantum"]), "diff").is_err());
        assert!(parse_opts(&s(&["a", "b", "--bogus"]), "diff").is_err());
        assert!(parse_opts(&s(&["a", "b", "--diffnlr", "64"]), "diff").is_err());
    }

    #[test]
    fn end_to_end_demo_info_diff_sweep() {
        let dir = std::env::temp_dir().join("difftrace_cli_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "oddeven", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");
        let f = format!("{dirs}/faulty.dtts");
        dispatch(&s(&["info", &n])).unwrap();
        dispatch(&s(&["filters", &n])).unwrap();
        dispatch(&s(&["single", &f, "--attrs", "sing.actual"])).unwrap();
        let exp = format!("{dirs}/artifacts");
        dispatch(&s(&["export", &n, &f, &exp, "--filter", "11.mpiall.K10"])).unwrap();
        for artifact in [
            "normal.lattice.dot",
            "faulty.dendrogram.dot",
            "normal.context.csv",
            "jsm_d.csv",
            "report.txt",
        ] {
            assert!(
                std::path::Path::new(&exp).join(artifact).exists(),
                "{artifact} missing"
            );
        }
        dispatch(&s(&["diff", &n, &f, "--filter", "11.mpiall.K10"])).unwrap();
        dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--threads",
            "1",
        ]))
        .unwrap();
        dispatch(&s(&["diff", &n, &f, "--filter", "11.mpiall.K10", "--full"])).unwrap();
        dispatch(&s(&[
            "sweep",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--attrs",
            "sing.actual",
            "--jobs",
            "2",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_end_to_end() {
        let dir = std::env::temp_dir().join("difftrace_cli_lint_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "oddeven", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");
        let f = format!("{dirs}/faulty.dtts");

        // Clean corpus under its live filter: lint passes, any gate.
        dispatch(&s(&[
            "lint",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--gate",
            "deny",
        ]))
        .unwrap();
        dispatch(&s(&["lint", &n, "--format", "json"])).unwrap();
        dispatch(&s(&["lint", &n, "--domain", "compressed", "--deep"])).unwrap();

        // Byte-identical output across thread counts, both formats and
        // both domains.
        for format in ["text", "json"] {
            for domain in [LintDomain::Expanded, LintDomain::Compressed] {
                let render = |threads: usize| {
                    lint_render(
                        &[n.clone(), f.clone()],
                        format,
                        &LintOptions {
                            threads,
                            domain,
                            ..LintOptions::default()
                        },
                        None,
                        &dt_obs::NOOP,
                    )
                    .unwrap()
                };
                let base = render(1);
                assert_eq!(base, render(2), "{format}/{domain:?}");
                assert_eq!(base, render(0), "{format}/{domain:?}");
            }
        }

        // A broken custom filter pattern is a TL004 *diagnostic* (with
        // a byte span), not an argument error — and trips `deny` with
        // the dedicated error kind.
        let denied = dispatch(&s(&[
            "lint",
            &n,
            "--filter",
            "11.cust:*bad.K10",
            "--gate",
            "deny",
        ]));
        assert!(matches!(denied, Err(CliError::LintDenied(_))), "{denied:?}");
        let (out, errors) = lint_render(
            std::slice::from_ref(&n),
            "json",
            &LintOptions {
                filter: Some(FilterConfig::parse_lenient("11.cust:*bad.K10").unwrap()),
                ..LintOptions::default()
            },
            None,
            &dt_obs::NOOP,
        )
        .unwrap();
        assert_eq!(errors, 1);
        assert!(out.contains("\"code\":\"TL004\""), "{out}");
        assert!(out.contains("\"span\":{\"start\":0,\"end\":1}"), "{out}");

        // The diff gate wires through PipelineOptions.
        dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--gate",
            "deny",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hbcheck_end_to_end() {
        let dir = std::env::temp_dir().join("difftrace_cli_hbcheck_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "stencil-tag", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");
        let f = format!("{dirs}/faulty.dtts");

        // The healthy run is clean under the strictest gate.
        dispatch(&s(&["hbcheck", &n, "--gate", "deny"])).unwrap();
        // The tag-mismatch run deadlocks: warn reports and passes …
        dispatch(&s(&["hbcheck", &f, "--format", "json"])).unwrap();
        // … deny exits with the dedicated error kind.
        let denied = dispatch(&s(&["hbcheck", &f, "--gate", "deny"]));
        assert!(matches!(denied, Err(CliError::LintDenied(_))), "{denied:?}");

        // The faulty report names the cycle, in both formats.
        let (text, errors) = hbcheck_render(
            std::slice::from_ref(&f),
            "text",
            &HbOptions::default(),
            &dt_obs::NOOP,
        )
        .unwrap();
        assert!(errors > 0);
        assert!(text.contains("HB001"), "{text}");
        assert!(text.contains("wait-for cycle"), "{text}");

        // Byte-identical output across thread counts and domains.
        for format in ["text", "json"] {
            let render = |threads: usize, domain: LintDomain| {
                hbcheck_render(
                    &[n.clone(), f.clone()],
                    format,
                    &HbOptions {
                        threads,
                        domain,
                        ..HbOptions::default()
                    },
                    &dt_obs::NOOP,
                )
                .unwrap()
            };
            let base = render(1, LintDomain::Expanded);
            for domain in [LintDomain::Expanded, LintDomain::Compressed] {
                for threads in [1usize, 2, 0] {
                    assert_eq!(
                        base,
                        render(threads, domain),
                        "{format}/{domain:?}/{threads}"
                    );
                }
            }
        }

        // The diff pipeline wires the gate through: warn diffs and
        // annotates, deny refuses with exit-code-3 semantics.
        dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--hb",
            "warn",
        ]))
        .unwrap();
        let denied = dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--hb",
            "deny",
        ]));
        assert!(matches!(denied, Err(CliError::LintDenied(_))), "{denied:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn racecheck_end_to_end() {
        let dir = std::env::temp_dir().join("difftrace_cli_racecheck_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "omp-counter", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");
        let f = format!("{dirs}/faulty.dtts");

        // The protected counter is clean under the strictest gate.
        dispatch(&s(&["racecheck", &n, "--gate", "deny"])).unwrap();
        // The unprotected run races: warn reports and passes …
        dispatch(&s(&["racecheck", &f, "--format", "json"])).unwrap();
        // … deny exits with the dedicated error kind.
        let denied = dispatch(&s(&["racecheck", &f, "--gate", "deny"]));
        assert!(matches!(denied, Err(CliError::LintDenied(_))), "{denied:?}");

        // The faulty report names the race, in both formats.
        let (text, errors) = racecheck_render(
            std::slice::from_ref(&f),
            "text",
            &RaceOptions::default(),
            &dt_obs::NOOP,
        )
        .unwrap();
        assert!(errors > 0);
        assert!(text.contains("RC001"), "{text}");
        assert!(text.contains("counter"), "{text}");

        // Byte-identical output across thread counts and domains.
        for format in ["text", "json"] {
            let render = |threads: usize, domain: LintDomain| {
                racecheck_render(
                    &[n.clone(), f.clone()],
                    format,
                    &RaceOptions {
                        threads,
                        domain,
                        ..RaceOptions::default()
                    },
                    &dt_obs::NOOP,
                )
                .unwrap()
            };
            let base = render(1, LintDomain::Expanded);
            for domain in [LintDomain::Expanded, LintDomain::Compressed] {
                for threads in [1usize, 2, 0] {
                    assert_eq!(
                        base,
                        render(threads, domain),
                        "{format}/{domain:?}/{threads}"
                    );
                }
            }
        }

        // The diff pipeline wires the gate through: warn diffs and
        // annotates, deny refuses with exit-code-3 semantics.
        dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--race",
            "warn",
        ]))
        .unwrap();
        let denied = dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--race",
            "deny",
        ]));
        assert!(matches!(denied, Err(CliError::LintDenied(_))), "{denied:?}");

        // The lock-order demo fires exactly RC003 on its faulty side.
        let ldir = format!("{dirs}/lockorder");
        std::fs::create_dir_all(&ldir).unwrap();
        dispatch(&s(&["demo", "omp-lockorder", &ldir])).unwrap();
        let ln = format!("{ldir}/normal.dtts");
        let lf = format!("{ldir}/faulty.dtts");
        dispatch(&s(&["racecheck", &ln, "--gate", "deny"])).unwrap();
        let (text, errors) = racecheck_render(
            std::slice::from_ref(&lf),
            "text",
            &RaceOptions::default(),
            &dt_obs::NOOP,
        )
        .unwrap();
        assert_eq!(errors, 1, "{text}");
        assert!(text.contains("RC003"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reqcheck_end_to_end() {
        let dir = std::env::temp_dir().join("difftrace_cli_reqcheck_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "isend-leak", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");
        let f = format!("{dirs}/faulty.dtts");

        // The healthy ring is clean under the strictest gate.
        dispatch(&s(&["reqcheck", &n, "--gate", "deny"])).unwrap();
        // The leaky run: warn reports and passes …
        dispatch(&s(&["reqcheck", &f, "--format", "json"])).unwrap();
        // … deny exits with the dedicated error kind.
        let denied = dispatch(&s(&["reqcheck", &f, "--gate", "deny"]));
        assert!(matches!(denied, Err(CliError::LintDenied(_))), "{denied:?}");

        // The faulty report names the leak with its teardown witness.
        let (text, errors) = reqcheck_render(
            std::slice::from_ref(&f),
            "text",
            &ReqOptions::default(),
            &dt_obs::NOOP,
        )
        .unwrap();
        assert!(errors > 0);
        assert!(text.contains("RQ001"), "{text}");
        assert!(text.contains("MPI_Isend:dst=3,tag=0"), "{text}");

        // Byte-identical output across thread counts and domains.
        for format in ["text", "json"] {
            let render = |threads: usize, domain: LintDomain| {
                reqcheck_render(
                    &[n.clone(), f.clone()],
                    format,
                    &ReqOptions {
                        threads,
                        domain,
                        ..ReqOptions::default()
                    },
                    &dt_obs::NOOP,
                )
                .unwrap()
            };
            let base = render(1, LintDomain::Expanded);
            for domain in [LintDomain::Expanded, LintDomain::Compressed] {
                for threads in [1usize, 2, 0] {
                    assert_eq!(
                        base,
                        render(threads, domain),
                        "{format}/{domain:?}/{threads}"
                    );
                }
            }
        }

        // The compressed domain reports its fold counter through
        // --metrics plumbing.
        let live = MetricsRecorder::new();
        reqcheck_render(
            std::slice::from_ref(&f),
            "text",
            &ReqOptions {
                domain: LintDomain::Compressed,
                ..ReqOptions::default()
            },
            &live,
        )
        .unwrap();
        let m = live.finish("reqcheck", 1);
        assert!(
            m.counters
                .iter()
                .any(|(k, v)| k == "reqcheck_folds" && *v > 0),
            "{:?}",
            m.counters
        );

        // The diff pipeline wires the gate through: warn diffs and
        // attaches, deny refuses with exit-code-3 semantics.
        dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--req",
            "warn",
        ]))
        .unwrap();
        let denied = dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--req",
            "deny",
        ]));
        assert!(matches!(denied, Err(CliError::LintDenied(_))), "{denied:?}");

        // The coll-args demo fires RQ003 (and only signature errors)
        // on its faulty side.
        let cdir = format!("{dirs}/collargs");
        std::fs::create_dir_all(&cdir).unwrap();
        dispatch(&s(&["demo", "coll-args", &cdir])).unwrap();
        let cn = format!("{cdir}/normal.dtts");
        let cf = format!("{cdir}/faulty.dtts");
        dispatch(&s(&["reqcheck", &cn, "--gate", "deny"])).unwrap();
        let (text, errors) = reqcheck_render(
            std::slice::from_ref(&cf),
            "text",
            &ReqOptions::default(),
            &dt_obs::NOOP,
        )
        .unwrap();
        assert!(errors > 0);
        assert!(text.contains("RQ003"), "{text}");
        assert!(!text.contains("RQ004"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: every subcommand rejects repeated and unknown flags
    /// the same way — a `Msg` error (exit 2) naming the flag and
    /// carrying the usage hint. All cases fail during parsing, before
    /// any file is touched.
    #[test]
    fn duplicate_and_unknown_flags_fail_uniformly() {
        let dup_cases: &[&[&str]] = &[
            &["demo", "--force", "--force", "oddeven", "x"],
            &["single", "r.dtts", "--k", "2", "--k", "3"],
            &[
                "single",
                "r.dtts",
                "--filter",
                "11.all.K10",
                "--filter",
                "11.all.K10",
            ],
            &["lint", "a.dtts", "--gate", "warn", "--gate", "deny"],
            &["lint", "a.dtts", "--deep", "--deep"],
            &[
                "hbcheck",
                "a.dtts",
                "--domain",
                "compressed",
                "--domain",
                "expanded",
            ],
            &["racecheck", "a.dtts", "--gate", "warn", "--gate", "deny"],
            &[
                "racecheck",
                "a.dtts",
                "--domain",
                "compressed",
                "--domain",
                "expanded",
            ],
            &["racecheck", "a.dtts", "--threads", "1", "--threads", "2"],
            &["reqcheck", "a.dtts", "--gate", "warn", "--gate", "deny"],
            &[
                "reqcheck",
                "a.dtts",
                "--domain",
                "compressed",
                "--domain",
                "expanded",
            ],
            &["reqcheck", "a.dtts", "--threads", "1", "--threads", "2"],
            &["diff", "n", "f", "--race", "warn", "--race", "deny"],
            &["diff", "n", "f", "--req", "warn", "--req", "deny"],
            &[
                "diff",
                "n",
                "f",
                "--filter",
                "11.all.K10",
                "--filter",
                "01.all.K10",
            ],
            &["diff", "n", "f", "--threads", "1", "--threads", "2"],
            &["diff", "n", "f", "--profile", "--profile"],
            &[
                "diff",
                "n",
                "f",
                "--metrics",
                "a.json",
                "--metrics",
                "b.json",
            ],
            &[
                "export",
                "n",
                "f",
                "out",
                "--attrs",
                "sing.actual",
                "--attrs",
                "doub.noFreq",
            ],
            &[
                "sweep",
                "n",
                "f",
                "--linkage",
                "ward",
                "--linkage",
                "average",
            ],
            &["sweep", "n", "f", "--jobs", "1", "--jobs", "2"],
            &["sweep", "n", "f", "--cache", "c1", "--cache", "c2"],
            &["diff", "n", "f", "--cache", "c1", "--cache", "c2"],
            &["single", "r.dtts", "--cache", "c1", "--cache", "c2"],
            &["baseline", "record", "r", "b", "--force", "--force"],
            &[
                "baseline",
                "record",
                "r",
                "b",
                "--filter",
                "11.all.K10",
                "--filter",
                "01.all.K10",
            ],
            &[
                "baseline",
                "record",
                "r",
                "b",
                "--threads",
                "1",
                "--threads",
                "2",
            ],
            &[
                "baseline", "check", "r", "b", "--policy", "p", "--policy", "q",
            ],
            &[
                "baseline", "check", "r", "b", "--format", "json", "--format", "text",
            ],
            &[
                "baseline", "check", "r", "b", "--cache", "c1", "--cache", "c2",
            ],
            &["lint", "a.dtts", "--trace", "0.0", "--trace", "0.1"],
            &["single", "r.dtts", "--trace", "0.0", "--trace", "0.1"],
            &["serve", "a.dtts", "--jobs", "1", "--jobs", "2"],
            &["serve", "a.dtts", "--addr", ":0", "--addr", ":1"],
            &[
                "query", "addr", "lint", "c", "--format", "json", "--format", "text",
            ],
            &[
                "query", "addr", "lint", "c", "--gate", "warn", "--gate", "deny",
            ],
        ];
        for case in dup_cases {
            let err = dispatch(&s(case)).unwrap_err();
            let CliError::Msg(m) = err else {
                panic!("{case:?}: wrong error kind");
            };
            assert!(m.contains("duplicate option"), "{case:?}: {m}");
            assert!(m.contains("usage: difftrace"), "{case:?}: {m}");
        }

        let unknown_cases: &[&[&str]] = &[
            &["demo", "oddeven", "x", "--bogus"],
            &["info", "a.dtts", "--bogus"],
            &["filters", "--bogus"],
            &["single", "r.dtts", "--bogus"],
            &["lint", "a.dtts", "--bogus"],
            &["hbcheck", "a.dtts", "--bogus"],
            &["racecheck", "a.dtts", "--bogus"],
            &["reqcheck", "a.dtts", "--bogus"],
            &["diff", "n", "f", "--bogus"],
            &["export", "n", "f", "out", "--bogus"],
            &["sweep", "n", "f", "--bogus"],
            &["cache", "stats", "d", "--bogus"],
            &["baseline", "record", "r", "b", "--bogus"],
            &["baseline", "check", "r", "b", "--bogus"],
            &["serve", "a.dtts", "--bogus"],
            &["query", "addr", "lint", "c", "--bogus"],
        ];
        for case in unknown_cases {
            let err = dispatch(&s(case)).unwrap_err();
            let CliError::Msg(m) = err else {
                panic!("{case:?}: wrong error kind");
            };
            assert!(m.contains("unknown option `--bogus`"), "{case:?}: {m}");
            assert!(m.contains("usage: difftrace"), "{case:?}: {m}");
        }

        // sweep's grid axes are the one sanctioned repetition.
        let o = parse_opts(
            &s(&[
                "n",
                "f",
                "--filter",
                "11.all.K10",
                "--filter",
                "11.mpiall.K10",
                "--attrs",
                "sing.actual",
                "--attrs",
                "doub.noFreq",
            ]),
            "sweep",
        )
        .unwrap();
        assert_eq!(o.filters.len(), 2);
        assert_eq!(o.attrs.len(), 2);
    }

    /// `--cache` end to end: a sweep populates the directory, `cache
    /// stats` sees the entries, diff/single reuse the same directory,
    /// and `cache clear` empties it. Warm runs must print the same
    /// ranking the cold run did.
    #[test]
    fn cache_end_to_end() {
        let dir = std::env::temp_dir().join("difftrace_cli_cache_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "oddeven", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");
        let f = format!("{dirs}/faulty.dtts");
        let cdir = format!("{dirs}/cache");
        let sweep_args = [
            "sweep",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--attrs",
            "sing.actual",
            "--attrs",
            "doub.noFreq",
            "--cache",
            &cdir,
        ];
        dispatch(&s(&sweep_args)).unwrap(); // cold: populates the cache
        let stats = dt_cache::disk_stats(Path::new(&cdir)).unwrap();
        assert!(stats.nlr_entries > 0, "{stats:?}");
        assert!(stats.attr_entries > 0, "{stats:?}");
        dispatch(&s(&sweep_args)).unwrap(); // warm: hits from disk
        dispatch(&s(&["cache", "stats", &cdir])).unwrap();
        dispatch(&s(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--cache",
            &cdir,
        ]))
        .unwrap();
        dispatch(&s(&["single", &f, "--cache", &cdir])).unwrap();
        dispatch(&s(&["cache", "clear", &cdir])).unwrap();
        let cleared = dt_cache::disk_stats(Path::new(&cdir)).unwrap();
        assert_eq!(cleared.nlr_entries + cleared.attr_entries, 0);
        // Bad action is an argument error carrying the usage hint.
        let err = dispatch(&s(&["cache", "frobnicate", &cdir])).unwrap_err();
        assert!(err.to_string().contains("usage: difftrace cache"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: `demo` must not clobber an existing corpus unless
    /// `--force` is given.
    #[test]
    fn demo_refuses_overwrite_without_force() {
        let dir = std::env::temp_dir().join("difftrace_cli_force_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "oddeven", &dirs])).unwrap();
        let err = dispatch(&s(&["demo", "oddeven", &dirs])).unwrap_err();
        assert!(err.to_string().contains("refusing to overwrite"), "{err}");
        assert!(err.to_string().contains("--force"), "{err}");
        dispatch(&s(&["demo", "oddeven", &dirs, "--force"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn demo_knows_all_workloads() {
        // Just validate the dispatch table (without running the heavy
        // ones): unknown workloads error out.
        let reg = Arc::new(FunctionRegistry::new());
        assert!(run_demo_pair("nope", &reg).is_err());
    }

    /// Tentpole: record → re-record byte-identical → clean check
    /// passes → faulty check is a gate failure (LintDenied, exit 3) →
    /// corrupt bundle is an ordinary error naming the file (exit 2) →
    /// batch mode writes the report bundle and index.
    #[test]
    fn baseline_end_to_end() {
        let dir = std::env::temp_dir().join("difftrace_cli_baseline_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "stencil-tag", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");
        let f = format!("{dirs}/faulty.dtts");
        let b = format!("{dirs}/base.dtb");
        let b2 = format!("{dirs}/base2.dtb");

        dispatch(&s(&["baseline", "record", &n, &b])).unwrap();
        // Refuses to clobber without --force, like demo.
        let err = dispatch(&s(&["baseline", "record", &n, &b])).unwrap_err();
        assert!(err.to_string().contains("refusing to overwrite"), "{err}");
        dispatch(&s(&["baseline", "record", &n, &b2])).unwrap();
        assert_eq!(
            std::fs::read(&b).unwrap(),
            std::fs::read(&b2).unwrap(),
            "re-recording the same run must be byte-identical"
        );

        // Clean candidate passes; JSON format too.
        dispatch(&s(&["baseline", "check", &n, &b])).unwrap();
        dispatch(&s(&["baseline", "check", "--format", "json", &n, &b])).unwrap();
        // The faulty run is a gate failure, not a usage error.
        let err = dispatch(&s(&["baseline", "check", &f, &b])).unwrap_err();
        let CliError::LintDenied(m) = err else {
            panic!("faulty check should be LintDenied");
        };
        assert!(m.contains("baseline gate failed"), "{m}");
        // Tolerating every divergence class turns the gate green.
        let lax = format!("{dirs}/lax.policy");
        std::fs::write(
            &lax,
            "tolerate = nlr-changed,ranking-shift,lint-regression,hb-regression\n\
             allow_new_traces = true\nallow_removed_traces = true\n",
        )
        .unwrap();
        dispatch(&s(&["baseline", "check", "--policy", &lax, &f, &b])).unwrap();

        // A truncated bundle is an ordinary error naming the file.
        let bad = format!("{dirs}/bad.dtb");
        let bytes = std::fs::read(&b).unwrap();
        std::fs::write(&bad, &bytes[..bytes.len() / 2]).unwrap();
        let err = dispatch(&s(&["baseline", "check", &n, &bad])).unwrap_err();
        let CliError::Msg(m) = err else {
            panic!("corrupt bundle must be a usage-class error");
        };
        assert!(m.contains("bad.dtb"), "{m}");
        assert!(m.contains("re-record"), "{m}");

        // Batch mode: index + per-run reports, gate failure overall.
        let runs = format!("{dirs}/runs");
        std::fs::create_dir_all(&runs).unwrap();
        std::fs::copy(&n, format!("{runs}/a-clean.dtts")).unwrap();
        std::fs::copy(&f, format!("{runs}/b-fault.dtts")).unwrap();
        let out = format!("{dirs}/reports");
        let err = dispatch(&s(&[
            "baseline", "check", "--dir", &runs, "--out", &out, &b,
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::LintDenied(_)), "{err}");
        let index = std::fs::read_to_string(format!("{out}/index.json")).unwrap();
        dt_obs::json::parse(&index).expect("valid index JSON");
        assert!(index.contains("difftrace-baseline-index/v1"), "{index}");
        assert!(index.contains("\"verdict\":\"pass\""), "{index}");
        assert!(index.contains("\"verdict\":\"fail\""), "{index}");
        for report in ["a-clean.json", "b-fault.json"] {
            let doc = std::fs::read_to_string(format!("{out}/{report}")).unwrap();
            dt_obs::json::parse(&doc).expect("valid report JSON");
        }
        // --dir without --out (and --out without --dir) are usage errors.
        assert!(dispatch(&s(&["baseline", "check", "--dir", &runs, &b])).is_err());
        assert!(dispatch(&s(&["baseline", "check", "--out", &out, &n, &b])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: every file the CLI writes goes through temp+rename.
    /// A write that fails at the destination must leave no partial
    /// file and no temp debris — here the destination is squatted by a
    /// directory, so the final rename (not the data write) fails.
    #[test]
    fn failed_writes_leave_no_partial_file_or_debris() {
        let dir = std::env::temp_dir().join("difftrace_cli_atomic_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "oddeven", &dirs])).unwrap();
        let n = format!("{dirs}/normal.dtts");

        let debris = |label: &str| {
            let left: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|name| name.contains(".tmp."))
                .collect();
            assert!(left.is_empty(), "{label}: temp debris {left:?}");
        };

        // --metrics output.
        let squat = dir.join("metrics.json");
        std::fs::create_dir_all(&squat).unwrap();
        let err = dispatch(&s(&["lint", &n, "--metrics", squat.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("writing metrics"), "{err}");
        assert!(squat.is_dir(), "squatting directory must survive");
        debris("metrics");

        // baseline bundles (--force skips the overwrite refusal so the
        // write itself is what fails).
        let bundle = dir.join("base.dtb");
        std::fs::create_dir_all(&bundle).unwrap();
        let err = dispatch(&s(&[
            "baseline",
            "record",
            &n,
            bundle.to_str().unwrap(),
            "--force",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("base.dtb"), "{err}");
        assert!(bundle.is_dir(), "squatting directory must survive");
        debris("baseline record");
    }

    /// Tentpole plumbing: `--trace P.T` routes lint/single through the
    /// v3 offset index — exactly one blob decode, recorded in the
    /// metrics document — and matches a hand-built one-trace subset.
    #[test]
    fn trace_flag_decodes_exactly_one_trace() {
        let dir = std::env::temp_dir().join("difftrace_cli_trace_flag_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        dispatch(&s(&["demo", "oddeven", &dirs])).unwrap();
        let f = format!("{dirs}/faulty.dtts");
        let set = store::load(Path::new(&f)).unwrap();
        assert!(set.len() > 1, "need a multi-trace corpus");
        let id = set.ids()[0];

        let metrics = |name: &str| format!("{dirs}/{name}.json");
        dispatch(&s(&[
            "lint",
            &f,
            "--trace",
            &id.to_string(),
            "--metrics",
            &metrics("lint"),
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(metrics("lint")).unwrap();
        assert!(doc.contains("\"store_trace_decodes\":1"), "{doc}");

        dispatch(&s(&[
            "single",
            &f,
            "--trace",
            &id.to_string(),
            "--metrics",
            &metrics("single"),
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(metrics("single")).unwrap();
        assert!(doc.contains("\"store_trace_decodes\":1"), "{doc}");

        // The restricted report equals linting a hand-built subset.
        let (out, _) = lint_render(
            std::slice::from_ref(&f),
            "text",
            &LintOptions::default(),
            Some(id),
            &dt_obs::NOOP,
        )
        .unwrap();
        let mut sub = TraceSet::new(set.registry.clone());
        sub.insert(set.get(id).unwrap().clone());
        assert_eq!(out, lint_set(&sub, &LintOptions::default()).render_text());

        // Unknown trace → diagnosed error; bad spec → argument error.
        let err = dispatch(&s(&["lint", &f, "--trace", "99.99"])).unwrap_err();
        assert!(err.to_string().contains("not in store"), "{err}");
        assert!(dispatch(&s(&["lint", &f, "--trace", "zz"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
