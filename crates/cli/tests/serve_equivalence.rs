//! Serve equivalence suite: every response the daemon hands back must be
//! byte-identical to what the one-shot CLI prints for the same analysis,
//! at any worker count and under concurrent mixed load. The daemon runs
//! in-process ([`dt_serve::Server`]); the one-shot side and the `query`
//! client run as real `difftrace` subprocesses.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_difftrace"))
}

/// Run the one-shot CLI and return its stdout. Check commands exit 0
/// here because no gate is requested; the report itself goes to stdout.
fn oneshot(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn difftrace");
    assert!(
        out.status.success(),
        "one-shot {:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

struct Fixture {
    dir: PathBuf,
    normal: String,
    faulty: String,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!(
            "difftrace_serve_equiv_{tag}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap();
        let status = bin().args(["demo", "oddeven", dirs]).status().unwrap();
        assert!(status.success(), "demo recording failed");
        Fixture {
            normal: format!("{dirs}/normal.dtts"),
            faulty: format!("{dirs}/faulty.dtts"),
            dir,
        }
    }

    fn serve(&self, jobs: usize) -> dt_serve::Server {
        dt_serve::Server::bind(&dt_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            corpora: vec![
                ("normal".into(), PathBuf::from(&self.normal)),
                ("faulty".into(), PathBuf::from(&self.faulty)),
            ],
            jobs,
            cache_dir: None,
        })
        .expect("bind daemon")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// The mixed query workload: one-shot CLI argv paired with the `query`
/// argv tail (after the address). Corpus names are the file stems.
fn cases<'a>(normal: &'a str, faulty: &'a str) -> Vec<(Vec<&'a str>, Vec<&'a str>)> {
    vec![
        (vec!["lint", faulty], vec!["lint", "faulty"]),
        (
            vec!["lint", faulty, "--format", "json"],
            vec!["lint", "faulty", "--format", "json"],
        ),
        (vec!["hbcheck", normal], vec!["hbcheck", "normal"]),
        (vec!["racecheck", faulty], vec!["racecheck", "faulty"]),
        (vec!["reqcheck", faulty], vec!["reqcheck", "faulty"]),
        (vec!["single", faulty], vec!["single", "faulty"]),
        (
            vec!["diff", normal, faulty],
            vec!["diff", "normal", "faulty"],
        ),
        (
            vec!["diff", normal, faulty, "--full"],
            vec!["diff", "normal", "faulty", "--full"],
        ),
        (
            vec!["fleet", normal, faulty],
            vec!["fleet", "normal", "faulty"],
        ),
        (
            vec![
                "fleet",
                normal,
                faulty,
                "--format",
                "json",
                "--suspect",
                "faulty",
            ],
            vec![
                "fleet",
                "normal",
                "faulty",
                "--format",
                "json",
                "--suspect",
                "faulty",
            ],
        ),
    ]
}

fn shutdown(addr: &str) {
    let out = bin().args(["query", addr, "shutdown"]).output().unwrap();
    assert!(out.status.success(), "shutdown query failed");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("shutting down"),
        "unexpected shutdown reply"
    );
}

#[test]
fn served_responses_match_the_one_shot_cli_at_any_worker_count() {
    let fx = Fixture::new("bytes");
    let expected: Vec<(Vec<&str>, Vec<&str>, String)> = cases(&fx.normal, &fx.faulty)
        .into_iter()
        .map(|(cli, query)| {
            let out = oneshot(&cli);
            assert!(!out.is_empty(), "{cli:?} printed nothing");
            (cli, query, out)
        })
        .collect();

    for jobs in [1usize, 4] {
        let server = fx.serve(jobs);
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());

        // Every case queried concurrently, several rounds each, so the
        // worker pool actually interleaves requests.
        let expected = Arc::new(expected.clone());
        let mut clients = Vec::new();
        for (i, (_, query, want)) in expected.iter().cloned().enumerate() {
            let addr = addr.clone();
            let query: Vec<String> = query.iter().map(|s| s.to_string()).collect();
            clients.push(std::thread::spawn(move || {
                for round in 0..3 {
                    let out = bin()
                        .arg("query")
                        .arg(&addr)
                        .args(&query)
                        .output()
                        .expect("spawn query client");
                    assert!(
                        out.status.success(),
                        "case {i} round {round} {:?}: {}",
                        query,
                        String::from_utf8_lossy(&out.stderr)
                    );
                    assert_eq!(
                        String::from_utf8_lossy(&out.stdout),
                        want,
                        "case {i} round {round} {:?} diverged from the one-shot CLI",
                        query
                    );
                }
            }));
        }
        for c in clients {
            c.join().expect("client thread panicked");
        }

        shutdown(&addr);
        handle.join().expect("server thread").expect("server run");
    }
}

#[test]
fn query_client_surfaces_errors_and_gates_with_cli_exit_codes() {
    let fx = Fixture::new("codes");
    let server = fx.serve(2);
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());

    // Unknown corpus → diagnosed error, generic-failure exit code 2.
    let out = bin()
        .args(["query", &addr, "lint", "nosuch"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown corpus"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A malformed raw frame gets a diagnosed refusal, and the daemon
    // keeps serving on the same connection.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":false"), "reply: {line}");
    line.clear();
    stream
        .write_all(b"{\"id\":7,\"cmd\":\"lint\",\"corpus\":\"faulty\"}\n")
        .unwrap();
    stream.flush().unwrap();
    reader.read_line(&mut line).unwrap();
    let resp = dt_serve::parse_response(line.trim_end()).expect("well-formed reply");
    assert!(resp.ok, "daemon wedged after malformed frame: {line}");
    assert_eq!(resp.id, 7);

    // `--gate deny` maps the served error count onto the same exit code
    // the one-shot gate uses: 3 when errors were found, 0 otherwise.
    let out = bin()
        .args(["query", &addr, "lint", "faulty", "--gate", "deny"])
        .output()
        .unwrap();
    if resp.errors > 0 {
        assert_eq!(out.status.code(), Some(3), "expected the deny exit code");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("query gate denied"),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    } else {
        assert_eq!(out.status.code(), Some(0));
    }
    // The report still reaches stdout either way.
    assert!(!out.stdout.is_empty());

    shutdown(&addr);
    handle.join().expect("server thread").expect("server run");
}
