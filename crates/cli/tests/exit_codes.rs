//! Integration test for the CLI's exit-code contract, driven through
//! the real binary: 0 = success, 2 = ordinary error (bad arguments,
//! unreadable input, unwritable `--metrics` path), 3 = a `deny` gate
//! fired. Every subcommand is exercised on every applicable code.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_difftrace"))
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = bin().args(args).output().expect("spawn difftrace");
    (
        out.status.code().expect("no exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_exit(expected: i32, args: &[&str]) {
    let (code, _, stderr) = run(args);
    assert_eq!(code, expected, "{args:?}\nstderr: {stderr}");
}

/// Record the demo corpora once per test-process into a fresh dir.
#[allow(clippy::type_complexity)]
fn corpus() -> (
    PathBuf,
    String,
    String,
    String,
    String,
    String,
    String,
    String,
    String,
) {
    let dir = std::env::temp_dir().join(format!("difftrace_exit_codes_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let odd = dir.join("oddeven");
    let stencil = dir.join("stencil");
    let omp = dir.join("omp");
    let req = dir.join("reqlife");
    assert_exit(0, &["demo", "oddeven", odd.to_str().unwrap()]);
    assert_exit(0, &["demo", "stencil-tag", stencil.to_str().unwrap()]);
    assert_exit(0, &["demo", "omp-counter", omp.to_str().unwrap()]);
    assert_exit(0, &["demo", "isend-leak", req.to_str().unwrap()]);
    let n = odd.join("normal.dtts").to_str().unwrap().to_string();
    let f = odd.join("faulty.dtts").to_str().unwrap().to_string();
    let sn = stencil.join("normal.dtts").to_str().unwrap().to_string();
    let sf = stencil.join("faulty.dtts").to_str().unwrap().to_string();
    let on = omp.join("normal.dtts").to_str().unwrap().to_string();
    let of = omp.join("faulty.dtts").to_str().unwrap().to_string();
    let rn = req.join("normal.dtts").to_str().unwrap().to_string();
    let rf = req.join("faulty.dtts").to_str().unwrap().to_string();
    (dir, n, f, sn, sf, on, of, rn, rf)
}

#[test]
fn exit_codes_for_every_subcommand() {
    let (dir, n, f, sn, sf, on, of, rn, rf) = corpus();
    let out = dir.to_str().unwrap();

    let base = dir.join("base.dtb").to_str().unwrap().to_string();

    // ── exit 0: every subcommand has a success path ─────────────────
    assert_exit(0, &["help"]);
    assert_exit(0, &["info", &n]);
    assert_exit(0, &["filters", &n]);
    assert_exit(0, &["single", &f]);
    assert_exit(0, &["lint", &n, "--filter", "11.mpiall.K10"]);
    assert_exit(0, &["hbcheck", &sn, "--gate", "deny"]);
    assert_exit(0, &["racecheck", &on, "--gate", "deny"]);
    assert_exit(0, &["racecheck", &of, "--domain", "compressed"]); // warn passes
    assert_exit(0, &["reqcheck", &rn, "--gate", "deny"]);
    assert_exit(0, &["reqcheck", &rf, "--domain", "compressed"]); // warn passes
    assert_exit(0, &["diff", &n, &f, "--filter", "11.mpiall.K10"]);
    let exp = dir.join("artifacts");
    assert_exit(
        0,
        &[
            "export",
            &n,
            &f,
            exp.to_str().unwrap(),
            "--filter",
            "11.mpiall.K10",
        ],
    );
    assert_exit(
        0,
        &[
            "sweep",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--attrs",
            "sing.actual",
        ],
    );
    assert_exit(0, &["baseline", "record", &sn, &base]);
    assert_exit(0, &["baseline", "check", &sn, &base]);
    assert_exit(0, &["baseline", "check", "--format", "json", &sn, &base]);

    // ── exit 2: bad arguments, unreadable input, duplicate/unknown
    //    flags, refused overwrite ─────────────────────────────────────
    assert_exit(2, &["frobnicate"]);
    assert_exit(2, &["demo", "nope-workload", out]);
    assert_exit(
        2,
        &["demo", "oddeven", dir.join("oddeven").to_str().unwrap()],
    ); // no --force
    assert_exit(2, &["info", "/nonexistent/x.dtts"]);
    assert_exit(2, &["filters", "--bogus"]);
    assert_exit(2, &["single", &f, "--k", "2", "--k", "3"]);
    assert_exit(2, &["lint", &n, "--bogus"]);
    assert_exit(2, &["hbcheck", &sn, "--domain", "x"]);
    assert_exit(2, &["racecheck", &on, "--domain", "x"]);
    assert_exit(2, &["racecheck", &on, "--bogus"]);
    assert_exit(2, &["racecheck", "/nonexistent/x.dtts"]);
    assert_exit(2, &["reqcheck", &rn, "--domain", "x"]);
    assert_exit(2, &["reqcheck", &rn, "--bogus"]);
    assert_exit(2, &["reqcheck", "/nonexistent/x.dtts"]);
    assert_exit(2, &["diff", &n]); // missing positional
    assert_exit(2, &["diff", &n, &f, "--filter", "a", "--filter", "b"]);
    assert_exit(2, &["export", &n, &f]); // missing outdir
    assert_exit(2, &["sweep", &n, &f, "--jobs", "1", "--jobs", "2"]);
    assert_exit(2, &["baseline"]); // missing action
    assert_exit(2, &["baseline", "frobnicate"]);
    assert_exit(2, &["baseline", "record", &sn]); // missing out
    assert_exit(2, &["baseline", "record", &sn, &base]); // no --force
    assert_exit(2, &["baseline", "record", &sn, &base, "--bogus"]);
    assert_exit(2, &["baseline", "check", &sn, &base, "--format", "xml"]);
    assert_exit(
        2,
        &[
            "baseline", "check", &sn, &base, "--policy", "p", "--policy", "q",
        ],
    );
    assert_exit(2, &["baseline", "check", &sn, "/nonexistent/b.dtb"]);
    // A corrupt bundle must be a diagnosed exit-2 error naming the
    // file — never a panic, never a false pass.
    let corrupt = dir.join("corrupt.dtb");
    let bytes = std::fs::read(&base).unwrap();
    std::fs::write(&corrupt, &bytes[..bytes.len() - 3]).unwrap();
    let (code, _, stderr) = run(&["baseline", "check", &sn, corrupt.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("corrupt.dtb"), "{stderr}");
    assert!(stderr.contains("re-record"), "{stderr}");

    // --metrics to an unwritable path: the analysis runs, the write
    // fails, and that is an ordinary (exit 2) error on every command
    // that takes the flag.
    let unwritable = format!("{n}/metrics.json"); // a file is not a directory
    assert_exit(2, &["lint", &n, "--metrics", &unwritable]);
    assert_exit(2, &["hbcheck", &sn, "--metrics", &unwritable]);
    assert_exit(2, &["racecheck", &on, "--metrics", &unwritable]);
    assert_exit(2, &["reqcheck", &rn, "--metrics", &unwritable]);
    assert_exit(2, &["single", &f, "--metrics", &unwritable]);
    assert_exit(
        2,
        &[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--metrics",
            &unwritable,
        ],
    );
    assert_exit(
        2,
        &[
            "sweep",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--attrs",
            "sing.actual",
            "--metrics",
            &unwritable,
        ],
    );

    // ── exit 3: deny gates, distinct from misuse ────────────────────
    assert_exit(
        3,
        &["lint", &n, "--filter", "11.cust:*bad.K10", "--gate", "deny"],
    );
    assert_exit(3, &["hbcheck", &sf, "--gate", "deny"]);
    assert_exit(3, &["racecheck", &of, "--gate", "deny"]);
    assert_exit(
        3,
        &["racecheck", &of, "--gate", "deny", "--domain", "compressed"],
    );
    assert_exit(3, &["reqcheck", &rf, "--gate", "deny"]);
    assert_exit(
        3,
        &["reqcheck", &rf, "--gate", "deny", "--domain", "compressed"],
    );
    assert_exit(
        3,
        &[
            "diff",
            &sn,
            &sf,
            "--filter",
            "11.mpiall.K10",
            "--hb",
            "deny",
        ],
    );
    assert_exit(
        3,
        &[
            "diff",
            &on,
            &of,
            "--filter",
            "11.mpiall.K10",
            "--race",
            "deny",
        ],
    );
    assert_exit(
        3,
        &[
            "diff",
            &rn,
            &rf,
            "--filter",
            "11.mpiall.K10",
            "--req",
            "deny",
        ],
    );
    // The injected stencil tag fault fails the default policy gate.
    let (code, stdout, stderr) = run(&["baseline", "check", &sf, &base]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stdout.contains("verdict: FAIL"), "{stdout}");
    assert!(stderr.contains("baseline gate failed"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_exit_codes_and_diagnoses() {
    let dir = std::env::temp_dir().join(format!("difftrace_fleet_exit_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let fleet = dir.join("fleet");
    let stencil = dir.join("stencil");
    assert_exit(0, &["demo", "fleet-oddeven", fleet.to_str().unwrap()]);
    assert_exit(0, &["demo", "stencil-tag", stencil.to_str().unwrap()]);
    // Refuses to overwrite the recorded fleet without --force.
    assert_exit(2, &["demo", "fleet-oddeven", fleet.to_str().unwrap()]);
    assert_exit(
        0,
        &["demo", "fleet-oddeven", fleet.to_str().unwrap(), "--force"],
    );
    let fdir = fleet.to_str().unwrap().to_string();
    let run0 = fleet.join("run-0.dtts").to_str().unwrap().to_string();
    let run1 = fleet.join("run-1.dtts").to_str().unwrap().to_string();
    let run2 = fleet.join("run-2.dtts").to_str().unwrap().to_string();
    let sn = stencil.join("normal.dtts").to_str().unwrap().to_string();

    // A healthy fleet passes the deny gate; one with the injected
    // fault is ranked #1 and denied with exit 3 — distinct from
    // misuse (2) so CI can gate on fleet homogeneity.
    assert_exit(0, &["fleet", &run0, &run1, &run2, "--gate", "deny"]);
    let (code, stdout, stderr) = run(&["fleet", &fdir, "--gate", "deny", "--suspect", "fault"]);
    assert_eq!(code, 3, "{stderr}");
    let rank1 = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("1  "))
        .unwrap_or_else(|| panic!("no rank-1 row in:\n{stdout}"));
    assert!(rank1.contains("fault"), "{stdout}");
    assert!(stdout.contains("it IS the fleet outlier"), "{stdout}");
    assert!(stderr.contains("fleet gate denied"), "{stderr}");

    // Misuse and diagnosed errors are exit 2.
    assert_exit(2, &["fleet", &run0]); // needs at least 2 runs
    assert_exit(2, &["fleet", &run0, &run1, "--suspect", "nope"]);
    assert_exit(2, &["fleet", &run0, &run1, "--format", "xml"]);
    assert_exit(2, &["fleet", &run0, &run1, "--bogus"]);
    // A ragged fleet (different world size → different trace set) is
    // a diagnosed refusal naming the run — never a panic.
    let (code, _, stderr) = run(&["fleet", &run0, &sn]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("ragged fleet"), "{stderr}");
    assert!(stderr.contains("`normal`"), "{stderr}");

    // Two stores sharing a file stem cannot both be served or fleeted
    // under one name: diagnosed at startup, naming BOTH paths.
    let a = dir.join("a");
    let b = dir.join("b");
    std::fs::create_dir_all(&a).unwrap();
    std::fs::create_dir_all(&b).unwrap();
    std::fs::copy(&run0, a.join("run.dtts")).unwrap();
    std::fs::copy(&run1, b.join("run.dtts")).unwrap();
    let ar = a.join("run.dtts").to_str().unwrap().to_string();
    let br = b.join("run.dtts").to_str().unwrap().to_string();
    for cmd in ["serve", "fleet"] {
        let (code, _, stderr) = run(&[cmd, &ar, &br]);
        assert_eq!(code, 2, "{cmd}: {stderr}");
        assert!(stderr.contains("ambiguous"), "{cmd}: {stderr}");
        assert!(
            stderr.contains(&ar) && stderr.contains(&br),
            "{cmd}: {stderr}"
        );
    }

    // `diff` aligns ragged runs over the union universe — different
    // trace populations degrade the scores, they never abort.
    assert_exit(0, &["diff", &run0, &sn, "--filter", "11.mpiall.K10"]);

    // --metrics carries the incrementality counters.
    let metrics = dir.join("m.json");
    assert_exit(0, &["fleet", &fdir, "--metrics", metrics.to_str().unwrap()]);
    let doc = std::fs::read_to_string(&metrics).unwrap();
    dt_obs::validate_json(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
    assert!(doc.contains("\"fleet_runs\":9"), "{doc}");
    assert!(doc.contains("\"fleet_lattice_folds\":144"), "{doc}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_and_metrics_outputs() {
    let dir = std::env::temp_dir().join(format!("difftrace_obs_out_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    assert_exit(0, &["demo", "oddeven", dir.to_str().unwrap()]);
    let n = dir.join("normal.dtts").to_str().unwrap().to_string();
    let f = dir.join("faulty.dtts").to_str().unwrap().to_string();
    let metrics = dir.join("m.json");

    // --profile goes to stderr; the report on stdout stays clean and
    // byte-identical to the uninstrumented run at any thread count.
    let (code, plain_stdout, _) = run(&[
        "diff",
        &n,
        &f,
        "--filter",
        "11.mpiall.K10",
        "--threads",
        "1",
    ]);
    assert_eq!(code, 0);
    for threads in ["1", "4"] {
        let (code, stdout, stderr) = run(&[
            "diff",
            &n,
            &f,
            "--filter",
            "11.mpiall.K10",
            "--threads",
            threads,
            "--profile",
            "--metrics",
            metrics.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "t={threads}: {stderr}");
        assert_eq!(stdout, plain_stdout, "t={threads}: stdout not identical");
        assert!(stderr.contains("== profile: diff"), "t={threads}: {stderr}");
        assert!(stderr.contains("filter"), "t={threads}: {stderr}");

        let doc = std::fs::read_to_string(&metrics).unwrap();
        dt_obs::validate_json(&doc).unwrap_or_else(|e| panic!("t={threads}: {e}\n{doc}"));
        assert!(doc.contains("\"schema\":\"difftrace-metrics/v1\""), "{doc}");
        std::fs::remove_file(&metrics).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}
