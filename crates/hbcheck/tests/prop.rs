//! Property tests: (1) the compressed-domain summarizer agrees with
//! the expanded walk on arbitrary (possibly defective) streams, and
//! (2) injected deadlock / orphan / race defects produce exactly the
//! expected HB0xx codes, with byte-identical reports in both domains.

use dt_trace::hb::{BlockedOp, HbLog, HbOp, VectorClock};
use dt_trace::{FunctionRegistry, TraceId};
use hbcheck::{analyze, compressed::Summarizer, expanded, HbCode, TraceProgress};
use nlr::{LoopTable, NlrBuilder};
use proptest::prelude::*;
use std::collections::BTreeSet;

const FNS: u32 = 6;

fn call(f: u32) -> u32 {
    f << 1
}
fn ret(f: u32) -> u32 {
    (f << 1) | 1
}

fn registry() -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.intern("MPI_Init");
    reg.intern("MPI_Recv");
    reg.intern("MPI_Send");
    for i in 3..FNS {
        reg.intern(&format!("fn{i}"));
    }
    reg
}

/// A well-formed, loopy stream.
fn balanced_stream() -> impl Strategy<Value = Vec<u32>> {
    (
        proptest::collection::vec(0u32..FNS, 1..5),
        1usize..25,
        proptest::collection::vec(0u32..FNS, 0..4),
    )
        .prop_map(|(body, reps, tail)| {
            let unit: Vec<u32> = body
                .iter()
                .map(|&f| call(f))
                .chain(body.iter().rev().map(|&f| ret(f)))
                .collect();
            let mut v = Vec::new();
            for _ in 0..reps {
                v.extend(&unit);
            }
            for &f in &tail {
                v.push(call(f));
                v.push(ret(f));
            }
            v
        })
}

#[derive(Debug, Clone, Copy)]
enum Defect {
    None,
    DeleteEvent(usize),
    DuplicateEvent(usize),
    FlipDirection(usize),
    TruncateTail(usize),
}

fn defect() -> impl Strategy<Value = Defect> {
    prop_oneof![
        Just(Defect::None),
        (0usize..1000).prop_map(Defect::DeleteEvent),
        (0usize..1000).prop_map(Defect::DuplicateEvent),
        (0usize..1000).prop_map(Defect::FlipDirection),
        (1usize..1000).prop_map(Defect::TruncateTail),
    ]
}

fn apply_defect(mut syms: Vec<u32>, d: Defect, truncated: bool) -> (Vec<u32>, bool) {
    if syms.is_empty() {
        return (syms, truncated);
    }
    match d {
        Defect::None => (syms, truncated),
        Defect::DeleteEvent(i) => {
            let i = i % syms.len();
            syms.remove(i);
            (syms, truncated)
        }
        Defect::DuplicateEvent(i) => {
            let i = i % syms.len();
            let s = syms[i];
            syms.insert(i, s);
            (syms, truncated)
        }
        Defect::FlipDirection(i) => {
            let i = i % syms.len();
            syms[i] ^= 1;
            (syms, truncated)
        }
        Defect::TruncateTail(n) => {
            let keep = syms.len().saturating_sub(1 + n % syms.len().max(1));
            syms.truncate(keep);
            (syms, true)
        }
    }
}

/// Both domains' progress for one stream (asserting NLR losslessness
/// on the way).
fn both_domains(
    id: TraceId,
    syms: &[u32],
    truncated: bool,
    k: usize,
) -> (TraceProgress, TraceProgress) {
    let exp = expanded::summarize(id, syms, truncated);
    let mut table = LoopTable::new();
    let term = NlrBuilder::new(k).build(syms, &mut table);
    assert_eq!(term.expand(&table), syms);
    let mut s = Summarizer::new(&table);
    (exp, s.summarize(id, &term, truncated))
}

fn codes(report: &hbcheck::HbReport) -> BTreeSet<HbCode> {
    report.codes()
}

/// A minimal log where each of `n` ranks stamps one Init event.
fn init_log(n: u32) -> HbLog {
    let mut hb = HbLog::new(n as usize);
    for r in 0..n {
        let mut c = VectorClock::zero(n as usize);
        c.tick(r as usize);
        hb.push(TraceId::master(r), "MPI_Init", HbOp::Local, &c);
    }
    hb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Core agreement: expanded and compressed summaries are equal for
    /// any stream, any compression window K.
    #[test]
    fn summaries_agree(
        base in balanced_stream(),
        d in defect(),
        truncated in any::<bool>(),
        k in 2usize..16,
    ) {
        let (syms, truncated) = apply_defect(base, d, truncated);
        let (exp, comp) = both_domains(TraceId::master(0), &syms, truncated, k);
        prop_assert_eq!(exp, comp, "syms={:?} k={}", syms, k);
    }

    /// An injected recv ring deadlock yields exactly {HB001, HB005}
    /// and byte-identical reports in both domains.
    #[test]
    fn injected_deadlock_cycle_is_exact_in_both_domains(
        n in 2u32..6,
        streams in proptest::collection::vec(balanced_stream(), 6),
        k in 2usize..12,
    ) {
        let reg = registry();
        let recv_fn = reg.intern("MPI_Recv").0;
        let mut hb = init_log(n);
        for r in 0..n {
            hb.blocked.push(BlockedOp {
                rank: r,
                name: "MPI_Recv".into(),
                op: HbOp::Recv { src: Some((r + 1) % n), tag: 0 },
            });
        }
        // Every rank's trace ends inside the blocking MPI_Recv call.
        let mut expanded_p = Vec::new();
        let mut compressed_p = Vec::new();
        for r in 0..n {
            let mut syms = streams[r as usize].clone();
            syms.push(call(recv_fn));
            let (e, c) = both_domains(TraceId::master(r), &syms, true, k);
            expanded_p.push(e);
            compressed_p.push(c);
        }
        let re = analyze(&hb, &expanded_p, &reg);
        let rc = analyze(&hb, &compressed_p, &reg);
        prop_assert_eq!(re.render_text(), rc.render_text());
        prop_assert_eq!(re.render_json(), rc.render_json());
        let expect: BTreeSet<HbCode> =
            [HbCode::WaitCycle, HbCode::Triage].into_iter().collect();
        prop_assert_eq!(codes(&re), expect, "{}", re.render_text());
        // The cycle is rendered rank-by-rank: every rank appears.
        let d = re.diagnostics().iter().find(|d| d.code == HbCode::WaitCycle).unwrap();
        for r in 0..n {
            prop_assert!(d.message.contains(&format!("rank {r} blocked in")), "{}", d.message);
        }
    }

    /// An orphaned receive (peer finished) yields exactly
    /// {HB002, HB005} — no phantom cycle.
    #[test]
    fn injected_orphan_is_exact(
        base in balanced_stream(),
        k in 2usize..12,
    ) {
        let reg = registry();
        let recv_fn = reg.intern("MPI_Recv").0;
        let mut hb = init_log(2);
        hb.blocked.push(BlockedOp {
            rank: 0,
            name: "MPI_Recv".into(),
            op: HbOp::Recv { src: Some(1), tag: 4 },
        });
        hb.finished = vec![1];
        let mut syms = base;
        syms.push(call(recv_fn));
        let (e, c) = both_domains(TraceId::master(0), &syms, true, k);
        let re = analyze(&hb, &[e], &reg);
        let rc = analyze(&hb, &[c], &reg);
        prop_assert_eq!(re.render_text(), rc.render_text());
        let expect: BTreeSet<HbCode> =
            [HbCode::OrphanOp, HbCode::Triage].into_iter().collect();
        prop_assert_eq!(codes(&re), expect, "{}", re.render_text());
        // HB002 anchors to the blocked rank's final event.
        let d = re.diagnostics().iter().find(|d| d.code == HbCode::OrphanOp).unwrap();
        prop_assert_eq!(d.trace, Some(TraceId::master(0)));
        prop_assert_eq!(d.span.map(|s| s.start), Some(syms.len() - 1));
    }

    /// Concurrent sends injected on one channel yield exactly {HB004};
    /// causally ordering the same sends silences it.
    #[test]
    fn injected_race_is_exact(
        n_sends in 2usize..5,
        tag in 0i32..3,
    ) {
        let reg = registry();
        let world = 4usize;
        let mut racy = HbLog::new(world);
        let mut ordered = HbLog::new(world);
        let mut carried = VectorClock::zero(world);
        for s in 0..n_sends {
            let sender = 1 + (s % (world - 1)) as u32;
            let op = HbOp::Send { dst: 0, tag, rendezvous: false };
            // Racy: each sender knows only itself.
            let mut c = VectorClock::zero(world);
            c.tick(sender as usize);
            racy.push(TraceId::master(sender), "MPI_Send", op, &c);
            // Ordered: each send carries the previous one's clock.
            carried.tick(sender as usize);
            ordered.push(TraceId::master(sender), "MPI_Send", op, &carried);
        }
        let rr = analyze(&racy, &[], &reg);
        let expect: BTreeSet<HbCode> = [HbCode::RacyChannel].into_iter().collect();
        prop_assert_eq!(codes(&rr), expect, "{}", rr.render_text());
        prop_assert!(analyze(&ordered, &[], &reg).is_clean());
    }
}
