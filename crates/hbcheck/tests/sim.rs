//! End-to-end: real simulated MPI deadlocks, analyzed through the
//! runtime-exported [`HbLog`] snapshot — the same artifact the
//! `difftrace hbcheck` pipeline consumes. Each scenario asserts the
//! *exact* HB0xx code set and, for the cycle, its rank-by-rank
//! rendering; progress summaries are computed in both domains and the
//! reports compared byte for byte.

use dt_trace::{FunctionRegistry, TraceId};
use hbcheck::{analyze, compressed::Summarizer, expanded, HbCode, TraceProgress};
use mpisim::{run, RunOutcome, SimConfig};
use nlr::{LoopTable, NlrBuilder};
use std::collections::BTreeSet;
use std::sync::Arc;

fn registry() -> Arc<FunctionRegistry> {
    Arc::new(FunctionRegistry::new())
}

/// Expanded-domain progress for every recorded trace.
fn expanded_progress(out: &RunOutcome) -> Vec<TraceProgress> {
    out.traces
        .iter()
        .map(|t| expanded::summarize(t.id, &t.to_symbols(), t.truncated))
        .collect()
}

/// Compressed-domain progress: compress each trace to an NLR term and
/// summarize without expanding.
fn compressed_progress(out: &RunOutcome) -> Vec<TraceProgress> {
    let mut table = LoopTable::new();
    let terms: Vec<(TraceId, nlr::Nlr, bool)> = out
        .traces
        .iter()
        .map(|t| {
            (
                t.id,
                NlrBuilder::new(6).build(&t.to_symbols(), &mut table),
                t.truncated,
            )
        })
        .collect();
    let mut s = Summarizer::new(&table);
    terms
        .iter()
        .map(|(id, term, truncated)| s.summarize(*id, term, *truncated))
        .collect()
}

fn codes_of(report: &hbcheck::HbReport) -> BTreeSet<HbCode> {
    report.codes()
}

#[test]
fn head_to_head_rendezvous_sends_report_the_exact_cycle() {
    let reg = registry();
    let cfg = SimConfig::new(2).with_eager_limit(8); // [i64; 4] forces rendezvous
    let out = run(cfg, reg.clone(), |rank| {
        rank.init()?;
        let peer = 1 - rank.rank();
        rank.send(peer, 0, &[7; 4])?; // both park: classic unsafe send
        let _ = rank.recv(peer, 0)?;
        rank.finalize()
    });
    assert!(out.deadlocked);

    let pe = expanded_progress(&out);
    let pc = compressed_progress(&out);
    let re = analyze(&out.hb, &pe, &reg);
    let rc = analyze(&out.hb, &pc, &reg);
    assert_eq!(re.render_text(), rc.render_text());
    assert_eq!(re.render_json(), rc.render_json());

    // Cycle + hang triage, plus one unmatched-send warning per parked
    // message that never found its receive.
    let expect: BTreeSet<HbCode> = [HbCode::WaitCycle, HbCode::UnmatchedSend, HbCode::Triage]
        .into_iter()
        .collect();
    assert_eq!(codes_of(&re), expect, "{}", re.render_text());

    let cycle = re
        .diagnostics()
        .iter()
        .find(|d| d.code == HbCode::WaitCycle)
        .expect("HB001 must fire");
    assert!(
        cycle.message.contains(
            "rank 0 blocked in MPI_Send(dst=1, tag=0) \u{2192} \
             rank 1 blocked in MPI_Send(dst=0, tag=0) \u{2192} back to rank 0"
        ),
        "cycle must be rendered rank by rank: {}",
        cycle.message
    );
}

#[test]
fn recv_from_finished_rank_is_an_orphan_not_a_cycle() {
    let reg = registry();
    let out = run(SimConfig::new(2), reg.clone(), |rank| {
        rank.init()?;
        if rank.rank() == 0 {
            let _ = rank.recv(1, 3)?; // rank 1 never sends
        }
        rank.finalize()
    });
    assert!(out.deadlocked);
    let re = analyze(&out.hb, &expanded_progress(&out), &reg);
    let expect: BTreeSet<HbCode> = [HbCode::OrphanOp, HbCode::Triage].into_iter().collect();
    assert_eq!(codes_of(&re), expect, "{}", re.render_text());
    let orphan = re
        .diagnostics()
        .iter()
        .find(|d| d.code == HbCode::OrphanOp)
        .unwrap();
    assert!(orphan.message.contains("MPI_Recv(src=1, tag=3)"));
    assert_eq!(orphan.trace, Some(TraceId::master(0)));
}

#[test]
fn collective_deserter_is_called_out_by_name() {
    let reg = registry();
    let out = run(SimConfig::new(3), reg.clone(), |rank| {
        rank.init()?;
        if rank.rank() != 2 {
            rank.barrier()?; // rank 2 deserts the barrier
        }
        rank.finalize()
    });
    assert!(out.deadlocked);
    let re = analyze(&out.hb, &expanded_progress(&out), &reg);
    let expect: BTreeSet<HbCode> = [HbCode::OrphanOp, HbCode::Triage].into_iter().collect();
    assert_eq!(codes_of(&re), expect, "{}", re.render_text());
    let orphan = re
        .diagnostics()
        .iter()
        .find(|d| d.code == HbCode::OrphanOp)
        .unwrap();
    assert!(
        orphan
            .message
            .contains("rank(s) 2 finished without joining"),
        "{}",
        orphan.message
    );
}

#[test]
fn triage_orders_ranks_least_progressed_first() {
    let reg = registry();
    // Rank 0 stalls immediately; rank 1 does extra sends to rank 2
    // before waiting on rank 0; rank 2 keeps receiving.
    let out = run(SimConfig::new(3), reg.clone(), |rank| {
        rank.init()?;
        match rank.rank() {
            0 => {
                let _ = rank.recv(1, 9)?; // never sent
            }
            1 => {
                rank.send(2, 0, &[1])?;
                rank.send(2, 0, &[2])?;
                let _ = rank.recv(0, 9)?; // never sent
            }
            _ => {
                let _ = rank.recv(1, 0)?;
                let _ = rank.recv(1, 0)?;
                let _ = rank.recv(1, 9)?; // never sent
            }
        }
        rank.finalize()
    });
    assert!(out.deadlocked);
    let re = analyze(&out.hb, &expanded_progress(&out), &reg);
    let triage = re
        .diagnostics()
        .iter()
        .find(|d| d.code == HbCode::Triage)
        .expect("HB005 must fire on a hung run");
    // Rank 0 (2 MPI calls: Init + the blocked recv) precedes the
    // busier ranks in the progress table.
    let pos = |needle: &str| triage.message.find(needle).unwrap_or(usize::MAX);
    assert!(
        pos("rank 0:") < pos("rank 1:"),
        "least-progressed rank must lead the table: {}",
        triage.message
    );
}
