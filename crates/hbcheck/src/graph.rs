//! The wait-for graph: who is blocked on whom.
//!
//! Built from the [`HbLog`]'s frozen blocked-operation state, with one
//! node per blocked rank and an edge `a → b` when `a` cannot proceed
//! until `b` acts:
//!
//! * a receive from a named source waits on that source;
//! * a wildcard receive waits on *every* other live rank (any of them
//!   could send — the edge set over-approximates, matching MPI's
//!   progress semantics);
//! * a rendezvous send waits on its destination;
//! * a collective waits on every live rank that has not arrived at its
//!   instance.
//!
//! Construction is O(ranks²) worst case (wildcards/collectives), with
//! no reference to the event log at all — the graph is a pure function
//! of the abort-time snapshot, so it is identical in the expanded and
//! compressed analysis domains.

use dt_trace::hb::{HbLog, HbOp};
use std::collections::BTreeMap;

/// The wait-for graph of one aborted (or hung) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitForGraph {
    /// `rank → ranks it waits on` (sorted, deduplicated), for every
    /// blocked rank.
    edges: BTreeMap<u32, Vec<u32>>,
}

impl WaitForGraph {
    /// Build the graph from a log's blocked-operation snapshot.
    pub fn build(hb: &HbLog) -> WaitForGraph {
        let world = hb.world_size() as u32;
        let live: Vec<u32> = (0..world).filter(|r| !hb.finished.contains(r)).collect();
        let mut edges: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for b in &hb.blocked {
            let mut targets: Vec<u32> = match b.op {
                HbOp::Recv { src: Some(s), .. } => vec![s],
                HbOp::Recv { src: None, .. } => {
                    live.iter().copied().filter(|&r| r != b.rank).collect()
                }
                HbOp::Send {
                    dst,
                    rendezvous: true,
                    ..
                } => vec![dst],
                HbOp::Collective { slot } => hb
                    .pending_collectives
                    .iter()
                    .find(|pc| pc.slot == slot)
                    .map(|pc| {
                        live.iter()
                            .copied()
                            .filter(|r| !pc.arrived.contains(r))
                            .collect()
                    })
                    .unwrap_or_default(),
                HbOp::Send {
                    rendezvous: false, ..
                }
                | HbOp::Local => Vec::new(),
            };
            targets.sort_unstable();
            targets.dedup();
            edges.insert(b.rank, targets);
        }
        WaitForGraph { edges }
    }

    /// The ranks `rank` waits on (empty when not blocked).
    pub fn waits_on(&self, rank: u32) -> &[u32] {
        self.edges.get(&rank).map_or(&[], Vec::as_slice)
    }

    /// All blocked ranks, ascending.
    pub fn blocked_ranks(&self) -> Vec<u32> {
        self.edges.keys().copied().collect()
    }

    /// One witness cycle per deadlocked strongly-connected component,
    /// deterministic: each cycle is the shortest cycle through its
    /// component's smallest rank, and cycles are returned in order of
    /// that smallest rank. A cycle `[r0, r1, …, rk]` means
    /// `r0 → r1 → … → rk → r0`.
    pub fn cycles(&self) -> Vec<Vec<u32>> {
        let sccs = self.sccs();
        let mut out = Vec::new();
        for scc in sccs {
            let root = scc[0];
            let self_loop = self.waits_on(root).contains(&root);
            if scc.len() < 2 && !self_loop {
                continue;
            }
            if let Some(cycle) = self.shortest_cycle_within(root, &scc) {
                out.push(cycle);
            }
        }
        out.sort();
        out
    }

    /// Strongly-connected components (iterative Tarjan), each sorted
    /// ascending, restricted to edges between blocked ranks.
    fn sccs(&self) -> Vec<Vec<u32>> {
        let nodes: Vec<u32> = self.edges.keys().copied().collect();
        let index_of: BTreeMap<u32, usize> =
            nodes.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let n = nodes.len();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|&r| {
                self.waits_on(r)
                    .iter()
                    .filter_map(|t| index_of.get(t).copied())
                    .collect()
            })
            .collect();

        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<u32>> = Vec::new();

        // Explicit DFS frames: (node, next child position).
        for start in 0..n {
            if index[start] != UNSET {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                if *child == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(*child) {
                    *child += 1;
                    if index[w] == UNSET {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w] = false;
                            scc.push(nodes[w]);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs.sort();
        sccs
    }

    /// BFS for the shortest cycle `root → … → root` using only nodes
    /// of `scc` (ascending neighbor order makes it deterministic).
    fn shortest_cycle_within(&self, root: u32, scc: &[u32]) -> Option<Vec<u32>> {
        let mut pred: BTreeMap<u32, u32> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &w in self.waits_on(v) {
                if w == root {
                    // Reconstruct root → … → v, then close the loop.
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != root {
                        cur = pred[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                if scc.contains(&w) && !pred.contains_key(&w) && w != root {
                    pred.insert(w, v);
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::hb::BlockedOp;

    fn blocked(rank: u32, op: HbOp) -> BlockedOp {
        BlockedOp {
            rank,
            name: match op {
                HbOp::Recv { .. } => "MPI_Recv".into(),
                HbOp::Send { .. } => "MPI_Send".into(),
                HbOp::Collective { .. } => "MPI_Allreduce".into(),
                HbOp::Local => "compute".into(),
            },
            op,
        }
    }

    fn recv(src: u32) -> HbOp {
        HbOp::Recv {
            src: Some(src),
            tag: 0,
        }
    }

    #[test]
    fn two_rank_recv_cycle() {
        let mut hb = HbLog::new(2);
        hb.blocked = vec![blocked(0, recv(1)), blocked(1, recv(0))];
        let g = WaitForGraph::build(&hb);
        assert_eq!(g.waits_on(0), &[1]);
        assert_eq!(g.cycles(), vec![vec![0, 1]]);
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        let mut hb = HbLog::new(3);
        hb.blocked = vec![blocked(1, recv(0)), blocked(2, recv(1))];
        let g = WaitForGraph::build(&hb);
        assert!(g.cycles().is_empty());
        assert_eq!(g.blocked_ranks(), vec![1, 2]);
    }

    #[test]
    fn collective_edges_point_at_missing_ranks() {
        // Rank 2 skipped the collective and blocks in a recv from 0;
        // ranks 0 and 1 wait in the collective on rank 2.
        let mut hb = HbLog::new(3);
        hb.blocked = vec![
            blocked(0, HbOp::Collective { slot: 4 }),
            blocked(1, HbOp::Collective { slot: 4 }),
            blocked(2, recv(0)),
        ];
        hb.pending_collectives = vec![dt_trace::hb::PendingCollective {
            slot: 4,
            name: "MPI_Allreduce".into(),
            arrived: vec![0, 1],
            mismatched: vec![],
        }];
        let g = WaitForGraph::build(&hb);
        assert_eq!(g.waits_on(0), &[2]);
        assert_eq!(g.waits_on(1), &[2]);
        assert_eq!(g.waits_on(2), &[0]);
        // One SCC {0, 2}; rank 1 waits into it but is not part of it.
        assert_eq!(g.cycles(), vec![vec![0, 2]]);
    }

    #[test]
    fn wildcard_recv_waits_on_all_live_ranks() {
        let mut hb = HbLog::new(4);
        hb.blocked = vec![blocked(1, HbOp::Recv { src: None, tag: 3 })];
        hb.finished = vec![3];
        let g = WaitForGraph::build(&hb);
        assert_eq!(g.waits_on(1), &[0, 2]);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn rendezvous_send_cycle_head_to_head() {
        let send = |dst| HbOp::Send {
            dst,
            tag: 0,
            rendezvous: true,
        };
        let mut hb = HbLog::new(2);
        hb.blocked = vec![blocked(0, send(1)), blocked(1, send(0))];
        let g = WaitForGraph::build(&hb);
        assert_eq!(g.cycles(), vec![vec![0, 1]]);
    }

    #[test]
    fn three_rank_ring_cycle_is_reported_once() {
        let mut hb = HbLog::new(3);
        hb.blocked = vec![
            blocked(0, recv(1)),
            blocked(1, recv(2)),
            blocked(2, recv(0)),
        ];
        let g = WaitForGraph::build(&hb);
        assert_eq!(g.cycles(), vec![vec![0, 1, 2]]);
    }
}
