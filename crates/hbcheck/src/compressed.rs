//! Compressed-domain trace summarization: [`crate::TraceProgress`]
//! computed **directly on the NLR term**, without expanding loops.
//!
//! Mirrors `tracelint`'s compressed checks (after Kini et al.'s
//! compressed-trace analyses): every loop *body* is summarized once —
//! its per-function call counts, its net stack effect, and its symbol
//! length — and `body^n` is handled in closed form: counts and length
//! multiply by `n`, and the stack effect's repetition follows the same
//! grow-prefix algebra as `tracelint::compressed::StackEffect`. A loop
//! of a million iterations therefore costs O(|body|), which is the
//! asymptotic win `hbcheck_bench` measures.

use crate::TraceProgress;
use dt_trace::TraceId;
use nlr::{Element, LoopId, LoopTable, Nlr};
use std::collections::{BTreeMap, HashMap};

/// The net effect of a symbol sequence on the call stack: the frames
/// it pops from its caller and the frames it leaves open. (Unlike
/// `tracelint`, no `ok` flag — judging stack *discipline* is TL001's
/// job; `hbcheck` only needs the open chain at truncation.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackEffect {
    /// Function IDs popped from the surrounding context, first first.
    pub pops: Vec<u32>,
    /// Function IDs left open, outermost first.
    pub pushes: Vec<u32>,
}

impl StackEffect {
    /// The empty sequence's effect.
    pub fn identity() -> StackEffect {
        StackEffect {
            pops: Vec::new(),
            pushes: Vec::new(),
        }
    }

    /// The effect of one NLR symbol (`fn_id << 1 | is_return`).
    pub fn sym(sym: u32) -> StackEffect {
        let fn_id = sym >> 1;
        if sym & 1 == 1 {
            StackEffect {
                pops: vec![fn_id],
                pushes: Vec::new(),
            }
        } else {
            StackEffect {
                pops: Vec::new(),
                pushes: vec![fn_id],
            }
        }
    }

    /// Sequential composition: `self` then `next`. `next`'s pops
    /// consume `self`'s pushes top-down (a return pops the innermost
    /// open call whether or not it matches — the expanded semantics).
    pub fn compose(&self, next: &StackEffect) -> StackEffect {
        let mut pops = self.pops.clone();
        let mut pushes = self.pushes.clone();
        for &f in &next.pops {
            if pushes.pop().is_none() {
                pops.push(f);
            }
        }
        pushes.extend_from_slice(&next.pushes);
        StackEffect { pops, pushes }
    }

    /// `self` composed with itself `count` times, in closed form: for
    /// `|pushes| ≥ |pops|` each extra iteration deposits the surviving
    /// prefix `pushes[..|pushes|−|pops|]`; symmetrically the unmatched
    /// pop tail accumulates. O(1) decision work for balanced bodies.
    pub fn repeat(&self, count: u64) -> StackEffect {
        match count {
            0 => return StackEffect::identity(),
            1 => return self.clone(),
            _ => {}
        }
        let p = &self.pops;
        let q = &self.pushes;
        let reps = usize::try_from(count - 1).expect("loop count exceeds usize");
        if q.len() >= p.len() {
            let grow = &q[..q.len() - p.len()];
            let mut pushes = Vec::with_capacity(grow.len() * reps + q.len());
            for _ in 0..reps {
                pushes.extend_from_slice(grow);
            }
            pushes.extend_from_slice(q);
            StackEffect {
                pops: p.clone(),
                pushes,
            }
        } else {
            let tail = &p[q.len()..];
            let mut pops = Vec::with_capacity(p.len() + tail.len() * reps);
            pops.extend_from_slice(p);
            for _ in 0..reps {
                pops.extend_from_slice(tail);
            }
            StackEffect {
                pops,
                pushes: q.clone(),
            }
        }
    }
}

/// One loop body's (or element sequence's) summary: everything the
/// progress analysis needs from one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BodySummary {
    /// Call-event count per function ID, for one iteration.
    pub calls: BTreeMap<u32, u64>,
    /// Net stack effect of one iteration.
    pub effect: StackEffect,
    /// Symbol count of one iteration.
    pub len: u64,
}

impl BodySummary {
    fn identity() -> BodySummary {
        BodySummary {
            calls: BTreeMap::new(),
            effect: StackEffect::identity(),
            len: 0,
        }
    }

    fn sym(sym: u32) -> BodySummary {
        let mut calls = BTreeMap::new();
        if sym & 1 == 0 {
            calls.insert(sym >> 1, 1);
        }
        BodySummary {
            calls,
            effect: StackEffect::sym(sym),
            len: 1,
        }
    }

    fn compose(&self, next: &BodySummary) -> BodySummary {
        let mut calls = self.calls.clone();
        for (&f, &n) in &next.calls {
            *calls.entry(f).or_insert(0) += n;
        }
        BodySummary {
            calls,
            effect: self.effect.compose(&next.effect),
            len: self.len + next.len,
        }
    }

    fn repeat(&self, count: u64) -> BodySummary {
        BodySummary {
            calls: self.calls.iter().map(|(&f, &n)| (f, n * count)).collect(),
            effect: self.effect.repeat(count),
            len: self.len * count,
        }
    }
}

/// Memoizes per-loop-body summaries against a shared loop table.
pub struct Summarizer<'t> {
    table: &'t LoopTable,
    memo: HashMap<LoopId, BodySummary>,
}

impl<'t> Summarizer<'t> {
    /// A summarizer over `table`.
    pub fn new(table: &'t LoopTable) -> Summarizer<'t> {
        Summarizer {
            table,
            memo: HashMap::new(),
        }
    }

    /// Summary of a whole element sequence.
    pub fn summary_of(&mut self, elements: &[Element]) -> BodySummary {
        let mut acc = BodySummary::identity();
        for e in elements {
            let s = match *e {
                Element::Sym(s) => BodySummary::sym(s),
                Element::Loop { body, count } => self.body_summary(body).repeat(count),
            };
            acc = acc.compose(&s);
        }
        acc
    }

    /// Summary of one iteration of `id`'s body (memoized).
    fn body_summary(&mut self, id: LoopId) -> BodySummary {
        if let Some(s) = self.memo.get(&id) {
            return s.clone();
        }
        let body = self.table.body(id);
        let s = self.summary_of(body);
        self.memo.insert(id, s.clone());
        s
    }

    /// Summarize one NLR term — must equal
    /// [`crate::expanded::summarize`] on the term's expansion.
    pub fn summarize(&mut self, id: TraceId, term: &Nlr, truncated: bool) -> TraceProgress {
        let s = self.summary_of(term.elements());
        TraceProgress {
            id,
            len: usize::try_from(s.len).expect("trace length exceeds usize"),
            calls: s.calls,
            open_stack: s.effect.pushes,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expanded;
    use nlr::NlrBuilder;

    fn call(f: u32) -> u32 {
        f << 1
    }
    fn ret(f: u32) -> u32 {
        (f << 1) | 1
    }

    fn agree(symbols: &[u32], truncated: bool) {
        let mut table = LoopTable::new();
        let term = NlrBuilder::new(10).build(symbols, &mut table);
        assert_eq!(term.expand(&table), symbols, "NLR must be lossless");
        let mut summarizer = Summarizer::new(&table);
        let id = TraceId::master(0);
        assert_eq!(
            summarizer.summarize(id, &term, truncated),
            expanded::summarize(id, symbols, truncated),
        );
    }

    #[test]
    fn loopy_stream_agrees_with_expanded() {
        let mut syms = vec![call(0)];
        for _ in 0..50 {
            syms.extend_from_slice(&[call(1), call(2), ret(2), ret(1)]);
        }
        syms.push(call(3)); // truncated inside fn 3
        agree(&syms, true);
    }

    #[test]
    fn nested_loops_agree_with_expanded() {
        let mut syms = Vec::new();
        for _ in 0..6 {
            for _ in 0..4 {
                syms.extend_from_slice(&[call(5), ret(5)]);
            }
            syms.extend_from_slice(&[call(6), ret(6)]);
        }
        agree(&syms, false);
    }

    #[test]
    fn unbalanced_loop_body_accumulates_open_calls() {
        // Each iteration opens fn 1 and never closes it.
        let mut syms = vec![call(0)];
        for _ in 0..5 {
            syms.extend_from_slice(&[call(1), call(2), ret(2)]);
        }
        agree(&syms, true);
    }

    #[test]
    fn high_repetition_counts_multiply_without_expansion() {
        // Hand-build L0 = (call 7, ret 7), term = L0^1_000_000.
        let mut table = LoopTable::new();
        let body = table.intern(vec![Element::Sym(call(7)), Element::Sym(ret(7))]);
        let term_elements = vec![Element::Loop {
            body,
            count: 1_000_000,
        }];
        let mut summarizer = Summarizer::new(&table);
        let s = summarizer.summary_of(&term_elements);
        assert_eq!(s.calls.get(&7), Some(&1_000_000));
        assert_eq!(s.len, 2_000_000);
        assert!(s.effect.pushes.is_empty());
    }

    #[test]
    fn stack_effect_repeat_matches_naive_composition() {
        let body = StackEffect::sym(call(1))
            .compose(&StackEffect::sym(call(2)))
            .compose(&StackEffect::sym(ret(2)));
        let mut naive = StackEffect::identity();
        for _ in 0..7 {
            naive = naive.compose(&body);
        }
        assert_eq!(body.repeat(7), naive);
    }
}
