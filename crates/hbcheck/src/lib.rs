//! `hbcheck` — happens-before analysis over recorded runs.
//!
//! A static semantic analyzer for the causally-stamped logs
//! ([`dt_trace::hb::HbLog`]) that the simulated MPI runtime exports
//! alongside its ParLOT-style call traces. Where `tracelint` checks the
//! *traces* (call/return streams), `hbcheck` checks the *run*: it
//! reconstructs who was waiting on whom when the execution ended and
//! turns that into actionable diagnostics.
//!
//! # Rule catalog
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | HB001 | error    | wait-for cycle: a set of ranks each blocked on the next — true deadlock |
//! | HB002 | error    | blocked operation that can never be matched (peer finished, collective signature mismatch, collective missing a finished rank) |
//! | HB003 | warning  | messages sent but never received |
//! | HB004 | warning  | concurrent (racy) sends on one `(dst, tag)` channel |
//! | HB005 | warning  | least-progressed-rank hang triage (PRODOMETER-style) |
//!
//! # Domains
//!
//! The per-trace side of the analysis (per-rank progress counts, the
//! open call chain at truncation) has two implementations with
//! identical verdicts: [`expanded`] scans the expanded symbol streams;
//! [`compressed`] walks NLR terms directly, summarizing each loop body
//! once and applying closed forms for the repetition — the same
//! compressed-trace technique as `tracelint`'s TL001–TL003 checks.
//! Property tests assert the two agree event-for-event.

pub mod compressed;
pub mod expanded;
pub mod graph;

use dt_trace::hb::HbLog;
use dt_trace::{FnId, FunctionRegistry, TraceId};
use std::collections::BTreeMap;
use std::fmt;

pub use dt_diag::{Severity, Span};
pub use graph::WaitForGraph;

/// A diagnostic carrying an [`HbCode`].
pub type HbDiagnostic = dt_diag::Diagnostic<HbCode>;

/// A canonical, sorted report of HB diagnostics.
pub type HbReport = dt_diag::Report<HbCode>;

/// Stable rule codes (HB001–HB005).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HbCode {
    /// HB001: wait-for-graph deadlock cycle.
    WaitCycle,
    /// HB002: blocked operation with no possible matching peer.
    OrphanOp,
    /// HB003: sends that were never received.
    UnmatchedSend,
    /// HB004: concurrent racy sends on one channel.
    RacyChannel,
    /// HB005: least-progressed-rank hang triage.
    Triage,
}

impl HbCode {
    /// The stable `HBnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            HbCode::WaitCycle => "HB001",
            HbCode::OrphanOp => "HB002",
            HbCode::UnmatchedSend => "HB003",
            HbCode::RacyChannel => "HB004",
            HbCode::Triage => "HB005",
        }
    }

    /// Short human title of the rule family.
    pub fn title(self) -> &'static str {
        match self {
            HbCode::WaitCycle => "wait-for cycle",
            HbCode::OrphanOp => "orphaned operation",
            HbCode::UnmatchedSend => "unmatched sends",
            HbCode::RacyChannel => "racy channel",
            HbCode::Triage => "hang triage",
        }
    }
}

impl fmt::Display for HbCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl dt_diag::Code for HbCode {
    fn as_str(self) -> &'static str {
        HbCode::as_str(self)
    }
    fn title(self) -> &'static str {
        HbCode::title(self)
    }
}

/// Per-trace progress facts, derivable in either domain.
///
/// [`expanded::summarize`] and [`compressed::Summarizer::summarize`]
/// must produce *equal* values for the same trace — that equality is
/// what "verdict agreement" means for `hbcheck`, since [`analyze`]
/// is a pure function of the [`HbLog`] and these summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceProgress {
    /// Which trace.
    pub id: TraceId,
    /// Total symbol count of the original stream (calls + returns).
    pub len: usize,
    /// Call-event count per function ID.
    pub calls: BTreeMap<u32, u64>,
    /// Function IDs of the calls still open at the end of the stream,
    /// outermost first (innermost last) — the hang signature.
    pub open_stack: Vec<u32>,
    /// Whether the trace was flagged truncated by the tracer.
    pub truncated: bool,
}

impl TraceProgress {
    /// Number of `MPI_*` call events, given the registry that interned
    /// the function IDs.
    pub fn mpi_calls(&self, registry: &FunctionRegistry) -> u64 {
        self.calls
            .iter()
            .filter(|(&f, _)| registry.name(FnId(f)).starts_with("MPI_"))
            .map(|(_, &n)| n)
            .sum()
    }

    /// Name of the innermost open call, if any.
    pub fn innermost_open(&self, registry: &FunctionRegistry) -> Option<String> {
        self.open_stack.last().map(|&f| registry.name(FnId(f)))
    }
}

/// Run every HB rule over one recorded execution.
///
/// `progress` carries the per-trace facts (from either domain — see
/// [`TraceProgress`]); `registry` resolves function IDs. The report is
/// canonically sorted and independent of `progress` order.
pub fn analyze(hb: &HbLog, progress: &[TraceProgress], registry: &FunctionRegistry) -> HbReport {
    let mut diags: Vec<HbDiagnostic> = Vec::new();
    let by_id: BTreeMap<TraceId, &TraceProgress> = progress.iter().map(|p| (p.id, p)).collect();
    let master = |r: u32| by_id.get(&TraceId::master(r)).copied();

    let graph = WaitForGraph::build(hb);
    let blocked: BTreeMap<u32, &dt_trace::hb::BlockedOp> =
        hb.blocked.iter().map(|b| (b.rank, b)).collect();

    // HB001: one witness cycle per strongly-connected wait-for
    // component, rendered rank-by-rank.
    for cycle in graph.cycles() {
        let chain = cycle
            .iter()
            .map(|&r| {
                let b = blocked[&r];
                format!("rank {r} blocked in {}", b.op.describe(&b.name))
            })
            .collect::<Vec<_>>()
            .join(" → ");
        let confirm: Vec<String> = cycle
            .iter()
            .filter_map(|&r| {
                let open = master(r)?.innermost_open(registry)?;
                Some(format!("rank {r} trace ends inside `{open}`"))
            })
            .collect();
        let mut d = HbDiagnostic::error(
            HbCode::WaitCycle,
            format!(
                "deadlock: wait-for cycle — {chain} → back to rank {}",
                cycle[0]
            ),
        );
        if !confirm.is_empty() {
            d = d.with_hint(format!("confirmed by the traces: {}", confirm.join("; ")));
        }
        diags.push(d);
    }

    // HB002: blocked operations that can never complete, anchored to
    // the blocked (or offending) rank's trace at its final event.
    let anchor = |r: u32| -> (Option<Span>, TraceId) {
        let id = TraceId::master(r);
        let span = master(r).filter(|p| p.len > 0).map(|p| Span::at(p.len - 1));
        (span, id)
    };
    let finished = |r: u32| hb.finished.contains(&r);
    for b in &hb.blocked {
        let peer = match b.op {
            dt_trace::hb::HbOp::Recv { src: Some(s), .. } => Some(("send", s)),
            dt_trace::hb::HbOp::Send {
                dst,
                rendezvous: true,
                ..
            } => Some(("receive", dst)),
            _ => None,
        };
        if let Some((verb, peer)) = peer {
            if finished(peer) {
                let (span, id) = anchor(b.rank);
                let mut d = HbDiagnostic::error(
                    HbCode::OrphanOp,
                    format!(
                        "rank {} blocked in {}, but rank {peer} already finished — \
                         no matching {verb} can ever arrive",
                        b.rank,
                        b.op.describe(&b.name)
                    ),
                )
                .with_trace(id);
                if let Some(s) = span {
                    d = d.with_span(s);
                }
                diags.push(d);
            }
        }
    }
    for pc in &hb.pending_collectives {
        for &m in &pc.mismatched {
            let (span, id) = anchor(m);
            let mut d = HbDiagnostic::error(
                HbCode::OrphanOp,
                format!(
                    "rank {m} arrived at {}(slot={}) with a mismatched signature; \
                     the collective can never complete",
                    pc.name, pc.slot
                ),
            )
            .with_trace(id);
            if let Some(s) = span {
                d = d.with_span(s);
            }
            diags.push(d);
        }
        let deserters: Vec<u32> = (0..hb.world_size() as u32)
            .filter(|&r| finished(r) && !pc.arrived.contains(&r))
            .collect();
        if !deserters.is_empty() {
            diags.push(HbDiagnostic::error(
                HbCode::OrphanOp,
                format!(
                    "{}(slot={}) can never complete: rank(s) {} finished without joining it",
                    pc.name,
                    pc.slot,
                    render_ranks(&deserters)
                ),
            ));
        }
    }

    // HB003: sends nobody received.
    for u in &hb.unmatched_sends {
        diags.push(
            HbDiagnostic::warning(
                HbCode::UnmatchedSend,
                format!(
                    "rank {} sent {} message(s) to rank {} (tag {}) that were never received",
                    u.src, u.count, u.dst, u.tag
                ),
            )
            .with_trace(TraceId::master(u.src)),
        );
    }

    // HB004: concurrent sends racing on one (dst, tag) channel — the
    // wildcard-receive nondeterminism source. One diagnostic per
    // channel, with the first racy pair as the witness.
    diags.extend(racy_channels(hb));

    // HB005: PRODOMETER-style triage, only for runs that hung.
    if !hb.blocked.is_empty() || progress.iter().any(|p| p.truncated) {
        diags.extend(triage(hb, progress, registry));
    }

    HbReport::new(diags)
}

/// `1, 2, 5` renderer for rank lists.
fn render_ranks(ranks: &[u32]) -> String {
    ranks
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// HB004: group send events by `(dst, tag)` channel and count
/// causally-concurrent pairs from different sources.
fn racy_channels(hb: &HbLog) -> Vec<HbDiagnostic> {
    let mut channels: BTreeMap<(u32, i32), Vec<(usize, u32)>> = BTreeMap::new();
    for i in 0..hb.len() {
        if let dt_trace::hb::HbOp::Send { dst, tag, .. } = hb.op_of(i) {
            channels
                .entry((dst, tag))
                .or_default()
                .push((i, hb.trace_of(i).process));
        }
    }
    let mut out = Vec::new();
    for ((dst, tag), sends) in channels {
        let mut racy = 0u64;
        let mut witness: Option<(usize, usize)> = None;
        for (x, &(i, pi)) in sends.iter().enumerate() {
            for &(j, pj) in &sends[x + 1..] {
                if pi != pj && hb.concurrent(i, j) {
                    racy += 1;
                    if witness.is_none() {
                        witness = Some((i, j));
                    }
                }
            }
        }
        if let Some((i, j)) = witness {
            out.push(
                HbDiagnostic::warning(
                    HbCode::RacyChannel,
                    format!(
                        "{racy} concurrent send pair(s) race on channel (dst={dst}, tag={tag}); \
                         e.g. {} from rank {} ‖ {} from rank {}",
                        hb.name_of(i),
                        hb.trace_of(i).process,
                        hb.name_of(j),
                        hb.trace_of(j).process
                    ),
                )
                .with_hint(
                    "a wildcard receive on this channel may observe either order across runs",
                ),
            );
        }
    }
    out
}

/// HB005: the ranked per-rank progress table, least progressed first.
fn triage(
    hb: &HbLog,
    progress: &[TraceProgress],
    registry: &FunctionRegistry,
) -> Vec<HbDiagnostic> {
    let least = hb.least_progressed_ranks();
    let last = hb.last_event_per_rank();
    let mut rows: Vec<(u64, u32, String)> = Vec::new();
    for r in 0..hb.world_size() as u32 {
        let p = progress.iter().find(|p| p.id == TraceId::master(r));
        let mpi = p.map_or(0, |p| p.mpi_calls(registry));
        let last_desc = last.get(r as usize).and_then(|e| e.as_ref()).map_or_else(
            || "no events".to_string(),
            |e| format!("{} {}", e.name, e.vc),
        );
        let marker = if least.contains(&r) { " [least]" } else { "" };
        rows.push((
            mpi,
            r,
            format!("rank {r}: {mpi} MPI call(s), last {last_desc}{marker}"),
        ));
    }
    rows.sort_by_key(|&(mpi, r, _)| (mpi, r));
    let table = rows
        .iter()
        .map(|(_, _, s)| s.as_str())
        .collect::<Vec<_>>()
        .join("; ");
    vec![HbDiagnostic::warning(
        HbCode::Triage,
        format!(
            "hang triage: least-progressed rank(s) {} — {table}",
            render_ranks(&least)
        ),
    )
    .with_hint("the least-progressed rank is where PRODOMETER would point first")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::hb::{
        BlockedOp, HbOp, PendingCollective, UnmatchedSend as Unmatched, VectorClock,
    };

    fn registry_with(names: &[&str]) -> FunctionRegistry {
        let r = FunctionRegistry::new();
        for n in names {
            r.intern(n);
        }
        r
    }

    fn log2() -> HbLog {
        let mut hb = HbLog::new(2);
        let mut c0 = VectorClock::zero(2);
        let mut c1 = VectorClock::zero(2);
        c0.tick(0);
        hb.push(TraceId::master(0), "MPI_Init", HbOp::Local, &c0);
        c1.tick(1);
        hb.push(TraceId::master(1), "MPI_Init", HbOp::Local, &c1);
        c0.tick(0);
        hb.push(
            TraceId::master(0),
            "MPI_Recv",
            HbOp::Recv {
                src: Some(1),
                tag: 0,
            },
            &c0,
        );
        c1.tick(1);
        hb.push(
            TraceId::master(1),
            "MPI_Recv",
            HbOp::Recv {
                src: Some(0),
                tag: 0,
            },
            &c1,
        );
        hb
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(HbCode::WaitCycle.as_str(), "HB001");
        assert_eq!(HbCode::OrphanOp.as_str(), "HB002");
        assert_eq!(HbCode::UnmatchedSend.as_str(), "HB003");
        assert_eq!(HbCode::RacyChannel.as_str(), "HB004");
        assert_eq!(HbCode::Triage.as_str(), "HB005");
        assert_eq!(HbCode::Triage.to_string(), "HB005");
    }

    #[test]
    fn recv_recv_cycle_fires_hb001_rank_by_rank() {
        let mut hb = log2();
        hb.blocked = vec![
            BlockedOp {
                rank: 0,
                name: "MPI_Recv".into(),
                op: HbOp::Recv {
                    src: Some(1),
                    tag: 0,
                },
            },
            BlockedOp {
                rank: 1,
                name: "MPI_Recv".into(),
                op: HbOp::Recv {
                    src: Some(0),
                    tag: 0,
                },
            },
        ];
        let registry = registry_with(&["MPI_Init", "MPI_Recv"]);
        let report = analyze(&hb, &[], &registry);
        assert!(report.codes().contains(&HbCode::WaitCycle));
        let text = report.render_text();
        assert!(
            text.contains(
                "rank 0 blocked in MPI_Recv(src=1, tag=0) → \
                 rank 1 blocked in MPI_Recv(src=0, tag=0) → back to rank 0"
            ),
            "{text}"
        );
        assert!(report.has_errors());
    }

    #[test]
    fn orphan_recv_from_finished_rank_fires_hb002() {
        let mut hb = log2();
        hb.blocked = vec![BlockedOp {
            rank: 0,
            name: "MPI_Recv".into(),
            op: HbOp::Recv {
                src: Some(1),
                tag: 7,
            },
        }];
        hb.finished = vec![1];
        let registry = registry_with(&["MPI_Init", "MPI_Recv"]);
        let progress = vec![TraceProgress {
            id: TraceId::master(0),
            len: 5,
            calls: BTreeMap::new(),
            open_stack: vec![1],
            truncated: true,
        }];
        let report = analyze(&hb, &progress, &registry);
        assert!(report.codes().contains(&HbCode::OrphanOp));
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == HbCode::OrphanOp)
            .unwrap();
        assert_eq!(d.trace, Some(TraceId::master(0)));
        assert_eq!(d.span, Some(Span::at(4)));
        assert!(!report.codes().contains(&HbCode::WaitCycle));
    }

    #[test]
    fn collective_mismatch_and_deserter_fire_hb002() {
        let mut hb = log2();
        hb.pending_collectives = vec![PendingCollective {
            slot: 3,
            name: "MPI_Allreduce".into(),
            arrived: vec![0, 1],
            mismatched: vec![1],
        }];
        let registry = registry_with(&["MPI_Allreduce"]);
        let report = analyze(&hb, &[], &registry);
        let text = report.render_text();
        assert!(text.contains("mismatched signature"), "{text}");

        let mut hb2 = log2();
        hb2.pending_collectives = vec![PendingCollective {
            slot: 0,
            name: "MPI_Barrier".into(),
            arrived: vec![0],
            mismatched: vec![],
        }];
        hb2.finished = vec![1];
        let report2 = analyze(&hb2, &[], &registry);
        assert!(
            report2
                .render_text()
                .contains("rank(s) 1 finished without joining"),
            "{}",
            report2.render_text()
        );
    }

    #[test]
    fn unmatched_sends_fire_hb003_warnings() {
        let mut hb = log2();
        hb.unmatched_sends = vec![Unmatched {
            src: 1,
            dst: 0,
            tag: 9,
            count: 3,
        }];
        let registry = registry_with(&[]);
        let report = analyze(&hb, &[], &registry);
        assert!(report.codes().contains(&HbCode::UnmatchedSend));
        assert!(!report.has_errors());
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn concurrent_sends_on_one_channel_fire_hb004() {
        let mut hb = HbLog::new(3);
        let mut c1 = VectorClock::zero(3);
        let mut c2 = VectorClock::zero(3);
        c1.tick(1);
        hb.push(
            TraceId::master(1),
            "MPI_Send",
            HbOp::Send {
                dst: 0,
                tag: 5,
                rendezvous: false,
            },
            &c1,
        );
        c2.tick(2);
        hb.push(
            TraceId::master(2),
            "MPI_Send",
            HbOp::Send {
                dst: 0,
                tag: 5,
                rendezvous: false,
            },
            &c2,
        );
        let registry = registry_with(&["MPI_Send"]);
        let report = analyze(&hb, &[], &registry);
        assert!(report.codes().contains(&HbCode::RacyChannel));
        let text = report.render_text();
        assert!(text.contains("(dst=0, tag=5)"), "{text}");

        // Causally ordered sends do not race.
        let mut hb2 = HbLog::new(3);
        let mut d1 = VectorClock::zero(3);
        d1.tick(1);
        hb2.push(
            TraceId::master(1),
            "MPI_Send",
            HbOp::Send {
                dst: 0,
                tag: 5,
                rendezvous: false,
            },
            &d1,
        );
        let mut d2 = d1.clone();
        d2.tick(2);
        hb2.push(
            TraceId::master(2),
            "MPI_Send",
            HbOp::Send {
                dst: 0,
                tag: 5,
                rendezvous: false,
            },
            &d2,
        );
        assert!(!analyze(&hb2, &[], &registry)
            .codes()
            .contains(&HbCode::RacyChannel));
    }

    #[test]
    fn triage_ranks_least_progressed_first() {
        let mut hb = log2();
        hb.blocked = vec![BlockedOp {
            rank: 1,
            name: "MPI_Recv".into(),
            op: HbOp::Recv {
                src: Some(0),
                tag: 0,
            },
        }];
        let registry = registry_with(&["MPI_Init", "MPI_Recv", "compute"]);
        let init = registry.intern("MPI_Init").0;
        let recv = registry.intern("MPI_Recv").0;
        let mk = |r: u32, mpi: u64| TraceProgress {
            id: TraceId::master(r),
            len: 4,
            calls: [(init, 1u64), (recv, mpi.saturating_sub(1))]
                .into_iter()
                .collect(),
            open_stack: vec![],
            truncated: false,
        };
        let report = analyze(&hb, &[mk(0, 5), mk(1, 2)], &registry);
        let text = report.render_text();
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == HbCode::Triage)
            .unwrap();
        let r1 = d.message.find("rank 1:").unwrap();
        let r0 = d.message.find("rank 0:").unwrap();
        assert!(r1 < r0, "least progressed must come first: {text}");
    }

    #[test]
    fn clean_run_is_clean() {
        let registry = registry_with(&["MPI_Init"]);
        let report = analyze(&log2(), &[], &registry);
        assert!(report.is_clean(), "{}", report.render_text());
    }
}
