//! Expanded-domain trace summarization: the reference semantics.
//!
//! Walks the raw symbol stream (`fn_id << 1 | is_return`) event by
//! event. [`crate::compressed`] must produce identical
//! [`TraceProgress`] values without expanding anything — the crate's
//! property tests assert that equality.

use crate::TraceProgress;
use dt_trace::TraceId;
use std::collections::BTreeMap;

/// Summarize one expanded symbol stream.
pub fn summarize(id: TraceId, symbols: &[u32], truncated: bool) -> TraceProgress {
    let mut calls: BTreeMap<u32, u64> = BTreeMap::new();
    let mut stack: Vec<u32> = Vec::new();
    for &sym in symbols {
        let fn_id = sym >> 1;
        if sym & 1 == 1 {
            // A return pops the innermost open call even when it does
            // not match (mirrors `tracelint`'s expanded semantics).
            stack.pop();
        } else {
            calls.entry(fn_id).and_modify(|n| *n += 1).or_insert(1);
            stack.push(fn_id);
        }
    }
    TraceProgress {
        id,
        len: symbols.len(),
        calls,
        open_stack: stack,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(f: u32) -> u32 {
        f << 1
    }
    fn ret(f: u32) -> u32 {
        (f << 1) | 1
    }

    #[test]
    fn counts_and_open_stack() {
        // main { a {} b { c — truncated
        let syms = [call(0), call(1), ret(1), call(2), call(3)];
        let p = summarize(TraceId::master(0), &syms, true);
        assert_eq!(p.len, 5);
        assert_eq!(p.calls.get(&0), Some(&1));
        assert_eq!(p.calls.get(&1), Some(&1));
        assert_eq!(p.calls.get(&3), Some(&1));
        assert_eq!(p.open_stack, vec![0, 2, 3]);
        assert!(p.truncated);
    }

    #[test]
    fn balanced_stream_leaves_nothing_open() {
        let syms = [call(4), call(5), ret(5), ret(4)];
        let p = summarize(TraceId::master(1), &syms, false);
        assert!(p.open_stack.is_empty());
        assert_eq!(p.calls.get(&5), Some(&1));
    }

    #[test]
    fn repeated_calls_accumulate() {
        let mut syms = Vec::new();
        for _ in 0..1000 {
            syms.extend_from_slice(&[call(7), ret(7)]);
        }
        let p = summarize(TraceId::master(0), &syms, false);
        assert_eq!(p.calls.get(&7), Some(&1000));
        assert_eq!(p.len, 2000);
    }
}
