//! Property tests: the Pike-VM engine agrees with a naive backtracking
//! reference evaluator on randomly generated patterns and inputs.

use proptest::prelude::*;
use rex::ast::Ast;
use rex::{parser, Regex};

/// Render an AST back to pattern syntax (inverse of the parser for the
/// constructs we generate).
fn render(ast: &Ast) -> String {
    match ast {
        Ast::Empty => String::new(),
        Ast::Literal(c) => {
            if "\\.^$|()[]{}*+?".contains(*c) {
                format!("\\{c}")
            } else {
                c.to_string()
            }
        }
        Ast::Dot => ".".to_string(),
        Ast::Class { negated, ranges } => {
            let mut s = String::from("[");
            if *negated {
                s.push('^');
            }
            for &(lo, hi) in ranges {
                if lo == hi {
                    s.push(lo);
                } else {
                    s.push(lo);
                    s.push('-');
                    s.push(hi);
                }
            }
            s.push(']');
            s
        }
        Ast::Concat(parts) => parts.iter().map(|p| format!("({})", render(p))).collect(),
        Ast::Alt(parts) => parts
            .iter()
            .map(|p| format!("({})", render(p)))
            .collect::<Vec<_>>()
            .join("|"),
        Ast::Repeat { node, min, max } => {
            let inner = format!("({})", render(node));
            match (min, max) {
                (0, None) => format!("{inner}*"),
                (1, None) => format!("{inner}+"),
                (0, Some(1)) => format!("{inner}?"),
                (m, None) => format!("{inner}{{{m},}}"),
                (m, Some(x)) => format!("{inner}{{{m},{x}}}"),
            }
        }
        Ast::AnchorStart => "^".to_string(),
        Ast::AnchorEnd => "$".to_string(),
    }
}

/// Naive exponential backtracking: can `ast` match `input[pos..end']`
/// for some end'? Returns the set of end positions (chars).
fn naive_ends(ast: &Ast, input: &[char], pos: usize) -> Vec<usize> {
    match ast {
        Ast::Empty => vec![pos],
        Ast::Literal(c) => {
            if input.get(pos) == Some(c) {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::Dot => {
            if pos < input.len() {
                vec![pos + 1]
            } else {
                vec![]
            }
        }
        Ast::Class { negated, ranges } => match input.get(pos) {
            Some(&c) => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                if inside != *negated {
                    vec![pos + 1]
                } else {
                    vec![]
                }
            }
            None => vec![],
        },
        Ast::AnchorStart => {
            if pos == 0 {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::AnchorEnd => {
            if pos == input.len() {
                vec![pos]
            } else {
                vec![]
            }
        }
        Ast::Concat(parts) => {
            let mut ends = vec![pos];
            for p in parts {
                let mut next = Vec::new();
                for e in ends {
                    next.extend(naive_ends(p, input, e));
                }
                next.sort_unstable();
                next.dedup();
                ends = next;
                if ends.is_empty() {
                    break;
                }
            }
            ends
        }
        Ast::Alt(parts) => {
            let mut ends: Vec<usize> = parts
                .iter()
                .flat_map(|p| naive_ends(p, input, pos))
                .collect();
            ends.sort_unstable();
            ends.dedup();
            ends
        }
        Ast::Repeat { node, min, max } => {
            // BFS over repetition counts, capped by input length.
            let cap = max.map(|m| m as usize).unwrap_or(input.len() + 1);
            let mut current = vec![pos];
            let mut result = Vec::new();
            if *min == 0 {
                result.push(pos);
            }
            for rep in 1..=cap {
                let mut next = Vec::new();
                for e in &current {
                    next.extend(naive_ends(node, input, *e));
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    break;
                }
                if rep >= *min as usize {
                    result.extend(&next);
                }
                // Guard against empty-match infinite loops: once the
                // frontier is stable, every higher repetition count
                // yields the same ends — including counts ≥ min.
                if next == current {
                    if rep < *min as usize {
                        result.extend(&next);
                    }
                    break;
                }
                current = next;
            }
            result.sort_unstable();
            result.dedup();
            result
        }
    }
}

fn naive_is_match(ast: &Ast, input: &str) -> bool {
    let chars: Vec<char> = input.chars().collect();
    (0..=chars.len()).any(|start| !naive_ends(ast, &chars, start).is_empty())
}

/// Pattern strategy: a small recursive AST over a tiny alphabet.
fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        prop_oneof![Just('a'), Just('b'), Just('c')].prop_map(Ast::Literal),
        Just(Ast::Dot),
        Just(Ast::Class {
            negated: false,
            ranges: vec![('a', 'b')],
        }),
        Just(Ast::Class {
            negated: true,
            ranges: vec![('a', 'a')],
        }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Ast::Concat),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Ast::Alt),
            (inner, 0u32..3, 0u32..3).prop_map(|(n, min, extra)| Ast::Repeat {
                node: Box::new(n),
                min,
                max: Some(min + extra),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vm_agrees_with_naive_backtracker(
        ast in ast_strategy(),
        input in "[abcd]{0,8}",
    ) {
        let pattern = render(&ast);
        let parsed = parser::parse(&pattern)
            .unwrap_or_else(|e| panic!("render produced unparsable `{pattern}`: {e}"));
        let re = Regex::new(&pattern).unwrap();
        let expected = naive_is_match(&parsed, &input);
        prop_assert_eq!(
            re.is_match(&input),
            expected,
            "pattern `{}` on input `{}`",
            pattern,
            input
        );
    }

    #[test]
    fn find_is_consistent_with_is_match(
        ast in ast_strategy(),
        input in "[abcd]{0,8}",
    ) {
        let re = Regex::new(&render(&ast)).unwrap();
        let found = re.find(&input);
        prop_assert_eq!(found.is_some(), re.is_match(&input));
        if let Some((s, e)) = found {
            prop_assert!(s <= e && e <= input.len());
            prop_assert!(input.is_char_boundary(s) && input.is_char_boundary(e));
        }
    }

    #[test]
    fn literal_patterns_match_like_contains(
        needle in "[ab]{1,4}",
        hay in "[abc]{0,10}",
    ) {
        let re = Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn arbitrary_pattern_strings_never_panic(pattern in ".{0,20}", input in ".{0,20}") {
        // Compilation may fail, matching must never panic.
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&input);
            let _ = re.find(&input);
        }
    }
}
