//! Thompson-NFA compiler.
//!
//! Compiles an [`Ast`] into a flat vector of [`State`]s. Bounded
//! repetitions are expanded structurally (`a{2,4}` → `aa(a(a)?)?`), so
//! the VM only ever sees four state kinds.

use crate::ast::{Ast, ClassRange};

/// Index of a state in [`Nfa::states`].
pub type StateId = usize;

/// Position-dependent zero-width assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assertion {
    /// `^` — only passes at input position 0.
    Start,
    /// `$` — only passes at end of input.
    End,
}

/// What a [`State::Char`] state accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Matcher {
    /// One specific character.
    Literal(char),
    /// Any character.
    Dot,
    /// A character class.
    Class {
        /// Negated (`[^…]`)?
        negated: bool,
        /// Inclusive ranges.
        ranges: Vec<ClassRange>,
    },
}

impl Matcher {
    /// Does `c` satisfy this matcher? `ci` enables case-insensitive
    /// comparison (simple one-char folding).
    pub fn matches(&self, c: char, ci: bool) -> bool {
        match self {
            Matcher::Dot => true,
            Matcher::Literal(l) => {
                if ci {
                    eq_ci(*l, c)
                } else {
                    *l == c
                }
            }
            Matcher::Class { negated, ranges } => {
                let inside = if ci {
                    let folded = fold(c);
                    ranges.iter().any(|&(lo, hi)| {
                        (lo <= c && c <= hi) || (fold(lo) <= folded && folded <= fold(hi))
                    })
                } else {
                    ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi)
                };
                inside != *negated
            }
        }
    }
}

fn fold(c: char) -> char {
    c.to_lowercase().next().unwrap_or(c)
}

fn eq_ci(a: char, b: char) -> bool {
    a == b || fold(a) == fold(b)
}

/// A compiled NFA state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum State {
    /// Consume one character accepted by the matcher, then go to `next`.
    Char(Matcher, StateId),
    /// Epsilon-split to both targets (preference order irrelevant here —
    /// we simulate all threads).
    Split(StateId, StateId),
    /// Zero-width assertion; falls through to `next` if it holds.
    Assert(Assertion, StateId),
    /// Accepting state.
    Match,
}

/// A compiled NFA: states plus the designated start state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Flat state arena.
    pub states: Vec<State>,
    /// Entry state.
    pub start: StateId,
    /// Case-insensitive matching flag applied by the VM.
    pub case_insensitive: bool,
}

impl Nfa {
    /// Number of states (proxy for compiled-pattern size).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the automaton has no states (never constructed normally).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Compile an AST to an NFA.
pub fn compile(ast: &Ast, case_insensitive: bool) -> Nfa {
    let mut c = Compiler { states: Vec::new() };
    let frag = c.compile_node(ast);
    let m = c.push(State::Match);
    c.patch(&frag.outs, m);
    Nfa {
        states: c.states,
        start: frag.start,
        case_insensitive,
    }
}

/// A dangling out-edge of a fragment: `(state, which branch)`.
#[derive(Debug, Clone, Copy)]
struct Hole {
    state: StateId,
    /// For `Split`, 0 = left target, 1 = right target. For the other
    /// kinds there is a single target (branch 0).
    branch: u8,
}

struct Frag {
    start: StateId,
    outs: Vec<Hole>,
}

struct Compiler {
    states: Vec<State>,
}

const PENDING: StateId = usize::MAX;

impl Compiler {
    fn push(&mut self, s: State) -> StateId {
        self.states.push(s);
        self.states.len() - 1
    }

    fn patch(&mut self, holes: &[Hole], target: StateId) {
        for h in holes {
            match &mut self.states[h.state] {
                State::Char(_, next) | State::Assert(_, next) => *next = target,
                State::Split(a, b) => {
                    if h.branch == 0 {
                        *a = target;
                    } else {
                        *b = target;
                    }
                }
                State::Match => unreachable!("Match state has no out-edges"),
            }
        }
    }

    fn compile_node(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                // A split whose both branches dangle to the same place
                // acts as an epsilon edge.
                let s = self.push(State::Split(PENDING, PENDING));
                Frag {
                    start: s,
                    outs: vec![
                        Hole {
                            state: s,
                            branch: 0,
                        },
                        Hole {
                            state: s,
                            branch: 1,
                        },
                    ],
                }
            }
            Ast::Literal(c) => {
                let s = self.push(State::Char(Matcher::Literal(*c), PENDING));
                Frag {
                    start: s,
                    outs: vec![Hole {
                        state: s,
                        branch: 0,
                    }],
                }
            }
            Ast::Dot => {
                let s = self.push(State::Char(Matcher::Dot, PENDING));
                Frag {
                    start: s,
                    outs: vec![Hole {
                        state: s,
                        branch: 0,
                    }],
                }
            }
            Ast::Class { negated, ranges } => {
                let s = self.push(State::Char(
                    Matcher::Class {
                        negated: *negated,
                        ranges: ranges.clone(),
                    },
                    PENDING,
                ));
                Frag {
                    start: s,
                    outs: vec![Hole {
                        state: s,
                        branch: 0,
                    }],
                }
            }
            Ast::AnchorStart => {
                let s = self.push(State::Assert(Assertion::Start, PENDING));
                Frag {
                    start: s,
                    outs: vec![Hole {
                        state: s,
                        branch: 0,
                    }],
                }
            }
            Ast::AnchorEnd => {
                let s = self.push(State::Assert(Assertion::End, PENDING));
                Frag {
                    start: s,
                    outs: vec![Hole {
                        state: s,
                        branch: 0,
                    }],
                }
            }
            Ast::Concat(parts) => {
                let mut iter = parts.iter();
                let first = self.compile_node(iter.next().expect("non-empty concat"));
                let mut outs = first.outs;
                for part in iter {
                    let next = self.compile_node(part);
                    self.patch(&outs, next.start);
                    outs = next.outs;
                }
                Frag {
                    start: first.start,
                    outs,
                }
            }
            Ast::Alt(branches) => {
                // Chain of splits funneling into each branch.
                let frags: Vec<Frag> = branches.iter().map(|b| self.compile_node(b)).collect();
                let mut outs = Vec::new();
                let mut start = frags.last().unwrap().start;
                for f in frags.iter().rev().skip(1) {
                    let s = self.push(State::Split(f.start, start));
                    start = s;
                }
                for f in frags {
                    outs.extend(f.outs);
                }
                Frag { start, outs }
            }
            Ast::Repeat { node, min, max } => self.compile_repeat(node, *min, *max),
        }
    }

    fn compile_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Frag {
        match (min, max) {
            (0, None) => self.compile_star(node),
            (min, None) => {
                // node{min,} = node^min node*
                let head = self.compile_exactly(node, min);
                let tail = self.compile_star(node);
                self.patch(&head.outs, tail.start);
                Frag {
                    start: head.start,
                    outs: tail.outs,
                }
            }
            (0, Some(0)) => self.compile_node(&Ast::Empty),
            (0, Some(m)) => self.compile_optionals(node, m),
            (min, Some(m)) => {
                let head = self.compile_exactly(node, min);
                if m == min {
                    return head;
                }
                let tail = self.compile_optionals(node, m - min);
                self.patch(&head.outs, tail.start);
                Frag {
                    start: head.start,
                    outs: tail.outs,
                }
            }
        }
    }

    /// `node*`
    fn compile_star(&mut self, node: &Ast) -> Frag {
        let split = self.push(State::Split(PENDING, PENDING));
        let body = self.compile_node(node);
        // Left branch enters the body; body loops back to the split.
        if let State::Split(a, _) = &mut self.states[split] {
            *a = body.start;
        }
        self.patch(&body.outs, split);
        Frag {
            start: split,
            outs: vec![Hole {
                state: split,
                branch: 1,
            }],
        }
    }

    /// `node^n` (n ≥ 1), concatenated copies.
    fn compile_exactly(&mut self, node: &Ast, n: u32) -> Frag {
        debug_assert!(n >= 1);
        let first = self.compile_node(node);
        let mut outs = first.outs;
        for _ in 1..n {
            let next = self.compile_node(node);
            self.patch(&outs, next.start);
            outs = next.outs;
        }
        Frag {
            start: first.start,
            outs,
        }
    }

    /// `(node (node (…)?)?)?` — up to `n` optional copies.
    fn compile_optionals(&mut self, node: &Ast, n: u32) -> Frag {
        debug_assert!(n >= 1);
        let mut outs: Vec<Hole> = Vec::new();
        let mut start = None;
        for _ in 0..n {
            let split = self.push(State::Split(PENDING, PENDING));
            let body = self.compile_node(node);
            if let State::Split(a, _) = &mut self.states[split] {
                *a = body.start;
            }
            outs.push(Hole {
                state: split,
                branch: 1,
            });
            if let Some(prev_body_outs) = start.replace((split, body.outs.clone())) {
                // Patch previous body's outs to this split.
                let (_, prev_outs): (StateId, Vec<Hole>) = prev_body_outs;
                self.patch(&prev_outs, split);
            }
        }
        // The chain is built head-first: re-walk to find the first split.
        // Simpler: rebuild — the first split pushed is the entry.
        let entry = outs[0].state;
        let last_body_outs = start.unwrap().1;
        let mut all_outs = outs;
        all_outs.extend(last_body_outs);
        Frag {
            start: entry,
            outs: all_outs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn nfa(p: &str) -> Nfa {
        compile(&parse(p).unwrap(), false)
    }

    #[test]
    fn no_pending_targets_after_compile() {
        for p in [
            "a", "abc", "a|b", "a*", "a+", "a?", "(ab)*c", "a{2,4}", "^a$", "[a-z]+", "",
        ] {
            let n = nfa(p);
            for (i, s) in n.states.iter().enumerate() {
                match s {
                    State::Char(_, t) | State::Assert(_, t) => {
                        assert_ne!(*t, PENDING, "pattern {p}: state {i} dangling");
                    }
                    State::Split(a, b) => {
                        assert_ne!(*a, PENDING, "pattern {p}: state {i} dangling");
                        assert_ne!(*b, PENDING, "pattern {p}: state {i} dangling");
                    }
                    State::Match => {}
                }
            }
        }
    }

    #[test]
    fn state_counts_are_linear() {
        // Thompson construction: O(pattern) states.
        let n = nfa("(a|b)*abb");
        assert!(n.len() < 20, "unexpectedly large NFA: {}", n.len());
    }

    #[test]
    fn matcher_case_folding() {
        let m = Matcher::Literal('a');
        assert!(m.matches('A', true));
        assert!(!m.matches('A', false));
        let cls = Matcher::Class {
            negated: false,
            ranges: vec![('a', 'z')],
        };
        assert!(cls.matches('Q', true));
        assert!(!cls.matches('Q', false));
        let neg = Matcher::Class {
            negated: true,
            ranges: vec![('0', '9')],
        };
        assert!(neg.matches('x', false));
        assert!(!neg.matches('5', false));
    }
}
