//! Pike-style NFA simulation (no backtracking).
//!
//! `is_match` runs all threads simultaneously, seeding a new thread at
//! every input position to implement unanchored search — `O(n·m)` with
//! `n` input chars and `m` states. `find` reports the leftmost-longest
//! match range.

use crate::nfa::{Assertion, Nfa, State, StateId};

/// A deduplicated set of live NFA states.
struct ThreadSet {
    dense: Vec<StateId>,
    /// Every state marked `seen` during closure, including epsilon
    /// states that never reach `dense` — all must be reset by `clear`.
    marked: Vec<StateId>,
    seen: Vec<bool>,
}

impl ThreadSet {
    fn new(n: usize) -> ThreadSet {
        ThreadSet {
            dense: Vec::with_capacity(n),
            marked: Vec::with_capacity(n),
            seen: vec![false; n],
        }
    }

    fn clear(&mut self) {
        for &s in &self.marked {
            self.seen[s] = false;
        }
        self.marked.clear();
        self.dense.clear();
    }

    /// Add `state` and follow epsilon edges; `pos`/`len` give the current
    /// position in *characters* for anchor assertions.
    fn add(&mut self, nfa: &Nfa, state: StateId, pos: usize, len: usize) {
        if self.seen[state] {
            return;
        }
        self.seen[state] = true;
        self.marked.push(state);
        match &nfa.states[state] {
            State::Split(a, b) => {
                let (a, b) = (*a, *b);
                self.add(nfa, a, pos, len);
                self.add(nfa, b, pos, len);
            }
            State::Assert(kind, next) => {
                let holds = match kind {
                    Assertion::Start => pos == 0,
                    Assertion::End => pos == len,
                };
                if holds {
                    let next = *next;
                    self.add(nfa, next, pos, len);
                }
            }
            State::Char(..) | State::Match => {
                self.dense.push(state);
            }
        }
    }

    fn contains_match(&self, nfa: &Nfa) -> bool {
        self.dense
            .iter()
            .any(|&s| matches!(nfa.states[s], State::Match))
    }
}

/// Unanchored match test.
#[allow(clippy::needless_range_loop)] // pos doubles as anchor context
pub fn is_match(nfa: &Nfa, input: &str) -> bool {
    let chars: Vec<char> = input.chars().collect();
    let len = chars.len();
    let mut clist = ThreadSet::new(nfa.len());
    let mut nlist = ThreadSet::new(nfa.len());

    for pos in 0..=len {
        // Unanchored search: a fresh attempt may begin at any position.
        clist.add(nfa, nfa.start, pos, len);
        if clist.contains_match(nfa) {
            return true;
        }
        if pos == len {
            break;
        }
        let c = chars[pos];
        nlist.clear();
        for &s in &clist.dense {
            if let State::Char(m, next) = &nfa.states[s] {
                if m.matches(c, nfa.case_insensitive) {
                    nlist.add(nfa, *next, pos + 1, len);
                }
            }
        }
        std::mem::swap(&mut clist, &mut nlist);
    }
    false
}

/// Leftmost-longest search returning `(start, end)` *byte* offsets.
pub fn find(nfa: &Nfa, input: &str) -> Option<(usize, usize)> {
    let indexed: Vec<(usize, char)> = input.char_indices().collect();
    let len = indexed.len();
    let byte_at = |char_pos: usize| -> usize {
        if char_pos == len {
            input.len()
        } else {
            indexed[char_pos].0
        }
    };

    let mut clist = ThreadSet::new(nfa.len());
    let mut nlist = ThreadSet::new(nfa.len());

    for start in 0..=len {
        clist.clear();
        clist.add(nfa, nfa.start, start, len);
        let mut last_match: Option<usize> = None;
        if clist.contains_match(nfa) {
            last_match = Some(start);
        }
        let mut pos = start;
        while pos < len && !clist.dense.is_empty() {
            let c = indexed[pos].1;
            nlist.clear();
            for &s in &clist.dense {
                if let State::Char(m, next) = &nfa.states[s] {
                    if m.matches(c, nfa.case_insensitive) {
                        nlist.add(nfa, *next, pos + 1, len);
                    }
                }
            }
            std::mem::swap(&mut clist, &mut nlist);
            pos += 1;
            if clist.contains_match(nfa) {
                last_match = Some(pos);
            }
        }
        if let Some(end) = last_match {
            return Some((byte_at(start), byte_at(end)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn longest_match_at_leftmost_start() {
        let re = Regex::new("a+").unwrap();
        assert_eq!(re.find("xxaaayaa"), Some((2, 5)));
    }

    #[test]
    fn anchored_find() {
        let re = Regex::new("^ab").unwrap();
        assert_eq!(re.find("abab"), Some((0, 2)));
        assert_eq!(re.find("xab"), None);
    }

    #[test]
    fn end_anchor_find() {
        let re = Regex::new("ab$").unwrap();
        assert_eq!(re.find("abab"), Some((2, 4)));
    }

    #[test]
    fn utf8_byte_offsets() {
        let re = Regex::new("b+").unwrap();
        // 'λ' is 2 bytes.
        assert_eq!(re.find("λbb"), Some((2, 4)));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (a?)^25 a^25 against a^25 — classic backtracking killer.
        let mut pat = String::new();
        for _ in 0..25 {
            pat.push_str("a?");
        }
        for _ in 0..25 {
            pat.push('a');
        }
        let re = Regex::new(&pat).unwrap();
        let input: String = std::iter::repeat_n('a', 25).collect();
        let t0 = std::time::Instant::now();
        assert!(re.is_match(&input));
        assert!(
            t0.elapsed().as_millis() < 1000,
            "NFA simulation should not backtrack exponentially"
        );
    }
}
