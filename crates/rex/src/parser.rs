//! Recursive-descent parser producing an [`Ast`].
//!
//! Grammar (standard POSIX-ish subset):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?' | '{' n (',' m?)? '}')*
//! atom   := literal | '.' | class | '(' alt ')' | '^' | '$' | escape
//! ```

use crate::ast::Ast;
use crate::error::ParseError;

/// Parse a pattern into an AST.
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.char_indices().collect(),
        pos: 0,
    };
    let ast = p.parse_alt()?;
    if p.pos < p.chars.len() {
        let (byte, c) = p.chars[p.pos];
        return Err(ParseError::new(byte, format!("unexpected character `{c}`")));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn byte_pos(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(b, _)| b)
            .unwrap_or_else(|| {
                self.chars
                    .last()
                    .map(|&(b, c)| b + c.len_utf8())
                    .unwrap_or(0)
            })
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.parse_atom()?;
        loop {
            // Remember where the operator itself sits *before* bumping
            // past it, so errors point at `*`, not at what follows.
            let op_at = self.byte_pos();
            let (min, max) = match self.peek() {
                Some('*') => {
                    self.bump();
                    (0, None)
                }
                Some('+') => {
                    self.bump();
                    (1, None)
                }
                Some('?') => {
                    self.bump();
                    (0, Some(1))
                }
                Some('{') => {
                    self.bump();
                    self.parse_bounds()?
                }
                _ => break,
            };
            if matches!(node, Ast::AnchorStart | Ast::AnchorEnd | Ast::Empty) {
                return Err(ParseError::new(
                    op_at,
                    "repetition operator applied to nothing repeatable",
                ));
            }
            node = Ast::Repeat {
                node: Box::new(node),
                min,
                max,
            };
        }
        Ok(node)
    }

    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let start = self.byte_pos();
        let min = self.parse_number()?;
        match self.bump() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok((min, None));
                }
                let max = self.parse_number()?;
                if self.bump() != Some('}') {
                    return Err(ParseError::new(start, "expected `}` to close repetition"));
                }
                if max < min {
                    return Err(ParseError::new(
                        start,
                        format!("invalid repetition range {{{min},{max}}}"),
                    ));
                }
                Ok((min, Some(max)))
            }
            _ => Err(ParseError::new(start, "malformed `{…}` repetition")),
        }
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let start = self.byte_pos();
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        digits
            .parse::<u32>()
            .map_err(|_| ParseError::new(start, "expected a number in `{…}`"))
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        let start = self.byte_pos();
        match self.bump() {
            None => Err(ParseError::new(start, "unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(ParseError::new(start, "unbalanced `(`"));
                }
                Ok(inner)
            }
            Some(')') => Err(ParseError::new(start, "unbalanced `)`")),
            Some('[') => self.parse_class(start),
            Some('.') => Ok(Ast::Dot),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('*') | Some('+') | Some('?') => Err(ParseError::new(
                start,
                "repetition operator at start of expression",
            )),
            Some('\\') => self.parse_escape(start),
            Some(c) => Ok(Ast::Literal(c)),
        }
    }

    fn parse_escape(&mut self, start: usize) -> Result<Ast, ParseError> {
        match self.bump() {
            None => Err(ParseError::new(start, "dangling `\\` at end of pattern")),
            Some('d') => Ok(Ast::digit(false)),
            Some('D') => Ok(Ast::digit(true)),
            Some('w') => Ok(Ast::word(false)),
            Some('W') => Ok(Ast::word(true)),
            Some('s') => Ok(Ast::space(false)),
            Some('S') => Ok(Ast::space(true)),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some('r') => Ok(Ast::Literal('\r')),
            // Any punctuation escapes to itself (`\.`, `\\`, `\{`, …).
            Some(c) if !c.is_alphanumeric() => Ok(Ast::Literal(c)),
            Some(c) => Err(ParseError::new(start, format!("unknown escape `\\{c}`"))),
        }
    }

    fn parse_class(&mut self, start: usize) -> Result<Ast, ParseError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        // POSIX quirk: a `]` immediately after `[` or `[^` is a literal.
        if self.peek() == Some(']') {
            self.bump();
            ranges.push((']', ']'));
        }
        loop {
            let item_at = self.byte_pos();
            let lo = match self.bump() {
                None => return Err(ParseError::new(start, "unterminated character class")),
                Some(']') => break,
                Some('\\') => self.class_escape(item_at)?,
                Some(c) => c,
            };
            if self.peek() == Some('-')
                && self.chars.get(self.pos + 1).map(|&(_, c)| c) != Some(']')
            {
                self.bump(); // consume '-'
                let hi_at = self.byte_pos();
                let hi = match self.bump() {
                    None => return Err(ParseError::new(start, "unterminated character class")),
                    Some('\\') => self.class_escape(hi_at)?,
                    Some(c) => c,
                };
                if hi < lo {
                    return Err(ParseError::new(
                        item_at,
                        format!("invalid class range `{lo}-{hi}`"),
                    ));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err(ParseError::new(start, "empty character class"));
        }
        Ok(Ast::Class { negated, ranges })
    }

    /// Escapes valid inside a class resolve to a single character.
    /// `at` is the byte offset of the backslash, so errors point at the
    /// offending escape rather than at the class's opening bracket.
    fn class_escape(&mut self, at: usize) -> Result<char, ParseError> {
        match self.bump() {
            None => Err(ParseError::new(at, "dangling `\\` in character class")),
            Some('n') => Ok('\n'),
            Some('t') => Ok('\t'),
            Some('r') => Ok('\r'),
            Some(c) if !c.is_alphanumeric() => Ok(c),
            Some(c) => Err(ParseError::new(
                at,
                format!("unsupported escape `\\{c}` in character class"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ast;

    #[test]
    fn parses_simple_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn parses_alternation_tree() {
        match parse("a|b|c").unwrap() {
            Ast::Alt(bs) => assert_eq!(bs.len(), 3),
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_groups() {
        let ast = parse("(a(b|c))*d").unwrap();
        match ast {
            Ast::Concat(parts) => {
                assert!(matches!(parts[0], Ast::Repeat { .. }));
                assert_eq!(parts[1], Ast::Literal('d'));
            }
            other => panic!("expected Concat, got {other:?}"),
        }
    }

    #[test]
    fn parses_bounds() {
        match parse("a{2,5}").unwrap() {
            Ast::Repeat { min, max, .. } => {
                assert_eq!(min, 2);
                assert_eq!(max, Some(5));
            }
            other => panic!("expected Repeat, got {other:?}"),
        }
        match parse("a{7}").unwrap() {
            Ast::Repeat { min, max, .. } => {
                assert_eq!(min, 7);
                assert_eq!(max, Some(7));
            }
            other => panic!("expected Repeat, got {other:?}"),
        }
        match parse("a{3,}").unwrap() {
            Ast::Repeat { min, max, .. } => {
                assert_eq!(min, 3);
                assert_eq!(max, None);
            }
            other => panic!("expected Repeat, got {other:?}"),
        }
    }

    #[test]
    fn class_leading_bracket_is_literal() {
        match parse("[]a]").unwrap() {
            Ast::Class { negated, ranges } => {
                assert!(!negated);
                assert!(ranges.contains(&(']', ']')));
                assert!(ranges.contains(&('a', 'a')));
            }
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn class_trailing_dash_is_literal() {
        match parse("[a-]").unwrap() {
            Ast::Class { ranges, .. } => {
                assert!(ranges.contains(&('a', 'a')));
                assert!(ranges.contains(&('-', '-')));
            }
            other => panic!("expected Class, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("ab(cd").unwrap_err();
        assert_eq!(err.position, 2);
        let err = parse("a{2,1}").unwrap_err();
        assert!(err.message.contains("invalid repetition"));
    }

    #[test]
    fn error_positions_point_at_offending_byte() {
        // Repetition operator on an anchor: points at the operator.
        let err = parse("^*").unwrap_err();
        assert_eq!(err.position, 1);
        let err = parse("ab$+").unwrap_err();
        assert_eq!(err.position, 3);
        // Bad escape inside a class: points at the backslash.
        let err = parse(r"x[a\d]").unwrap_err();
        assert_eq!(err.position, 3);
        assert!(err.message.contains("character class"));
        // Inverted range: points at the range, not the `[`.
        let err = parse("q[b-a]").unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn rejects_double_star_on_anchor() {
        assert!(parse("^*").is_err());
        assert!(parse("$+").is_err());
    }
}
