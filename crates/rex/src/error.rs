//! Pattern-compilation errors.

use std::fmt;

/// An error produced while parsing a regular-expression pattern.
///
/// Carries the byte offset into the pattern where parsing failed, so
/// callers (e.g. DiffTrace's custom-filter front end) can point at the
/// offending character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the pattern string.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position_and_message() {
        let e = ParseError::new(4, "unbalanced parenthesis");
        let s = e.to_string();
        assert!(s.contains("byte 4"));
        assert!(s.contains("unbalanced parenthesis"));
    }
}
