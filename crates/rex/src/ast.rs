//! Abstract syntax tree for parsed patterns.

/// A single `a-z` style range inside a character class. A lone character
/// `c` is represented as the degenerate range `(c, c)`.
pub type ClassRange = (char, char);

/// Parsed regular-expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// Any character (`.`).
    Dot,
    /// A character class: the set of `ranges`, negated if `negated`.
    Class {
        /// Whether the class is `[^…]`.
        negated: bool,
        /// Inclusive character ranges, unordered, possibly overlapping.
        ranges: Vec<ClassRange>,
    },
    /// Concatenation of sub-expressions, in order.
    Concat(Vec<Ast>),
    /// Alternation (`|`) between sub-expressions.
    Alt(Vec<Ast>),
    /// Repetition of a sub-expression: at least `min`, at most `max`
    /// (`None` = unbounded). `*` = (0, None), `+` = (1, None),
    /// `?` = (0, Some(1)), `{n,m}` = (n, Some(m)).
    Repeat {
        /// The repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions, or unbounded.
        max: Option<u32>,
    },
    /// Start-of-input anchor `^`.
    AnchorStart,
    /// End-of-input anchor `$`.
    AnchorEnd,
}

impl Ast {
    /// A class matching ASCII digits (`\d`).
    pub fn digit(negated: bool) -> Ast {
        Ast::Class {
            negated,
            ranges: vec![('0', '9')],
        }
    }

    /// A class matching word characters (`\w` = `[A-Za-z0-9_]`).
    pub fn word(negated: bool) -> Ast {
        Ast::Class {
            negated,
            ranges: vec![('A', 'Z'), ('a', 'z'), ('0', '9'), ('_', '_')],
        }
    }

    /// A class matching whitespace (`\s` = `[ \t\n\r\x0b\x0c]`).
    pub fn space(negated: bool) -> Ast {
        Ast::Class {
            negated,
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\u{b}', '\u{b}'),
                ('\u{c}', '\u{c}'),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_classes_have_expected_ranges() {
        match Ast::digit(false) {
            Ast::Class { negated, ranges } => {
                assert!(!negated);
                assert_eq!(ranges, vec![('0', '9')]);
            }
            _ => panic!("expected class"),
        }
        match Ast::word(true) {
            Ast::Class { negated, ranges } => {
                assert!(negated);
                assert!(ranges.contains(&('_', '_')));
            }
            _ => panic!("expected class"),
        }
        match Ast::space(false) {
            Ast::Class { ranges, .. } => assert!(ranges.contains(&('\t', '\t'))),
            _ => panic!("expected class"),
        }
    }
}
