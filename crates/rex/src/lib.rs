//! `rex` — a small, self-contained regular-expression engine.
//!
//! DiffTrace's pre-processing stage (Table I of the paper) filters
//! function-call traces with *predefined or custom regular expressions*.
//! The offline dependency set for this reproduction does not include the
//! `regex` crate, so `rex` implements the required subset from scratch:
//!
//! * literals and escapes (`\.` `\\` `\d` `\w` `\s` and their negations)
//! * character classes `[a-z_]`, negated classes `[^0-9]`
//! * the wildcard `.`
//! * repetition `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`
//! * alternation `|` and grouping `( … )`
//! * anchors `^` and `$`
//! * a case-insensitive compile flag
//!
//! The implementation is the classic two-stage design: a recursive-descent
//! [`parser`] producing an [`ast::Ast`], compiled by [`nfa`] into a
//! Thompson NFA, executed by a Pike-style virtual machine ([`vm`]) in
//! `O(states × input)` time with **no backtracking** — patterns supplied
//! by a user can never blow up exponentially, which matters because
//! DiffTrace applies filters to hundreds of thousands of trace entries.
//!
//! # Examples
//!
//! ```
//! use rex::Regex;
//!
//! let re = Regex::new(r"^MPI_(Send|Recv|Isend|Irecv|Wait)$").unwrap();
//! assert!(re.is_match("MPI_Send"));
//! assert!(!re.is_match("MPI_Barrier"));
//!
//! let mem = Regex::new_case_insensitive(r"mem(cpy|chk)|alloc").unwrap();
//! assert!(mem.is_match("__libc_MALLOC"));
//! assert!(mem.find("xxmemcpyzz").is_some());
//! ```

pub mod ast;
pub mod error;
pub mod nfa;
pub mod parser;
pub mod vm;

pub use error::ParseError;

use nfa::{Assertion, Nfa, State};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A compiled regular expression.
///
/// Construction validates and compiles the pattern once; matching never
/// fails and runs in time linear in the input for a fixed pattern.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    nfa: Nfa,
    /// Successful-match counter, shared across clones (an `Arc` so a
    /// pattern compiled once and cloned into worker threads accumulates
    /// one total). Lets callers ask "did this filter ever match?"
    /// without re-scanning the corpus.
    hits: Arc<AtomicU64>,
}

impl Regex {
    /// Compile `pattern` (case-sensitive).
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        Self::with_flags(pattern, false)
    }

    /// Compile `pattern`, matching ASCII and Unicode letters
    /// case-insensitively.
    pub fn new_case_insensitive(pattern: &str) -> Result<Regex, ParseError> {
        Self::with_flags(pattern, true)
    }

    fn with_flags(pattern: &str, case_insensitive: bool) -> Result<Regex, ParseError> {
        let ast = parser::parse(pattern)?;
        let nfa = nfa::compile(&ast, case_insensitive);
        Ok(Regex {
            pattern: pattern.to_string(),
            nfa,
            hits: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// How many times [`Regex::is_match`] / [`Regex::find`] succeeded
    /// on this regex (counting across clones). Cheap dead-filter
    /// detection: after a filtering pass, `match_count() == 0` means
    /// the pattern selected nothing.
    pub fn match_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Reset the shared match counter to zero.
    pub fn reset_match_count(&self) {
        self.hits.store(0, Ordering::Relaxed);
    }

    /// Can this pattern match *any* input at all?
    ///
    /// Performs an abstract reachability walk over the compiled NFA,
    /// tracking whether characters have been consumed (so `a^b` — a
    /// start anchor after a consumed character — is unsatisfiable) and
    /// whether an end anchor has committed (so `a$b` is unsatisfiable).
    /// Conservative in one direction only: `true` may be returned for
    /// exotic satisfiable-looking patterns built from character classes
    /// that accept no character, but `false` is always definitive.
    pub fn is_satisfiable(&self) -> bool {
        // Abstract state: (nfa state, consumed_any, past_end_anchor).
        let n = self.nfa.states.len();
        let idx = |s: usize, consumed: bool, ended: bool| {
            s * 4 + usize::from(consumed) * 2 + usize::from(ended)
        };
        let mut seen = vec![false; n * 4];
        let mut work = vec![(self.nfa.start, false, false)];
        while let Some((s, consumed, ended)) = work.pop() {
            let slot = idx(s, consumed, ended);
            if seen[slot] {
                continue;
            }
            seen[slot] = true;
            match &self.nfa.states[s] {
                State::Match => return true,
                State::Split(a, b) => {
                    work.push((*a, consumed, ended));
                    work.push((*b, consumed, ended));
                }
                State::Char(_, next) => {
                    // Consuming input is impossible once `$` committed.
                    if !ended {
                        work.push((*next, true, ended));
                    }
                }
                State::Assert(Assertion::Start, next) => {
                    // `^` holds only if nothing was consumed yet (the
                    // search may always begin at input position 0).
                    if !consumed {
                        work.push((*next, consumed, ended));
                    }
                }
                State::Assert(Assertion::End, next) => {
                    // `$` holds if the input ends here — commit to it.
                    work.push((*next, consumed, true));
                }
            }
        }
        false
    }

    /// Does the pattern match anywhere in `input` (unanchored search)?
    pub fn is_match(&self, input: &str) -> bool {
        let m = vm::is_match(&self.nfa, input);
        if m {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        m
    }

    /// Leftmost match as a `(start, end)` byte range, preferring the
    /// longest match at the leftmost starting position.
    pub fn find(&self, input: &str) -> Option<(usize, usize)> {
        let m = vm::find(&self.nfa, input);
        if m.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        m
    }

    /// Split `input` around matches (like `str::split` with a regex
    /// separator). Empty matches split between characters.
    pub fn split<'a>(&self, input: &'a str) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut last = 0;
        for (s, e) in self.find_all(input) {
            out.push(&input[last..s]);
            last = e;
        }
        out.push(&input[last..]);
        out
    }

    /// Replace every non-overlapping match with `replacement`
    /// (literal, no capture references).
    pub fn replace_all(&self, input: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(input.len());
        let mut last = 0;
        for (s, e) in self.find_all(input) {
            out.push_str(&input[last..s]);
            out.push_str(replacement);
            last = e;
        }
        out.push_str(&input[last..]);
        out
    }

    /// All non-overlapping leftmost-longest matches.
    pub fn find_all(&self, input: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut at = 0;
        while at <= input.len() {
            match vm::find(&self.nfa, &input[at..]) {
                Some((s, e)) => {
                    let (s, e) = (at + s, at + e);
                    out.push((s, e));
                    // Empty matches must still advance the cursor.
                    at = if e > s {
                        e
                    } else {
                        match input[e..].chars().next() {
                            Some(c) => e + c.len_utf8(),
                            None => break,
                        }
                    };
                }
                None => break,
            }
        }
        out
    }
}

/// A set of regexes, matched as a unit (used for filter categories that
/// combine several patterns, e.g. the "Memory" filter of Table I).
#[derive(Debug, Clone, Default)]
pub struct RegexSet {
    regexes: Vec<Regex>,
}

impl RegexSet {
    /// Compile every pattern; fails on the first invalid one.
    pub fn new<'a, I: IntoIterator<Item = &'a str>>(patterns: I) -> Result<RegexSet, ParseError> {
        let mut regexes = Vec::new();
        for p in patterns {
            regexes.push(Regex::new(p)?);
        }
        Ok(RegexSet { regexes })
    }

    /// Case-insensitive variant of [`RegexSet::new`].
    pub fn new_case_insensitive<'a, I: IntoIterator<Item = &'a str>>(
        patterns: I,
    ) -> Result<RegexSet, ParseError> {
        let mut regexes = Vec::new();
        for p in patterns {
            regexes.push(Regex::new_case_insensitive(p)?);
        }
        Ok(RegexSet { regexes })
    }

    /// True if *any* member pattern matches.
    pub fn is_match(&self, input: &str) -> bool {
        self.regexes.iter().any(|r| r.is_match(input))
    }

    /// Number of member patterns.
    pub fn len(&self) -> usize {
        self.regexes.len()
    }

    /// True if the set contains no patterns (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.regexes.is_empty()
    }

    /// Indices of the member patterns that match `input`.
    pub fn matches(&self, input: &str) -> Vec<usize> {
        self.regexes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_match(input))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("abc").unwrap();
        assert!(re.is_match("abc"));
        assert!(re.is_match("xxabcxx"));
        assert!(!re.is_match("ab"));
        assert!(!re.is_match("acb"));
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^MPI_").unwrap();
        assert!(re.is_match("MPI_Send"));
        assert!(!re.is_match("PMPI_Send"));
        let re = Regex::new("_Send$").unwrap();
        assert!(re.is_match("MPI_Send"));
        assert!(!re.is_match("MPI_Send_init"));
        let re = Regex::new("^exact$").unwrap();
        assert!(re.is_match("exact"));
        assert!(!re.is_match("exactly"));
        assert!(!re.is_match("inexact"));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("^MPI_(Send|Recv)$").unwrap();
        assert!(re.is_match("MPI_Send"));
        assert!(re.is_match("MPI_Recv"));
        assert!(!re.is_match("MPI_Sendrecv"));
        assert!(!re.is_match("MPI_Barrier"));
    }

    #[test]
    fn star_plus_question() {
        let re = Regex::new("ab*c").unwrap();
        assert!(re.is_match("ac"));
        assert!(re.is_match("abc"));
        assert!(re.is_match("abbbbc"));
        assert!(!re.is_match("a_c"));
        let re = Regex::new("ab+c").unwrap();
        assert!(!re.is_match("ac"));
        assert!(re.is_match("abbc"));
        let re = Regex::new("ab?c").unwrap();
        assert!(re.is_match("ac"));
        assert!(re.is_match("abc"));
        assert!(!re.is_match("abbc"));
    }

    #[test]
    fn bounded_repetition() {
        let re = Regex::new("^a{3}$").unwrap();
        assert!(re.is_match("aaa"));
        assert!(!re.is_match("aa"));
        assert!(!re.is_match("aaaa"));
        let re = Regex::new("^a{2,}$").unwrap();
        assert!(!re.is_match("a"));
        assert!(re.is_match("aa"));
        assert!(re.is_match("aaaaa"));
        let re = Regex::new("^a{1,3}$").unwrap();
        assert!(re.is_match("a"));
        assert!(re.is_match("aaa"));
        assert!(!re.is_match("aaaa"));
        assert!(!re.is_match(""));
    }

    #[test]
    fn classes() {
        let re = Regex::new("^[a-c_]+$").unwrap();
        assert!(re.is_match("a_b_c"));
        assert!(!re.is_match("a-d"));
        let re = Regex::new("^[^0-9]+$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("ab3"));
    }

    #[test]
    fn escapes() {
        let re = Regex::new(r"\.plt$").unwrap();
        assert!(re.is_match("memcpy@.plt"));
        assert!(!re.is_match("memcpyplt"));
        let re = Regex::new(r"^\d+$").unwrap();
        assert!(re.is_match("12345"));
        assert!(!re.is_match("12a45"));
        let re = Regex::new(r"^\w+$").unwrap();
        assert!(re.is_match("MPI_Send_42"));
        assert!(!re.is_match("MPI Send"));
        let re = Regex::new(r"\s").unwrap();
        assert!(re.is_match("a b"));
        assert!(!re.is_match("ab"));
    }

    #[test]
    fn dot_wildcard() {
        let re = Regex::new("^a.c$").unwrap();
        assert!(re.is_match("abc"));
        assert!(re.is_match("a-c"));
        assert!(!re.is_match("ac"));
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new_case_insensitive("malloc").unwrap();
        assert!(re.is_match("MALLOC"));
        assert!(re.is_match("MaLLoc_hook"));
        let re = Regex::new("malloc").unwrap();
        assert!(!re.is_match("MALLOC"));
    }

    #[test]
    fn find_positions() {
        let re = Regex::new("b+").unwrap();
        assert_eq!(re.find("aabbbcc"), Some((2, 5)));
        assert_eq!(re.find("nope"), None);
        assert_eq!(re.find_all("abba bb b"), vec![(1, 3), (5, 7), (8, 9)]);
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let re = Regex::new("").unwrap();
        assert!(re.is_match(""));
        assert!(re.is_match("anything"));
    }

    #[test]
    fn regex_set() {
        let set = RegexSet::new_case_insensitive(["memcpy", "memchk", "alloc", "malloc"]).unwrap();
        assert!(set.is_match("xmalloc"));
        assert!(set.is_match("MEMCPY"));
        assert!(!set.is_match("strlen"));
        assert_eq!(set.matches("malloc"), vec![2, 3]);
        assert_eq!(set.len(), 4);
        assert!(!set.is_empty());
        assert!(RegexSet::default().is_empty());
    }

    #[test]
    fn split_and_replace() {
        let re = Regex::new(r"_+").unwrap();
        assert_eq!(re.split("MPI__Comm_rank"), vec!["MPI", "Comm", "rank"]);
        assert_eq!(re.split("nodelim"), vec!["nodelim"]);
        assert_eq!(re.replace_all("a_b__c", "-"), "a-b-c");
        assert_eq!(re.replace_all("", "-"), "");
        let digits = Regex::new(r"\d+").unwrap();
        assert_eq!(
            digits.replace_all("EvalEOSForElems_R42", "<n>"),
            "EvalEOSForElems_R<n>"
        );
        // Empty-match separator splits between characters but must not
        // loop forever.
        let empty = Regex::new("").unwrap();
        assert!(empty.split("ab").len() >= 2);
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new(r"a\").is_err());
        assert!(Regex::new("a{3,1}").is_err());
    }

    #[test]
    fn match_counter_counts_hits_across_clones() {
        let re = Regex::new("^MPI_").unwrap();
        assert_eq!(re.match_count(), 0);
        assert!(re.is_match("MPI_Send"));
        assert!(!re.is_match("memcpy")); // misses are not counted
        let clone = re.clone();
        assert!(clone.is_match("MPI_Recv"));
        assert_eq!(clone.find("MPI_Wait"), Some((0, 4)));
        // Clones share one counter.
        assert_eq!(re.match_count(), 3);
        re.reset_match_count();
        assert_eq!(clone.match_count(), 0);
    }

    #[test]
    fn satisfiability_analysis() {
        for p in ["abc", "^a$", "a*", "", "^$", "a|b$", "(x^|y)z"] {
            assert!(Regex::new(p).unwrap().is_satisfiable(), "{p}");
        }
        // A start anchor after consumed input, or input after a
        // committed end anchor, can never match.
        for p in ["a^b", "a$b", "x(^y)z", "a$."] {
            assert!(!Regex::new(p).unwrap().is_satisfiable(), "{p}");
        }
    }

    #[test]
    fn unicode_input() {
        let re = Regex::new("^.λ.$").unwrap();
        assert!(re.is_match("aλb"));
        assert!(re.is_match("λλλ"));
        assert!(!re.is_match("ab"));
    }
}
