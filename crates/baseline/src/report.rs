//! The [`AssertionReport`]: one entry per policy clause, rendered as
//! text and JSON with a stable content hash.
//!
//! The renderers follow the dt-diag conventions (canonical ordering,
//! [`dt_diag::json_escape`] for strings) so a report is a pure
//! function of its findings: the same check renders the same bytes at
//! any thread count, with or without a cache — the property the
//! defect-injection suite pins.

use crate::policy::DiffClass;
use dt_diag::json_escape;
use dt_trace::hash::StableHasher;

/// Outcome of one policy clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseStatus {
    /// No divergence of this class (or the policy allows it).
    Pass,
    /// Divergence observed and the policy does not tolerate it.
    Fail,
    /// Divergence observed, but the class is in the policy's
    /// `tolerate` set — reported, never gating.
    Tolerated,
    /// The clause could not be evaluated (e.g. no happens-before
    /// section in the recorded runs). Never gating.
    Skipped,
}

impl ClauseStatus {
    /// Stable label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            ClauseStatus::Pass => "pass",
            ClauseStatus::Fail => "fail",
            ClauseStatus::Tolerated => "tolerated",
            ClauseStatus::Skipped => "skipped",
        }
    }
}

/// How many detail lines a clause renders before eliding the rest.
/// The elision line carries the suppressed count, so the report stays
/// deterministic (and diffable) for any corpus size.
const DETAIL_CAP: usize = 8;

/// One evaluated policy clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseEntry {
    /// Which divergence class the clause judges.
    pub class: DiffClass,
    /// Its outcome.
    pub status: ClauseStatus,
    /// One-line summary ("3 of 8 fingerprints changed"); empty on a
    /// quiet pass.
    pub summary: String,
    /// Per-finding detail lines, in canonical (trace/code) order.
    pub details: Vec<String>,
}

/// The result of `baseline check`: the candidate's verdict under every
/// policy clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionReport {
    /// Label of the candidate run (its file path in CLI use).
    pub candidate: String,
    /// Seal digest of the baseline bundle the check ran against.
    pub baseline_hash: u128,
    /// One entry per [`DiffClass`], in [`DiffClass::ALL`] order.
    pub clauses: Vec<ClauseEntry>,
}

impl AssertionReport {
    /// True when no clause failed (tolerated and skipped clauses do
    /// not gate).
    pub fn passed(&self) -> bool {
        !self.clauses.iter().any(|c| c.status == ClauseStatus::Fail)
    }

    /// The failed clauses, in report order.
    pub fn failures(&self) -> Vec<DiffClass> {
        self.clauses
            .iter()
            .filter(|c| c.status == ClauseStatus::Fail)
            .map(|c| c.class)
            .collect()
    }

    /// Stable digest of the report's verdict-relevant content. Two
    /// checks that observed the same divergences produce the same
    /// hash, whatever machine or thread count computed them.
    pub fn report_hash(&self) -> u128 {
        let mut h = StableHasher::new();
        h.write_str(&self.candidate);
        h.write_u128(self.baseline_hash);
        h.write_u64(self.clauses.len() as u64);
        for c in &self.clauses {
            h.write_str(c.class.as_str());
            h.write_str(c.status.label());
            h.write_str(&c.summary);
            h.write_u64(c.details.len() as u64);
            for d in &c.details {
                h.write_str(d);
            }
        }
        h.finish()
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "baseline check: {}\n  baseline bundle {:#034x}\n",
            self.candidate, self.baseline_hash
        );
        for c in &self.clauses {
            let status = match c.status {
                ClauseStatus::Fail => "FAIL",
                other => other.label(),
            };
            out.push_str(&format!("  {:<16} {:<9}", c.class.as_str(), status));
            if !c.summary.is_empty() {
                out.push_str(&format!(" {}", c.summary));
            }
            out.push('\n');
            for d in c.details.iter().take(DETAIL_CAP) {
                out.push_str(&format!("      {d}\n"));
            }
            if c.details.len() > DETAIL_CAP {
                out.push_str(&format!(
                    "      … and {} more\n",
                    c.details.len() - DETAIL_CAP
                ));
            }
        }
        let verdict = if self.passed() {
            "verdict: pass".to_string()
        } else {
            let names: Vec<&str> = self.failures().iter().map(|c| c.as_str()).collect();
            format!("verdict: FAIL ({})", names.join(", "))
        };
        out.push_str(&verdict);
        out.push('\n');
        out
    }

    /// Machine-readable rendering (schema
    /// `difftrace-baseline-report/v1`), one JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"difftrace-baseline-report/v1\",");
        out.push_str(&format!(
            "\"candidate\":\"{}\",",
            json_escape(&self.candidate)
        ));
        out.push_str(&format!(
            "\"baseline_hash\":\"{:032x}\",",
            self.baseline_hash
        ));
        out.push_str(&format!(
            "\"verdict\":\"{}\",",
            if self.passed() { "pass" } else { "fail" }
        ));
        out.push_str("\"clauses\":[");
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"status\":\"{}\",\"summary\":\"{}\",\"details\":[",
                c.class.as_str(),
                c.status.label(),
                json_escape(&c.summary)
            ));
            for (j, d) in c.details.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(d)));
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "],\"report_hash\":\"{:032x}\"}}\n",
            self.report_hash()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(status: ClauseStatus) -> AssertionReport {
        AssertionReport {
            candidate: "runs/faulty.dtts".to_string(),
            baseline_hash: 0xabcd,
            clauses: DiffClass::ALL
                .iter()
                .map(|&class| ClauseEntry {
                    class,
                    status: if class == DiffClass::NlrChanged {
                        status
                    } else {
                        ClauseStatus::Pass
                    },
                    summary: if class == DiffClass::NlrChanged {
                        "1 of 2 fingerprints changed".to_string()
                    } else {
                        String::new()
                    },
                    details: if class == DiffClass::NlrChanged {
                        vec!["1.0: fingerprint changed".to_string()]
                    } else {
                        Vec::new()
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn verdict_follows_failures() {
        assert!(sample(ClauseStatus::Pass).passed());
        assert!(sample(ClauseStatus::Tolerated).passed());
        assert!(sample(ClauseStatus::Skipped).passed());
        let failing = sample(ClauseStatus::Fail);
        assert!(!failing.passed());
        assert_eq!(failing.failures(), vec![DiffClass::NlrChanged]);
    }

    #[test]
    fn renderings_are_deterministic_and_valid() {
        let r = sample(ClauseStatus::Fail);
        assert_eq!(r.render_text(), r.render_text());
        assert_eq!(r.render_json(), r.render_json());
        assert_eq!(r.report_hash(), r.report_hash());
        let doc = r.render_json();
        dt_obs::json::parse(&doc).expect("valid JSON");
        assert!(doc.contains("\"verdict\":\"fail\""), "{doc}");
        assert!(r.render_text().contains("verdict: FAIL (nlr-changed)"));
    }

    #[test]
    fn detail_cap_elides_deterministically() {
        let mut r = sample(ClauseStatus::Fail);
        r.clauses[2].details = (0..20).map(|i| format!("0.{i}: changed")).collect();
        let text = r.render_text();
        assert!(text.contains("… and 12 more"), "{text}");
        // The JSON document carries every detail — only text elides.
        let json = r.render_json();
        assert!(json.contains("0.19: changed"), "{json}");
    }

    #[test]
    fn report_hash_discriminates() {
        let pass = sample(ClauseStatus::Pass);
        let fail = sample(ClauseStatus::Fail);
        assert_ne!(pass.report_hash(), fail.report_hash());
    }
}
