//! The on-disk baseline bundle: a sealed, versioned snapshot of one
//! analyzed run.
//!
//! # Format
//!
//! A bundle is a single file:
//!
//! ```text
//! magic "DTBL" (4 bytes)
//! varint bundle format version
//! varint dt-cache content-key format version
//! canonical payload (varint/LE fields, see `Baseline::encode`)
//! 16-byte StableHasher digest of everything above (the seal)
//! ```
//!
//! The trailing digest is the same sealing scheme dt-cache uses for
//! disk entries, with one deliberate difference in *policy*: a cache
//! entry that fails its seal is silently re-derived (a miss), while a
//! baseline that fails its seal is a hard, diagnosable error — a CI
//! gate must never silently pass because its reference data rotted.
//! [`Baseline::decode`] therefore returns a reason string (digest
//! mismatch, bad magic, version skew, …) that the CLI prefixes with
//! the offending file's path and maps to exit code 2.
//!
//! The payload is canonical: traces sorted by ID, diagnostic codes
//! sorted, floats encoded via [`f64::to_bits`]. Re-recording an
//! unchanged corpus therefore reproduces the bundle byte for byte —
//! the CI `baseline-gate` job byte-diffs two recordings to pin this.

use dt_trace::compress::{read_varint, write_varint};
use dt_trace::hash::StableHasher;
use dt_trace::TraceId;

/// Bump whenever the encoded payload changes shape. Decoders reject
/// other versions with a "re-record" message rather than guessing.
/// Version 2 added the racecheck per-code section; version 3 the
/// reqcheck one.
pub const BUNDLE_FORMAT_VERSION: u32 = 3;

/// File magic: distinguishes bundles from other sealed artifacts
/// (dt-cache entries carry their own magic).
const MAGIC: [u8; 4] = *b"DTBL";

/// One trace's recorded identity and rank.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Which process/thread.
    pub id: TraceId,
    /// dt-cache NLR content key of the trace's filtered stream (see
    /// [`difftrace::content_fingerprints`]).
    pub fingerprint: u128,
    /// JSM row score — the trace's summed similarity to every other
    /// trace of the run. Bit-deterministic for any thread count.
    pub score: f64,
    /// Whether the recorded trace was truncated (hang signature).
    pub truncated: bool,
}

/// Aggregated diagnostics of one analyzer code, e.g. `("HB001", 2, 0)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeCount {
    /// The stable rule code (`TL001`…, `HB001`…).
    pub code: String,
    /// Error-severity findings.
    pub errors: u64,
    /// Warning-severity findings.
    pub warnings: u64,
}

/// A recorded baseline: everything `baseline check` needs to judge a
/// candidate run without re-reading the blessed corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Filter the snapshot was computed under
    /// ([`difftrace::FilterConfig::stable_code`] form, parseable back).
    pub filter: String,
    /// Attribute configuration (display form, parseable back).
    pub attrs: String,
    /// Per-trace records, sorted by trace ID.
    pub traces: Vec<TraceRecord>,
    /// Number of flat clusters the single-run analysis chose.
    pub clusters: u64,
    /// Outlier traces (members of the smallest cluster), sorted.
    pub outliers: Vec<TraceId>,
    /// tracelint findings aggregated per code, sorted by code.
    pub lint: Vec<CodeCount>,
    /// Whether the recorded run carried a happens-before section.
    pub has_hb: bool,
    /// hbcheck findings aggregated per code, sorted by code. Empty
    /// when `has_hb` is false.
    pub hb: Vec<CodeCount>,
    /// racecheck findings aggregated per code (`RC001`…), sorted by
    /// code. Races need no happens-before section, so this is recorded
    /// for every corpus.
    pub race: Vec<CodeCount>,
    /// reqcheck findings aggregated per code (`RQ001`…), sorted by
    /// code. Runs without request markers are trivially clean, so this
    /// is recorded for every corpus too.
    pub req: Vec<CodeCount>,
}

fn write_id(out: &mut Vec<u8>, id: TraceId) {
    write_varint(out, u64::from(id.process));
    write_varint(out, u64::from(id.thread));
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounded cursor over a decoded payload. Every read is checked; no
/// input can make decoding panic.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn varint(&mut self) -> Result<u64, String> {
        read_varint(self.buf, &mut self.at).map_err(|e| format!("truncated field: {e}"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or("truncated field")?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn id(&mut self) -> Result<TraceId, String> {
        let p = self.varint()?;
        let t = self.varint()?;
        let (p, t) = (
            u32::try_from(p).map_err(|_| "process id out of range")?,
            u32::try_from(t).map_err(|_| "thread id out of range")?,
        );
        Ok(TraceId::new(p, t))
    }

    fn string(&mut self) -> Result<String, String> {
        let n = usize::try_from(self.varint()?).map_err(|_| "string length out of range")?;
        if n > self.buf.len() {
            return Err("string length out of range".to_string());
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "invalid UTF-8".to_string())
    }

    /// A length header for `n` follow-up records of at least
    /// `min_bytes` each — bounded by the remaining input so a corrupt
    /// count cannot trigger a huge allocation.
    fn count(&mut self, min_bytes: usize) -> Result<usize, String> {
        let n = usize::try_from(self.varint()?).map_err(|_| "count out of range")?;
        if n.saturating_mul(min_bytes.max(1)) > self.buf.len() - self.at.min(self.buf.len()) {
            return Err("count exceeds input size".to_string());
        }
        Ok(n)
    }
}

fn code_counts_encode(out: &mut Vec<u8>, counts: &[CodeCount]) {
    write_varint(out, counts.len() as u64);
    for c in counts {
        write_str(out, &c.code);
        write_varint(out, c.errors);
        write_varint(out, c.warnings);
    }
}

fn code_counts_decode(r: &mut Reader<'_>) -> Result<Vec<CodeCount>, String> {
    let n = r.count(3)?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(CodeCount {
            code: r.string()?,
            errors: r.varint()?,
            warnings: r.varint()?,
        });
    }
    Ok(counts)
}

impl Baseline {
    /// Serialize to the sealed on-disk form. Encoding is a pure
    /// function of the (canonical) contents: the same snapshot always
    /// yields the same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        write_varint(&mut out, u64::from(BUNDLE_FORMAT_VERSION));
        write_varint(&mut out, u64::from(dt_cache::CACHE_FORMAT_VERSION));
        write_str(&mut out, &self.filter);
        write_str(&mut out, &self.attrs);
        write_varint(&mut out, self.traces.len() as u64);
        for t in &self.traces {
            write_id(&mut out, t.id);
            out.extend_from_slice(&t.fingerprint.to_le_bytes());
            out.extend_from_slice(&t.score.to_bits().to_le_bytes());
            out.push(u8::from(t.truncated));
        }
        write_varint(&mut out, self.clusters);
        write_varint(&mut out, self.outliers.len() as u64);
        for &id in &self.outliers {
            write_id(&mut out, id);
        }
        code_counts_encode(&mut out, &self.lint);
        out.push(u8::from(self.has_hb));
        code_counts_encode(&mut out, &self.hb);
        code_counts_encode(&mut out, &self.race);
        code_counts_encode(&mut out, &self.req);
        let mut h = StableHasher::new();
        h.write_raw(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    /// Decode a sealed bundle. The error is a human-readable reason —
    /// callers prefix the file path and surface it as an ordinary
    /// (exit 2) error. Never panics, whatever the input.
    pub fn decode(bytes: &[u8]) -> Result<Baseline, String> {
        let payload_len = bytes
            .len()
            .checked_sub(16)
            .ok_or("truncated baseline bundle (shorter than its seal)")?;
        let (payload, digest) = bytes.split_at(payload_len);
        let mut h = StableHasher::new();
        h.write_raw(payload);
        if h.finish().to_le_bytes() != digest {
            return Err(
                "corrupt or truncated baseline bundle (seal digest mismatch) — re-record it"
                    .to_string(),
            );
        }
        let mut r = Reader {
            buf: payload,
            at: 0,
        };
        if r.take(4)? != MAGIC {
            return Err("not a baseline bundle (bad magic)".to_string());
        }
        let version = r.varint()?;
        if version != u64::from(BUNDLE_FORMAT_VERSION) {
            return Err(format!(
                "baseline bundle format version {version}; this build reads \
                 {BUNDLE_FORMAT_VERSION} — re-record the baseline"
            ));
        }
        let cache_version = r.varint()?;
        if cache_version != u64::from(dt_cache::CACHE_FORMAT_VERSION) {
            return Err(format!(
                "baseline recorded with content-key format {cache_version}; this build \
                 computes format {} — fingerprints are not comparable, re-record the baseline",
                dt_cache::CACHE_FORMAT_VERSION
            ));
        }
        let filter = r.string()?;
        let attrs = r.string()?;
        let n = r.count(27)?;
        let mut traces = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.id()?;
            let fingerprint = u128::from_le_bytes(r.take(16)?.try_into().expect("16-byte slice"));
            let score = f64::from_bits(u64::from_le_bytes(
                r.take(8)?.try_into().expect("8-byte slice"),
            ));
            let truncated = match r.take(1)?[0] {
                0 => false,
                1 => true,
                b => return Err(format!("bad truncated flag {b}")),
            };
            traces.push(TraceRecord {
                id,
                fingerprint,
                score,
                truncated,
            });
        }
        let clusters = r.varint()?;
        let n = r.count(2)?;
        let mut outliers = Vec::with_capacity(n);
        for _ in 0..n {
            outliers.push(r.id()?);
        }
        let lint = code_counts_decode(&mut r)?;
        let has_hb = match r.take(1)?[0] {
            0 => false,
            1 => true,
            b => return Err(format!("bad happens-before flag {b}")),
        };
        let hb = code_counts_decode(&mut r)?;
        let race = code_counts_decode(&mut r)?;
        let req = code_counts_decode(&mut r)?;
        if r.at != payload.len() {
            return Err(format!(
                "{} trailing byte(s) after the payload",
                payload.len() - r.at
            ));
        }
        Ok(Baseline {
            filter,
            attrs,
            traces,
            clusters,
            outliers,
            lint,
            has_hb,
            hb,
            race,
            req,
        })
    }

    /// The bundle's stable identity: the seal digest of its encoding.
    pub fn bundle_hash(&self) -> u128 {
        let bytes = self.encode();
        let digest: [u8; 16] = bytes[bytes.len() - 16..].try_into().expect("sealed");
        u128::from_le_bytes(digest)
    }
}

/// Read the seal digest off an already-encoded bundle, verifying it.
/// `None` when the bytes are not a validly sealed bundle.
pub fn sealed_hash(bytes: &[u8]) -> Option<u128> {
    let payload_len = bytes.len().checked_sub(16)?;
    let (payload, digest) = bytes.split_at(payload_len);
    let mut h = StableHasher::new();
    h.write_raw(payload);
    let d = h.finish();
    (d.to_le_bytes() == digest).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Baseline {
        Baseline {
            filter: "11.all.K10".to_string(),
            attrs: "sing.actual".to_string(),
            traces: vec![
                TraceRecord {
                    id: TraceId::new(0, 0),
                    fingerprint: 0xdead_beef,
                    score: 6.5,
                    truncated: false,
                },
                TraceRecord {
                    id: TraceId::new(1, 0),
                    fingerprint: 0xfeed_face,
                    score: 5.25,
                    truncated: true,
                },
            ],
            clusters: 2,
            outliers: vec![TraceId::new(1, 0)],
            lint: vec![CodeCount {
                code: "TL003".to_string(),
                errors: 0,
                warnings: 1,
            }],
            has_hb: true,
            hb: vec![CodeCount {
                code: "HB001".to_string(),
                errors: 1,
                warnings: 0,
            }],
            race: vec![CodeCount {
                code: "RC004".to_string(),
                errors: 0,
                warnings: 2,
            }],
            req: vec![CodeCount {
                code: "RQ001".to_string(),
                errors: 1,
                warnings: 0,
            }],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let b = sample();
        assert_eq!(Baseline::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
        assert_eq!(sample().bundle_hash(), sample().bundle_hash());
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let r = Baseline::decode(&bytes[..cut]);
            assert!(r.is_err(), "decoded a {cut}-byte prefix");
        }
    }

    #[test]
    fn every_single_byte_flip_is_an_error() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            let r = Baseline::decode(&bad);
            assert!(r.is_err(), "decoded with byte {i} flipped");
        }
    }

    #[test]
    fn version_skew_names_the_reason() {
        // Re-seal a payload with a bumped format version: the digest is
        // valid, so decode must fail on the version check specifically.
        let bytes = sample().encode();
        let mut payload = bytes[..bytes.len() - 16].to_vec();
        assert_eq!(payload[4], BUNDLE_FORMAT_VERSION as u8);
        payload[4] = BUNDLE_FORMAT_VERSION as u8 + 1;
        let mut h = StableHasher::new();
        h.write_raw(&payload);
        payload.extend_from_slice(&h.finish().to_le_bytes());
        let err = Baseline::decode(&payload).unwrap_err();
        assert!(err.contains("format version"), "{err}");
        assert!(err.contains("re-record"), "{err}");
    }

    #[test]
    fn sealed_hash_checks_the_seal() {
        let bytes = sample().encode();
        assert_eq!(sealed_hash(&bytes), Some(sample().bundle_hash()));
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(sealed_hash(&bad), None);
        assert_eq!(sealed_hash(&bytes[..15]), None);
    }

    #[test]
    fn empty_and_garbage_inputs_never_panic() {
        for input in [
            &[][..],
            &[0u8; 15][..],
            &[0u8; 16][..],
            &[0xff; 64][..],
            b"DTBL",
        ] {
            assert!(Baseline::decode(input).is_err());
        }
    }
}
