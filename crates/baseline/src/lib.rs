//! `dt-baseline` — recorded baselines and policy assertions.
//!
//! DiffTrace's whole point is telling a faulty run apart from a known
//! good one; this crate is the CI-shaped form of that. `baseline
//! record` snapshots one analyzed run into a sealed [`Baseline`]
//! bundle: per-trace NLR content fingerprints (the same dt-cache keys
//! the analysis cache uses), the single-run JSM ranking, and the
//! tracelint/hbcheck/racecheck/reqcheck findings. `baseline check`
//! re-snapshots a
//! candidate run under the baseline's recorded parameters and judges
//! the divergence under a [`Policy`], producing an [`AssertionReport`]
//! with one entry per policy clause.
//!
//! Everything here inherits the pipeline's determinism contract: a
//! snapshot (and therefore a verdict, and therefore an encoded
//! bundle) is byte-identical at any thread count, cold or warm cache.
//! What varies between machines is wall-clock, never the verdict.

mod bundle;
mod policy;
mod report;

pub use bundle::{sealed_hash, Baseline, CodeCount, TraceRecord, BUNDLE_FORMAT_VERSION};
pub use policy::{DiffClass, Policy};
pub use report::{AssertionReport, ClauseEntry, ClauseStatus};

use difftrace::{
    analyze_single_opts_rec, content_fingerprints, hbcheck_set, lint_set, racecheck_set,
    reqcheck_set, HbOptions, LintOptions, Params, PipelineOptions, RaceOptions, ReqOptions,
};
use dt_obs::{stage, Recorder};
use dt_trace::hb::HbLog;
use dt_trace::{TraceId, TraceSet};
use std::collections::BTreeMap;

/// Aggregate a dt-diag report into per-code error/warning counts,
/// sorted by code (BTreeMap iteration order).
fn code_counts<C: dt_diag::Code>(report: &dt_diag::Report<C>) -> Vec<CodeCount> {
    let mut by_code: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for d in report.diagnostics() {
        let slot = by_code.entry(d.code.as_str()).or_insert((0, 0));
        match d.severity {
            dt_diag::Severity::Error => slot.0 += 1,
            dt_diag::Severity::Warning => slot.1 += 1,
        }
    }
    by_code
        .into_iter()
        .map(|(code, (errors, warnings))| CodeCount {
            code: code.to_string(),
            errors,
            warnings,
        })
        .collect()
}

/// Snapshot one run into a [`Baseline`] under `params`
/// (sequential, uninstrumented). See [`snapshot_rec`].
pub fn snapshot(set: &TraceSet, hb: &HbLog, params: &Params) -> Baseline {
    snapshot_rec(set, hb, params, &PipelineOptions::default(), &dt_obs::NOOP)
}

/// Snapshot one run into a [`Baseline`]: content fingerprints, the
/// single-run JSM ranking, cluster/outlier structure, and the
/// tracelint/hbcheck findings, all under `params`. Like every `_rec`
/// entry point, `opts` and `rec` change how fast the snapshot is
/// computed, never what it says — the encoded bundle is byte-identical
/// for every thread count and cache state.
pub fn snapshot_rec(
    set: &TraceSet,
    hb: &HbLog,
    params: &Params,
    opts: &PipelineOptions,
    rec: &dyn Recorder,
) -> Baseline {
    let fingerprints: BTreeMap<TraceId, u128> = {
        let _s = stage(rec, "fingerprint");
        content_fingerprints(set, &params.filter)
            .into_iter()
            .collect()
    };
    let single = analyze_single_opts_rec(set, params, 0, opts, rec);
    let scores: BTreeMap<TraceId, f64> = single
        .run
        .jsm
        .row_scores_opts(opts.threads)
        .into_iter()
        .collect();
    let traces: Vec<TraceRecord> = set
        .ids()
        .into_iter()
        .map(|id| TraceRecord {
            id,
            fingerprint: *fingerprints.get(&id).expect("fingerprint for every trace"),
            score: *scores.get(&id).expect("score for every trace"),
            truncated: set.get(id).is_some_and(|t| t.truncated),
        })
        .collect();
    let lint = {
        let _s = stage(rec, "lint");
        lint_set(
            set,
            &LintOptions {
                threads: opts.threads,
                filter: Some(params.filter.clone()),
                ..LintOptions::default()
            },
        )
    };
    let has_hb = hb.world_size() > 0;
    let hb_counts = if has_hb {
        let _s = stage(rec, "hbcheck");
        code_counts(&hbcheck_set(
            set,
            hb,
            &HbOptions {
                threads: opts.threads,
                ..HbOptions::default()
            },
        ))
    } else {
        Vec::new()
    };
    let race_counts = {
        let _s = stage(rec, "racecheck");
        code_counts(&racecheck_set(
            set,
            &RaceOptions {
                threads: opts.threads,
                ..RaceOptions::default()
            },
        ))
    };
    let req_counts = {
        let _s = stage(rec, "reqcheck");
        code_counts(&reqcheck_set(
            set,
            &ReqOptions {
                threads: opts.threads,
                ..ReqOptions::default()
            },
        ))
    };
    let mut outliers = single.outliers.clone();
    outliers.sort_unstable();
    let baseline = Baseline {
        filter: params.filter.stable_code(),
        attrs: params.attrs.to_string(),
        traces,
        clusters: single.clusters.len() as u64,
        outliers,
        lint: code_counts(&lint),
        has_hb,
        hb: hb_counts,
        race: race_counts,
        req: req_counts,
    };
    if rec.enabled() {
        rec.add("baseline_traces", baseline.traces.len() as u64);
        rec.add(
            "baseline_lint_errors",
            baseline.lint.iter().map(|c| c.errors).sum(),
        );
        rec.add(
            "baseline_hb_errors",
            baseline.hb.iter().map(|c| c.errors).sum(),
        );
        rec.add(
            "baseline_race_errors",
            baseline.race.iter().map(|c| c.errors).sum(),
        );
        rec.add(
            "baseline_req_errors",
            baseline.req.iter().map(|c| c.errors).sum(),
        );
    }
    baseline
}

/// Build one clause entry: a quiet pass when nothing diverged, an
/// explicit pass when the policy allows the divergence, `Tolerated`
/// when the class is tolerated, `Fail` otherwise.
fn clause(
    class: DiffClass,
    policy: &Policy,
    summary: String,
    details: Vec<String>,
    allowed: bool,
) -> ClauseEntry {
    let status = if details.is_empty() || allowed {
        ClauseStatus::Pass
    } else if policy.tolerate.contains(&class) {
        ClauseStatus::Tolerated
    } else {
        ClauseStatus::Fail
    };
    ClauseEntry {
        class,
        status,
        summary,
        details,
    }
}

/// Codes from `counts` that the policy requires clean but which fired
/// at error severity.
fn required_clean_violations(
    counts: &[CodeCount],
    required: &std::collections::BTreeSet<String>,
) -> Vec<String> {
    counts
        .iter()
        .filter(|c| c.errors > 0 && required.contains(&c.code))
        .map(|c| format!("{}: {} error(s) (required clean)", c.code, c.errors))
        .collect()
}

/// Judge a candidate snapshot against a recorded baseline under
/// `policy`. Both snapshots must have been taken under the same
/// analysis parameters (the CLI re-uses the baseline's recorded
/// parameters for the candidate); mismatched parameters are a usage
/// error, not a verdict.
pub fn evaluate(
    baseline: &Baseline,
    candidate: &Baseline,
    policy: &Policy,
    candidate_label: &str,
) -> Result<AssertionReport, String> {
    if baseline.filter != candidate.filter || baseline.attrs != candidate.attrs {
        return Err(format!(
            "parameter mismatch: baseline recorded under `{} {}`, candidate snapshot under \
             `{} {}`",
            baseline.filter, baseline.attrs, candidate.filter, candidate.attrs
        ));
    }
    let base: BTreeMap<TraceId, &TraceRecord> = baseline.traces.iter().map(|t| (t.id, t)).collect();
    let cand: BTreeMap<TraceId, &TraceRecord> =
        candidate.traces.iter().map(|t| (t.id, t)).collect();

    let added: Vec<String> = cand
        .keys()
        .filter(|id| !base.contains_key(id))
        .map(|id| format!("{id}: not in the baseline"))
        .collect();
    let removed: Vec<String> = base
        .keys()
        .filter(|id| !cand.contains_key(id))
        .map(|id| format!("{id}: recorded in the baseline, missing from the candidate"))
        .collect();

    let common: Vec<TraceId> = base
        .keys()
        .filter(|id| cand.contains_key(id))
        .copied()
        .collect();
    let changed: Vec<String> = common
        .iter()
        .filter(|id| base[id].fingerprint != cand[id].fingerprint)
        .map(|id| {
            format!(
                "{id}: fingerprint {:032x} -> {:032x}",
                base[id].fingerprint, cand[id].fingerprint
            )
        })
        .collect();
    let shifted: Vec<String> = common
        .iter()
        .filter(|id| (base[id].score - cand[id].score).abs() > policy.max_ranking_shift)
        .map(|id| {
            format!(
                "{id}: score {} -> {} (|shift| {} > {})",
                base[id].score,
                cand[id].score,
                (base[id].score - cand[id].score).abs(),
                policy.max_ranking_shift
            )
        })
        .collect();

    let lint_viol = required_clean_violations(&candidate.lint, &policy.require_clean_tl);
    let hb_viol = required_clean_violations(&candidate.hb, &policy.require_clean_hb);
    let race_viol = required_clean_violations(&candidate.race, &policy.require_clean_race);
    let req_viol = required_clean_violations(&candidate.req, &policy.require_clean_req);

    let count_summary = |n: usize, what: &str, suffix: &str| {
        if n == 0 {
            String::new()
        } else {
            format!("{n} {what}{suffix}")
        }
    };
    let mut clauses = vec![
        clause(
            DiffClass::TraceAdded,
            policy,
            count_summary(
                added.len(),
                "new trace(s)",
                if policy.allow_new_traces {
                    " (allowed by policy)"
                } else {
                    ""
                },
            ),
            added,
            policy.allow_new_traces,
        ),
        clause(
            DiffClass::TraceRemoved,
            policy,
            count_summary(
                removed.len(),
                "removed trace(s)",
                if policy.allow_removed_traces {
                    " (allowed by policy)"
                } else {
                    ""
                },
            ),
            removed,
            policy.allow_removed_traces,
        ),
        clause(
            DiffClass::NlrChanged,
            policy,
            if changed.is_empty() {
                String::new()
            } else {
                format!(
                    "{} of {} fingerprint(s) changed",
                    changed.len(),
                    common.len()
                )
            },
            changed,
            false,
        ),
        clause(
            DiffClass::RankingShift,
            policy,
            if shifted.is_empty() {
                String::new()
            } else {
                format!(
                    "{} of {} score(s) shifted more than {}",
                    shifted.len(),
                    common.len(),
                    policy.max_ranking_shift
                )
            },
            shifted,
            false,
        ),
        clause(
            DiffClass::LintRegression,
            policy,
            count_summary(lint_viol.len(), "required-clean lint code(s) fired", ""),
            lint_viol,
            false,
        ),
    ];
    if candidate.has_hb {
        clauses.push(clause(
            DiffClass::HbRegression,
            policy,
            count_summary(hb_viol.len(), "required-clean hbcheck code(s) fired", ""),
            hb_viol,
            false,
        ));
    } else {
        clauses.push(ClauseEntry {
            class: DiffClass::HbRegression,
            status: ClauseStatus::Skipped,
            summary: "no happens-before section in the candidate run".to_string(),
            details: Vec::new(),
        });
    }
    // Races need no happens-before section; this clause always runs.
    clauses.push(clause(
        DiffClass::RaceRegression,
        policy,
        count_summary(
            race_viol.len(),
            "required-clean racecheck code(s) fired",
            "",
        ),
        race_viol,
        false,
    ));
    // Request markers likewise live in the traces themselves.
    clauses.push(clause(
        DiffClass::ReqRegression,
        policy,
        count_summary(req_viol.len(), "required-clean reqcheck code(s) fired", ""),
        req_viol,
        false,
    ));
    Ok(AssertionReport {
        candidate: candidate_label.to_string(),
        baseline_hash: baseline.bundle_hash(),
        clauses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(p: u32, fp: u128, score: f64) -> TraceRecord {
        TraceRecord {
            id: TraceId::new(p, 0),
            fingerprint: fp,
            score,
            truncated: false,
        }
    }

    fn snap(traces: Vec<TraceRecord>) -> Baseline {
        Baseline {
            filter: "11.all.K10".to_string(),
            attrs: "sing.actual".to_string(),
            traces,
            clusters: 1,
            outliers: Vec::new(),
            lint: Vec::new(),
            has_hb: true,
            hb: Vec::new(),
            race: Vec::new(),
            req: Vec::new(),
        }
    }

    #[test]
    fn identical_snapshots_pass_every_clause() {
        let b = snap(vec![rec(0, 1, 2.0), rec(1, 2, 2.0)]);
        let r = evaluate(&b, &b, &Policy::default(), "run").unwrap();
        assert!(r.passed(), "{}", r.render_text());
        assert!(r.clauses.iter().all(|c| c.status == ClauseStatus::Pass));
    }

    #[test]
    fn each_divergence_fires_its_own_clause() {
        let b = snap(vec![rec(0, 1, 2.0), rec(1, 2, 2.0)]);
        let policy = Policy::default();

        let mut added = b.clone();
        added.traces.push(rec(2, 9, 2.0));
        let r = evaluate(&b, &added, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::TraceAdded]);

        let mut removed = b.clone();
        removed.traces.pop();
        let r = evaluate(&b, &removed, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::TraceRemoved]);

        let mut changed = b.clone();
        changed.traces[1].fingerprint = 77;
        let r = evaluate(&b, &changed, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::NlrChanged]);

        let mut shifted = b.clone();
        shifted.traces[1].score = 3.5;
        let r = evaluate(&b, &shifted, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::RankingShift]);

        let mut linty = b.clone();
        linty.lint = vec![CodeCount {
            code: "TL002".to_string(),
            errors: 2,
            warnings: 0,
        }];
        let r = evaluate(&b, &linty, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::LintRegression]);

        let mut hb = b.clone();
        hb.hb = vec![CodeCount {
            code: "HB001".to_string(),
            errors: 1,
            warnings: 0,
        }];
        let r = evaluate(&b, &hb, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::HbRegression]);

        let mut racy = b.clone();
        racy.race = vec![CodeCount {
            code: "RC001".to_string(),
            errors: 3,
            warnings: 0,
        }];
        let r = evaluate(&b, &racy, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::RaceRegression]);

        let mut leaky = b.clone();
        leaky.req = vec![CodeCount {
            code: "RQ001".to_string(),
            errors: 1,
            warnings: 0,
        }];
        let r = evaluate(&b, &leaky, &policy, "run").unwrap();
        assert_eq!(r.failures(), vec![DiffClass::ReqRegression]);
    }

    #[test]
    fn policy_knobs_downgrade_failures() {
        let b = snap(vec![rec(0, 1, 2.0)]);

        // Allowance: new traces pass outright.
        let mut added = b.clone();
        added.traces.push(rec(1, 9, 2.0));
        let allow = Policy {
            allow_new_traces: true,
            ..Policy::default()
        };
        let r = evaluate(&b, &added, &allow, "run").unwrap();
        assert!(r.passed());
        assert!(r.clauses[0].summary.contains("allowed by policy"));

        // Tolerance: reported, not gating.
        let mut changed = b.clone();
        changed.traces[0].fingerprint = 9;
        let tol = Policy {
            tolerate: [DiffClass::NlrChanged].into_iter().collect(),
            ..Policy::default()
        };
        let r = evaluate(&b, &changed, &tol, "run").unwrap();
        assert!(r.passed());
        assert_eq!(r.clauses[2].status, ClauseStatus::Tolerated);

        // Threshold: shifts inside the budget pass.
        let mut shifted = b.clone();
        shifted.traces[0].score = 2.25;
        let loose = Policy {
            max_ranking_shift: 0.5,
            ..Policy::default()
        };
        assert!(evaluate(&b, &shifted, &loose, "run").unwrap().passed());
        assert!(!evaluate(&b, &shifted, &Policy::default(), "run")
            .unwrap()
            .passed());

        // Required-clean sets: codes outside the set never gate.
        let mut warn_only = b.clone();
        warn_only.lint = vec![CodeCount {
            code: "TL003".to_string(),
            errors: 0,
            warnings: 4,
        }];
        assert!(evaluate(&b, &warn_only, &Policy::default(), "run")
            .unwrap()
            .passed());
        let mut off_list = b.clone();
        off_list.hb = vec![CodeCount {
            code: "HB001".to_string(),
            errors: 1,
            warnings: 0,
        }];
        let narrow = Policy {
            require_clean_hb: ["HB002".to_string()].into_iter().collect(),
            ..Policy::default()
        };
        assert!(evaluate(&b, &off_list, &narrow, "run").unwrap().passed());
    }

    #[test]
    fn missing_hb_section_skips_the_clause() {
        let mut b = snap(vec![rec(0, 1, 2.0)]);
        b.has_hb = false;
        let r = evaluate(&b, &b, &Policy::default(), "run").unwrap();
        assert!(r.passed());
        assert_eq!(r.clauses[5].status, ClauseStatus::Skipped);
        // The race and req clauses need no happens-before log; they
        // still run.
        assert_eq!(r.clauses[6].class, DiffClass::RaceRegression);
        assert_eq!(r.clauses[6].status, ClauseStatus::Pass);
        assert_eq!(r.clauses[7].class, DiffClass::ReqRegression);
        assert_eq!(r.clauses[7].status, ClauseStatus::Pass);
    }

    #[test]
    fn parameter_mismatch_is_a_usage_error() {
        let b = snap(vec![rec(0, 1, 2.0)]);
        let mut other = b.clone();
        other.filter = "11.mpiall.K10".to_string();
        let err = evaluate(&b, &other, &Policy::default(), "run").unwrap_err();
        assert!(err.contains("parameter mismatch"), "{err}");
    }
}
