//! Divergence classes and the serializable tolerance [`Policy`].
//!
//! A `baseline check` never judges "did any byte change" — it
//! classifies each divergence between the candidate and the baseline
//! into one of eight [`DiffClass`]es and judges each class under the
//! policy. The policy text format is a deliberately boring
//! `key = value` file (hand-parsed; the workspace carries no serde):
//! it diffs well in review, and a CI gate's tolerances belong in
//! version control next to the workflows that consume them.

use std::collections::BTreeSet;
use std::fmt;

/// The kinds of divergence a check can observe; each is one clause of
/// the [`crate::AssertionReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiffClass {
    /// The candidate has a trace the baseline lacks.
    TraceAdded,
    /// A baseline trace is missing from the candidate.
    TraceRemoved,
    /// A trace present in both changed its NLR content fingerprint.
    NlrChanged,
    /// A trace's JSM row score moved more than the allowed shift.
    RankingShift,
    /// The candidate fires a required-clean tracelint code at error
    /// severity.
    LintRegression,
    /// The candidate fires a required-clean hbcheck code at error
    /// severity.
    HbRegression,
    /// The candidate fires a required-clean racecheck code at error
    /// severity.
    RaceRegression,
    /// The candidate fires a required-clean reqcheck code at error
    /// severity.
    ReqRegression,
}

impl DiffClass {
    /// Every class, in report (and evaluation) order.
    pub const ALL: [DiffClass; 8] = [
        DiffClass::TraceAdded,
        DiffClass::TraceRemoved,
        DiffClass::NlrChanged,
        DiffClass::RankingShift,
        DiffClass::LintRegression,
        DiffClass::HbRegression,
        DiffClass::RaceRegression,
        DiffClass::ReqRegression,
    ];

    /// Stable name used in policy files, reports, and gate messages.
    pub fn as_str(self) -> &'static str {
        match self {
            DiffClass::TraceAdded => "trace-added",
            DiffClass::TraceRemoved => "trace-removed",
            DiffClass::NlrChanged => "nlr-changed",
            DiffClass::RankingShift => "ranking-shift",
            DiffClass::LintRegression => "lint-regression",
            DiffClass::HbRegression => "hb-regression",
            DiffClass::RaceRegression => "race-regression",
            DiffClass::ReqRegression => "req-regression",
        }
    }

    /// Parse a class name (the [`DiffClass::as_str`] form).
    pub fn parse(s: &str) -> Result<DiffClass, String> {
        DiffClass::ALL
            .into_iter()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| {
                let all: Vec<&str> = DiffClass::ALL.iter().map(|c| c.as_str()).collect();
                format!("unknown diff class `{s}` ({})", all.join(", "))
            })
    }
}

impl fmt::Display for DiffClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a candidate run is allowed to get away with. The default is
/// the strictest useful gate: nothing tolerated, zero ranking shift,
/// every analyzer code required clean, fixed trace population.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Diff classes that report but never gate.
    pub tolerate: BTreeSet<DiffClass>,
    /// Maximum allowed |candidate − baseline| JSM row score per trace;
    /// strictly larger shifts fail. Scores are bit-deterministic, so
    /// the default `0.0` means "exactly the recorded ranking".
    pub max_ranking_shift: f64,
    /// tracelint codes that must not fire at error severity.
    pub require_clean_tl: BTreeSet<String>,
    /// hbcheck codes that must not fire at error severity.
    pub require_clean_hb: BTreeSet<String>,
    /// racecheck codes that must not fire at error severity.
    pub require_clean_race: BTreeSet<String>,
    /// reqcheck codes that must not fire at error severity.
    pub require_clean_req: BTreeSet<String>,
    /// Whether traces absent from the baseline are acceptable.
    pub allow_new_traces: bool,
    /// Whether missing baseline traces are acceptable.
    pub allow_removed_traces: bool,
}

impl Default for Policy {
    fn default() -> Policy {
        let codes = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Policy {
            tolerate: BTreeSet::new(),
            max_ranking_shift: 0.0,
            require_clean_tl: codes(&["TL001", "TL002", "TL003", "TL004", "TL005", "TL006"]),
            require_clean_hb: codes(&["HB001", "HB002", "HB003", "HB004", "HB005"]),
            require_clean_race: codes(&["RC001", "RC002", "RC003", "RC004"]),
            require_clean_req: codes(&["RQ001", "RQ002", "RQ003", "RQ004", "RQ005"]),
            allow_new_traces: false,
            allow_removed_traces: false,
        }
    }
}

fn parse_bool(key: &str, v: &str) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("{key}: expected true|false, got `{other}`")),
    }
}

fn parse_codes(key: &str, v: &str) -> Result<BTreeSet<String>, String> {
    let mut set = BTreeSet::new();
    for tok in v.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        if !tok
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("{key}: bad code token `{tok}`"));
        }
        set.insert(tok.to_string());
    }
    Ok(set)
}

impl Policy {
    /// Render as the policy text format. `Policy::parse` of the result
    /// reconstructs the policy exactly (property-tested).
    pub fn to_text(&self) -> String {
        let join_classes =
            |s: &BTreeSet<DiffClass>| s.iter().map(|c| c.as_str()).collect::<Vec<_>>().join(",");
        let join_codes =
            |s: &BTreeSet<String>| s.iter().map(String::as_str).collect::<Vec<_>>().join(",");
        format!(
            "# difftrace baseline policy\n\
             tolerate = {}\n\
             max_ranking_shift = {}\n\
             require_clean_tl = {}\n\
             require_clean_hb = {}\n\
             require_clean_race = {}\n\
             require_clean_req = {}\n\
             allow_new_traces = {}\n\
             allow_removed_traces = {}\n",
            join_classes(&self.tolerate),
            self.max_ranking_shift,
            join_codes(&self.require_clean_tl),
            join_codes(&self.require_clean_hb),
            join_codes(&self.require_clean_race),
            join_codes(&self.require_clean_req),
            self.allow_new_traces,
            self.allow_removed_traces,
        )
    }

    /// Parse the policy text format. Unknown keys and repeated keys are
    /// errors; omitted keys keep their [`Policy::default`] value, so a
    /// policy file can state only the tolerances it loosens.
    pub fn parse(text: &str) -> Result<Policy, String> {
        let mut policy = Policy::default();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            match key {
                "tolerate" => {
                    let mut set = BTreeSet::new();
                    for tok in value.split(',') {
                        let tok = tok.trim();
                        if tok.is_empty() {
                            continue;
                        }
                        set.insert(DiffClass::parse(tok).map_err(&at)?);
                    }
                    policy.tolerate = set;
                }
                "max_ranking_shift" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| at(format!("bad number `{value}`")))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(at(format!(
                            "max_ranking_shift must be a finite number ≥ 0, got `{value}`"
                        )));
                    }
                    policy.max_ranking_shift = v;
                }
                "require_clean_tl" => {
                    policy.require_clean_tl = parse_codes(key, value).map_err(&at)?;
                }
                "require_clean_hb" => {
                    policy.require_clean_hb = parse_codes(key, value).map_err(&at)?;
                }
                "require_clean_race" => {
                    policy.require_clean_race = parse_codes(key, value).map_err(&at)?;
                }
                "require_clean_req" => {
                    policy.require_clean_req = parse_codes(key, value).map_err(&at)?;
                }
                "allow_new_traces" => {
                    policy.allow_new_traces = parse_bool(key, value).map_err(&at)?;
                }
                "allow_removed_traces" => {
                    policy.allow_removed_traces = parse_bool(key, value).map_err(&at)?;
                }
                other => return Err(at(format!("unknown policy key `{other}`"))),
            }
            // Checked after the value parse so the error for a bad
            // value on a fresh key wins over the duplicate complaint.
            if !seen.insert(key) {
                return Err(format!("line {}: duplicate policy key `{key}`", lineno + 1));
            }
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_roundtrips() {
        let p = Policy::default();
        assert_eq!(Policy::parse(&p.to_text()).unwrap(), p);
    }

    #[test]
    fn empty_text_is_the_default() {
        assert_eq!(Policy::parse("").unwrap(), Policy::default());
        assert_eq!(
            Policy::parse("# only a comment\n\n").unwrap(),
            Policy::default()
        );
    }

    #[test]
    fn partial_file_keeps_defaults_for_the_rest() {
        let p = Policy::parse("tolerate = ranking-shift\nmax_ranking_shift = 0.5\n").unwrap();
        assert!(p.tolerate.contains(&DiffClass::RankingShift));
        assert_eq!(p.max_ranking_shift, 0.5);
        assert_eq!(p.require_clean_tl, Policy::default().require_clean_tl);
        assert!(!p.allow_new_traces);
    }

    #[test]
    fn bad_inputs_error_with_line_numbers() {
        for (text, needle) in [
            ("tolerate = frobnicate", "unknown diff class"),
            ("max_ranking_shift = NaN", "finite number"),
            ("max_ranking_shift = -1", "finite number"),
            ("max_ranking_shift = plenty", "bad number"),
            ("allow_new_traces = yes", "true|false"),
            ("frobnication = on", "unknown policy key"),
            ("just some words", "key = value"),
            ("require_clean_tl = TL 001", "bad code token"),
            (
                "tolerate = nlr-changed\ntolerate = trace-added",
                "duplicate policy key",
            ),
            (
                "allow_new_traces = true\nallow_new_traces = true",
                "duplicate policy key",
            ),
        ] {
            let err = Policy::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn class_names_roundtrip() {
        for c in DiffClass::ALL {
            assert_eq!(DiffClass::parse(c.as_str()).unwrap(), c);
        }
        assert!(DiffClass::parse("NLR-CHANGED").is_err());
    }
}
