//! Property tests for the policy text format and the bundle codec:
//! `Policy::parse ∘ Policy::to_text` and `Baseline::decode ∘ encode`
//! are identities on arbitrary values, and mutilated bundle bytes are
//! always a diagnosed error, never a panic or a false decode.

use std::collections::BTreeSet;

use dt_baseline::{Baseline, CodeCount, DiffClass, Policy, TraceRecord};
use dt_trace::TraceId;
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = Policy> {
    let classes = proptest::collection::vec(0usize..DiffClass::ALL.len(), 0..8);
    let shift = (0u32..2_000_000).prop_map(|v| f64::from(v) / 1000.0);
    let codes = || {
        let code = (0u8..26, 0u16..1000)
            .prop_map(|(c, n)| format!("{}{}{:03}", char::from(b'A' + c), char::from(b'A' + c), n));
        proptest::collection::vec(code, 0..8)
    };
    (
        classes,
        shift,
        (codes(), codes(), codes(), codes()),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(classes, shift, (tl, hb, race, req), new, removed)| Policy {
                tolerate: classes.into_iter().map(|i| DiffClass::ALL[i]).collect(),
                max_ranking_shift: shift,
                require_clean_tl: tl.into_iter().collect(),
                require_clean_hb: hb.into_iter().collect(),
                require_clean_race: race.into_iter().collect(),
                require_clean_req: req.into_iter().collect(),
                allow_new_traces: new,
                allow_removed_traces: removed,
            },
        )
}

fn baseline_strategy() -> impl Strategy<Value = Baseline> {
    let trace = (
        0u32..64,
        0u32..4,
        any::<u64>(),
        any::<u64>(),
        0u32..1000,
        any::<bool>(),
    )
        .prop_map(|(p, t, hi, lo, score, truncated)| TraceRecord {
            id: TraceId::new(p, t),
            fingerprint: (u128::from(hi) << 64) | u128::from(lo),
            score: f64::from(score) / 8.0,
            truncated,
        });
    let count = || {
        (0u8..5, 0u8..10, 0u8..10).prop_map(|(c, e, w)| CodeCount {
            code: format!("TL{:03}", c + 1),
            errors: u64::from(e),
            warnings: u64::from(w),
        })
    };
    (
        proptest::collection::vec(trace, 0..12),
        (
            proptest::collection::vec(count(), 0..4),
            proptest::collection::vec(count(), 0..4),
            proptest::collection::vec(count(), 0..4),
            proptest::collection::vec(count(), 0..4),
        ),
        0u64..10,
        any::<bool>(),
    )
        .prop_map(|(mut traces, (lint, hb, race, req), clusters, has_hb)| {
            // Canonical form: unique trace ids in sorted order, unique
            // codes — what `snapshot` always produces.
            traces.sort_by_key(|t| t.id);
            traces.dedup_by_key(|t| t.id);
            let dedup = |v: Vec<CodeCount>| {
                let mut v = v;
                v.sort_by(|a, b| a.code.cmp(&b.code));
                v.dedup_by(|a, b| a.code == b.code);
                v
            };
            let outliers: Vec<TraceId> = traces.iter().take(2).map(|t| t.id).collect();
            Baseline {
                filter: "11.mpiall.K10".to_string(),
                attrs: "sing.actual".to_string(),
                traces,
                clusters,
                outliers,
                lint: dedup(lint),
                has_hb,
                hb: dedup(hb),
                race: dedup(race),
                req: dedup(req),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any policy survives a text round-trip exactly — the property
    /// that makes a committed policy file trustworthy.
    #[test]
    fn policy_text_roundtrips(p in policy_strategy()) {
        let text = p.to_text();
        let back = Policy::parse(&text).unwrap();
        prop_assert_eq!(&back, &p);
        // And the round-trip is a fixed point: re-rendering is stable.
        prop_assert_eq!(back.to_text(), text);
    }

    /// Any canonical baseline survives the sealed binary codec, and
    /// its encoding is deterministic.
    #[test]
    fn bundle_codec_roundtrips(b in baseline_strategy()) {
        let bytes = b.encode();
        prop_assert_eq!(&bytes, &b.encode());
        let back = Baseline::decode(&bytes).unwrap();
        prop_assert_eq!(back, b);
    }

    /// Flipping any one byte of a sealed bundle is always a diagnosed
    /// error — the seal leaves no silent corruption.
    #[test]
    fn bundle_rejects_any_flip(b in baseline_strategy(), pos in any::<u64>(), bit in 0u8..8) {
        let mut bytes = b.encode();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        prop_assert!(Baseline::decode(&bytes).is_err());
    }
}

/// Non-property check kept next to the strategies: every class name a
/// strategy can emit parses back, so policies mentioning any subset of
/// classes stay readable by older readers of the same format.
#[test]
fn all_class_names_parse() {
    let mut seen = BTreeSet::new();
    for c in DiffClass::ALL {
        assert_eq!(DiffClass::parse(c.as_str()).unwrap(), c);
        assert!(seen.insert(c.as_str()), "duplicate name {}", c.as_str());
    }
}
