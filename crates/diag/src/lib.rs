//! `dt-diag` — shared diagnostic-report machinery for DiffTrace's
//! static analyzers.
//!
//! Both `tracelint` (TL001–TL006) and `hbcheck` (HB001–HB005) emit the
//! same *shape* of finding — a stable rule code, a severity, an
//! optional trace/span anchor, a message, and a fix hint — and render
//! reports with the same text and JSON grammar. This crate holds that
//! machinery once, generic over the analyzer's code enum via the
//! [`Code`] trait, so every analyzer gets canonical ordering (the
//! property that makes parallel runs byte-identical) and the stable
//! renderers for free.
//!
//! The renderers only ever consult [`Code::as_str`], so an analyzer's
//! output is a pure function of its diagnostics — factoring a concrete
//! report type through this crate cannot change a single output byte.

use dt_trace::TraceId;
use std::collections::BTreeSet;
use std::fmt;

/// An analyzer's closed rule-code enum. The string form returned by
/// [`Code::as_str`] is part of the analyzer's output-format contract
/// (scripts grep for it); implementors must never renumber.
pub trait Code: Copy + Ord + fmt::Display {
    /// The stable code string, e.g. `"TL001"` or `"HB003"`.
    fn as_str(self) -> &'static str;

    /// One-line description of what the rule checks.
    fn title(self) -> &'static str;
}

/// How bad a diagnostic is.
///
/// `Error`s indicate inputs the analysis cannot trust (and fail a
/// `--gate deny` run); `Warning`s flag suspicious but analyzable
/// inputs — e.g. a truncated trace *is* the hang signature the paper
/// diffs against, so truncation alone is never an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but analyzable.
    Warning,
    /// The analyzer's assumptions are violated.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A half-open `[start, end)` range. For trace diagnostics the unit is
/// *event offsets* within the trace; configuration rules may use byte
/// offsets within a pattern string instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// First offset covered.
    pub start: usize,
    /// One past the last offset covered.
    pub end: usize,
}

impl Span {
    /// `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A single offset, `[at, at+1)`.
    pub fn at(at: usize) -> Span {
        Span {
            start: at,
            end: at + 1,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// One finding: rule code, severity, optional trace/span anchor, a
/// human-readable message, and an optional fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic<C: Code> {
    /// Which rule fired.
    pub code: C,
    /// How bad it is.
    pub severity: Severity,
    /// The trace the finding anchors to; `None` for corpus-wide or
    /// configuration findings.
    pub trace: Option<TraceId>,
    /// Event-offset span; `None` when the finding has no precise
    /// location (e.g. compressed-domain checks).
    pub span: Option<Span>,
    /// What went wrong.
    pub message: String,
    /// How to fix it.
    pub hint: Option<String>,
}

impl<C: Code> Diagnostic<C> {
    /// A bare diagnostic; attach anchors with the `with_*` builders.
    pub fn new(code: C, severity: Severity, message: impl Into<String>) -> Diagnostic<C> {
        Diagnostic {
            code,
            severity,
            trace: None,
            span: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Shorthand for an error.
    pub fn error(code: C, message: impl Into<String>) -> Diagnostic<C> {
        Diagnostic::new(code, Severity::Error, message)
    }

    /// Shorthand for a warning.
    pub fn warning(code: C, message: impl Into<String>) -> Diagnostic<C> {
        Diagnostic::new(code, Severity::Warning, message)
    }

    /// Anchor to a trace.
    pub fn with_trace(mut self, id: TraceId) -> Diagnostic<C> {
        self.trace = Some(id);
        self
    }

    /// Anchor to a span within the trace (or pattern).
    pub fn with_span(mut self, span: Span) -> Diagnostic<C> {
        self.span = Some(span);
        self
    }

    /// Attach a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic<C> {
        self.hint = Some(hint.into());
        self
    }

    /// Canonical ordering key: per-trace findings first (by trace, then
    /// span start), then corpus-wide findings; ties broken by code,
    /// severity, and message so the full order is total. The report
    /// sorts by this, which is what makes output byte-identical
    /// regardless of how many threads produced the diagnostics.
    fn sort_key(&self) -> (bool, Option<TraceId>, usize, C, Severity, &str) {
        (
            self.trace.is_none(),
            self.trace,
            self.span.map_or(0, |s| s.start),
            self.code,
            self.severity,
            &self.message,
        )
    }
}

/// The result of an analysis pass: diagnostics in canonical order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report<C: Code> {
    diagnostics: Vec<Diagnostic<C>>,
}

impl<C: Code> Default for Report<C> {
    fn default() -> Report<C> {
        Report {
            diagnostics: Vec::new(),
        }
    }
}

impl<C: Code> Report<C> {
    /// Build a report, sorting `diagnostics` into canonical order.
    pub fn new(mut diagnostics: Vec<Diagnostic<C>>) -> Report<C> {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Report { diagnostics }
    }

    /// The findings, canonically ordered.
    pub fn diagnostics(&self) -> &[Diagnostic<C>] {
        &self.diagnostics
    }

    /// True if nothing fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any finding is an error (what `--gate deny` trips on).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// The distinct rule codes that fired.
    pub fn codes(&self) -> BTreeSet<C> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// The `(code, severity)` verdict set for one trace — the unit the
    /// compressed/expanded agreement property is stated over.
    pub fn verdicts_for(&self, id: TraceId) -> BTreeSet<(C, Severity)> {
        self.diagnostics
            .iter()
            .filter(|d| d.trace == Some(id))
            .map(|d| (d.code, d.severity))
            .collect()
    }

    /// Human-readable rendering, one finding per line (plus indented
    /// hint lines), ending with a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(d.severity.label());
            out.push('[');
            out.push_str(d.code.as_str());
            out.push(']');
            if let Some(t) = d.trace {
                out.push_str(&format!(" trace {t}"));
            }
            if let Some(s) = d.span {
                out.push_str(&format!(" @ {s}"));
            }
            out.push_str(": ");
            out.push_str(&d.message);
            out.push('\n');
            if let Some(h) = &d.hint {
                out.push_str("  hint: ");
                out.push_str(h);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// JSON rendering (hand-rolled; the workspace has no serde). The
    /// schema is stable:
    ///
    /// ```json
    /// {"errors":1,"warnings":0,"diagnostics":[
    ///   {"code":"TL001","severity":"error","trace":"3.0",
    ///    "span":{"start":5,"end":6},"message":"…","hint":"…"}]}
    /// ```
    ///
    /// `trace`, `span`, and `hint` are omitted when absent.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\"",
                d.code.as_str(),
                d.severity.label()
            ));
            if let Some(t) = d.trace {
                out.push_str(&format!(",\"trace\":\"{t}\""));
            }
            if let Some(s) = d.span {
                out.push_str(&format!(
                    ",\"span\":{{\"start\":{},\"end\":{}}}",
                    s.start, s.end
                ));
            }
            out.push_str(",\"message\":\"");
            out.push_str(&json_escape(&d.message));
            out.push('"');
            if let Some(h) = &d.hint {
                out.push_str(",\"hint\":\"");
                out.push_str(&json_escape(h));
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum TestCode {
        Alpha,
        Beta,
    }

    impl fmt::Display for TestCode {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(self.as_str())
        }
    }

    impl Code for TestCode {
        fn as_str(self) -> &'static str {
            match self {
                TestCode::Alpha => "XX001",
                TestCode::Beta => "XX002",
            }
        }
        fn title(self) -> &'static str {
            match self {
                TestCode::Alpha => "alpha rule",
                TestCode::Beta => "beta rule",
            }
        }
    }

    #[test]
    fn report_sorts_canonically_and_counts() {
        let global = Diagnostic::warning(TestCode::Beta, "dead");
        let late = Diagnostic::error(TestCode::Alpha, "late")
            .with_trace(TraceId::master(1))
            .with_span(Span::at(9));
        let early = Diagnostic::error(TestCode::Beta, "early")
            .with_trace(TraceId::master(0))
            .with_span(Span::at(2));
        // Insertion order scrambled on purpose.
        let r = Report::new(vec![global.clone(), late.clone(), early.clone()]);
        assert_eq!(r.diagnostics(), &[early, late, global]);
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.codes().len(), 2);
    }

    #[test]
    fn text_rendering_shape() {
        let d = Diagnostic::error(TestCode::Alpha, "crossed return")
            .with_trace(TraceId::new(2, 1))
            .with_span(Span::new(4, 5))
            .with_hint("check instrumentation");
        let txt = Report::new(vec![d]).render_text();
        assert!(txt.contains("error[XX001] trace 2.1 @ [4, 5): crossed return"));
        assert!(txt.contains("  hint: check instrumentation"));
        assert!(txt.ends_with("1 error(s), 0 warning(s)\n"));
    }

    #[test]
    fn json_rendering_escapes_and_omits() {
        let d = Diagnostic::warning(TestCode::Beta, "pattern `a\"b\\` is dead");
        let js = Report::new(vec![d]).render_json();
        assert!(js.starts_with("{\"errors\":0,\"warnings\":1,"));
        assert!(js.contains(r#"pattern `a\"b\\` is dead"#));
        // No trace/span/hint keys when absent.
        assert!(!js.contains("\"trace\""));
        assert!(!js.contains("\"span\""));
        assert!(!js.contains("\"hint\""));
        let with_all = Diagnostic::error(TestCode::Alpha, "m")
            .with_trace(TraceId::master(7))
            .with_span(Span::at(3))
            .with_hint("h\nnewline");
        let js = Report::new(vec![with_all]).render_json();
        assert!(js.contains("\"trace\":\"7.0\""));
        assert!(js.contains("\"span\":{\"start\":3,\"end\":4}"));
        assert!(js.contains("\"hint\":\"h\\nnewline\""));
    }

    #[test]
    fn empty_report_is_clean() {
        let r: Report<TestCode> = Report::default();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(
            r.render_json(),
            "{\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
        );
    }

    #[test]
    fn verdicts_are_per_trace() {
        let a = Diagnostic::error(TestCode::Alpha, "x").with_trace(TraceId::master(0));
        let b = Diagnostic::warning(TestCode::Beta, "y").with_trace(TraceId::master(1));
        let r = Report::new(vec![a, b]);
        assert_eq!(
            r.verdicts_for(TraceId::master(0)),
            [(TestCode::Alpha, Severity::Error)].into_iter().collect()
        );
        assert_eq!(
            r.verdicts_for(TraceId::master(1)),
            [(TestCode::Beta, Severity::Warning)].into_iter().collect()
        );
        assert!(r.verdicts_for(TraceId::master(2)).is_empty());
    }
}
