//! Property tests for nested-loop recognition.

use nlr::{LoopTable, NlrBuilder};
use proptest::prelude::*;

fn loopy_stream() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        // Pure repetition of a random body.
        (proptest::collection::vec(0u32..8, 1..8), 1usize..30)
            .prop_map(|(body, reps)| body.repeat(reps)),
        // Nested: ((body)^inner sep)^outer.
        (
            proptest::collection::vec(0u32..5, 1..4),
            1usize..6,
            1usize..6
        )
            .prop_map(|(body, inner, outer)| {
                let mut v = Vec::new();
                for _ in 0..outer {
                    for _ in 0..inner {
                        v.extend(&body);
                    }
                    v.push(9);
                }
                v
            }),
        // Arbitrary noise.
        proptest::collection::vec(0u32..12, 0..200),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Expansion always reproduces the input, for any K.
    #[test]
    fn lossless(input in loopy_stream(), k in 1usize..25) {
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(k).build(&input, &mut table);
        prop_assert_eq!(nlr.expand(&table), input);
    }

    /// Summaries never grow, and the reduction factor is ≥ 1.
    #[test]
    fn never_grows(input in loopy_stream(), k in 1usize..25) {
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(k).build(&input, &mut table);
        prop_assert!(nlr.elements().len() <= input.len().max(1));
        if !input.is_empty() {
            prop_assert!(nlr.reduction_factor() >= 1.0 - 1e-12);
        }
    }

    /// Building the same stream twice against a shared table yields
    /// identical summaries (the cross-trace loop-ID heuristic).
    #[test]
    fn deterministic_with_shared_table(input in loopy_stream(), k in 1usize..15) {
        let mut table = LoopTable::new();
        let b = NlrBuilder::new(k);
        let a = b.build(&input, &mut table);
        let c = b.build(&input, &mut table);
        prop_assert_eq!(a.elements(), c.elements());
    }

    /// Pure repetitions of a body with *distinct* symbols collapse to a
    /// single loop element. (Self-overlapping bodies like `[5,0,5]` may
    /// legitimately fold differently under the greedy stack machine —
    /// the same ambiguity Ketterlin & Clauss note — so they are
    /// excluded here; losslessness for them is covered above.)
    #[test]
    fn pure_repetition_of_distinct_body_collapses(
        body_len in 1usize..7,
        reps in 2usize..40,
    ) {
        let body: Vec<u32> = (0..body_len as u32).collect();
        let input = body.repeat(reps);
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(10).build(&input, &mut table);
        prop_assert_eq!(
            nlr.elements().len(),
            1,
            "{} reps of {:?} left {:?}",
            reps,
            body,
            nlr.elements()
        );
        prop_assert_eq!(nlr.expand(&table), input);
    }
}
