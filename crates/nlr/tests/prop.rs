//! Property tests for nested-loop recognition.

use nlr::{LoopId, LoopTable, NlrBuilder, RecordingInterner, SharedLoopTable};
use proptest::prelude::*;

fn loopy_stream() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        // Pure repetition of a random body.
        (proptest::collection::vec(0u32..8, 1..8), 1usize..30)
            .prop_map(|(body, reps)| body.repeat(reps)),
        // Nested: ((body)^inner sep)^outer.
        (
            proptest::collection::vec(0u32..5, 1..4),
            1usize..6,
            1usize..6
        )
            .prop_map(|(body, inner, outer)| {
                let mut v = Vec::new();
                for _ in 0..outer {
                    for _ in 0..inner {
                        v.extend(&body);
                    }
                    v.push(9);
                }
                v
            }),
        // Arbitrary noise.
        proptest::collection::vec(0u32..12, 0..200),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Expansion always reproduces the input, for any K.
    #[test]
    fn lossless(input in loopy_stream(), k in 1usize..25) {
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(k).build(&input, &mut table);
        prop_assert_eq!(nlr.expand(&table), input);
    }

    /// Summaries never grow, and the reduction factor is ≥ 1.
    #[test]
    fn never_grows(input in loopy_stream(), k in 1usize..25) {
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(k).build(&input, &mut table);
        prop_assert!(nlr.elements().len() <= input.len().max(1));
        if !input.is_empty() {
            prop_assert!(nlr.reduction_factor() >= 1.0 - 1e-12);
        }
    }

    /// Building the same stream twice against a shared table yields
    /// identical summaries (the cross-trace loop-ID heuristic).
    #[test]
    fn deterministic_with_shared_table(input in loopy_stream(), k in 1usize..15) {
        let mut table = LoopTable::new();
        let b = NlrBuilder::new(k);
        let a = b.build(&input, &mut table);
        let c = b.build(&input, &mut table);
        prop_assert_eq!(a.elements(), c.elements());
    }

    /// Pure repetitions of a body with *distinct* symbols collapse to a
    /// single loop element. (Self-overlapping bodies like `[5,0,5]` may
    /// legitimately fold differently under the greedy stack machine —
    /// the same ambiguity Ketterlin & Clauss note — so they are
    /// excluded here; losslessness for them is covered above.)
    #[test]
    fn pure_repetition_of_distinct_body_collapses(
        body_len in 1usize..7,
        reps in 2usize..40,
    ) {
        let body: Vec<u32> = (0..body_len as u32).collect();
        let input = body.repeat(reps);
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(10).build(&input, &mut table);
        prop_assert_eq!(
            nlr.elements().len(),
            1,
            "{} reps of {:?} left {:?}",
            reps,
            body,
            nlr.elements()
        );
        prop_assert_eq!(nlr.expand(&table), input);
    }

    /// Interning the same loop bodies from many threads concurrently
    /// always yields exactly one ID per distinct body, every thread
    /// observes the same ID for the same body, and every ID reads back
    /// its body.
    #[test]
    fn concurrent_interning_is_race_free(
        streams in proptest::collection::vec(loopy_stream(), 2..6),
        threads in 2usize..8,
    ) {
        fn expand_shared(elements: &[nlr::Element], t: &SharedLoopTable, out: &mut Vec<u32>) {
            for &e in elements {
                match e {
                    nlr::Element::Sym(s) => out.push(s),
                    nlr::Element::Loop { body, count } => {
                        for _ in 0..count {
                            expand_shared(t.body(body), t, out);
                        }
                    }
                }
            }
        }
        let shared = SharedLoopTable::new();
        let builder = NlrBuilder::new(10);
        let per_thread: Vec<Vec<(usize, Vec<nlr::Element>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let shared = &shared;
                    let streams = &streams;
                    let builder = &builder;
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        // Each thread builds every stream, starting at a
                        // different offset so schedules interleave.
                        for i in 0..streams.len() {
                            let idx = (i + t) % streams.len();
                            let mut rec = RecordingInterner::new(shared);
                            let nlr = builder.build(&streams[idx], &mut rec);
                            let mut expanded = Vec::new();
                            expand_shared(nlr.elements(), shared, &mut expanded);
                            assert_eq!(expanded, streams[idx], "lossless through the shared table");
                            for id in rec.into_order() {
                                seen.push((id.0 as usize, shared.body(id).to_vec()));
                            }
                        }
                        seen
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // One body per ID, globally consistent across threads.
        let mut by_id: std::collections::BTreeMap<usize, Vec<nlr::Element>> =
            std::collections::BTreeMap::new();
        for (id, body) in per_thread.into_iter().flatten() {
            if let Some(prev) = by_id.insert(id, body.clone()) {
                prop_assert_eq!(prev, body, "id {} maps to two bodies", id);
            }
        }
        // IDs are dense and each body is interned exactly once.
        let distinct: std::collections::HashSet<Vec<nlr::Element>> =
            by_id.values().cloned().collect();
        prop_assert_eq!(distinct.len(), by_id.len(), "duplicate bodies under distinct ids");
        prop_assert_eq!(shared.len(), by_id.len());
        for id in by_id.keys() {
            prop_assert!(*id < shared.len());
        }
    }

    /// Canonicalizing a worst-case (reverse-order) parallel build
    /// reproduces the sequential table and summaries exactly.
    #[test]
    fn canonicalization_reproduces_sequential_numbering(
        streams in proptest::collection::vec(loopy_stream(), 1..6),
        k in 2usize..12,
    ) {
        let builder = NlrBuilder::new(k);
        let mut seq_table = LoopTable::new();
        let seq: Vec<_> = streams.iter().map(|s| builder.build(s, &mut seq_table)).collect();

        let shared = SharedLoopTable::new();
        let mut orders = vec![Vec::new(); streams.len()];
        let mut prov = vec![None; streams.len()];
        for i in (0..streams.len()).rev() {
            let mut rec = RecordingInterner::new(&shared);
            prov[i] = Some(builder.build(&streams[i], &mut rec));
            orders[i] = rec.into_order();
        }
        let mut canon_table = LoopTable::new();
        let map = shared.canonicalize_into(orders.into_iter().flatten(), &mut canon_table);
        prop_assert_eq!(canon_table.len(), seq_table.len());
        for i in 0..canon_table.len() {
            let id = LoopId(i as u32);
            prop_assert_eq!(canon_table.body(id), seq_table.body(id), "body L{}", i);
        }
        for (p, s) in prov.into_iter().zip(&seq) {
            let c = p.unwrap().remap_loops(&|id| map[id.0 as usize]);
            prop_assert_eq!(c.elements(), s.elements());
        }
    }
}
