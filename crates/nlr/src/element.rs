//! NLR elements and summarized traces.

use crate::table::LoopTable;
use std::fmt;

/// Identifier of a distinct loop body in a [`LoopTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One element of a summarized trace: a plain symbol (function-call ID)
/// or a recognized loop `L<id> ^ count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Element {
    /// An unsummarized symbol (e.g. a function call).
    Sym(u32),
    /// `count` repetitions of the loop body `body`.
    Loop {
        /// Which body (see [`LoopTable`]).
        body: LoopId,
        /// Iteration count (≥ 2 when produced by recognition).
        count: u64,
    },
}

impl Element {
    /// True for [`Element::Loop`].
    pub fn is_loop(self) -> bool {
        matches!(self, Element::Loop { .. })
    }

    /// The loop body ID if this is a loop.
    pub fn loop_id(self) -> Option<LoopId> {
        match self {
            Element::Loop { body, .. } => Some(body),
            Element::Sym(_) => None,
        }
    }

    /// Structural equality *ignoring* loop iteration counts: two loops
    /// with the same body are "the same loop", which is how diffNLR
    /// aligns loops whose trip counts differ between executions.
    pub fn same_shape(self, other: Element) -> bool {
        match (self, other) {
            (Element::Sym(a), Element::Sym(b)) => a == b,
            (Element::Loop { body: a, .. }, Element::Loop { body: b, .. }) => a == b,
            _ => false,
        }
    }
}

/// A summarized (NLR) trace: the top-level element sequence. Loop bodies
/// live in the shared [`LoopTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nlr {
    elements: Vec<Element>,
    /// Length of the original (unsummarized) sequence.
    input_len: usize,
}

impl Nlr {
    pub(crate) fn new(elements: Vec<Element>, input_len: usize) -> Nlr {
        Nlr {
            elements,
            input_len,
        }
    }

    /// Assemble a summary from parts produced outside the builder —
    /// e.g. replayed from a serialized cache entry. The caller is
    /// responsible for every [`LoopId`] referring to the table the
    /// summary will be used with.
    pub fn from_parts(elements: Vec<Element>, input_len: usize) -> Nlr {
        Nlr {
            elements,
            input_len,
        }
    }

    /// The top-level summarized sequence.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Length of the original input sequence.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// The paper's §V "reduction factor": input length over summarized
    /// length (≥ 1; equals 1 when nothing folded).
    pub fn reduction_factor(&self) -> f64 {
        if self.elements.is_empty() {
            return 1.0;
        }
        self.input_len as f64 / self.elements.len() as f64
    }

    /// Undo the summarization — reproduces the input symbol stream
    /// exactly (lossless abstraction).
    pub fn expand(&self, table: &LoopTable) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.input_len);
        for &e in &self.elements {
            expand_into(e, table, &mut out);
        }
        out
    }

    /// Maximum loop-nesting depth of this summary (0 when it contains
    /// no loops).
    pub fn max_depth(&self, table: &LoopTable) -> usize {
        self.elements
            .iter()
            .map(|e| match e {
                Element::Sym(_) => 0,
                Element::Loop { body, .. } => table.depth_of(*body),
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of top-level loop elements.
    pub fn loop_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_loop()).count()
    }

    /// Fully recursive rendering: loop bodies expanded structurally,
    /// e.g. `(MPI_Send MPI_Recv)^4` or `((a b)^3 c)^4` — a
    /// self-contained alternative to the `L<id>` form for small
    /// summaries.
    pub fn render_nested<F: Fn(u32) -> String>(&self, table: &LoopTable, name: &F) -> String {
        self.elements
            .iter()
            .map(|&e| render_element(e, table, name))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// A copy of this summary with every top-level loop reference
    /// renumbered through `f`. Nested references live in the loop
    /// *table*, not in the summary, so remapping the table and the
    /// top-level elements together relabels the whole structure — used
    /// when canonicalizing provisional IDs after a parallel build.
    pub fn remap_loops<F: Fn(LoopId) -> LoopId>(&self, f: &F) -> Nlr {
        Nlr {
            elements: self
                .elements
                .iter()
                .map(|&e| match e {
                    Element::Loop { body, count } => Element::Loop {
                        body: f(body),
                        count,
                    },
                    sym => sym,
                })
                .collect(),
            input_len: self.input_len,
        }
    }

    /// Render with a symbol-name resolver, e.g.
    /// `["MPI_Init", "L0 ^ 4", "MPI_Finalize"]` (cf. Table III).
    pub fn render<F: Fn(u32) -> String>(&self, name: &F) -> Vec<String> {
        self.elements
            .iter()
            .map(|e| match e {
                Element::Sym(s) => name(*s),
                Element::Loop { body, count } => format!("{body} ^ {count}"),
            })
            .collect()
    }
}

fn render_element<F: Fn(u32) -> String>(e: Element, table: &LoopTable, name: &F) -> String {
    match e {
        Element::Sym(s) => name(s),
        Element::Loop { body, count } => {
            let inner: Vec<String> = table
                .body(body)
                .iter()
                .map(|&b| render_element(b, table, name))
                .collect();
            format!("({})^{count}", inner.join(" "))
        }
    }
}

fn expand_into(e: Element, table: &LoopTable, out: &mut Vec<u32>) {
    match e {
        Element::Sym(s) => out.push(s),
        Element::Loop { body, count } => {
            for _ in 0..count {
                for &inner in table.body(body) {
                    expand_into(inner, table, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_ignores_counts() {
        let l1 = Element::Loop {
            body: LoopId(0),
            count: 7,
        };
        let l2 = Element::Loop {
            body: LoopId(0),
            count: 16,
        };
        let l3 = Element::Loop {
            body: LoopId(1),
            count: 7,
        };
        assert!(l1.same_shape(l2));
        assert!(!l1.same_shape(l3));
        assert!(Element::Sym(4).same_shape(Element::Sym(4)));
        assert!(!Element::Sym(4).same_shape(l1));
        assert_ne!(l1, l2); // but exact equality sees counts
    }

    #[test]
    fn display_of_loop_id() {
        assert_eq!(LoopId(3).to_string(), "L3");
    }

    #[test]
    fn nested_expansion() {
        let mut table = LoopTable::new();
        let inner = table.intern(vec![Element::Sym(1), Element::Sym(2)]);
        let outer = table.intern(vec![
            Element::Loop {
                body: inner,
                count: 2,
            },
            Element::Sym(3),
        ]);
        let nlr = Nlr::new(
            vec![
                Element::Sym(0),
                Element::Loop {
                    body: outer,
                    count: 2,
                },
            ],
            11,
        );
        assert_eq!(nlr.expand(&table), vec![0, 1, 2, 1, 2, 3, 1, 2, 1, 2, 3]);
        assert!((nlr.reduction_factor() - 11.0 / 2.0).abs() < 1e-12);
    }
}
