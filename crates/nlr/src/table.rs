//! The global table of distinct loop bodies.
//!
//! The paper (§III-A): *"We store all distinct loop bodies in a
//! hash-table, assigning each a unique ID, which can be applied as a
//! heuristic to detect loops not only in the current trace but also in
//! other traces of the same execution."* Sharing one `LoopTable` across
//! all traces of an execution (and across the normal/faulty pair!) is
//! what makes `L0` comparable between traces in Tables III/IV and in
//! diffNLR.

use crate::element::{Element, LoopId};
use std::collections::HashMap;

/// The interface the NLR builder needs from a loop-body store: intern a
/// body to an ID and read a body back. Implemented by the plain
/// single-threaded [`LoopTable`], by `&`[`crate::SharedLoopTable`]
/// (concurrent interning), and by [`crate::RecordingInterner`] (which
/// additionally records the fold order for canonical renumbering).
pub trait LoopInterner {
    /// Intern `body`, returning its (possibly pre-existing) ID.
    fn intern(&mut self, body: Vec<Element>) -> LoopId;
    /// The body of `id`. Panics on a foreign ID.
    fn body(&self, id: LoopId) -> &[Element];
}

/// Interning table: loop body (element sequence) → [`LoopId`].
#[derive(Debug, Clone, Default)]
pub struct LoopTable {
    bodies: Vec<Vec<Element>>,
    by_body: HashMap<Vec<Element>, LoopId>,
}

impl LoopInterner for LoopTable {
    fn intern(&mut self, body: Vec<Element>) -> LoopId {
        LoopTable::intern(self, body)
    }
    fn body(&self, id: LoopId) -> &[Element] {
        LoopTable::body(self, id)
    }
}

impl LoopTable {
    /// An empty table.
    pub fn new() -> LoopTable {
        LoopTable::default()
    }

    /// Intern `body`, returning its (possibly pre-existing) ID.
    pub fn intern(&mut self, body: Vec<Element>) -> LoopId {
        if let Some(&id) = self.by_body.get(&body) {
            return id;
        }
        let id = LoopId(self.bodies.len() as u32);
        self.bodies.push(body.clone());
        self.by_body.insert(body, id);
        id
    }

    /// Look up a body without interning.
    pub fn resolve(&self, body: &[Element]) -> Option<LoopId> {
        self.by_body.get(body).copied()
    }

    /// The body of `id`. Panics on a foreign ID.
    pub fn body(&self, id: LoopId) -> &[Element] {
        &self.bodies[id.0 as usize]
    }

    /// Number of distinct bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// True if no bodies have been interned.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    /// Fully expanded body of `id` (recursing through nested loops),
    /// as the flat symbol sequence one iteration produces.
    pub fn expanded_body(&self, id: LoopId) -> Vec<u32> {
        let mut out = Vec::new();
        self.expand_body_into(id, &mut out);
        out
    }

    fn expand_body_into(&self, id: LoopId, out: &mut Vec<u32>) {
        for &e in self.body(id) {
            match e {
                Element::Sym(s) => out.push(s),
                Element::Loop { body, count } => {
                    for _ in 0..count {
                        self.expand_body_into(body, out);
                    }
                }
            }
        }
    }

    /// Nesting depth of `id`'s body: 1 for a flat loop, 2 for a loop
    /// containing loops, etc.
    pub fn depth_of(&self, id: LoopId) -> usize {
        1 + self
            .body(id)
            .iter()
            .map(|e| match e {
                Element::Sym(_) => 0,
                Element::Loop { body, .. } => self.depth_of(*body),
            })
            .max()
            .unwrap_or(0)
    }

    /// Render a body one level deep, with a symbol-name resolver:
    /// `[MPI_Send - MPI_Recv]`, nested loops shown by ID.
    pub fn render_body<F: Fn(u32) -> String>(&self, id: LoopId, name: &F) -> String {
        let parts: Vec<String> = self
            .body(id)
            .iter()
            .map(|e| match e {
                Element::Sym(s) => name(*s),
                Element::Loop { body, count } => format!("{body} ^ {count}"),
            })
            .collect();
        format!("[{}]", parts.join(" - "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = LoopTable::new();
        let a = t.intern(vec![Element::Sym(1), Element::Sym(2)]);
        let b = t.intern(vec![Element::Sym(2), Element::Sym(1)]);
        let a2 = t.intern(vec![Element::Sym(1), Element::Sym(2)]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(&[Element::Sym(1), Element::Sym(2)]), Some(a));
        assert_eq!(t.resolve(&[Element::Sym(9)]), None);
    }

    #[test]
    fn expanded_body_recurses() {
        let mut t = LoopTable::new();
        let inner = t.intern(vec![Element::Sym(5)]);
        let outer = t.intern(vec![
            Element::Loop {
                body: inner,
                count: 3,
            },
            Element::Sym(6),
        ]);
        assert_eq!(t.expanded_body(outer), vec![5, 5, 5, 6]);
    }

    #[test]
    fn render_matches_paper_style() {
        let mut t = LoopTable::new();
        let id = t.intern(vec![Element::Sym(0), Element::Sym(1)]);
        let name = |s: u32| {
            if s == 0 {
                "MPI_Send".to_string()
            } else {
                "MPI_Recv".to_string()
            }
        };
        assert_eq!(t.render_body(id, &name), "[MPI_Send - MPI_Recv]");
    }
}
