//! The NLR stack machine (the paper's Procedure 1) and the multi-pass
//! driver that finds deeper loop nests.

use crate::element::{Element, Nlr};
use crate::table::LoopInterner;

/// Configurable NLR recognizer.
///
/// `K` is the paper's buffer constant: the maximum loop-body length
/// considered. Complexity per pass is `Θ(K²·N)`.
#[derive(Debug, Clone, Copy)]
pub struct NlrBuilder {
    k: usize,
    max_passes: usize,
}

impl NlrBuilder {
    /// A builder with body-length bound `k` (the paper uses K = 10 and
    /// K = 50) and the default nesting-pass limit.
    pub fn new(k: usize) -> NlrBuilder {
        NlrBuilder { k, max_passes: 8 }
    }

    /// Override the maximum number of re-analysis passes (each pass can
    /// add one level of loop nesting; the default of 8 is far deeper
    /// than real call traces need).
    pub fn with_max_passes(mut self, passes: usize) -> NlrBuilder {
        self.max_passes = passes.max(1);
        self
    }

    /// The body-length bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Summarize `input`, interning loop bodies into `table` — a plain
    /// [`crate::LoopTable`], a `&`[`crate::SharedLoopTable`] for
    /// concurrent builds, or any other [`LoopInterner`]. The folding
    /// decisions depend only on the input and the bodies this build
    /// interned itself, never on what the table already contained — so
    /// the resulting *structure* is table-independent (only the ID
    /// numbering varies), which is what makes parallel NLR construction
    /// with post-hoc canonical renumbering exact.
    pub fn build<I: LoopInterner + ?Sized>(&self, input: &[u32], table: &mut I) -> Nlr {
        let mut elements: Vec<Element> = input.iter().map(|&s| Element::Sym(s)).collect();
        // Pass 1 finds depth-1 loops; each subsequent pass treats the
        // previous summary's loops as atomic symbols and can therefore
        // fold loops-of-loops — the paper's "restarted once the whole
        // trace has been analyzed for depth-2 loops and so on".
        for _ in 0..self.max_passes {
            let before = elements.len();
            elements = self.pass(&elements, table);
            if elements.len() == before {
                break;
            }
        }
        Nlr::new(elements, input.len())
    }

    /// One stack-machine pass over an element sequence.
    fn pass<I: LoopInterner + ?Sized>(&self, input: &[Element], table: &mut I) -> Vec<Element> {
        let mut stack: Vec<Element> = Vec::with_capacity(input.len().min(4096));
        for &e in input {
            stack.push(e);
            self.reduce(&mut stack, table);
        }
        stack
    }

    /// Procedure 1: repeatedly apply (in priority order) loop merge,
    /// loop extension, and loop folding to the top of the stack.
    fn reduce<I: LoopInterner + ?Sized>(&self, stack: &mut Vec<Element>, table: &mut I) {
        loop {
            if self.try_merge_adjacent(stack)
                || self.try_extend(stack, table)
                || self.try_fold(stack, table)
            {
                continue;
            }
            break;
        }
    }

    /// `… L(b)^c1 L(b)^c2` → `… L(b)^(c1+c2)`.
    fn try_merge_adjacent(&self, stack: &mut Vec<Element>) -> bool {
        let n = stack.len();
        if n < 2 {
            return false;
        }
        if let (
            Element::Loop {
                body: b1,
                count: c1,
            },
            Element::Loop {
                body: b2,
                count: c2,
            },
        ) = (stack[n - 2], stack[n - 1])
        {
            if b1 == b2 {
                stack.truncate(n - 2);
                stack.push(Element::Loop {
                    body: b1,
                    count: c1 + c2,
                });
                return true;
            }
        }
        false
    }

    /// If the top `b` elements equal the body of the loop right below
    /// them, absorb them as one more iteration:
    /// `… L(body)^c body` → `… L(body)^(c+1)`.
    fn try_extend<I: LoopInterner + ?Sized>(&self, stack: &mut Vec<Element>, table: &I) -> bool {
        let n = stack.len();
        for b in 1..=self.k.min(n.saturating_sub(1)) {
            let loop_pos = n - b - 1;
            if let Element::Loop { body, count } = stack[loop_pos] {
                let body_elems = table.body(body);
                // Cheap prefilter: the first body element must match
                // before paying for the slice comparison.
                if body_elems.len() == b
                    && body_elems.first() == stack.get(n - b)
                    && body_elems == &stack[n - b..]
                {
                    stack.truncate(loop_pos);
                    stack.push(Element::Loop {
                        body,
                        count: count + 1,
                    });
                    return true;
                }
            }
        }
        false
    }

    /// If the top `2·b` elements are two equal halves, fold them into a
    /// fresh loop of two iterations: `… X X` → `… L(X)^2`.
    fn try_fold<I: LoopInterner + ?Sized>(&self, stack: &mut Vec<Element>, table: &mut I) -> bool {
        let n = stack.len();
        for b in 1..=self.k.min(n / 2) {
            // Cheap prefilter: the halves can only match if their last
            // elements do — turns the common non-matching case from
            // O(b) into O(1), keeping long-trace passes near O(K·N).
            if stack[n - 1] == stack[n - 1 - b] && stack[n - b..] == stack[n - 2 * b..n - b] {
                let body: Vec<Element> = stack[n - b..].to_vec();
                // Folding a bare `L^c L^c` pair would create a loop
                // whose body is a loop — that is just a count multiply;
                // leave it to merge instead (it already ran).
                if b == 1 {
                    if let Element::Loop { .. } = body[0] {
                        continue;
                    }
                }
                let id = table.intern(body);
                stack.truncate(n - 2 * b);
                stack.push(Element::Loop { body: id, count: 2 });
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::LoopId;
    use crate::table::LoopTable;

    fn build(k: usize, input: &[u32]) -> (Nlr, LoopTable) {
        let mut table = LoopTable::new();
        let nlr = NlrBuilder::new(k).build(input, &mut table);
        assert_eq!(nlr.expand(&table), input, "NLR must be lossless");
        (nlr, table)
    }

    #[test]
    fn empty_and_singleton() {
        let (nlr, _) = build(10, &[]);
        assert!(nlr.elements().is_empty());
        let (nlr, _) = build(10, &[42]);
        assert_eq!(nlr.elements(), &[Element::Sym(42)]);
    }

    #[test]
    fn simple_repetition_folds() {
        // A A A A → L(A)^4
        let (nlr, table) = build(10, &[7, 7, 7, 7]);
        assert_eq!(nlr.elements().len(), 1);
        match nlr.elements()[0] {
            Element::Loop { body, count } => {
                assert_eq!(count, 4);
                assert_eq!(table.body(body), &[Element::Sym(7)]);
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn odd_even_example_matches_table_iii() {
        // Table II/III: Init, Rank, Size, (Send Recv)^4, Finalize
        // symbols: 0=Init 1=Rank 2=Size 3=Send 4=Recv 5=Finalize
        let input = [0, 1, 2, 3, 4, 3, 4, 3, 4, 3, 4, 5];
        let (nlr, table) = build(10, &input);
        let names = |s: u32| {
            [
                "MPI_Init",
                "MPI_Comm_Rank",
                "MPI_Comm_Size",
                "MPI_Send",
                "MPI_Recv",
                "MPI_Finalize",
            ][s as usize]
                .to_string()
        };
        let rendered = nlr.render(&names);
        assert_eq!(
            rendered,
            vec![
                "MPI_Init",
                "MPI_Comm_Rank",
                "MPI_Comm_Size",
                "L0 ^ 4",
                "MPI_Finalize"
            ]
        );
        assert_eq!(
            table.render_body(LoopId(0), &names),
            "[MPI_Send - MPI_Recv]"
        );
    }

    #[test]
    fn shared_table_gives_same_loop_id_across_traces() {
        let mut table = LoopTable::new();
        let b = NlrBuilder::new(10);
        // Even trace: (Send Recv)^4 ; Odd trace: (Recv Send)^4.
        let even = b.build(&[3, 4, 3, 4, 3, 4, 3, 4], &mut table);
        let odd = b.build(&[4, 3, 4, 3, 4, 3, 4, 3], &mut table);
        let even2 = b.build(&[3, 4, 3, 4], &mut table);
        let l_even = even.elements()[0].loop_id().unwrap();
        let l_odd = odd.elements()[0].loop_id().unwrap();
        let l_even2 = even2.elements()[0].loop_id().unwrap();
        assert_ne!(l_even, l_odd, "L0 vs L1 as in Table III");
        assert_eq!(l_even, l_even2, "same body ⇒ same ID across traces");
    }

    #[test]
    fn nested_loops_found_in_later_passes() {
        // ((A B)^3 C)^4 — depth-2 nest.
        let mut input = Vec::new();
        for _ in 0..4 {
            for _ in 0..3 {
                input.push(1);
                input.push(2);
            }
            input.push(3);
        }
        let (nlr, table) = build(10, &input);
        assert_eq!(nlr.elements().len(), 1, "whole trace is one outer loop");
        match nlr.elements()[0] {
            Element::Loop { body, count } => {
                assert_eq!(count, 4);
                let outer_body = table.body(body);
                assert_eq!(outer_body.len(), 2); // inner loop + C
                assert!(outer_body[0].is_loop());
                assert_eq!(outer_body[1], Element::Sym(3));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn depth_statistics() {
        // ((A B)^3 C)^4 → depth-2 nest.
        let mut input = Vec::new();
        for _ in 0..4 {
            for _ in 0..3 {
                input.push(1);
                input.push(2);
            }
            input.push(3);
        }
        let (nlr, table) = build(10, &input);
        assert_eq!(nlr.max_depth(&table), 2);
        assert_eq!(nlr.loop_count(), 1);
        // Flat trace: depth 0, no loops.
        let (flat, t2) = build(10, &[1, 2, 3, 4]);
        assert_eq!(flat.max_depth(&t2), 0);
        assert_eq!(flat.loop_count(), 0);
        // Simple loop: depth 1.
        let (one, t3) = build(10, &[7, 7, 7]);
        assert_eq!(one.max_depth(&t3), 1);
    }

    #[test]
    fn render_nested_expands_bodies() {
        let mut input = Vec::new();
        for _ in 0..4 {
            for _ in 0..3 {
                input.push(1);
                input.push(2);
            }
            input.push(3);
        }
        let (nlr, table) = build(10, &input);
        let s = nlr.render_nested(&table, &|x| format!("f{x}"));
        assert_eq!(s, "((f1 f2)^3 f3)^4");
        let (flat, t2) = build(10, &[5, 6]);
        assert_eq!(flat.render_nested(&t2, &|x| format!("f{x}")), "f5 f6");
    }

    #[test]
    fn k_limits_body_length() {
        // Body of length 4 repeated: K=3 cannot fold it, K=4 can.
        let input = [1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4];
        let (nlr_small, _) = build(3, &input);
        assert_eq!(nlr_small.elements().len(), 12, "K too small: no folding");
        let (nlr_big, _) = build(4, &input);
        assert_eq!(nlr_big.elements().len(), 1);
    }

    #[test]
    fn truncated_loop_keeps_remainder() {
        // (A B)^3 then a dangling A — the dangling call of a thread
        // that died mid-loop must survive as its own element.
        let input = [1, 2, 1, 2, 1, 2, 1];
        let (nlr, _) = build(10, &input);
        let n = nlr.elements().len();
        assert_eq!(n, 2);
        assert!(nlr.elements()[0].is_loop());
        assert_eq!(nlr.elements()[1], Element::Sym(1));
    }

    #[test]
    fn different_counts_same_body_share_id() {
        let mut table = LoopTable::new();
        let b = NlrBuilder::new(10);
        let t16 = b.build(&[1u32, 2].repeat(16), &mut table);
        let t7 = b.build(&[1u32, 2].repeat(7), &mut table);
        let (l16, c16) = match t16.elements()[0] {
            Element::Loop { body, count } => (body, count),
            _ => panic!(),
        };
        let (l7, c7) = match t7.elements()[0] {
            Element::Loop { body, count } => (body, count),
            _ => panic!(),
        };
        assert_eq!(l16, l7);
        assert_eq!((c16, c7), (16, 7));
    }

    #[test]
    fn reduction_factor_grows_with_k() {
        // Long outer loop with body length 12: only foldable at K ≥ 12.
        let mut input = Vec::new();
        for _ in 0..200 {
            input.extend(0..12u32);
        }
        let (n10, _) = build(10, &input);
        let (n50, _) = build(50, &input);
        assert!(
            n50.reduction_factor() > n10.reduction_factor(),
            "K=50 must summarize more: {} vs {}",
            n50.reduction_factor(),
            n10.reduction_factor()
        );
    }
}
