//! `nlr` — Nested Loop Recognition for function-call traces.
//!
//! Implements §III-A of the DiffTrace paper: an adaptation of the NLR
//! algorithm of Ketterlin & Clauss (CGO'08) — with the bottom-up
//! loop-nest construction of Kobayashi & MacDougall — to whole-program
//! call traces. Repetitive patterns are folded into *loops*: each
//! distinct loop **body** gets a unique ID in a global [`LoopTable`],
//! and a trace like
//!
//! ```text
//! MPI_Init · (MPI_Send · MPI_Recv)⁴ · MPI_Finalize
//! ```
//!
//! summarizes to `MPI_Init, L0 ^ 4, MPI_Finalize` (cf. Table III of the
//! paper). The summarization is **lossless**: [`Nlr::expand`] reproduces
//! the input exactly, a property the test-suite checks by construction
//! and by `proptest`.
//!
//! The algorithm is the stack machine of the paper's *Procedure 1*:
//! every pushed element triggers [`reduce`](builder::NlrBuilder), which
//! (a) extends a loop below the stack top when the top `b` elements
//! repeat its body, (b) merges adjacent equal-bodied loops, and (c)
//! folds the top `2·b` elements into a fresh loop when the two halves
//! are equal, for `b ≤ K`. `K` bounds the loop-body length and gives
//! the `Θ(K²·N)` complexity quoted in the paper. As in the paper's
//! adaptation, the process restarts on the summarized sequence to find
//! deeper nests ("depth-2 loops and so on") until a fixpoint.
//!
//! Loop IDs are assigned from a [`LoopTable`] that is *shared across
//! traces of the same execution*, so `L0` means the same loop body in
//! every trace — the heuristic the paper uses to diff loops across
//! threads.
//!
//! # Example
//!
//! ```
//! use nlr::{LoopTable, NlrBuilder};
//!
//! let mut table = LoopTable::new();
//! // symbols: 0 = MPI_Init, 1 = MPI_Send, 2 = MPI_Recv, 3 = MPI_Finalize
//! let trace = [0, 1, 2, 1, 2, 1, 2, 1, 2, 3];
//! let nlr = NlrBuilder::new(10).build(&trace, &mut table);
//! assert_eq!(nlr.elements().len(), 3); // Init, L0^4, Finalize
//! assert_eq!(nlr.expand(&table), trace);
//! ```

pub mod builder;
pub mod element;
pub mod shared;
pub mod table;

pub use builder::NlrBuilder;
pub use element::{Element, LoopId, Nlr};
pub use shared::{RecordingInterner, SharedLoopTable};
pub use table::{LoopInterner, LoopTable};
