//! A loop-body interner safe for concurrent use, plus the canonical
//! renumbering that makes parallel NLR construction byte-identical to
//! the sequential one.
//!
//! # Why two tables
//!
//! Loop IDs leak into user-visible output: attribute names (`L0`),
//! rendered NLRs (`L0 ^ 4`), loop-table dumps. A sequential analysis
//! assigns IDs in fold order — first fold anywhere in the trace-by-trace
//! scan gets `L0`. Threads interning concurrently would assign IDs in
//! scheduling order, changing output run to run.
//!
//! The fix exploits a property of the NLR builder: its folding decisions
//! depend only on the input symbols (and bodies it interned itself),
//! never on IDs already in the table. So a parallel build produces the
//! *same loop structures* as a sequential one; only the numbering
//! differs. The pipeline therefore:
//!
//! 1. builds all NLRs in parallel against a [`SharedLoopTable`], each
//!    worker recording its per-trace fold order via a
//!    [`RecordingInterner`] (**provisional** IDs, scheduling-dependent);
//! 2. replays the recorded fold orders sequentially — traces in
//!    deterministic order, folds in recorded order — assigning
//!    **canonical** IDs into a plain [`LoopTable`]
//!    ([`SharedLoopTable::canonicalize_into`]);
//! 3. remaps every NLR from provisional to canonical IDs
//!    ([`crate::Nlr::remap_loops`]).
//!
//! Because a sequential build *is* the replay (trace order × fold
//! order), the canonical numbering equals what a plain sequential build
//! into the same starting table would have produced — exactly.
//!
//! # Concurrency design
//!
//! Deduplication uses mutex-sharded hash maps keyed by body content.
//! Bodies themselves live in a fixed-geometry paged arena of
//! `OnceLock` slots, so [`SharedLoopTable::body`] is lock-free: an ID
//! obtained from `intern` (directly, or via the shard map under its
//! mutex) happens-after its body was published.

use crate::element::{Element, LoopId};
use crate::table::{LoopInterner, LoopTable};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of dedup shards. A power of two so the shard pick is a mask.
const SHARDS: usize = 16;
/// Bodies per arena page.
const PAGE: usize = 1024;
/// Maximum pages — caps the table at `PAGE * MAX_PAGES` distinct
/// bodies, far beyond what real trace sets produce.
const MAX_PAGES: usize = 4096;

type Page = Box<[OnceLock<Vec<Element>>]>;

/// A loop-body interner shareable across threads (`&SharedLoopTable`
/// implements [`LoopInterner`]). IDs are **provisional**: dense and
/// content-unique, but assigned in scheduling order — run
/// [`SharedLoopTable::canonicalize_into`] before any ID reaches output.
pub struct SharedLoopTable {
    shards: Vec<Mutex<HashMap<Vec<Element>, LoopId>>>,
    pages: Box<[OnceLock<Page>]>,
    next: AtomicU32,
}

impl SharedLoopTable {
    /// An empty table.
    pub fn new() -> SharedLoopTable {
        SharedLoopTable {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            pages: (0..MAX_PAGES).map(|_| OnceLock::new()).collect(),
            next: AtomicU32::new(0),
        }
    }

    /// A table seeded with the entries of `table`, keeping their IDs.
    /// Used when a parallel stage continues from an existing canonical
    /// table (e.g. the faulty run of a diff after the normal run): the
    /// seeded IDs are already canonical, so `canonicalize_into` maps
    /// them to themselves.
    pub fn from_table(table: &LoopTable) -> SharedLoopTable {
        let shared = SharedLoopTable::new();
        for i in 0..table.len() {
            let id = shared.intern(table.body(LoopId(i as u32)).to_vec());
            debug_assert_eq!(id, LoopId(i as u32));
        }
        shared
    }

    fn shard_of(body: &[Element]) -> usize {
        let mut h = DefaultHasher::new();
        body.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    /// Intern `body`, returning its (possibly pre-existing) provisional
    /// ID. Safe to call from many threads.
    pub fn intern(&self, body: Vec<Element>) -> LoopId {
        let mut map = self.shards[Self::shard_of(&body)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = map.get(&body) {
            return id;
        }
        let id = LoopId(self.next.fetch_add(1, Ordering::Relaxed));
        // Publish the body before the map entry becomes visible: any
        // thread that learns `id` (from this return value or from the
        // map, under the shard mutex) can then read the body without
        // synchronization beyond the OnceLock's own acquire load.
        self.publish(id, body.clone());
        map.insert(body, id);
        id
    }

    fn publish(&self, id: LoopId, body: Vec<Element>) {
        let idx = id.0 as usize;
        let page = idx / PAGE;
        assert!(page < MAX_PAGES, "SharedLoopTable capacity exceeded");
        let slots = self.pages[page].get_or_init(|| {
            (0..PAGE)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        slots[idx % PAGE]
            .set(body)
            .expect("each provisional id is published exactly once");
    }

    /// The body of `id`. Lock-free. Panics on an ID this table never
    /// returned.
    pub fn body(&self, id: LoopId) -> &[Element] {
        let idx = id.0 as usize;
        self.pages[idx / PAGE]
            .get()
            .and_then(|slots| slots[idx % PAGE].get())
            .expect("foreign or unpublished LoopId")
    }

    /// Number of distinct bodies interned so far. Racy under concurrent
    /// interning; exact once all workers have joined.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Acquire) as usize
    }

    /// True if no bodies have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replay `fold_orders` (per-trace intern sequences, concatenated in
    /// the deterministic trace order) against `out`, assigning canonical
    /// IDs in first-fold order — the exact order a sequential build into
    /// `out` would have used. Entries already in `out` (when this table
    /// was seeded with [`SharedLoopTable::from_table`]) keep their IDs.
    /// Returns the provisional→canonical map, indexed by provisional ID.
    ///
    /// Panics if a fold order references an inner loop before it was
    /// recorded — impossible for orders produced by
    /// [`RecordingInterner`], since the builder always folds inner loops
    /// before the outer loop whose body references them.
    pub fn canonicalize_into<I>(&self, fold_orders: I, out: &mut LoopTable) -> Vec<LoopId>
    where
        I: IntoIterator<Item = LoopId>,
    {
        let total = self.len();
        let mut map: Vec<Option<LoopId>> = vec![None; total];
        for (i, slot) in map.iter_mut().enumerate().take(out.len()) {
            *slot = Some(LoopId(i as u32));
        }
        for pid in fold_orders {
            if map[pid.0 as usize].is_some() {
                continue;
            }
            let body: Vec<Element> = self
                .body(pid)
                .iter()
                .map(|&e| match e {
                    Element::Loop { body, count } => Element::Loop {
                        body: map[body.0 as usize].expect("inner loop folded before outer"),
                        count,
                    },
                    sym => sym,
                })
                .collect();
            let cid = out.intern(body);
            map[pid.0 as usize] = Some(cid);
        }
        map.into_iter()
            .map(|m| m.expect("every provisional id appears in some fold order"))
            .collect()
    }
}

impl Default for SharedLoopTable {
    fn default() -> SharedLoopTable {
        SharedLoopTable::new()
    }
}

impl LoopInterner for &SharedLoopTable {
    fn intern(&mut self, body: Vec<Element>) -> LoopId {
        SharedLoopTable::intern(self, body)
    }
    fn body(&self, id: LoopId) -> &[Element] {
        SharedLoopTable::body(self, id)
    }
}

/// A [`LoopInterner`] over a [`SharedLoopTable`] that records every
/// `intern` result in call order. One per trace during a parallel
/// build; the recorded orders drive
/// [`SharedLoopTable::canonicalize_into`].
pub struct RecordingInterner<'a> {
    table: &'a SharedLoopTable,
    order: Vec<LoopId>,
}

impl<'a> RecordingInterner<'a> {
    pub fn new(table: &'a SharedLoopTable) -> RecordingInterner<'a> {
        RecordingInterner {
            table,
            order: Vec::new(),
        }
    }

    /// The recorded fold order (every `intern` call's result, duplicates
    /// included — replay skips already-mapped IDs).
    pub fn into_order(self) -> Vec<LoopId> {
        self.order
    }
}

impl LoopInterner for RecordingInterner<'_> {
    fn intern(&mut self, body: Vec<Element>) -> LoopId {
        let id = self.table.intern(body);
        self.order.push(id);
        id
    }
    fn body(&self, id: LoopId) -> &[Element] {
        self.table.body(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NlrBuilder;

    fn sym(s: u32) -> Element {
        Element::Sym(s)
    }

    #[test]
    fn intern_dedups_and_reads_back() {
        let t = SharedLoopTable::new();
        let a = t.intern(vec![sym(1), sym(2)]);
        let b = t.intern(vec![sym(3)]);
        let a2 = t.intern(vec![sym(1), sym(2)]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.body(a), &[sym(1), sym(2)]);
        assert_eq!(t.body(b), &[sym(3)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn concurrent_interning_same_bodies_one_id() {
        let t = SharedLoopTable::new();
        let ids: Vec<Vec<LoopId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        (0..100u32)
                            .map(|i| t.intern(vec![sym(i % 10)]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(t.len(), 10, "10 distinct bodies regardless of races");
        // Every thread resolved each body to the same id.
        for per_thread in &ids {
            assert_eq!(&per_thread[..10], &per_thread[90..100]);
        }
        for i in 0..10 {
            assert_eq!(t.body(ids[0][i]), &[sym(i as u32 % 10)]);
            for thread in &ids {
                assert_eq!(thread[i], ids[0][i]);
            }
        }
    }

    #[test]
    fn canonicalization_matches_sequential_build() {
        // Traces crafted so that provisional order (here: reversed trace
        // order) differs from sequential order.
        let traces: Vec<Vec<u32>> = vec![
            [1u32, 2].repeat(4),                        // folds (1 2)
            [3u32].repeat(5),                           // folds (3)
            [1u32, 2, 1, 2, 9, 1, 2, 1, 2, 9].to_vec(), // nested ((1 2)^2 9)
        ];
        let builder = NlrBuilder::new(10);

        // Reference: plain sequential build.
        let mut seq_table = LoopTable::new();
        let seq_nlrs: Vec<_> = traces
            .iter()
            .map(|t| builder.build(t, &mut seq_table))
            .collect();

        // Parallel-style build in REVERSE order (worst-case schedule),
        // then canonical replay in forward order.
        let shared = SharedLoopTable::new();
        let mut orders = vec![Vec::new(); traces.len()];
        let mut prov_nlrs = vec![None; traces.len()];
        for i in (0..traces.len()).rev() {
            let mut rec = RecordingInterner::new(&shared);
            prov_nlrs[i] = Some(builder.build(&traces[i], &mut rec));
            orders[i] = rec.into_order();
        }
        let mut canon_table = LoopTable::new();
        let map = shared.canonicalize_into(orders.into_iter().flatten(), &mut canon_table);
        let canon_nlrs: Vec<_> = prov_nlrs
            .into_iter()
            .map(|n| n.unwrap().remap_loops(&|id| map[id.0 as usize]))
            .collect();

        assert_eq!(canon_table.len(), seq_table.len());
        for i in 0..canon_table.len() {
            assert_eq!(
                canon_table.body(LoopId(i as u32)),
                seq_table.body(LoopId(i as u32)),
                "body {i}"
            );
        }
        for (c, s) in canon_nlrs.iter().zip(&seq_nlrs) {
            assert_eq!(c.elements(), s.elements());
        }
    }

    #[test]
    fn seeded_table_keeps_existing_ids() {
        let mut base = LoopTable::new();
        let pre = base.intern(vec![sym(7)]);
        let shared = SharedLoopTable::from_table(&base);
        assert_eq!(shared.len(), 1);
        assert_eq!(shared.intern(vec![sym(7)]), pre, "seed entry dedups");
        let fresh = shared.intern(vec![sym(8)]);
        let map = shared.canonicalize_into(vec![pre, fresh], &mut base);
        assert_eq!(map[pre.0 as usize], pre);
        assert_eq!(map[fresh.0 as usize], fresh);
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn arena_crosses_page_boundaries() {
        let t = SharedLoopTable::new();
        let n = (PAGE + 10) as u32;
        for i in 0..n {
            t.intern(vec![sym(i)]);
        }
        assert_eq!(t.len(), n as usize);
        assert_eq!(t.body(LoopId(PAGE as u32 + 5)), &[sym(PAGE as u32 + 5)]);
    }
}
