//! OpenMP shared-memory workloads for `racecheck` — hybrid MPI+OpenMP
//! programs whose *intra-process* thread teams touch named shared
//! variables through the `omp_*@` marker vocabulary.
//!
//! Two programs, each with one planted fault:
//!
//! * [`run_omp_counter`] — a reduction: every worker accumulates
//!   partial sums into a shared `counter` under `counter_lock`; after
//!   the team barrier the master reads the total (also under the
//!   lock) and the ranks allreduce it.
//!   [`OmpCounterFault::Unprotected`] makes one rank's team update the
//!   counter **without** the lock — the textbook unprotected-counter
//!   bug (`RC001` write-write, `RC002` read-write, `RC004` empty
//!   Eraser lockset).
//! * [`run_omp_lockorder`] — a two-account ledger: each thread, on its
//!   turn, moves value between accounts holding `alpha` **then**
//!   `beta`. [`OmpLockOrderFault::Inverted`] makes one thread take
//!   them in the opposite order (`RC003` lock-order inversion). Turns
//!   are round-robin with a barrier per round, so the inverted order
//!   never actually deadlocks the simulation — exactly the *potential*
//!   deadlock a dynamic analysis must catch before the unlucky
//!   interleaving ships.

use dt_trace::FunctionRegistry;
use mpisim::{run, ReduceOp, RunOutcome, SimConfig};
use std::sync::Arc;

/// Fault injected into the counter reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmpCounterFault {
    /// `rank`'s whole team updates `counter` without `counter_lock`.
    Unprotected {
        /// The faulty rank.
        rank: u32,
    },
}

/// Configuration of one counter-reduction execution.
#[derive(Debug, Clone)]
pub struct OmpCounterConfig {
    /// MPI ranks.
    pub ranks: u32,
    /// OpenMP threads per rank (master + workers).
    pub threads: u32,
    /// Loop iterations split statically across the workers.
    pub iters: u32,
    /// Optional fault.
    pub fault: Option<OmpCounterFault>,
}

impl OmpCounterConfig {
    /// A small default: 2 ranks × 4 threads × 24 iterations.
    pub fn default_2x4() -> OmpCounterConfig {
        OmpCounterConfig {
            ranks: 2,
            threads: 4,
            iters: 24,
            fault: None,
        }
    }
}

/// Run the counter reduction.
pub fn run_omp_counter(cfg: &OmpCounterConfig, registry: Arc<FunctionRegistry>) -> RunOutcome {
    let cfg = cfg.clone();
    let sim = SimConfig::new(cfg.ranks).with_watchdog(std::time::Duration::from_secs(20));
    run(sim, registry, move |rank| {
        let tr = rank.tracer();
        let main = tr.enter("main");
        rank.init()?;
        let me = rank.comm_rank()?;
        let unprotected = matches!(
            cfg.fault,
            Some(OmpCounterFault::Unprotected { rank: fr }) if fr == me
        );
        rank.omp_parallel(cfg.threads, |omp| {
            let tr = omp.tracer();
            let scope = tr.enter("AccumulatePartials");
            for _ in omp.static_iters(cfg.iters) {
                tr.leaf("compute_chunk");
                if unprotected {
                    // The planted bug: read-modify-write with no lock.
                    omp.shared_read("counter");
                    omp.shared_write("counter");
                } else {
                    omp.lock("counter_lock", || {
                        omp.shared_read("counter");
                        omp.shared_write("counter");
                    });
                }
            }
            drop(scope);
            if omp.barrier().is_err() {
                return;
            }
            // The master publishes the total after the team barrier —
            // still under the lock, keeping the Eraser set non-empty.
            if omp.thread_num() == 0 {
                let scope = tr.enter("PublishTotal");
                omp.lock("counter_lock", || omp.shared_read("counter"));
                drop(scope);
            }
        });
        rank.allreduce(&[i64::from(cfg.iters)], ReduceOp::Sum)?;
        rank.finalize()?;
        drop(main);
        Ok(())
    })
}

/// Fault injected into the ledger workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmpLockOrderFault {
    /// `thread` on `rank` nests `beta` → `alpha` instead of
    /// `alpha` → `beta`.
    Inverted {
        /// The faulty rank.
        rank: u32,
        /// The faulty thread of that rank's team.
        thread: u32,
    },
}

/// Configuration of one ledger execution.
#[derive(Debug, Clone)]
pub struct OmpLockOrderConfig {
    /// MPI ranks.
    pub ranks: u32,
    /// OpenMP threads per rank.
    pub threads: u32,
    /// Barrier-separated transfer rounds; thread `r % threads` moves
    /// value in round `r`.
    pub rounds: u32,
    /// Optional fault.
    pub fault: Option<OmpLockOrderFault>,
}

impl OmpLockOrderConfig {
    /// A small default: 2 ranks × 3 threads × 12 rounds.
    pub fn default_2x3() -> OmpLockOrderConfig {
        OmpLockOrderConfig {
            ranks: 2,
            threads: 3,
            rounds: 12,
            fault: None,
        }
    }
}

/// Run the ledger workload.
pub fn run_omp_lockorder(cfg: &OmpLockOrderConfig, registry: Arc<FunctionRegistry>) -> RunOutcome {
    let cfg = cfg.clone();
    let sim = SimConfig::new(cfg.ranks).with_watchdog(std::time::Duration::from_secs(20));
    run(sim, registry, move |rank| {
        let tr = rank.tracer();
        let main = tr.enter("main");
        rank.init()?;
        let me = rank.comm_rank()?;
        rank.omp_parallel(cfg.threads, |omp| {
            let tr = omp.tracer();
            let inverted = matches!(
                cfg.fault,
                Some(OmpLockOrderFault::Inverted { rank: fr, thread: ft })
                    if fr == me && ft == omp.thread_num()
            );
            for round in 0..cfg.rounds {
                if round % omp.num_threads() == omp.thread_num() {
                    let scope = tr.enter("TransferRound");
                    let (outer, inner) = if inverted {
                        ("beta", "alpha")
                    } else {
                        ("alpha", "beta")
                    };
                    omp.lock(outer, || {
                        tr.leaf("debit_account");
                        omp.lock(inner, || tr.leaf("credit_account"));
                    });
                    drop(scope);
                }
                if omp.barrier().is_err() {
                    return;
                }
            }
        });
        rank.allreduce(&[i64::from(cfg.rounds)], ReduceOp::Sum)?;
        rank.finalize()?;
        drop(main);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_racecheck::{analyze, RaceCode, RaceVocab};
    use dt_trace::TraceId;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    fn report(out: &RunOutcome, reg: &FunctionRegistry) -> dt_racecheck::RaceReport {
        let vocab = RaceVocab::build(reg);
        let facts: Vec<_> = out
            .traces
            .iter()
            .map(|t| dt_racecheck::expanded::summarize(t.id, &t.to_symbols(), t.truncated, &vocab))
            .collect();
        analyze(&facts)
    }

    #[test]
    fn protected_counter_is_race_clean() {
        let reg = registry();
        let out = run_omp_counter(&OmpCounterConfig::default_2x4(), reg.clone());
        assert!(!out.deadlocked, "{:?}", out.errors);
        let r = report(&out, &reg);
        assert!(r.is_clean(), "{}", r.render_text());
        // The workers really did hit the marker vocabulary.
        let t = out.traces.get(TraceId::new(0, 1)).unwrap();
        assert!(t
            .calls()
            .any(|e| out.traces.registry.name(e.fn_id()) == "omp_write@counter"));
    }

    #[test]
    fn unprotected_counter_fires_rc001_rc002_rc004() {
        let reg = registry();
        let mut cfg = OmpCounterConfig::default_2x4();
        cfg.fault = Some(OmpCounterFault::Unprotected { rank: 1 });
        let out = run_omp_counter(&cfg, reg.clone());
        assert!(!out.deadlocked, "{:?}", out.errors);
        let r = report(&out, &reg);
        let codes = r.codes();
        assert!(codes.contains(&RaceCode::WriteWrite), "{}", r.render_text());
        assert!(codes.contains(&RaceCode::ReadWrite));
        assert!(codes.contains(&RaceCode::Unprotected));
        // The race lives in process 1 only.
        assert!(r
            .diagnostics()
            .iter()
            .all(|d| d.trace.is_none_or(|t| t.process == 1)));
    }

    #[test]
    fn consistent_lock_order_is_race_clean() {
        let reg = registry();
        let out = run_omp_lockorder(&OmpLockOrderConfig::default_2x3(), reg.clone());
        assert!(!out.deadlocked, "{:?}", out.errors);
        let r = report(&out, &reg);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn inverted_lock_order_fires_exactly_rc003() {
        let reg = registry();
        let mut cfg = OmpLockOrderConfig::default_2x3();
        cfg.fault = Some(OmpLockOrderFault::Inverted { rank: 0, thread: 2 });
        let out = run_omp_lockorder(&cfg, reg.clone());
        assert!(
            !out.deadlocked,
            "the round-robin schedule must not deadlock"
        );
        let r = report(&out, &reg);
        assert_eq!(
            r.codes().into_iter().collect::<Vec<_>>(),
            vec![RaceCode::LockOrder],
            "{}",
            r.render_text()
        );
        let d = &r.diagnostics()[0];
        assert!(
            d.message.contains("`alpha` → `beta` → `alpha`"),
            "{}",
            d.message
        );
    }
}
