//! Demo fleets: N healthy executions of one workload plus one with an
//! injected fault — the corpus shape `difftrace fleet` consumes.
//!
//! Each run gets its **own** fresh [`FunctionRegistry`]: a fleet is
//! recorded across machines and days, so nothing may assume shared
//! interning. (The fleet analysis canonicalizes by name, which these
//! generators exercise by construction.)

use crate::oddeven::{run_oddeven, OddEvenConfig};
use crate::stencil::{run_stencil, StencilConfig, StencilFault};
use dt_trace::FunctionRegistry;
use mpisim::RunOutcome;
use std::sync::Arc;

/// An odd/even-sort fleet: `healthy` clean runs (`run-0`…) on varied
/// input seeds plus one `fault` run with the paper's swapBug, at the
/// paper's 16-rank size.
pub fn oddeven_fleet(healthy: usize) -> Vec<(String, RunOutcome)> {
    oddeven_fleet_sized(16, 4, healthy)
}

/// [`oddeven_fleet`] at an arbitrary size — small configurations keep
/// test fleets fast.
pub fn oddeven_fleet_sized(
    ranks: u32,
    values_per_rank: usize,
    healthy: usize,
) -> Vec<(String, RunOutcome)> {
    let mut fleet = Vec::with_capacity(healthy + 1);
    for i in 0..healthy {
        let cfg = OddEvenConfig {
            ranks,
            values_per_rank,
            seed: 2019 + i as u64,
            fault: None,
        };
        fleet.push((
            format!("run-{i}"),
            run_oddeven(&cfg, Arc::new(FunctionRegistry::new())),
        ));
    }
    let cfg = OddEvenConfig {
        ranks,
        values_per_rank,
        seed: 2019,
        fault: Some(OddEvenConfig::swap_bug()),
    };
    fleet.push((
        "fault".to_string(),
        run_oddeven(&cfg, Arc::new(FunctionRegistry::new())),
    ));
    fleet
}

/// A 1-D stencil fleet: `healthy` clean runs (`run-0`…) with slightly
/// varied convergence thresholds plus one `fault` run where rank 3
/// keeps using stale halo data (convergence stalls, so its loop trip
/// counts deviate from the fleet consensus).
pub fn stencil_fleet(healthy: usize) -> Vec<(String, RunOutcome)> {
    let mut fleet = Vec::with_capacity(healthy + 1);
    for i in 0..healthy {
        let cfg = StencilConfig {
            residual_threshold: 400 + 20 * i as i64,
            ..StencilConfig::default_8()
        };
        fleet.push((
            format!("run-{i}"),
            run_stencil(&cfg, Arc::new(FunctionRegistry::new())).0,
        ));
    }
    let cfg = StencilConfig {
        fault: Some(StencilFault::StaleHalo {
            rank: 3,
            after_iter: 2,
        }),
        ..StencilConfig::default_8()
    };
    fleet.push((
        "fault".to_string(),
        run_stencil(&cfg, Arc::new(FunctionRegistry::new())).0,
    ));
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_oddeven_fleet_has_named_runs_and_aligned_traces() {
        let fleet = oddeven_fleet_sized(4, 2, 3);
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet[0].0, "run-0");
        assert_eq!(fleet[3].0, "fault");
        let ids = fleet[0].1.traces.ids();
        for (name, run) in &fleet {
            assert_eq!(run.traces.ids(), ids, "{name} not aligned");
        }
    }
}
