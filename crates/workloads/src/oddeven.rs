//! MPI odd/even transposition sort (the paper's Figure 2) with the
//! §II-G faults.
//!
//! Every rank holds a block of values; the sort runs `comm_size`
//! phases. In each phase a rank pairs with a neighbour (even phases
//! pair (0,1)(2,3)…, odd phases pair (1,2)(3,4)…); as in the paper's
//! simplified listing, *even* ranks `Send; Recv` and *odd* ranks
//! `Recv; Send`. Lower rank keeps the smaller half.
//!
//! Faults (both "in rank 5 after the seventh iteration" by default):
//!
//! * **swapBug** — the faulty rank swaps its `Recv; Send` order to
//!   `Send; Recv`. Under eager buffering this is a *potential* deadlock
//!   only: execution completes, but the loop body changes from `L1` to
//!   `L0` — Figure 5.
//! * **dlBug** — the faulty rank receives on a tag nobody sends: a real
//!   deadlock that stalls the whole job — Figure 6.

use dt_trace::FunctionRegistry;
use mpisim::{run, MpiError, Rank, RunOutcome, SimConfig};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Fault injected into the odd/even sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OddEvenFault {
    /// Swap the faulty rank's Recv;Send to Send;Recv from `after_iter`.
    SwapBug {
        /// The rank to perturb (the paper uses 5).
        rank: u32,
        /// First affected loop iteration (the paper uses 7).
        after_iter: u32,
    },
    /// Receive on a bogus tag from `after_iter` on: a real deadlock.
    DlBug {
        /// The rank to perturb.
        rank: u32,
        /// First affected loop iteration.
        after_iter: u32,
    },
}

/// Configuration of one odd/even-sort execution.
#[derive(Debug, Clone)]
pub struct OddEvenConfig {
    /// Number of MPI ranks.
    pub ranks: u32,
    /// Values held per rank.
    pub values_per_rank: usize,
    /// RNG seed for the input data.
    pub seed: u64,
    /// Optional fault.
    pub fault: Option<OddEvenFault>,
}

impl OddEvenConfig {
    /// The paper's §II-G setup: 16 ranks.
    pub fn paper(fault: Option<OddEvenFault>) -> OddEvenConfig {
        OddEvenConfig {
            ranks: 16,
            values_per_rank: 4,
            seed: 2019,
            fault,
        }
    }

    /// The swapBug of §II-G: rank 5, after iteration 7.
    pub fn swap_bug() -> OddEvenFault {
        OddEvenFault::SwapBug {
            rank: 5,
            after_iter: 7,
        }
    }

    /// The dlBug of §II-G: rank 5, after iteration 7.
    pub fn dl_bug() -> OddEvenFault {
        OddEvenFault::DlBug {
            rank: 5,
            after_iter: 7,
        }
    }
}

/// Tag used for sort exchanges.
const TAG: i32 = 0;
/// Tag nobody ever sends on (dlBug).
const BOGUS_TAG: i32 = 666;

/// Neighbour of `rank` in phase `i`, or `None` when the rank idles
/// (edge ranks on alternating phases) — `findPtr` in Figure 2.
fn find_ptr(i: u32, rank: u32, size: u32) -> Option<u32> {
    let partner = if i.is_multiple_of(2) {
        // Even phase: pairs (0,1)(2,3)…
        if rank.is_multiple_of(2) {
            rank.checked_add(1)
        } else {
            rank.checked_sub(1)
        }
    } else {
        // Odd phase: pairs (1,2)(3,4)…
        if rank % 2 == 1 {
            rank.checked_add(1)
        } else {
            rank.checked_sub(1)
        }
    };
    partner.filter(|&p| p < size)
}

fn odd_even_sort(
    rank: &Rank,
    mut data: Vec<i64>,
    fault: Option<OddEvenFault>,
) -> Result<Vec<i64>, MpiError> {
    let tracer = rank.tracer();
    let scope = tracer.enter("oddEvenSort");
    let me = rank.rank();
    let cp = rank.size();
    for i in 0..cp {
        tracer.leaf("findPtr");
        let Some(ptr) = find_ptr(i, me, cp) else {
            continue;
        };
        // Which protocol does this rank use this iteration?
        let mut send_first = me.is_multiple_of(2);
        let mut bogus_recv = false;
        match fault {
            Some(OddEvenFault::SwapBug {
                rank: fr,
                after_iter,
            }) if fr == me && i >= after_iter => {
                send_first = !send_first;
            }
            Some(OddEvenFault::DlBug {
                rank: fr,
                after_iter,
            }) if fr == me && i >= after_iter => {
                bogus_recv = true;
            }
            _ => {}
        }
        let received = if bogus_recv {
            // Real deadlock: wait for a message that never comes.
            rank.recv(ptr, BOGUS_TAG)?
        } else if send_first {
            rank.send(ptr, TAG, &data)?;
            rank.recv(ptr, TAG)?
        } else {
            let r = rank.recv(ptr, TAG)?;
            rank.send(ptr, TAG, &data)?;
            r
        };
        // Exchange step: lower rank keeps the smaller half.
        let mut merged = data.clone();
        merged.extend_from_slice(&received);
        merged.sort_unstable();
        data = if me < ptr {
            merged[..data.len()].to_vec()
        } else {
            merged[merged.len() - data.len()..].to_vec()
        };
    }
    drop(scope);
    Ok(data)
}

/// Run the odd/even sort, returning the traces and (through
/// `RunOutcome::errors`) any deadlock. The sorted data is validated by
/// the tests via [`run_oddeven_collecting`].
pub fn run_oddeven(cfg: &OddEvenConfig, registry: Arc<FunctionRegistry>) -> RunOutcome {
    run_oddeven_collecting(cfg, registry).0
}

/// As [`run_oddeven`], also returning each rank's final block (empty
/// for ranks that died).
pub fn run_oddeven_collecting(
    cfg: &OddEvenConfig,
    registry: Arc<FunctionRegistry>,
) -> (RunOutcome, Vec<Vec<i64>>) {
    let results: Mutex<Vec<Vec<i64>>> = Mutex::new(vec![Vec::new(); cfg.ranks as usize]);
    let cfg2 = cfg.clone();
    let sim = SimConfig::new(cfg.ranks).with_watchdog(std::time::Duration::from_secs(20));
    let outcome = run(sim, registry, |rank| {
        let tracer = rank.tracer();
        let main = tracer.enter("main");
        rank.init()?;
        let me = rank.comm_rank()?;
        let _n = rank.comm_size()?;
        // Initialize data to sort (deterministic per rank).
        let mut rng = StdRng::seed_from_u64(cfg2.seed.wrapping_add(u64::from(me)));
        let data: Vec<i64> = (0..cfg2.values_per_rank)
            .map(|_| rng.gen_range(0..10_000))
            .collect();
        let sorted = odd_even_sort(rank, data, cfg2.fault)?;
        results.lock()[me as usize] = sorted;
        rank.finalize()?;
        drop(main);
        Ok(())
    });
    (outcome, results.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::TraceId;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    fn small(fault: Option<OddEvenFault>) -> OddEvenConfig {
        OddEvenConfig {
            ranks: 4,
            values_per_rank: 4,
            seed: 7,
            fault,
        }
    }

    #[test]
    fn normal_run_sorts_globally() {
        let (out, blocks) = run_oddeven_collecting(&small(None), registry());
        assert!(!out.deadlocked, "{:?}", out.errors);
        let all: Vec<i64> = blocks.concat();
        // Each rank's block sorted, and blocks ordered across ranks.
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(all, sorted, "global order violated: {blocks:?}");
    }

    #[test]
    fn find_ptr_matches_paper_pairing() {
        // 4 ranks: even phase pairs (0,1)(2,3); odd phase pairs (1,2).
        assert_eq!(find_ptr(0, 0, 4), Some(1));
        assert_eq!(find_ptr(0, 1, 4), Some(0));
        assert_eq!(find_ptr(0, 2, 4), Some(3));
        assert_eq!(find_ptr(1, 0, 4), None); // edge rank idles
        assert_eq!(find_ptr(1, 1, 4), Some(2));
        assert_eq!(find_ptr(1, 3, 4), None);
        // Partners always see each other.
        for i in 0..8 {
            for r in 0..8u32 {
                if let Some(p) = find_ptr(i, r, 8) {
                    assert_eq!(find_ptr(i, p, 8), Some(r), "phase {i} rank {r}");
                }
            }
        }
    }

    #[test]
    fn trace_shape_matches_table_ii() {
        // 4 ranks: ranks 1,2 exchange every phase (4×), ranks 0,3 only
        // on even phases (2×).
        let (out, _) = run_oddeven_collecting(&small(None), registry());
        let count_sends = |p: u32| {
            let t = out.traces.get(TraceId::master(p)).unwrap();
            t.calls()
                .filter(|e| out.traces.registry.name(e.fn_id()) == "MPI_Send")
                .count()
        };
        assert_eq!(count_sends(0), 2);
        assert_eq!(count_sends(1), 4);
        assert_eq!(count_sends(2), 4);
        assert_eq!(count_sends(3), 2);
    }

    #[test]
    fn swap_bug_still_terminates() {
        let cfg = OddEvenConfig::paper(Some(OddEvenConfig::swap_bug()));
        let out = run_oddeven(&cfg, registry());
        assert!(!out.deadlocked, "swapBug must complete under eager sends");
        // Rank 5's trace still reaches MPI_Finalize.
        let t5 = out.traces.get(TraceId::master(5)).unwrap();
        let names: Vec<String> = t5
            .calls()
            .map(|e| out.traces.registry.name(e.fn_id()))
            .collect();
        assert_eq!(names.last().unwrap(), "MPI_Finalize");
    }

    #[test]
    fn dl_bug_deadlocks_and_truncates_rank_5() {
        let cfg = OddEvenConfig::paper(Some(OddEvenConfig::dl_bug()));
        let out = run_oddeven(&cfg, registry());
        assert!(out.deadlocked);
        let t5 = out.traces.get(TraceId::master(5)).unwrap();
        assert!(t5.truncated);
        let last = *t5.events.last().unwrap();
        assert!(last.is_call());
        assert_eq!(out.traces.registry.name(last.fn_id()), "MPI_Recv");
        // No MPI_Finalize in rank 5's trace (Figure 6).
        assert!(!t5
            .calls()
            .any(|e| out.traces.registry.name(e.fn_id()) == "MPI_Finalize"));
    }

    #[test]
    fn shared_registry_aligns_fn_ids_across_runs() {
        let reg = registry();
        let normal = run_oddeven(&small(None), reg.clone());
        let faulty = run_oddeven(
            &small(Some(OddEvenFault::SwapBug {
                rank: 1,
                after_iter: 2,
            })),
            reg.clone(),
        );
        let f = |set: &dt_trace::TraceSet| set.registry.resolve("MPI_Send").unwrap();
        assert_eq!(f(&normal.traces), f(&faulty.traces));
    }
}
