//! `workloads` — the instrumented MPI/OpenMP programs of the paper's
//! evaluation, with fault injection.
//!
//! Three workloads, each a faithful structural model of the paper's:
//!
//! * [`oddeven`] — the §II walk-through: textbook MPI odd/even
//!   transposition sort (Figure 2) with the *swapBug* (reordered
//!   Send/Recv) and *dlBug* (real deadlock) faults planted in rank 5
//!   after the seventh iteration.
//! * [`ilcs`] — the §IV case study: the ILCS iterative-local-search
//!   framework (Burtscher & Rabeti) running a real 2-opt TSP solver
//!   ([`tsp`]) under a master/worker MPI+OpenMP structure matching
//!   Listing 1, with the three §IV faults: an unprotected critical
//!   section, a wrong-size collective (deadlock), and a wrong
//!   collective operation (silent semantic change).
//! * [`lulesh`] — the §V example: a structural proxy of the LULESH2
//!   shock-hydro miniapp — the real phase call tree (LagrangeLeapFrog →
//!   nodal/element subphases), parametric per-region kernel families
//!   (~400 distinct traced functions), MPI halo exchange, OpenMP worker
//!   teams — with the §V fault (rank 2 skips `LagrangeLeapFrog`).
//!
//! Plus [`stencil`] (a 1-D heat solver exercising the collective
//! family), the shared-memory [`omp`] pair for `racecheck` (an
//! unprotected-counter bug and a lock-order inversion), and the
//! nonblocking [`reqlife`] ring exchange for `reqcheck` (a leaked
//! `MPI_Isend` request and a divergent collective reduce-op).
//!
//! Each workload exposes `run_*(config, registry) → RunOutcome`; run
//! the same config twice (one with `fault: None`) against a **shared
//! registry** to produce an aligned normal/faulty trace pair for
//! DiffTrace.

pub mod fleet;
pub mod ilcs;
pub mod lulesh;
pub mod oddeven;
pub mod omp;
pub mod reqlife;
pub mod stencil;
pub mod tsp;

pub use fleet::{oddeven_fleet, oddeven_fleet_sized, stencil_fleet};
pub use ilcs::{run_ilcs, IlcsConfig, IlcsFault};
pub use lulesh::{run_lulesh, LuleshConfig, LuleshFault};
pub use mpisim::RunOutcome;
pub use oddeven::{run_oddeven, OddEvenConfig, OddEvenFault};
pub use omp::{
    run_omp_counter, run_omp_lockorder, OmpCounterConfig, OmpCounterFault, OmpLockOrderConfig,
    OmpLockOrderFault,
};
pub use reqlife::{run_reqlife, ReqLifeConfig, ReqLifeFault};
pub use stencil::{run_stencil, StencilConfig, StencilFault};
