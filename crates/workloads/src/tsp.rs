//! A real 2-opt TSP solver — the user code ILCS executes.
//!
//! The paper's ILCS case study runs "the TSP code which starts with a
//! random tour and iteratively shortens it using the 2-opt improvement
//! heuristic until a local minimum is reached" (§IV-A). This module
//! implements exactly that; `CPU_Exec` in [`crate::ilcs`] evaluates one
//! seed by running it.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A TSP instance: city coordinates on the unit square (scaled ×1000).
#[derive(Debug, Clone)]
pub struct TspInstance {
    /// City coordinates.
    pub cities: Vec<(f64, f64)>,
}

impl TspInstance {
    /// Generate `n` cities from `seed` (every rank generates the same
    /// instance from the shared seed, like ILCS reading one input).
    pub fn generate(n: usize, seed: u64) -> TspInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let cities = (0..n)
            .map(|_| (rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
            .collect();
        TspInstance { cities }
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// True for the degenerate empty instance.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    fn dist(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.cities[a];
        let (bx, by) = self.cities[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Total length of a closed tour.
    pub fn tour_len(&self, tour: &[usize]) -> f64 {
        if tour.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for w in tour.windows(2) {
            total += self.dist(w[0], w[1]);
        }
        total + self.dist(*tour.last().unwrap(), tour[0])
    }

    /// Evaluate one seed: random restart + 2-opt to a local minimum.
    /// Returns the tour cost scaled to an integer (ILCS reduces integer
    /// champion costs).
    pub fn two_opt_from_seed(&self, seed: u64) -> i64 {
        let n = self.len();
        if n < 4 {
            let tour: Vec<usize> = (0..n).collect();
            return (self.tour_len(&tour) * 1000.0) as i64;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tour: Vec<usize> = (0..n).collect();
        tour.shuffle(&mut rng);
        let mut best = self.tour_len(&tour);
        // 2-opt: repeatedly reverse the segment between i+1 and j when
        // it shortens the tour, until no improving move exists.
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n - 1 {
                for j in i + 2..n {
                    if i == 0 && j == n - 1 {
                        continue; // same edge
                    }
                    let (a, b) = (tour[i], tour[i + 1]);
                    let (c, d) = (tour[j], tour[(j + 1) % n]);
                    let delta =
                        self.dist(a, c) + self.dist(b, d) - self.dist(a, b) - self.dist(c, d);
                    if delta < -1e-9 {
                        tour[i + 1..=j].reverse();
                        best += delta;
                        improved = true;
                    }
                }
            }
        }
        debug_assert!((self.tour_len(&tour) - best).abs() < 1e-3);
        (best * 1000.0) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TspInstance::generate(20, 42);
        let b = TspInstance::generate(20, 42);
        let c = TspInstance::generate(20, 43);
        assert_eq!(a.cities, b.cities);
        assert_ne!(a.cities, c.cities);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn two_opt_improves_over_random_tour() {
        let inst = TspInstance::generate(25, 7);
        let mut rng = StdRng::seed_from_u64(99);
        let mut random_tour: Vec<usize> = (0..25).collect();
        random_tour.shuffle(&mut rng);
        let random_cost = (inst.tour_len(&random_tour) * 1000.0) as i64;
        let opt_cost = inst.two_opt_from_seed(99);
        assert!(
            opt_cost < random_cost,
            "2-opt ({opt_cost}) should beat a random tour ({random_cost})"
        );
    }

    #[test]
    fn two_opt_is_deterministic_per_seed() {
        let inst = TspInstance::generate(15, 1);
        assert_eq!(inst.two_opt_from_seed(5), inst.two_opt_from_seed(5));
    }

    #[test]
    fn different_seeds_explore_different_optima() {
        let inst = TspInstance::generate(30, 3);
        let costs: Vec<i64> = (0..8).map(|s| inst.two_opt_from_seed(s)).collect();
        let distinct: std::collections::HashSet<i64> = costs.iter().copied().collect();
        assert!(distinct.len() > 1, "local minima should vary: {costs:?}");
    }

    #[test]
    fn local_minimum_is_2opt_stable() {
        // Re-running 2-opt from the returned tour cannot improve: the
        // cost of a seed equals its own re-evaluation (determinism is
        // the proxy; direct stability is internal).
        let inst = TspInstance::generate(12, 9);
        let c = inst.two_opt_from_seed(0);
        assert!(c > 0);
    }

    #[test]
    fn tiny_instances() {
        let inst = TspInstance::generate(3, 0);
        let _ = inst.two_opt_from_seed(1); // must not panic
        let inst = TspInstance::generate(0, 0);
        assert!(inst.is_empty());
        assert_eq!(inst.tour_len(&[]), 0.0);
    }
}
