//! ILCS — the Iterative Local Champion Search framework (§IV).
//!
//! Models Listing 1 of the paper: a hybrid MPI+OpenMP master/worker
//! framework running the 2-opt TSP solver ([`crate::tsp`]).
//! Each rank forks an OpenMP team: thread 0 (the *master*) handles MPI
//! communication and champion reduction, worker threads repeatedly
//! evaluate seeds with `CPU_Exec` and update their local champions
//! under an OpenMP critical section.
//!
//! ## Determinism
//!
//! Real ILCS lets workers run fully asynchronously; this reproduction
//! synchronizes master rounds and worker batches with two team
//! barriers per round so a normal/faulty pair differs only by the
//! injected fault (see DESIGN.md). Seed evaluation per (rank, thread,
//! round) is pseudo-random but seeded, so champion trajectories are
//! reproducible.
//!
//! ## Faults (§IV-B/C/D)
//!
//! * [`IlcsFault::OmpCritBug`] — the designated worker updates its
//!   champion *without* the OpenMP critical section (unprotected
//!   `memcpy`): traces lose their `GOMP_critical_*` events. Paper
//!   setting: process 6, thread 4.
//! * [`IlcsFault::CollSizeBug`] — the designated rank calls the first
//!   `MPI_Allreduce` with a wrong size: a real deadlock early in the
//!   run. Paper setting: process 2.
//! * [`IlcsFault::WrongOpBug`] — the designated rank reduces with
//!   `MPI_MAX` instead of `MPI_MIN`: the run terminates but computes
//!   the *worst* champion, converging slowly (more `MPI_Bcast` calls).
//!   Paper setting: process 0.

use crate::tsp::TspInstance;
use dt_trace::FunctionRegistry;
use mpisim::{run, MpiError, OmpCtx, Rank, ReduceOp, RunOutcome, SimConfig};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// Fault injected into ILCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlcsFault {
    /// Omit the critical section around the champion update in one
    /// worker thread.
    OmpCritBug {
        /// Rank holding the buggy worker.
        process: u32,
        /// Worker thread index (≥ 1).
        thread: u32,
    },
    /// Wrong size in the first champion `MPI_Allreduce` of one rank.
    CollSizeBug {
        /// The faulty rank.
        process: u32,
    },
    /// `MPI_MAX` instead of `MPI_MIN` in the champion reduction of one
    /// rank.
    WrongOpBug {
        /// The faulty rank.
        process: u32,
    },
}

/// Configuration of one ILCS-TSP execution.
#[derive(Debug, Clone)]
pub struct IlcsConfig {
    /// MPI ranks (the paper runs 8).
    pub processes: u32,
    /// CPU worker threads per rank (the paper runs 4; team =
    /// workers + gpu_workers + 1).
    pub workers: u32,
    /// GPU worker threads per rank. ILCS supports GPU workers (each
    /// drives one device and evaluates seeds much faster); the paper's
    /// runs "did not provide any GPU code", so this defaults to 0 —
    /// enabling it exercises the hybrid-structure case where MPI
    /// processes host structurally different thread kinds.
    pub gpu_workers: u32,
    /// TSP instance size.
    pub cities: usize,
    /// Seeds each worker evaluates per round.
    pub seeds_per_round: u32,
    /// Hard cap on master rounds.
    pub max_rounds: u32,
    /// Terminate after this many rounds without champion improvement.
    pub no_change_threshold: u32,
    /// Base RNG seed (instance + seed derivation).
    pub seed: u64,
    /// Optional fault.
    pub fault: Option<IlcsFault>,
}

impl IlcsConfig {
    /// The paper's setup: 8 ranks × 4 workers.
    pub fn paper(fault: Option<IlcsFault>) -> IlcsConfig {
        IlcsConfig {
            processes: 8,
            workers: 4,
            gpu_workers: 0,
            cities: 24,
            seeds_per_round: 2,
            max_rounds: 24,
            no_change_threshold: 3,
            seed: 4242,
            fault,
        }
    }

    /// §IV-B: unprotected memory access by thread 4 of process 6.
    pub fn omp_crit_bug() -> IlcsFault {
        IlcsFault::OmpCritBug {
            process: 6,
            thread: 4,
        }
    }

    /// §IV-C: wrong collective size in process 2.
    pub fn coll_size_bug() -> IlcsFault {
        IlcsFault::CollSizeBug { process: 2 }
    }

    /// §IV-D: wrong collective operation in process 0.
    pub fn wrong_op_bug() -> IlcsFault {
        IlcsFault::WrongOpBug { process: 0 }
    }
}

/// Deterministic per-(rank, thread, round, slot) seed derivation.
fn derive_seed(base: u64, rank: u32, thread: u32, round: u32, slot: u32) -> u64 {
    let mut x = base
        ^ (u64::from(rank) << 48)
        ^ (u64::from(thread) << 32)
        ^ (u64::from(round) << 16)
        ^ u64::from(slot);
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct NodeShared {
    /// champ[t] = best cost found by worker t (index 0 unused).
    champs: Vec<AtomicI64>,
    cont: AtomicBool,
}

fn worker_body(
    omp: &OmpCtx,
    shared: &NodeShared,
    inst: &TspInstance,
    cfg: &IlcsConfig,
    my_rank: u32,
) {
    let t = omp.thread_num();
    // Threads above the CPU workers drive GPUs: a different kernel
    // (GPU_Exec) covering several seeds per call.
    let is_gpu = t > cfg.workers;
    let unprotected = matches!(
        cfg.fault,
        Some(IlcsFault::OmpCritBug { process, thread })
            if process == my_rank && thread == t
    );
    let seeds = if is_gpu {
        cfg.seeds_per_round * 4
    } else {
        cfg.seeds_per_round
    };
    for round in 0..cfg.max_rounds {
        if !shared.cont.load(Ordering::Acquire) || omp.aborted() {
            break;
        }
        for s in 0..seeds {
            let seed = derive_seed(cfg.seed, my_rank, t, round, s);
            let kernel = if is_gpu { "GPU_Exec" } else { "CPU_Exec" };
            let scope = omp.tracer().enter(kernel);
            let cost = inst.two_opt_from_seed(seed);
            drop(scope);
            let slot = &shared.champs[t as usize];
            if cost < slot.load(Ordering::Acquire) {
                if unprotected {
                    // §IV-B: the critical section is omitted — the
                    // memcpy happens bare.
                    omp.tracer().leaf("memcpy");
                    slot.fetch_min(cost, Ordering::AcqRel);
                } else {
                    omp.critical("champ", || {
                        omp.tracer().leaf("memcpy");
                        slot.fetch_min(cost, Ordering::AcqRel);
                    });
                }
            }
        }
        // Round barriers: #1 "batch computed", #2 "master decided".
        if omp.barrier().is_err() || omp.barrier().is_err() {
            break;
        }
    }
}

/// Returns the final global champion cost.
fn master_body(
    omp: &OmpCtx,
    rank: &Rank,
    shared: &NodeShared,
    cfg: &IlcsConfig,
) -> Result<i64, MpiError> {
    let me = rank.rank();
    let mut global_best = i64::MAX;
    let mut no_change = 0u32;
    for round in 0..cfg.max_rounds {
        omp.barrier()?; // workers finished their batch
        let local_best = shared
            .champs
            .iter()
            .skip(1)
            .map(|c| c.load(Ordering::Acquire))
            .min()
            .unwrap_or(i64::MAX);
        // First Allreduce (Listing 1 line 24): the global champion.
        let op = match cfg.fault {
            Some(IlcsFault::WrongOpBug { process }) if process == me => ReduceOp::Max,
            _ => ReduceOp::Min,
        };
        let count = match cfg.fault {
            Some(IlcsFault::CollSizeBug { process }) if process == me => 4, // wrong!
            _ => 1,
        };
        let g = rank.allreduce_with_count(&[local_best], op, count)?[0];
        // Second Allreduce: the champion's process ID.
        let claim = if local_best == g {
            i64::from(me)
        } else {
            i64::MAX
        };
        let pid = rank.allreduce(&[claim], ReduceOp::Min)?[0];
        let root = if pid == i64::MAX { 0 } else { pid as u32 };
        if i64::from(me) == pid {
            // Copy the local champion into the broadcast buffer under
            // the same critical section the workers use (line 29).
            omp.critical("champ", || {
                omp.tracer().leaf("memcpy");
            });
        }
        let _champ_tour = rank.bcast(&[g], 1, root)?;
        if g < global_best {
            global_best = g;
            no_change = 0;
        } else {
            no_change += 1;
        }
        let stop = no_change >= cfg.no_change_threshold || round + 1 == cfg.max_rounds;
        if stop {
            shared.cont.store(false, Ordering::Release);
        }
        omp.barrier()?; // release workers into the next round
        if stop {
            break;
        }
    }
    Ok(global_best)
}

/// Run ILCS-TSP. Use a shared registry across the normal/faulty pair.
pub fn run_ilcs(cfg: &IlcsConfig, registry: Arc<FunctionRegistry>) -> RunOutcome {
    run_ilcs_collecting(cfg, registry).0
}

/// As [`run_ilcs`], also returning the final global champion cost each
/// rank observed (what `CPU_Output` would print) — `i64::MAX` entries
/// mean the rank died before any reduction completed.
pub fn run_ilcs_collecting(
    cfg: &IlcsConfig,
    registry: Arc<FunctionRegistry>,
) -> (RunOutcome, Vec<i64>) {
    let champions: parking_lot::Mutex<Vec<i64>> =
        parking_lot::Mutex::new(vec![i64::MAX; cfg.processes as usize]);
    let outcome = run_ilcs_inner(cfg, registry, &champions);
    (outcome, champions.into_inner())
}

fn run_ilcs_inner(
    cfg: &IlcsConfig,
    registry: Arc<FunctionRegistry>,
    champions: &parking_lot::Mutex<Vec<i64>>,
) -> RunOutcome {
    let cfg = cfg.clone();
    let sim = SimConfig::new(cfg.processes).with_watchdog(std::time::Duration::from_secs(30));
    run(sim, registry, move |rank| {
        let tracer = rank.tracer();
        let main = tracer.enter("main");
        rank.init()?;
        let _size = rank.comm_size()?;
        let me = rank.comm_rank()?;
        // Total CPUs/GPUs (Listing 1 lines 7-8).
        let _ = rank.reduce(&[i64::from(cfg.workers)], ReduceOp::Sum, 0)?;
        let _ = rank.reduce(&[i64::from(cfg.gpu_workers)], ReduceOp::Sum, 0)?;
        // CPU_Init: read coordinates, build the instance.
        let init_scope = tracer.enter("CPU_Init");
        let inst = TspInstance::generate(cfg.cities, cfg.seed);
        drop(init_scope);
        rank.barrier()?;

        let team = cfg.workers + cfg.gpu_workers;
        let shared = NodeShared {
            champs: (0..=team).map(|_| AtomicI64::new(i64::MAX)).collect(),
            cont: AtomicBool::new(true),
        };
        let master_err: Cell<Option<MpiError>> = Cell::new(None);
        rank.omp_parallel_mw(
            team + 1,
            |omp| match master_body(omp, rank, &shared, &cfg) {
                Ok(best) => champions.lock()[me as usize] = best,
                Err(e) => {
                    shared.cont.store(false, Ordering::Release);
                    master_err.set(Some(e));
                }
            },
            |omp| worker_body(omp, &shared, &inst, &cfg, me),
        );
        if let Some(e) = master_err.take() {
            return Err(e);
        }
        if me == 0 {
            tracer.leaf("CPU_Output");
        }
        rank.finalize()?;
        drop(main);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::TraceId;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    fn tiny(fault: Option<IlcsFault>) -> IlcsConfig {
        IlcsConfig {
            processes: 4,
            workers: 2,
            gpu_workers: 0,
            cities: 12,
            seeds_per_round: 1,
            max_rounds: 8,
            no_change_threshold: 2,
            seed: 11,
            fault,
        }
    }

    fn call_names(out: &RunOutcome, id: TraceId) -> Vec<String> {
        out.traces
            .get(id)
            .unwrap()
            .calls()
            .map(|e| out.traces.registry.name(e.fn_id()))
            .collect()
    }

    #[test]
    fn normal_run_completes_with_expected_structure() {
        let out = run_ilcs(&tiny(None), registry());
        assert!(!out.deadlocked, "{:?}", out.errors);
        assert!(out.errors.is_empty());
        // 4 processes × (1 master + 2 workers) traces.
        assert_eq!(out.traces.len(), 12);
        let m0 = call_names(&out, TraceId::master(0));
        assert_eq!(m0.first().unwrap(), "main");
        assert!(m0.contains(&"MPI_Allreduce".to_string()));
        assert!(m0.contains(&"MPI_Bcast".to_string()));
        assert!(m0.contains(&"CPU_Output".to_string()));
        assert_eq!(m0.last().unwrap(), "MPI_Finalize");
        // Workers evaluate seeds and update champions at least once.
        let w = call_names(&out, TraceId::new(1, 1));
        assert!(w.iter().any(|n| n == "CPU_Exec"));
        assert!(w.iter().any(|n| n == "GOMP_critical_start"));
        assert!(w.iter().any(|n| n == "memcpy"));
    }

    #[test]
    fn omp_crit_bug_removes_critical_from_that_thread_only() {
        let fault = IlcsFault::OmpCritBug {
            process: 2,
            thread: 1,
        };
        let out = run_ilcs(&tiny(Some(fault)), registry());
        assert!(!out.deadlocked);
        let buggy = call_names(&out, TraceId::new(2, 1));
        assert!(
            !buggy.iter().any(|n| n.starts_with("GOMP_critical")),
            "buggy thread must not enter the critical section"
        );
        assert!(buggy.iter().any(|n| n == "memcpy"), "still updates");
        let healthy = call_names(&out, TraceId::new(1, 1));
        assert!(healthy.iter().any(|n| n == "GOMP_critical_start"));
    }

    #[test]
    fn coll_size_bug_deadlocks_at_allreduce() {
        let out = run_ilcs(
            &tiny(Some(IlcsFault::CollSizeBug { process: 2 })),
            registry(),
        );
        assert!(out.deadlocked);
        for p in 0..4u32 {
            let t = out.traces.get(TraceId::master(p)).unwrap();
            assert!(t.truncated, "master {p} should be truncated");
            let last = *t.events.last().unwrap();
            assert!(last.is_call());
            assert_eq!(out.traces.registry.name(last.fn_id()), "MPI_Allreduce");
        }
    }

    #[test]
    fn wrong_op_bug_terminates_but_changes_behavior() {
        let reg = registry();
        let normal = run_ilcs(&tiny(None), reg.clone());
        let faulty = run_ilcs(&tiny(Some(IlcsFault::WrongOpBug { process: 0 })), reg);
        assert!(!normal.deadlocked);
        assert!(
            !faulty.deadlocked,
            "wrong op must NOT deadlock: {:?}",
            faulty.errors
        );
        let bcasts = |out: &RunOutcome| {
            call_names(out, TraceId::master(3))
                .iter()
                .filter(|n| *n == "MPI_Bcast")
                .count()
        };
        // The MAX champion keeps changing while stragglers improve, so
        // the faulty run takes at least as many rounds (usually more).
        assert!(
            bcasts(&faulty) >= bcasts(&normal),
            "faulty {} vs normal {}",
            bcasts(&faulty),
            bcasts(&normal)
        );
    }

    #[test]
    fn wrong_op_computes_a_worse_answer() {
        // §IV-D: "Instead of computing the best answer, the modified
        // code computes the worst answer … likely to yield the wrong
        // result."
        // Enough cities that ranks land in *different* local optima —
        // with a tiny instance everyone finds the global optimum and
        // MAX = MIN. 40 cities separates the optima for every RNG seed
        // tried; 32 was marginal (seed-dependent).
        let mut cfg = tiny(None);
        cfg.cities = 40;
        let reg = registry();
        let (n_out, n_champ) = run_ilcs_collecting(&cfg, reg.clone());
        cfg.fault = Some(IlcsFault::WrongOpBug { process: 0 });
        let (f_out, f_champ) = run_ilcs_collecting(&cfg, reg);
        assert!(!n_out.deadlocked && !f_out.deadlocked);
        // All ranks agree on the champion within a run.
        assert!(n_champ.iter().all(|&c| c == n_champ[0]), "{n_champ:?}");
        assert!(f_champ.iter().all(|&c| c == f_champ[0]), "{f_champ:?}");
        // The MAX-reduced "champion" is strictly worse (longer tour).
        assert!(
            f_champ[0] > n_champ[0],
            "wrong op must yield a worse tour: {} vs {}",
            f_champ[0],
            n_champ[0]
        );
    }

    #[test]
    fn deterministic_master_traces() {
        let shape = |out: &RunOutcome| {
            (0..4u32)
                .map(|p| call_names(out, TraceId::master(p)))
                .collect::<Vec<_>>()
        };
        let a = run_ilcs(&tiny(None), registry());
        let b = run_ilcs(&tiny(None), registry());
        assert_eq!(shape(&a), shape(&b));
    }

    #[test]
    fn gpu_workers_join_the_team_with_their_own_kernel() {
        let mut cfg = tiny(None);
        cfg.gpu_workers = 1;
        let out = run_ilcs(&cfg, registry());
        assert!(!out.deadlocked, "{:?}", out.errors);
        // Team = master + 2 CPU + 1 GPU → 4 traces per rank.
        assert_eq!(out.traces.len(), 16);
        // The GPU thread (id = workers + 1 = 3) runs GPU_Exec, never
        // CPU_Exec; CPU workers do the opposite.
        let names = |id: TraceId| -> Vec<String> {
            out.traces
                .get(id)
                .unwrap()
                .calls()
                .map(|e| out.traces.registry.name(e.fn_id()))
                .collect()
        };
        let gpu = names(TraceId::new(0, 3));
        assert!(gpu.iter().any(|n| n == "GPU_Exec"), "{gpu:?}");
        assert!(!gpu.iter().any(|n| n == "CPU_Exec"));
        let cpu = names(TraceId::new(0, 1));
        assert!(cpu.iter().any(|n| n == "CPU_Exec"));
        assert!(!cpu.iter().any(|n| n == "GPU_Exec"));
        // GPU threads evaluate 4× the seeds per round.
        let count = |v: &[String], k: &str| v.iter().filter(|n| *n == k).count();
        assert!(count(&gpu, "GPU_Exec") >= 4 * count(&cpu, "CPU_Exec") / 2);
    }

    #[test]
    fn seed_derivation_is_unique_per_coordinate() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..4 {
            for t in 1..3 {
                for round in 0..4 {
                    for s in 0..2 {
                        assert!(seen.insert(derive_seed(1, r, t, round, s)));
                    }
                }
            }
        }
    }
}
