//! A nonblocking ring exchange — the request-lifecycle workload for
//! `reqcheck`, run with request tracking on so traces carry
//! `mpi_coll@…` signature markers and `mpi_req_pending@…` teardown
//! witnesses.
//!
//! Every iteration each rank posts `MPI_Irecv` from its left
//! neighbour, `MPI_Isend`s to its right neighbour (above the eager
//! limit, so sends are real rendezvous requests), waits on both, and
//! the ring allreduces a running checksum; a final barrier closes the
//! run.
//!
//! Faults:
//!
//! * [`ReqLifeFault::LeakRequest`] — one rank forgets to `MPI_Wait` on
//!   one of its sends. The message is still consumed by the matching
//!   receive, so the run *completes cleanly* — only the request-balance
//!   accounting (RQ001) and the teardown witness see the leak.
//! * [`ReqLifeFault::MismatchedCollArgs`] — one rank reduces with MAX
//!   while the others use SUM. Real MPI cannot validate op consistency,
//!   so the collective completes (lowest rank's op wins) — the bug is
//!   visible only in the `mpi_coll@` argument signatures (RQ003).

use dt_trace::FunctionRegistry;
use mpisim::{run, ReduceOp, RunOutcome, SimConfig};
use std::sync::Arc;
use std::time::Duration;

/// Fault injected into the ring exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqLifeFault {
    /// `rank` never waits on the send request it posts in iteration
    /// `iter` (a classic forgotten `MPI_Wait`; the run still
    /// terminates).
    LeakRequest {
        /// The faulty rank.
        rank: u32,
        /// The iteration whose send request leaks.
        iter: u32,
    },
    /// `rank` passes `ReduceOp::Max` to every allreduce while the
    /// other ranks pass `ReduceOp::Sum` (silent semantic divergence;
    /// the collective still completes).
    MismatchedCollArgs {
        /// The faulty rank.
        rank: u32,
    },
}

/// Configuration of one ring-exchange execution.
#[derive(Debug, Clone)]
pub struct ReqLifeConfig {
    /// MPI ranks.
    pub ranks: u32,
    /// Ring iterations.
    pub iters: u32,
    /// Optional fault.
    pub fault: Option<ReqLifeFault>,
}

impl ReqLifeConfig {
    /// The default corpus: 4 ranks × 3 iterations.
    pub fn default_4() -> ReqLifeConfig {
        ReqLifeConfig {
            ranks: 4,
            iters: 3,
            fault: None,
        }
    }
}

/// Run the ring exchange with request tracking enabled.
pub fn run_reqlife(cfg: &ReqLifeConfig, registry: Arc<FunctionRegistry>) -> RunOutcome {
    let cfg = cfg.clone();
    // Eager limit below the 32-byte payload: isends park real
    // rendezvous requests instead of completing inline.
    let sim = SimConfig::new(cfg.ranks)
        .with_request_tracking()
        .with_eager_limit(8)
        .with_watchdog(Duration::from_secs(20));
    run(sim, registry, |rank| {
        let tr = rank.tracer();
        let main = tr.enter("main");
        rank.init()?;
        let me = rank.comm_rank()?;
        let n = rank.comm_size()?;
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut value = i64::from(me) + 1;
        for iter in 0..cfg.iters {
            let scope = tr.enter("RingExchange");
            let recv_req = rank.irecv(left, 0)?;
            let payload = vec![value; 4]; // 32 bytes > eager limit
            let send_req = rank.isend(right, 0, &payload)?;
            let got = rank.wait(recv_req)?.expect("recv request yields data");
            let leak = matches!(
                cfg.fault,
                Some(ReqLifeFault::LeakRequest { rank: fr, iter: fi }) if fr == me && fi == iter
            );
            // The forgotten MPI_Wait: on the faulted iteration the
            // handle just goes out of scope; the peer still consumes
            // the message.
            if !leak {
                let none = rank.wait(send_req)?;
                assert!(none.is_none(), "send requests carry no payload");
            }
            value = value.wrapping_add(got[0]);
            drop(scope);

            let op = match cfg.fault {
                Some(ReqLifeFault::MismatchedCollArgs { rank: fr }) if fr == me => ReduceOp::Max,
                _ => ReduceOp::Sum,
            };
            let g = rank.allreduce(&[value], op)?;
            value = g[0] % 1_000;
        }
        rank.barrier()?;
        rank.finalize()?;
        drop(main);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_reqcheck::{analyze, expanded, ReqCode, ReqVocab};
    use dt_trace::TraceId;
    use std::collections::BTreeSet;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    fn codes(out: &RunOutcome) -> BTreeSet<ReqCode> {
        let vocab = ReqVocab::build(&out.traces.registry);
        let facts: Vec<_> = out
            .traces
            .iter()
            .map(|t| expanded::summarize(t.id, &t.to_symbols(), t.truncated, &vocab))
            .collect();
        analyze(&facts).codes().into_iter().collect()
    }

    #[test]
    fn clean_run_is_req_clean() {
        let out = run_reqlife(&ReqLifeConfig::default_4(), registry());
        assert!(!out.deadlocked, "{:?}", out.errors);
        assert!(codes(&out).is_empty(), "{:?}", codes(&out));
        // Signature markers are present on every rank.
        for p in 0..4 {
            let t = out.traces.get(TraceId::master(p)).unwrap();
            assert!(t
                .calls()
                .any(|e| out.traces.registry.name(e.fn_id()) == "mpi_coll@MPI_Allreduce:1:-:sum"));
        }
    }

    #[test]
    fn leak_request_fires_exactly_rq001_with_a_named_witness() {
        let fault = ReqLifeFault::LeakRequest { rank: 2, iter: 1 };
        let cfg = ReqLifeConfig {
            fault: Some(fault),
            ..ReqLifeConfig::default_4()
        };
        let out = run_reqlife(&cfg, registry());
        assert!(!out.deadlocked, "the leak must not hang: {:?}", out.errors);
        assert_eq!(codes(&out), BTreeSet::from([ReqCode::Leaked]));
        let vocab = ReqVocab::build(&out.traces.registry);
        let facts: Vec<_> = out
            .traces
            .iter()
            .map(|t| expanded::summarize(t.id, &t.to_symbols(), t.truncated, &vocab))
            .collect();
        let report = analyze(&facts);
        let d = &report.diagnostics()[0];
        assert_eq!(d.trace, Some(TraceId::master(2)));
        assert!(
            d.hint
                .as_deref()
                .is_some_and(|h| h.contains("MPI_Isend:dst=3,tag=0")),
            "{:?}",
            d.hint
        );
    }

    #[test]
    fn mismatched_coll_args_fires_exactly_rq003_and_terminates() {
        let fault = ReqLifeFault::MismatchedCollArgs { rank: 1 };
        let cfg = ReqLifeConfig {
            fault: Some(fault),
            ..ReqLifeConfig::default_4()
        };
        let out = run_reqlife(&cfg, registry());
        assert!(!out.deadlocked, "{:?}", out.errors);
        assert_eq!(codes(&out), BTreeSet::from([ReqCode::SignatureMismatch]));
        let vocab = ReqVocab::build(&out.traces.registry);
        let facts: Vec<_> = out
            .traces
            .iter()
            .map(|t| expanded::summarize(t.id, &t.to_symbols(), t.truncated, &vocab))
            .collect();
        let report = analyze(&facts);
        let d = &report.diagnostics()[0];
        assert_eq!(
            d.trace,
            Some(TraceId::master(1)),
            "anchored on the divergent rank"
        );
        assert!(d.message.contains("MPI_Allreduce:1:-:max"), "{}", d.message);
    }

    #[test]
    fn faulty_kind_order_would_be_rq004_not_rq003() {
        // Sanity for the rule split: the coll-args fault keeps the kind
        // order identical across ranks.
        let fault = ReqLifeFault::MismatchedCollArgs { rank: 1 };
        let cfg = ReqLifeConfig {
            fault: Some(fault),
            ..ReqLifeConfig::default_4()
        };
        let out = run_reqlife(&cfg, registry());
        let vocab = ReqVocab::build(&out.traces.registry);
        let kind_seq = |p: u32| {
            let t = out.traces.get(TraceId::master(p)).unwrap();
            expanded::summarize(t.id, &t.to_symbols(), t.truncated, &vocab).kinds
        };
        assert_eq!(kind_seq(0), kind_seq(1));
    }
}
