//! A structural proxy of LULESH2 — the DOE shock-hydrodynamics miniapp
//! used in §V of the paper.
//!
//! The paper's LULESH2 measurements are functions of the *trace shape*:
//! the number of distinct functions per process (≈410), the highly
//! loopy per-cycle call structure (→ compression and NLR reduction),
//! and the inter-rank dependencies that let one stalled rank block all
//! others. This proxy reproduces that shape:
//!
//! * the real LULESH phase tree — `LagrangeLeapFrog` →
//!   (`LagrangeNodal` → force calculation, halo exchange,
//!   `LagrangeElements` → kinematics/EOS, `CalcTimeConstraintsForElems`);
//! * **parametric per-region kernel families**
//!   (`EvalEOSForElems_R<r>`, `CalcMonotonicQRegionForElems_R<r>`, …) —
//!   LULESH2's material regions — which push the distinct-function
//!   count into the hundreds, configurable via
//!   [`LuleshConfig::regions`];
//! * per-element inner loops over small real arrays (volume/stress
//!   updates), which give ParLOT-style traces their loop structure;
//! * ring halo exchange (`CommSend`/`CommRecv` wrapping
//!   `MPI_Send`/`MPI_Recv`) and a `TimeIncrement` `MPI_Allreduce`
//!   per cycle;
//! * OpenMP teams inside the nodal and element phases.
//!
//! The §V fault: [`LuleshFault::SkipLagrangeLeapFrog`] makes one rank
//! skip the whole phase — including its halo sends — so its neighbours
//! block in `CommRecv`, progress stalls globally, and every trace is
//! truncated (the paper: "the fault in process 2 prevents other
//! processes from making progress").

use dt_trace::FunctionRegistry;
use mpisim::{run, MpiError, Rank, ReduceOp, RunOutcome, SimConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault injected into the LULESH proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuleshFault {
    /// The designated rank never invokes `LagrangeLeapFrog` (§V: rank 2).
    SkipLagrangeLeapFrog {
        /// The faulty rank.
        rank: u32,
    },
    /// The designated rank skips the `TimeIncrement` `MPI_Allreduce`
    /// and runs straight into the halo exchange: its neighbours sit in
    /// the collective waiting for it, while it blocks in `CommRecv`
    /// waiting for them — a true wait-for cycle through a collective
    /// (`hbcheck` HB001).
    SkipCollective {
        /// The faulty rank.
        rank: u32,
    },
}

/// Configuration of one LULESH-proxy execution.
#[derive(Debug, Clone)]
pub struct LuleshConfig {
    /// MPI ranks (the paper runs 8).
    pub ranks: u32,
    /// OpenMP team size per rank (the paper runs 4).
    pub threads: u32,
    /// Simulation cycles (the paper runs single-cycle).
    pub cycles: u32,
    /// Material regions — drives the distinct-function count.
    pub regions: u32,
    /// Elements per region — drives the call count / loop length.
    pub elems_per_region: u32,
    /// Optional fault.
    pub fault: Option<LuleshFault>,
}

impl LuleshConfig {
    /// The paper's setup: 8 ranks × 4 threads, single cycle, with
    /// enough regions to reach ≈400 distinct functions.
    pub fn paper(fault: Option<LuleshFault>) -> LuleshConfig {
        LuleshConfig {
            ranks: 8,
            threads: 4,
            cycles: 1,
            regions: 45,
            elems_per_region: 24,
            fault,
        }
    }

    /// §V fault: rank 2 skips `LagrangeLeapFrog`.
    pub fn skip_bug() -> LuleshFault {
        LuleshFault::SkipLagrangeLeapFrog { rank: 2 }
    }

    /// Full-scale configuration for the §V trace-statistics experiment
    /// (E8): ≈410 distinct functions and hundreds of thousands of
    /// calls per process, like the paper's single-cycle LULESH2 run.
    pub fn paper_scale() -> LuleshConfig {
        LuleshConfig {
            ranks: 8,
            threads: 4,
            cycles: 1,
            regions: 75,
            elems_per_region: 300,
            fault: None,
        }
    }
}

/// Mutable domain state: small but real hydro-ish arrays.
struct Domain {
    volumes: Vec<f64>,
    energies: Vec<f64>,
    dt: f64,
}

impl Domain {
    fn new(cfg: &LuleshConfig, rank: u32) -> Domain {
        let n = (cfg.regions * cfg.elems_per_region) as usize;
        Domain {
            volumes: (0..n)
                .map(|i| 1.0 + ((i as f64) + f64::from(rank)) * 1e-4)
                .collect(),
            energies: vec![1.0e5; n],
            dt: 1e-7,
        }
    }

    fn region_slice(&mut self, cfg: &LuleshConfig, r: u32) -> (usize, usize) {
        let per = cfg.elems_per_region as usize;
        let start = r as usize * per;
        (start, start + per)
    }
}

const SETUP_FUNCTIONS: &[&str] = &[
    "InitMeshDecomp",
    "BuildMesh",
    "SetupThreadSupportStructures",
    "CreateRegionIndexSets",
    "SetupSymmetryPlanes",
    "SetupElementConnectivities",
    "SetupBoundaryConditions",
    "AllocateNodePersistent",
    "AllocateElemPersistent",
    "AllocateGradients",
    "AllocateStrains",
    "SetupCommBuffers",
    "InitStressTermsForElems",
    "CalcElemVolume",
    "VerifyAndWriteFinalOutput",
];

/// Nodal phase: force calculation + position/velocity updates.
fn lagrange_nodal(rank: &Rank, cfg: &LuleshConfig, dom: &mut Domain) {
    let tr = rank.tracer();
    let nodal = tr.enter("LagrangeNodal");
    {
        let forces = tr.enter("CalcForceForNodes");
        let vf = tr.enter("CalcVolumeForceForElems");
        tr.leaf("InitStressTermsForElems");
        {
            let integ = tr.enter("IntegrateStressForElems");
            // OpenMP team partitions regions among worker threads.
            let work: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
            let work2 = work.clone();
            let cfg2 = cfg.clone();
            rank.omp_parallel_mw(
                cfg.threads,
                |_omp| {},
                move |omp| {
                    for r in omp.static_iters(cfg2.regions) {
                        let scope = omp.tracer().enter(&format!("IntegrateStressForElems_R{r}"));
                        let mut acc = 0u64;
                        for _e in 0..cfg2.elems_per_region {
                            omp.tracer().leaf("CalcElemShapeFunctionDerivatives");
                            omp.tracer().leaf("SumElemStressesToNodeForces");
                            acc = acc.wrapping_add(1);
                        }
                        work2.fetch_add(acc, Ordering::Relaxed);
                        drop(scope);
                    }
                },
            );
            drop(integ);
        }
        {
            let hg = tr.enter("CalcHourglassControlForElems");
            tr.leaf("CalcFBHourglassForceForElems");
            drop(hg);
        }
        drop(vf);
        drop(forces);
    }
    tr.leaf("CalcAccelerationForNodes");
    tr.leaf("ApplyAccelerationBoundaryConditionsForNodes");
    tr.leaf("CalcVelocityForNodes");
    tr.leaf("CalcPositionForNodes");
    // Touch the domain so the phase does real work.
    for v in dom.volumes.iter_mut() {
        *v *= 1.0 + dom.dt;
    }
    drop(nodal);
}

/// Ring halo exchange: even ranks send first.
fn halo_exchange(rank: &Rank, _cfg: &LuleshConfig, dom: &Domain) -> Result<(), MpiError> {
    let tr = rank.tracer();
    let me = rank.rank();
    let n = rank.size();
    let neighbors: Vec<u32> = [me.checked_sub(1), me.checked_add(1).filter(|&x| x < n)]
        .into_iter()
        .flatten()
        .collect();
    let payload = vec![dom.volumes.len() as i64, (dom.dt * 1e12) as i64];
    if me.is_multiple_of(2) {
        for &nb in &neighbors {
            let s = tr.enter("CommSend");
            rank.send(nb, 7, &payload)?;
            drop(s);
        }
        for &nb in &neighbors {
            let s = tr.enter("CommRecv");
            let _ = rank.recv(nb, 7)?;
            drop(s);
        }
    } else {
        for &nb in &neighbors {
            let s = tr.enter("CommRecv");
            let _ = rank.recv(nb, 7)?;
            drop(s);
        }
        for &nb in &neighbors {
            let s = tr.enter("CommSend");
            rank.send(nb, 7, &payload)?;
            drop(s);
        }
    }
    Ok(())
}

/// Element phase: kinematics, artificial viscosity, EOS per region.
fn lagrange_elements(rank: &Rank, cfg: &LuleshConfig, dom: &mut Domain) {
    let tr = rank.tracer();
    let elems = tr.enter("LagrangeElements");
    {
        let k = tr.enter("CalcLagrangeElements");
        tr.leaf("CalcKinematicsForElems");
        drop(k);
    }
    {
        let q = tr.enter("CalcQForElems");
        tr.leaf("CalcMonotonicQGradientsForElems");
        for r in 0..cfg.regions {
            tr.leaf(&format!("CalcMonotonicQRegionForElems_R{r}"));
        }
        drop(q);
    }
    {
        let apply = tr.enter("ApplyMaterialPropertiesForElems");
        for r in 0..cfg.regions {
            let eos = tr.enter(&format!("EvalEOSForElems_R{r}"));
            let (s, e) = dom.region_slice(cfg, r);
            // Six leaves per element: with returns kept this is a
            // 12-symbol loop body — foldable at K = 50 but not K = 10,
            // which is what makes the paper's §V NLR-reduction numbers
            // K-dependent.
            for i in s..e {
                tr.leaf("CalcEnergyForElems");
                tr.leaf("CalcPressureForElems");
                tr.leaf("CalcSoundSpeedForElems");
                tr.leaf("CalcElemVolumeDerivative");
                tr.leaf("ApplyMonotonicQForElems");
                tr.leaf("UpdateElemEnergy");
                // Real-ish EOS update.
                dom.energies[i] = (dom.energies[i] * dom.volumes[i]).max(1e-12);
            }
            drop(eos);
        }
        drop(apply);
    }
    tr.leaf("UpdateVolumesForElems");
    drop(elems);
}

fn calc_time_constraints(rank: &Rank, cfg: &LuleshConfig, dom: &mut Domain) {
    let tr = rank.tracer();
    let tc = tr.enter("CalcTimeConstraintsForElems");
    for r in 0..cfg.regions {
        tr.leaf(&format!("CalcCourantConstraintForElems_R{r}"));
        tr.leaf(&format!("CalcHydroConstraintForElems_R{r}"));
    }
    dom.dt = (dom.dt * 1.02).min(1e-5);
    drop(tc);
}

/// Run the LULESH proxy.
pub fn run_lulesh(cfg: &LuleshConfig, registry: Arc<FunctionRegistry>) -> RunOutcome {
    let cfg = cfg.clone();
    let sim = SimConfig::new(cfg.ranks).with_watchdog(std::time::Duration::from_secs(30));
    run(sim, registry, move |rank| {
        let tr = rank.tracer();
        let main = tr.enter("main");
        rank.init()?;
        let me = rank.comm_rank()?;
        let _ = rank.comm_size()?;
        for f in SETUP_FUNCTIONS.iter().take(SETUP_FUNCTIONS.len() - 1) {
            tr.leaf(f);
        }
        let mut dom = Domain::new(&cfg, me);
        rank.barrier()?;

        let skip = matches!(
            cfg.fault,
            Some(LuleshFault::SkipLagrangeLeapFrog { rank: fr }) if fr == me
        );
        let skip_coll = matches!(
            cfg.fault,
            Some(LuleshFault::SkipCollective { rank: fr }) if fr == me
        );
        for _cycle in 0..cfg.cycles {
            if !skip_coll {
                let ti = tr.enter("TimeIncrement");
                let gdt = rank.allreduce(&[(dom.dt * 1e12) as i64], ReduceOp::Min)?;
                dom.dt = gdt[0] as f64 / 1e12;
                drop(ti);
            }
            if skip {
                // §V fault: the whole Lagrange phase — including the
                // halo sends other ranks wait for — is skipped.
                continue;
            }
            let llf = tr.enter("LagrangeLeapFrog");
            lagrange_nodal(rank, &cfg, &mut dom);
            halo_exchange(rank, &cfg, &dom)?;
            lagrange_elements(rank, &cfg, &mut dom);
            calc_time_constraints(rank, &cfg, &mut dom);
            drop(llf);
        }
        let total_e: f64 = dom.energies.iter().sum();
        let _ = rank.reduce(&[total_e as i64], ReduceOp::Sum, 0)?;
        if me == 0 {
            tr.leaf("VerifyAndWriteFinalOutput");
        }
        rank.finalize()?;
        drop(main);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::{TraceId, TraceSetStats};

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    fn tiny(fault: Option<LuleshFault>) -> LuleshConfig {
        LuleshConfig {
            ranks: 4,
            threads: 3,
            cycles: 2,
            regions: 6,
            elems_per_region: 5,
            fault,
        }
    }

    fn call_names(out: &RunOutcome, id: TraceId) -> Vec<String> {
        out.traces
            .get(id)
            .unwrap()
            .calls()
            .map(|e| out.traces.registry.name(e.fn_id()))
            .collect()
    }

    #[test]
    fn normal_run_completes() {
        let out = run_lulesh(&tiny(None), registry());
        assert!(!out.deadlocked, "{:?}", out.errors);
        assert!(out.errors.is_empty());
        let names = call_names(&out, TraceId::master(1));
        assert!(names.contains(&"LagrangeLeapFrog".to_string()));
        assert!(names.contains(&"EvalEOSForElems_R0".to_string()));
        assert!(names.contains(&"CommSend".to_string()));
        assert_eq!(names.last().unwrap(), "MPI_Finalize");
        assert_eq!(
            names.iter().filter(|n| *n == "LagrangeLeapFrog").count(),
            2,
            "one LagrangeLeapFrog per cycle"
        );
    }

    #[test]
    fn distinct_function_count_scales_with_regions() {
        let out = run_lulesh(&tiny(None), registry());
        let stats = TraceSetStats::measure(&out.traces);
        let distinct = stats.avg_distinct_per_process();
        // 6 regions × 5 families + fixed names: comfortably over 40.
        assert!(distinct > 40.0, "got {distinct}");
        // Paper-scale config reaches ≈400 (not run here: slower).
    }

    #[test]
    fn traces_are_loopy_enough_for_nlr() {
        let out = run_lulesh(&tiny(None), registry());
        let stats = TraceSetStats::measure(&out.traces);
        assert!(
            stats.overall_ratio() > 5.0,
            "compression ratio {} too low for loopy traces",
            stats.overall_ratio()
        );
    }

    #[test]
    fn skip_fault_stalls_everyone_and_truncates() {
        let out = run_lulesh(
            &tiny(Some(LuleshFault::SkipLagrangeLeapFrog { rank: 2 })),
            registry(),
        );
        assert!(out.deadlocked);
        // Rank 2 skipped the phase: no LagrangeLeapFrog in its trace.
        let t2 = call_names(&out, TraceId::master(2));
        assert!(!t2.contains(&"LagrangeLeapFrog".to_string()));
        // Its neighbours died inside the halo exchange.
        let t1 = out.traces.get(TraceId::master(1)).unwrap();
        assert!(t1.truncated);
        let last = *t1.events.last().unwrap();
        assert_eq!(out.traces.registry.name(last.fn_id()), "MPI_Recv");
    }

    #[test]
    fn skip_collective_is_a_true_wait_cycle_through_the_collective() {
        let reg = registry();
        let out = run_lulesh(
            &tiny(Some(LuleshFault::SkipCollective { rank: 2 })),
            reg.clone(),
        );
        assert!(out.deadlocked);
        // Rank 1 sits in the allreduce waiting for rank 2; rank 2 sits
        // in the halo receive waiting for rank 1 — a genuine cycle.
        let progress: Vec<_> = out
            .traces
            .iter()
            .map(|t| hbcheck::expanded::summarize(t.id, &t.to_symbols(), t.truncated))
            .collect();
        let report = hbcheck::analyze(&out.hb, &progress, &reg);
        let cycle = report
            .diagnostics()
            .iter()
            .find(|d| d.code == hbcheck::HbCode::WaitCycle)
            .expect("HB001 must fire on the skipped-collective deadlock");
        assert!(
            cycle.message.contains("rank 1 blocked in MPI_Allreduce"),
            "{}",
            cycle.message
        );
        assert!(
            cycle
                .message
                .contains("rank 2 blocked in MPI_Recv(src=1, tag=7)"),
            "{}",
            cycle.message
        );
    }

    #[test]
    fn worker_threads_trace_region_kernels() {
        let out = run_lulesh(&tiny(None), registry());
        // Worker 1 of rank 0 ran some IntegrateStressForElems regions.
        let w = call_names(&out, TraceId::new(0, 1));
        assert!(
            w.iter().any(|n| n.starts_with("IntegrateStressForElems_R")),
            "{w:?}"
        );
        assert!(w.iter().any(|n| n == "CalcElemShapeFunctionDerivatives"));
    }

    #[test]
    fn deterministic_master_call_shapes() {
        let shape = |out: &RunOutcome| call_names(out, TraceId::master(0));
        let a = run_lulesh(&tiny(None), registry());
        let b = run_lulesh(&tiny(None), registry());
        assert_eq!(shape(&a), shape(&b));
    }
}
