//! A 1-D heat-diffusion stencil — a fourth workload beyond the paper's
//! three, exercising the full collective family (`MPI_Scatter`,
//! `MPI_Sendrecv`, `MPI_Allreduce`, `MPI_Gather`) in the shape of a
//! classic domain-decomposed iterative solver.
//!
//! Rank 0 scatters the initial rod temperatures; every iteration each
//! rank exchanges halo cells with both neighbours via `MPI_Sendrecv`,
//! applies the explicit-Euler update, and the job allreduces the
//! residual until convergence; rank 0 gathers the final field.
//!
//! Faults:
//!
//! * [`StencilFault::WrongNeighbor`] — one rank exchanges its halo with
//!   the wrong peer: its true neighbours starve → detected deadlock
//!   (trace truncation at `MPI_Sendrecv`).
//! * [`StencilFault::StaleHalo`] — one rank keeps communicating but
//!   never *applies* the received halos (a forgot-to-unpack bug): the
//!   run terminates with a wrong field; the per-iteration call shape
//!   is unchanged but the convergence length — and hence the loop
//!   counts DiffTrace mines — shifts.
//! * [`StencilFault::FlippedSign`] — one rank applies the stencil with
//!   a flipped diffusion sign: the per-iteration call shape is
//!   **identical**; only the convergence length (and hence loop trip
//!   counts) moves — the same faint, global signal as the paper's
//!   wrong-collective-op bug, marking the boundary of what call-trace
//!   diffing can see.

use dt_trace::FunctionRegistry;
use mpisim::{run, RunOutcome, SimConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// Fault injected into the stencil solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilFault {
    /// `rank` exchanges its right halo with `wrong_peer` instead of
    /// its true right neighbour.
    WrongNeighbor {
        /// The faulty rank.
        rank: u32,
        /// The peer it wrongly talks to.
        wrong_peer: u32,
    },
    /// `rank` still exchanges halos but ignores the received values
    /// from iteration `after_iter` on (uses stale boundary data).
    StaleHalo {
        /// The faulty rank.
        rank: u32,
        /// First affected iteration.
        after_iter: u32,
    },
    /// `rank` flips the sign of the diffusion term (silent numeric
    /// corruption, identical trace shape).
    FlippedSign {
        /// The faulty rank.
        rank: u32,
    },
    /// `rank` swaps the send/receive tags of its halo exchanges: it
    /// sends what its neighbours do not expect and waits for what they
    /// never send. Both sides block inside `MPI_Sendrecv` — a true
    /// receive↔receive wait-for cycle (`hbcheck` HB001) plus
    /// wrong-tag messages that are never consumed (HB003).
    TagMismatch {
        /// The faulty rank.
        rank: u32,
    },
}

/// Configuration of one stencil execution.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    /// MPI ranks.
    pub ranks: u32,
    /// Grid cells per rank.
    pub cells_per_rank: usize,
    /// Maximum iterations.
    pub max_iters: u32,
    /// Convergence threshold on the residual (scaled integer).
    pub residual_threshold: i64,
    /// Optional fault.
    pub fault: Option<StencilFault>,
}

impl StencilConfig {
    /// A medium default: 8 ranks × 16 cells.
    pub fn default_8() -> StencilConfig {
        StencilConfig {
            ranks: 8,
            cells_per_rank: 16,
            max_iters: 400,
            residual_threshold: 400,
            fault: None,
        }
    }
}

/// Run the solver; also returns rank 0's gathered final field (empty
/// if the run died before gathering).
pub fn run_stencil(cfg: &StencilConfig, registry: Arc<FunctionRegistry>) -> (RunOutcome, Vec<i64>) {
    let cfg = cfg.clone();
    let final_field: Mutex<Vec<i64>> = Mutex::new(Vec::new());
    let sim = SimConfig::new(cfg.ranks).with_watchdog(std::time::Duration::from_secs(20));
    let outcome = run(sim, registry, |rank| {
        let tr = rank.tracer();
        let main = tr.enter("main");
        rank.init()?;
        let me = rank.comm_rank()?;
        let n = rank.comm_size()?;
        let cells = cfg.cells_per_rank;

        // Rank 0 builds a hot-spot initial condition and scatters it.
        let full: Vec<i64> = (0..cells * n as usize)
            .map(|i| if i < cells { 10_000 } else { 0 })
            .collect();
        let scope = tr.enter("InitializeField");
        let mut field = rank.scatter(&full, cells, 0)?;
        drop(scope);

        let left = me.checked_sub(1);
        let right = (me + 1 < n).then_some(me + 1);

        for iter in 0..cfg.max_iters {
            // Halo exchange (possibly faulty).
            let mut stale = false;
            let mut right_peer = right;
            let mut swap_tags = false;
            match cfg.fault {
                Some(StencilFault::StaleHalo {
                    rank: fr,
                    after_iter,
                }) if fr == me && iter >= after_iter => {
                    stale = true;
                }
                Some(StencilFault::WrongNeighbor {
                    rank: fr,
                    wrong_peer,
                }) if fr == me => {
                    right_peer = Some(wrong_peer);
                }
                Some(StencilFault::TagMismatch { rank: fr }) if fr == me => {
                    swap_tags = true;
                }
                _ => {}
            }
            // Tag convention: tag 0 flows leftward, tag 1 rightward.
            // The faulty rank uses them backwards, so it and a true
            // neighbour each wait for a tag the other never sends.
            let (tag_a, tag_b) = if swap_tags { (1, 0) } else { (0, 1) };
            let scope = tr.enter("HaloExchange");
            let mut left_halo = field[0];
            let mut right_halo = *field.last().unwrap();
            if let Some(l) = left {
                let got = rank.sendrecv(l, tag_a, &[field[0]], l, tag_b)?;
                if !stale {
                    left_halo = got[0];
                }
            }
            if let Some(r) = right_peer {
                let got = rank.sendrecv(r, tag_b, &[*field.last().unwrap()], r, tag_a)?;
                if !stale {
                    right_halo = got[0];
                }
            }
            drop(scope);

            // Explicit Euler update: u' = u + α(∇²u), α = 1/4 in
            // fixed-point arithmetic.
            let scope = tr.enter("ApplyStencil");
            let sign = match cfg.fault {
                Some(StencilFault::FlippedSign { rank: fr }) if fr == me => -1,
                _ => 1,
            };
            let mut next = field.clone();
            let mut local_residual = 0i64;
            for i in 0..cells {
                let l = if i == 0 { left_halo } else { field[i - 1] };
                let r = if i + 1 == cells {
                    right_halo
                } else {
                    field[i + 1]
                };
                // Saturating fixed-point arithmetic: the flipped-sign
                // fault anti-diffuses and would overflow (a trap in
                // debug builds); real codes in f64 would go to ±inf —
                // saturation is the integer analogue.
                let lap = (l as i128 + r as i128 - 2 * field[i] as i128)
                    .clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                let delta = (lap / 4).saturating_mul(sign);
                next[i] = field[i]
                    .saturating_add(delta)
                    .clamp(-1_000_000_000_000, 1_000_000_000_000);
                local_residual = local_residual.saturating_add(delta.abs());
            }
            field = next;
            drop(scope);

            // Global convergence check.
            let g = rank.allreduce(&[local_residual], mpisim::ReduceOp::Sum)?;
            if g[0] <= cfg.residual_threshold {
                break;
            }
        }

        let gathered = rank.gather(&field, 0)?;
        if let Some(all) = gathered {
            tr.leaf("WriteOutput");
            *final_field.lock() = all;
        }
        rank.finalize()?;
        drop(main);
        Ok(())
    });
    (outcome, final_field.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::TraceId;

    fn registry() -> Arc<FunctionRegistry> {
        Arc::new(FunctionRegistry::new())
    }

    fn small(fault: Option<StencilFault>) -> StencilConfig {
        StencilConfig {
            ranks: 4,
            cells_per_rank: 8,
            max_iters: 400,
            residual_threshold: 200,
            fault,
        }
    }

    fn calls(out: &RunOutcome, id: TraceId, name: &str) -> usize {
        out.traces
            .get(id)
            .unwrap()
            .calls()
            .filter(|e| out.traces.registry.name(e.fn_id()) == name)
            .count()
    }

    #[test]
    fn normal_run_diffuses_heat() {
        let (out, field) = run_stencil(&small(None), registry());
        assert!(!out.deadlocked, "{:?}", out.errors);
        assert_eq!(field.len(), 32);
        // Heat spreads right past the second rank's boundary.
        assert!(field[16] > 0, "heat must diffuse: {field:?}");
        // Heat never exceeds the initial total (integer truncation
        // only loses energy).
        let total: i64 = field.iter().sum();
        assert!(total > 7_000 && total <= 80_000, "total {total}");
        // Trace shape: interior ranks sendrecv twice per iteration.
        assert!(calls(&out, TraceId::master(1), "MPI_Sendrecv") >= 4);
    }

    #[test]
    fn wrong_neighbor_deadlocks() {
        let fault = StencilFault::WrongNeighbor {
            rank: 1,
            wrong_peer: 3,
        };
        let (out, _) = run_stencil(&small(Some(fault)), registry());
        assert!(out.deadlocked);
        // Some master died inside the halo exchange.
        assert!(out.traces.iter().any(|t| {
            t.truncated
                && t.events
                    .last()
                    .is_some_and(|e| out.traces.registry.name(e.fn_id()) == "MPI_Sendrecv")
        }));
    }

    #[test]
    fn tag_mismatch_is_a_true_recv_recv_wait_cycle() {
        let fault = StencilFault::TagMismatch { rank: 1 };
        let reg = registry();
        let (out, _) = run_stencil(&small(Some(fault)), reg.clone());
        assert!(out.deadlocked);
        // The wait-for graph must contain the faulty rank and its left
        // neighbour waiting on each other inside MPI_Sendrecv.
        let progress: Vec<_> = out
            .traces
            .iter()
            .map(|t| hbcheck::expanded::summarize(t.id, &t.to_symbols(), t.truncated))
            .collect();
        let report = hbcheck::analyze(&out.hb, &progress, &reg);
        let cycle = report
            .diagnostics()
            .iter()
            .find(|d| d.code == hbcheck::HbCode::WaitCycle)
            .expect("HB001 must fire on the tag-mismatch deadlock");
        assert!(
            cycle
                .message
                .contains("rank 0 blocked in MPI_Sendrecv(src=1, tag=0)"),
            "{}",
            cycle.message
        );
        assert!(
            cycle
                .message
                .contains("rank 1 blocked in MPI_Sendrecv(src=0, tag=0)"),
            "{}",
            cycle.message
        );
        // The wrong-tag messages are flagged as never received.
        assert!(report.codes().contains(&hbcheck::HbCode::UnmatchedSend));
    }

    #[test]
    fn stale_halo_terminates_with_wrong_field() {
        let fault = StencilFault::StaleHalo {
            rank: 2,
            after_iter: 2,
        };
        let reg = registry();
        let (normal, nf) = run_stencil(&small(None), reg.clone());
        let (faulty, ff) = run_stencil(&small(Some(fault)), reg);
        assert!(!faulty.deadlocked, "{:?}", faulty.errors);
        // The physical result differs …
        assert_ne!(nf, ff, "stale halos must corrupt the field");
        // … and the convergence length (loop trip counts) shifts,
        // which is what DiffTrace mines from the traces.
        let id = TraceId::master(0);
        assert_ne!(
            calls(&faulty, id, "MPI_Allreduce"),
            calls(&normal, id, "MPI_Allreduce"),
            "convergence length should change"
        );
    }

    #[test]
    fn flipped_sign_is_trace_invisible_but_numerically_wrong() {
        let fault = StencilFault::FlippedSign { rank: 1 };
        let reg = registry();
        let (normal, nf) = run_stencil(&small(None), reg.clone());
        let (faulty, ff) = run_stencil(&small(Some(fault)), reg);
        assert!(!faulty.deadlocked);
        // Numerically wrong …
        assert_ne!(nf, ff);
        // … but the per-iteration call shape of the faulty rank is the
        // same MPI alphabet (the documented blind spot of call-trace
        // diffing; only convergence length may differ).
        let names = |out: &RunOutcome| {
            let mut v: Vec<String> = out
                .traces
                .get(TraceId::master(1))
                .unwrap()
                .calls()
                .map(|e| out.traces.registry.name(e.fn_id()))
                .collect();
            v.dedup();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(names(&normal), names(&faulty));
    }
}
