//! Property tests for [`difftrace::JsmMatrix`] invariants — the
//! algebra the suspect ranking relies on — plus thread-count
//! equivalence of the parallel matrix kernels on random inputs.

use difftrace::JsmMatrix;
use dt_trace::TraceId;
use fca::FormalContext;
use proptest::prelude::*;

/// A random weighted formal context: `n` objects over a small
/// attribute alphabet with positive weights.
fn context_strategy() -> impl Strategy<Value = FormalContext> {
    proptest::collection::vec(proptest::collection::vec((0u8..8, 1u32..1000), 0..8), 1..10)
        .prop_map(|objects| {
            let mut ctx = FormalContext::new();
            for (i, attrs) in objects.iter().enumerate() {
                let mut named: Vec<(String, f64)> = attrs
                    .iter()
                    .map(|&(a, w)| (format!("a{a}"), f64::from(w) / 16.0))
                    .collect();
                // Duplicate attribute names within one object are
                // last-write-wins in the context; dedup for determinism.
                named.sort_by(|x, y| x.0.cmp(&y.0));
                named.dedup_by(|x, y| x.0 == y.0);
                ctx.add_object(
                    &format!("{i}.0"),
                    named.iter().map(|(k, w)| (k.as_str(), *w)),
                );
            }
            ctx
        })
}

fn ids(n: usize) -> Vec<TraceId> {
    (0..n as u32).map(TraceId::master).collect()
}

/// A random symmetric matrix with unit diagonal, as a JsmMatrix.
fn matrix_strategy() -> impl Strategy<Value = JsmMatrix> {
    proptest::collection::vec(proptest::collection::vec(0u32..1000, 1..10), 1..10).prop_map(
        |rows| {
            let n = rows.len();
            let mut m = vec![vec![0.0; n]; n];
            for i in 0..n {
                m[i][i] = 1.0;
                for j in i + 1..n {
                    let v = f64::from(rows[i][j % rows[i].len()]) / 1000.0;
                    m[i][j] = v;
                    m[j][i] = v;
                }
            }
            JsmMatrix { ids: ids(n), m }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JSMs from any context are symmetric (bitwise), have a unit
    /// diagonal, and stay within [0, 1].
    #[test]
    fn jsm_is_symmetric_unit_diagonal_bounded(ctx in context_strategy()) {
        let n = ctx.num_objects();
        let j = JsmMatrix::from_context(&ctx, ids(n));
        for i in 0..n {
            prop_assert_eq!(j.m[i][i].to_bits(), 1.0f64.to_bits());
            for k in 0..n {
                prop_assert_eq!(j.m[i][k].to_bits(), j.m[k][i].to_bits(), "({},{})", i, k);
                prop_assert!((0.0..=1.0).contains(&j.m[i][k]));
            }
        }
    }

    /// The parallel row kernel is bitwise identical to the sequential
    /// triangle fill for every thread count.
    #[test]
    fn jsm_thread_count_is_unobservable(ctx in context_strategy(), threads in 2usize..9) {
        let n = ctx.num_objects();
        let seq = JsmMatrix::from_context(&ctx, ids(n));
        let par = JsmMatrix::from_context_opts(&ctx, ids(n), threads);
        for i in 0..n {
            for k in 0..n {
                prop_assert_eq!(seq.m[i][k].to_bits(), par.m[i][k].to_bits());
            }
        }
    }

    /// JSM_D cells are non-negative, symmetric for symmetric inputs,
    /// zero on the self-diff — and identical for every thread count.
    #[test]
    fn diff_is_nonnegative_symmetric_and_zero_on_self(
        a in matrix_strategy(),
        b in matrix_strategy(),
        threads in 2usize..9,
    ) {
        // Align the smaller onto the larger's leading block.
        let n = a.len().min(b.len());
        let shrink = |m: &JsmMatrix| JsmMatrix {
            ids: ids(n),
            m: m.m[..n].iter().map(|r| r[..n].to_vec()).collect(),
        };
        let (a, b) = (shrink(&a), shrink(&b));
        let d = a.diff(&b).unwrap();
        for i in 0..n {
            prop_assert_eq!(d.m[i][i].to_bits(), 0.0f64.to_bits());
            for k in 0..n {
                prop_assert!(d.m[i][k] >= 0.0);
                prop_assert_eq!(d.m[i][k].to_bits(), d.m[k][i].to_bits());
            }
        }
        let par = a.diff_opts(&b, threads).unwrap();
        for i in 0..n {
            for k in 0..n {
                prop_assert_eq!(d.m[i][k].to_bits(), par.m[i][k].to_bits());
            }
        }
        let z = a.diff(&a).unwrap();
        for row in &z.m {
            for v in row {
                prop_assert_eq!(v.to_bits(), 0.0f64.to_bits());
            }
        }
    }

    /// Row scores are permutation-equivariant: permuting the matrix
    /// rows (labels included) permutes the scores the same way, with
    /// bit-identical sums — and the parallel kernel agrees.
    #[test]
    fn row_scores_are_permutation_equivariant(
        m in matrix_strategy(),
        seed in 0usize..64,
        threads in 2usize..9,
    ) {
        let n = m.len();
        // A deterministic permutation derived from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in 0..n {
            perm.swap(i, (i + seed) % n);
        }
        let permuted = JsmMatrix {
            ids: perm.iter().map(|&i| m.ids[i]).collect(),
            m: perm.iter().map(|&i| m.m[i].clone()).collect(),
        };
        let base = m.row_scores();
        let shuffled = permuted.row_scores();
        for (k, &i) in perm.iter().enumerate() {
            prop_assert_eq!(shuffled[k].0, base[i].0);
            prop_assert_eq!(shuffled[k].1.to_bits(), base[i].1.to_bits());
        }
        let par = m.row_scores_opts(threads);
        for (s, p) in base.iter().zip(&par) {
            prop_assert_eq!(s.0, p.0);
            prop_assert_eq!(s.1.to_bits(), p.1.to_bits());
        }
    }
}
