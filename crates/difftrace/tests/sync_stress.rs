//! Stress tests for the concurrency primitives under the parallel
//! engine: the write-once `Slot` protocol inside `par_map`, and the
//! sharded `SharedLoopTable` interner. `loom` is not available in this
//! build environment, so these hammer the real scheduler with heavy
//! over-subscription and repetition instead; the `Slot` invariants
//! (single writer, publish-before-read) are additionally checked by
//! assertions inside the type itself, which any interleaving violation
//! turns into a panic here.

use difftrace::sync::{par_map, Slot};
use nlr::{Element, LoopId, SharedLoopTable};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn par_map_under_heavy_oversubscription() {
    // 64 threads on (likely) far fewer cores, 10k near-empty items:
    // maximizes claim/publish races on the slot array.
    let items: Vec<usize> = (0..10_000).collect();
    for rep in 0..3 {
        let out = par_map(&items, 64, |i, &x| {
            assert_eq!(i, x);
            x.wrapping_mul(2654435761) ^ rep
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i.wrapping_mul(2654435761) ^ rep);
        }
    }
}

#[test]
fn par_map_runs_every_item_exactly_once() {
    let calls = AtomicUsize::new(0);
    let items: Vec<u32> = (0..4096).collect();
    let out = par_map(&items, 16, |_, &x| {
        calls.fetch_add(1, Ordering::Relaxed);
        x
    });
    assert_eq!(calls.load(Ordering::Relaxed), items.len());
    assert_eq!(out, items);
}

#[test]
fn slot_handoff_across_many_threads() {
    // Each round: one writer thread publishes into a fresh slot while
    // reader threads spin on is_set; the value must never be observed
    // torn or missing after the flag flips.
    for round in 0..200u64 {
        let slot: Slot<Vec<u64>> = Slot::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while !slot.is_set() {
                        std::hint::spin_loop();
                    }
                    // Acquire on is_set orders this read after the write.
                });
            }
            s.spawn(|| slot.set(vec![round; 32]));
        });
        assert_eq!(slot.take(), vec![round; 32]);
    }
}

#[test]
fn shared_table_contended_identical_bodies() {
    // All threads intern the *same* few bodies as fast as possible —
    // worst case for the dedup shard locks. Exactly one ID may ever
    // exist per body.
    let table = SharedLoopTable::new();
    let results: Vec<Vec<LoopId>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                s.spawn(|| {
                    (0..2_000u32)
                        .map(|i| table.intern(vec![Element::Sym(i % 4)]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(table.len(), 4);
    for per_thread in &results {
        assert_eq!(
            &per_thread[..4],
            &results[0][..4],
            "IDs disagree across threads"
        );
        for (i, id) in per_thread.iter().enumerate() {
            assert_eq!(*id, per_thread[i % 4]);
        }
    }
    for i in 0..4u32 {
        let id = results[0][i as usize];
        assert_eq!(table.body(id), &[Element::Sym(i)]);
    }
}

#[test]
fn shared_table_disjoint_bodies_cross_page_boundary() {
    // Threads intern mostly-disjoint bodies; total crosses the arena's
    // 1024-entry page boundary, exercising concurrent page init.
    let table = SharedLoopTable::new();
    let per_thread = 400u32;
    let threads = 8u32;
    std::thread::scope(|s| {
        for t in 0..threads {
            let table = &table;
            s.spawn(move || {
                for i in 0..per_thread {
                    let id = table.intern(vec![Element::Sym(t * per_thread + i)]);
                    assert_eq!(table.body(id), &[Element::Sym(t * per_thread + i)]);
                }
            });
        }
    });
    assert_eq!(table.len(), (threads * per_thread) as usize);
    // Every body is readable afterwards and distinct.
    let mut seen = std::collections::HashSet::new();
    for i in 0..table.len() {
        assert!(seen.insert(table.body(LoopId(i as u32)).to_vec()));
    }
}

#[test]
fn nested_par_map_inside_par_map() {
    // diff_runs_opts nests par_map (per-side workers) inside join;
    // exercise the same shape directly.
    let outer: Vec<usize> = (0..8).collect();
    let out = par_map(&outer, 4, |_, &o| {
        let inner: Vec<usize> = (0..64).collect();
        par_map(&inner, 4, |_, &i| o * 1000 + i)
            .iter()
            .sum::<usize>()
    });
    for (o, v) in out.iter().enumerate() {
        assert_eq!(*v, o * 1000 * 64 + (0..64).sum::<usize>());
    }
}
