//! Property tests for the core pipeline's configuration surface.

use difftrace::{AttrConfig, AttrKind, FilterConfig, FreqMode, KeepClass};
use proptest::prelude::*;

fn keep_class() -> impl Strategy<Value = KeepClass> {
    prop_oneof![
        Just(KeepClass::MpiAll),
        Just(KeepClass::MpiCollectives),
        Just(KeepClass::MpiSendRecv),
        Just(KeepClass::OmpAll),
        Just(KeepClass::OmpCritical),
        Just(KeepClass::Memory),
        Just(KeepClass::Network),
        Just(KeepClass::Poll),
        Just(KeepClass::Strings),
        // Custom patterns from a safe literal alphabet.
        "[A-Za-z_]{1,12}".prop_map(KeepClass::Custom),
    ]
}

fn filter_config() -> impl Strategy<Value = FilterConfig> {
    (
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(keep_class(), 0..5),
        1usize..100,
    )
        .prop_map(|(drop_returns, drop_plt, keep, nlr_k)| FilterConfig {
            drop_returns,
            drop_plt,
            keep,
            nlr_k,
        })
}

fn attr_config() -> impl Strategy<Value = AttrConfig> {
    (
        prop_oneof![
            Just(AttrKind::Single),
            Just(AttrKind::Double),
            Just(AttrKind::CallerCallee)
        ],
        prop_oneof![
            Just(FreqMode::Actual),
            Just(FreqMode::Log10),
            Just(FreqMode::NoFreq)
        ],
    )
        .prop_map(|(kind, freq)| AttrConfig { kind, freq })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Attribute codes round-trip Display ↔ FromStr exactly.
    #[test]
    fn attr_code_round_trip(cfg in attr_config()) {
        let parsed: AttrConfig = cfg.to_string().parse().unwrap();
        prop_assert_eq!(parsed, cfg);
    }

    /// Filter codes round-trip structurally: parsing the rendered code
    /// reproduces the flags, K, and keep-class sequence (custom
    /// patterns render as a bare `cust` marker, the one lossy spot,
    /// so they are compared by code name only).
    #[test]
    fn filter_code_round_trip(cfg in filter_config()) {
        // Render with parse-compatible custom markers.
        let code = {
            let mut s = format!(
                "{}{}",
                u8::from(cfg.drop_returns),
                u8::from(cfg.drop_plt)
            );
            if cfg.keep.is_empty() {
                s.push_str(".all");
            }
            for k in &cfg.keep {
                match k {
                    KeepClass::Custom(p) => s.push_str(&format!(".cust:{p}")),
                    other => {
                        let rendered = FilterConfig {
                            drop_returns: true,
                            drop_plt: true,
                            keep: vec![other.clone()],
                            nlr_k: 1,
                        }
                        .to_string();
                        // "11.<code>.K1" → extract <code>.
                        let mid = rendered
                            .trim_start_matches("11.")
                            .trim_end_matches(".K1");
                        s.push_str(&format!(".{mid}"));
                    }
                }
            }
            s.push_str(&format!(".K{}", cfg.nlr_k));
            s
        };
        let parsed: FilterConfig = code.parse().unwrap();
        prop_assert_eq!(parsed.drop_returns, cfg.drop_returns);
        prop_assert_eq!(parsed.drop_plt, cfg.drop_plt);
        prop_assert_eq!(parsed.nlr_k, cfg.nlr_k);
        prop_assert_eq!(parsed.keep.len(), cfg.keep.len());
        prop_assert_eq!(parsed.to_string(), cfg.to_string());
    }

    /// Filtering is idempotent: applying the same filter to an already
    /// filtered trace keeps exactly the same symbols.
    #[test]
    fn filtering_is_idempotent(
        cfg in filter_config(),
        names in proptest::collection::vec(
            prop_oneof![
                Just("MPI_Send"), Just("MPI_Recv"), Just("MPI_Barrier"),
                Just("GOMP_critical_start"), Just("memcpy"), Just("strlen"),
                Just("userFn"), Just("poll_wait"), Just("tcp_connect"),
            ],
            0..40,
        ),
    ) {
        use dt_trace::{FunctionRegistry, TraceCollector, TraceId};
        use std::sync::Arc;
        let registry = Arc::new(FunctionRegistry::new());
        let collector = TraceCollector::shared(registry.clone());
        let tr = collector.tracer(TraceId::master(0));
        for n in &names {
            tr.leaf(n);
        }
        tr.finish();
        let set = collector.into_trace_set();
        let once = cfg.apply(&set);

        // Rebuild a trace set from the filtered symbols and re-filter.
        let collector2 = TraceCollector::shared(registry.clone());
        let tr2 = collector2.tracer(TraceId::master(0));
        for &sym in &once.traces[0].symbols {
            let e = dt_trace::TraceEvent::from_symbol(sym);
            if e.is_call() {
                tr2.call(e.fn_id());
            } else {
                tr2.ret(e.fn_id());
            }
        }
        tr2.finish();
        let set2 = collector2.into_trace_set();
        let twice = cfg.apply(&set2);
        prop_assert_eq!(&twice.traces[0].symbols, &once.traces[0].symbols);
    }
}
