//! Full-text debugging reports: everything a DiffTrace iteration
//! produced, in one human-readable document — the "structured
//! presentations of information" the paper argues debugging engineers
//! need (§I, problem 2).

use crate::pipeline::DiffRun;
use cluster::render_dendrogram;
use std::fmt::Write as _;

/// Options for [`generate`].
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Include the three JSM heatmaps (normal, faulty, diff).
    pub heatmaps: bool,
    /// Include the two dendrograms.
    pub dendrograms: bool,
    /// diffNLR views for the top-N suspects.
    pub diffnlr_top: usize,
    /// Include the concept-lattice summary.
    pub lattice_summary: bool,
}

impl Default for ReportOptions {
    fn default() -> ReportOptions {
        ReportOptions {
            heatmaps: true,
            dendrograms: true,
            diffnlr_top: 3,
            lattice_summary: true,
        }
    }
}

/// Generate the full report for one diff.
pub fn generate(d: &DiffRun, opts: &ReportOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "================ DiffTrace report ================");
    let _ = writeln!(
        out,
        "params: filter={} attrs={} linkage={}",
        d.params.filter,
        d.params.attrs,
        d.params.linkage.name()
    );
    let _ = writeln!(
        out,
        "traces: {}   B-score: {:.3}",
        d.normal.ids.len(),
        d.bscore
    );
    let _ = writeln!(out, "suspicious processes: {:?}", d.suspicious_processes);
    let _ = writeln!(
        out,
        "suspicious threads:   [{}]",
        d.suspicious_threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    if opts.lattice_summary {
        let _ = writeln!(out, "\n---- concept lattices ----");
        for (label, run) in [("normal", &d.normal), ("faulty", &d.faulty)] {
            let _ = writeln!(
                out,
                "{label}: {} concepts over {} attributes; top extent {} / intent {}",
                run.lattice.concepts().len(),
                run.context.num_attrs(),
                run.lattice.top().extent_len(),
                run.lattice.top().intent_len(),
            );
        }
    }

    if opts.heatmaps {
        let _ = writeln!(
            out,
            "\n---- JSM (normal) ----\n{}",
            d.normal.jsm.render_heatmap()
        );
        let _ = writeln!(
            out,
            "---- JSM (faulty) ----\n{}",
            d.faulty.jsm.render_heatmap()
        );
        let _ = writeln!(
            out,
            "---- JSM_D = |faulty − normal| ----\n{}",
            d.jsm_d.render_heatmap()
        );
    }

    if opts.dendrograms {
        let label = |run: &crate::pipeline::AnalysisRun| {
            let ids = run.ids.clone();
            move |i: usize| ids[i].to_string()
        };
        let _ = writeln!(
            out,
            "---- dendrogram (normal, {}) ----\n{}",
            d.params.linkage.name(),
            render_dendrogram(&d.normal.dendrogram, &label(&d.normal))
        );
        let _ = writeln!(
            out,
            "---- dendrogram (faulty) ----\n{}",
            render_dendrogram(&d.faulty.dendrogram, &label(&d.faulty))
        );
    }

    for id in d.suspicious_threads.iter().take(opts.diffnlr_top) {
        if let Some(dn) = d.diff_nlr(*id) {
            let _ = writeln!(out, "---- {} ----", dn.render().trim_end());
        }
        let explained = d.explain(*id);
        if !explained.is_empty() {
            let _ = writeln!(out, "why {id} is suspicious (attribute weight changes):");
            for (attr, n, f) in explained.iter().take(8) {
                let _ = writeln!(out, "  {attr:<40} {n:>10.2} -> {f:<10.2}");
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrConfig, AttrKind, FreqMode};
    use crate::filter::FilterConfig;
    use crate::pipeline::{diff_runs, Params};
    use dt_trace::FunctionRegistry;
    use std::sync::Arc;

    fn diff() -> DiffRun {
        let registry = Arc::new(FunctionRegistry::new());
        let mk = |bad: bool| {
            crate::record_masters(&registry, 4, |p, tr| {
                tr.leaf("MPI_Init");
                let n = if bad && p == 1 { 2 } else { 8 };
                for _ in 0..n {
                    tr.leaf("MPI_Send");
                    tr.leaf("MPI_Recv");
                }
                tr.leaf("MPI_Finalize");
            })
        };
        diff_runs(
            &mk(false),
            &mk(true),
            &Params::new(
                FilterConfig::mpi_all(10),
                AttrConfig {
                    kind: AttrKind::Single,
                    freq: FreqMode::Actual,
                },
            ),
        )
    }

    #[test]
    fn full_report_contains_every_section() {
        let r = generate(&diff(), &ReportOptions::default());
        for needle in [
            "DiffTrace report",
            "B-score",
            "suspicious processes",
            "concept lattices",
            "JSM (normal)",
            "JSM_D",
            "dendrogram (normal",
            "diffNLR(1.0)",
        ] {
            assert!(r.contains(needle), "missing `{needle}`:\n{r}");
        }
    }

    #[test]
    fn sections_toggle_off() {
        let opts = ReportOptions {
            heatmaps: false,
            dendrograms: false,
            diffnlr_top: 0,
            lattice_summary: false,
        };
        let r = generate(&diff(), &opts);
        assert!(r.contains("B-score"));
        assert!(!r.contains("JSM (normal)"));
        assert!(!r.contains("dendrogram"));
        assert!(!r.contains("diffNLR"));
    }
}
