//! The hbcheck pre-pass: happens-before analysis before any diffing.
//!
//! [`hbcheck_set`] runs the HB001–HB005 rule families (see the
//! `hbcheck` crate) over one execution's causally-stamped event log and
//! recorded traces, with **byte-identical diagnostics for every thread
//! count**: per-trace progress summaries fan out through
//! [`crate::sync::par_map`] (whose output is input-ordered), the
//! wait-for-graph analysis itself is sequential and deterministic, and
//! the report sorts canonically.
//!
//! [`crate::PipelineOptions::hb`] threads the pass through the diff
//! pipeline: `Warn` attaches the reports to the [`crate::DiffRun`]
//! (and the faulty run's deadlock cycle becomes the annotated
//! divergence cause of `diffNLR` views), `Deny` makes
//! [`crate::pipeline::try_diff_runs_hb_opts`] refuse to diff when any
//! error-severity diagnostic fires.

use crate::lint::{build_raw_nlrs, LintDomain, RawTrace};
use crate::sync::{effective_threads, par_map};
use ::hbcheck::compressed::Summarizer;
use ::hbcheck::{expanded, HbCode, HbReport, TraceProgress, WaitForGraph};
use dt_trace::hb::HbLog;
use dt_trace::{Trace, TraceSet};
use std::fmt;

/// Configuration for one hbcheck pass.
#[derive(Debug, Clone)]
pub struct HbOptions {
    /// Worker threads (same convention as
    /// [`crate::PipelineOptions::threads`]: `1` sequential, `0` all
    /// cores).
    pub threads: usize,
    /// Implementation family for the per-trace progress summaries.
    /// Both produce the same verdicts (property-tested in `hbcheck`);
    /// the compressed domain walks NLR terms without expansion.
    pub domain: LintDomain,
    /// NLR window size used by the compressed domain.
    pub nlr_k: usize,
}

impl Default for HbOptions {
    fn default() -> HbOptions {
        HbOptions {
            threads: 1,
            domain: LintDomain::Expanded,
            nlr_k: 10,
        }
    }
}

/// Analyze one execution's happens-before log. See the module docs for
/// the determinism guarantees.
pub fn hbcheck_set(set: &TraceSet, hb: &HbLog, opts: &HbOptions) -> HbReport {
    let traces: Vec<&Trace> = set.iter().collect();
    let threads = effective_threads(opts.threads, traces.len().max(1));
    let progress: Vec<TraceProgress> = match opts.domain {
        LintDomain::Expanded => par_map(&traces, threads, |_, t| {
            expanded::summarize(t.id, &t.to_symbols(), t.truncated)
        }),
        LintDomain::Compressed => {
            let raw: Vec<RawTrace> = traces
                .iter()
                .map(|t| RawTrace {
                    id: t.id,
                    symbols: t.to_symbols(),
                    truncated: t.truncated,
                })
                .collect();
            let (nlrs, table) = build_raw_nlrs(&raw, opts.nlr_k, threads);
            par_map(&traces, threads, |_, t| {
                let term = nlrs.get(t.id).expect("term built for every trace");
                let mut s = Summarizer::new(&table);
                s.summarize(t.id, term, t.truncated)
            })
        }
    };
    ::hbcheck::analyze(hb, &progress, &set.registry)
}

/// The attached results of the happens-before pre-pass, kept on the
/// [`crate::DiffRun`] when [`crate::PipelineOptions::hb`] is `Warn` (or
/// a passing `Deny`).
#[derive(Debug, Clone)]
pub struct HbPrePass {
    /// Report for the normal execution.
    pub normal: HbReport,
    /// Report for the faulty execution.
    pub faulty: HbReport,
    /// The faulty run's deadlock witness cycles, paired with their
    /// rendered HB001 messages (empty when the faulty run has no
    /// wait-for cycle). `diffNLR` views of participating ranks carry
    /// the message as their divergence cause.
    pub faulty_cycles: Vec<(Vec<u32>, String)>,
}

impl HbPrePass {
    /// Run the pass over both executions of a diff.
    pub fn run(
        normal: (&TraceSet, &HbLog),
        faulty: (&TraceSet, &HbLog),
        opts: &HbOptions,
    ) -> HbPrePass {
        let n = hbcheck_set(normal.0, normal.1, opts);
        let f = hbcheck_set(faulty.0, faulty.1, opts);
        // `analyze` emits its HB001 diagnostics in `cycles()` order, so
        // zipping recovers each cycle's rendered chain.
        let cycles = WaitForGraph::build(faulty.1).cycles();
        let messages: Vec<String> = f
            .diagnostics()
            .iter()
            .filter(|d| d.code == HbCode::WaitCycle)
            .map(|d| d.message.clone())
            .collect();
        let faulty_cycles = cycles.into_iter().zip(messages).collect();
        HbPrePass {
            normal: n,
            faulty: f,
            faulty_cycles,
        }
    }

    /// The divergence cause for trace `rank`, if it participates in a
    /// deadlock cycle of the faulty run.
    pub fn cause_for(&self, rank: u32) -> Option<&str> {
        self.faulty_cycles
            .iter()
            .find(|(ranks, _)| ranks.contains(&rank))
            .map(|(_, msg)| msg.as_str())
    }
}

/// HB reports for both executions of a diff, returned when
/// [`crate::PipelineOptions::hb`] is `Deny` and an error fired.
#[derive(Debug, Clone)]
pub struct HbFailure {
    /// Report for the normal execution.
    pub normal: HbReport,
    /// Report for the faulty execution.
    pub faulty: HbReport,
}

impl fmt::Display for HbFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hbcheck gate denied: {} error(s) in the normal run, {} in the faulty run",
            self.normal.error_count(),
            self.faulty.error_count()
        )
    }
}

impl std::error::Error for HbFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_trace::hb::{BlockedOp, HbOp, VectorClock};
    use dt_trace::{FunctionRegistry, TraceId};
    use std::sync::Arc;

    /// A two-rank corpus whose HB log records a recv↔recv deadlock.
    fn deadlocked() -> (TraceSet, HbLog) {
        let registry = Arc::new(FunctionRegistry::new());
        let set = crate::record_masters(&registry, 2, |_p, tr| {
            tr.leaf("MPI_Init");
            for _ in 0..20 {
                tr.leaf("compute");
            }
            let _open = Box::new(tr.enter("MPI_Recv"));
            // Never returns: both ranks die inside the receive.
            std::mem::forget(_open);
        });
        let mut hb = HbLog::new(2);
        for r in 0..2u32 {
            let mut c = VectorClock::zero(2);
            c.tick(r as usize);
            hb.push(TraceId::master(r), "MPI_Init", HbOp::Local, &c);
            hb.blocked.push(BlockedOp {
                rank: r,
                name: "MPI_Recv".into(),
                op: HbOp::Recv {
                    src: Some(1 - r),
                    tag: 0,
                },
            });
        }
        (set, hb)
    }

    #[test]
    fn both_domains_agree_byte_for_byte() {
        let (set, hb) = deadlocked();
        let e = hbcheck_set(&set, &hb, &HbOptions::default());
        let c = hbcheck_set(
            &set,
            &hb,
            &HbOptions {
                domain: LintDomain::Compressed,
                ..HbOptions::default()
            },
        );
        assert!(!e.is_clean());
        assert_eq!(e.render_text(), c.render_text());
        assert_eq!(e.render_json(), c.render_json());
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let (set, hb) = deadlocked();
        for domain in [LintDomain::Expanded, LintDomain::Compressed] {
            let base = hbcheck_set(
                &set,
                &hb,
                &HbOptions {
                    threads: 1,
                    domain,
                    ..HbOptions::default()
                },
            );
            for threads in [2usize, 0] {
                let got = hbcheck_set(
                    &set,
                    &hb,
                    &HbOptions {
                        threads,
                        domain,
                        ..HbOptions::default()
                    },
                );
                assert_eq!(
                    base.render_text(),
                    got.render_text(),
                    "{domain:?}/{threads}"
                );
                assert_eq!(
                    base.render_json(),
                    got.render_json(),
                    "{domain:?}/{threads}"
                );
            }
        }
    }

    #[test]
    fn prepass_extracts_the_cycle_as_a_cause() {
        let (set, hb) = deadlocked();
        let clean_hb = HbLog::new(2);
        let pre = HbPrePass::run((&set, &clean_hb), (&set, &hb), &HbOptions::default());
        assert!(pre.normal.is_clean());
        assert!(!pre.faulty.is_clean());
        assert_eq!(pre.faulty_cycles.len(), 1);
        assert_eq!(pre.faulty_cycles[0].0, vec![0, 1]);
        let cause = pre.cause_for(0).expect("rank 0 is in the cycle");
        assert!(
            cause.contains("rank 0 blocked in MPI_Recv(src=1, tag=0)"),
            "{cause}"
        );
        assert_eq!(pre.cause_for(0), pre.cause_for(1));
    }
}
